"""Hash-consed boolean DAG: the bit-vector formula IR of the formal layer.

Every formal query in :mod:`repro.formal` — equivalence miters, error
threshold refutations, the conformance ``formal`` layer — is a directed
acyclic graph of single-bit boolean nodes over named input variables.
The IR is deliberately tiny (``var``, constants, ``not``, ``and``,
``or``, ``xor``, ``mux``) so that every backend stays a small lowering:

* the **exhaustive** backend evaluates the DAG directly on uint64-packed
  stimulus lanes (64 assignments per machine word, the same packing the
  netlist kernels use), which makes full 2^(2N) sweeps affordable for
  narrow operands;
* the **BDD** backend translates nodes to reduced ordered BDDs;
* the **SMT** backend (optional z3) maps nodes one-to-one onto solver
  terms.

Construction interns structurally identical nodes and folds constants,
mirroring :meth:`repro.logic.netlist.Netlist.add` — the encoder can be
naive and still emit compact formulas.  Buses are Python lists of nodes,
LSB first, the same convention the netlist generators use.  Word-level
helpers (ripple adders, comparators, barrel shifters, multipliers,
constant tables) live here too so the per-family encoders read like the
functional models they mirror.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Builder",
    "Evaluator",
    "Node",
    "add",
    "add_const",
    "bus_const",
    "bus_equal",
    "bus_mux",
    "bus_or_reduce",
    "bus_zero_extend",
    "const_select",
    "mul",
    "mul_const",
    "shift_left_var",
    "ugt",
]


class Node:
    """One interned DAG node; identity is object identity."""

    __slots__ = ("op", "args", "label", "id")

    def __init__(self, op: str, args: tuple, label: str | None, nid: int):
        self.op = op
        self.args = args
        self.label = label
        self.id = nid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.op == "var":
            return f"<var {self.label}>"
        return f"<{self.op} #{self.id}>"


class Builder:
    """Interning factory for :class:`Node` with constant folding.

    Nodes are created strictly after their arguments, so ``builder.nodes``
    is always a valid topological order — evaluators and lowerings never
    need an explicit toposort.
    """

    def __init__(self):
        self.nodes: list[Node] = []
        self._intern: dict[tuple, Node] = {}
        self.false = self._new("const0", ())
        self.true = self._new("const1", ())

    def _new(self, op: str, args: tuple, label: str | None = None) -> Node:
        node = Node(op, args, label, len(self.nodes))
        self.nodes.append(node)
        return node

    def _interned(self, op: str, args: tuple) -> Node:
        key = (op, *(a.id for a in args))
        node = self._intern.get(key)
        if node is None:
            node = self._new(op, args)
            self._intern[key] = node
        return node

    # -- leaves ----------------------------------------------------------

    def var(self, label: str) -> Node:
        """A fresh named input variable (labels must be unique)."""
        key = ("var", label)
        if key in self._intern:
            raise ValueError(f"duplicate variable {label!r}")
        node = self._new("var", (), label)
        self._intern[key] = node
        return node

    def const(self, value) -> Node:
        return self.true if value else self.false

    # -- gates, folding the cases the encoders generate ------------------

    def not_(self, a: Node) -> Node:
        if a is self.false:
            return self.true
        if a is self.true:
            return self.false
        if a.op == "not":
            return a.args[0]
        return self._interned("not", (a,))

    def and_(self, a: Node, b: Node) -> Node:
        if a is self.false or b is self.false:
            return self.false
        if a is self.true:
            return b
        if b is self.true:
            return a
        if a is b:
            return a
        if _complements(a, b):
            return self.false
        if b.id < a.id:
            a, b = b, a
        return self._interned("and", (a, b))

    def or_(self, a: Node, b: Node) -> Node:
        if a is self.true or b is self.true:
            return self.true
        if a is self.false:
            return b
        if b is self.false:
            return a
        if a is b:
            return a
        if _complements(a, b):
            return self.true
        if b.id < a.id:
            a, b = b, a
        return self._interned("or", (a, b))

    def xor(self, a: Node, b: Node) -> Node:
        if a is self.false:
            return b
        if b is self.false:
            return a
        if a is self.true:
            return self.not_(b)
        if b is self.true:
            return self.not_(a)
        if a is b:
            return self.false
        if _complements(a, b):
            return self.true
        if b.id < a.id:
            a, b = b, a
        return self._interned("xor", (a, b))

    def mux(self, d0: Node, d1: Node, sel: Node) -> Node:
        """``sel ? d1 : d0`` (the MUX2 cell convention)."""
        if sel is self.false:
            return d0
        if sel is self.true:
            return d1
        if d0 is d1:
            return d0
        if d0 is self.false and d1 is self.true:
            return sel
        if d0 is self.true and d1 is self.false:
            return self.not_(sel)
        if d0 is self.false:
            return self.and_(d1, sel)
        if d1 is self.false:
            return self.and_(d0, self.not_(sel))
        if d0 is self.true:
            return self.or_(d1, self.not_(sel))
        if d1 is self.true:
            return self.or_(d0, sel)
        return self._interned("mux", (d0, d1, sel))

    # -- conveniences ----------------------------------------------------

    def xor3(self, a: Node, b: Node, c: Node) -> Node:
        return self.xor(self.xor(a, b), c)

    def maj3(self, a: Node, b: Node, c: Node) -> Node:
        return self.or_(
            self.or_(self.and_(a, b), self.and_(a, c)), self.and_(b, c)
        )

    def or_many(self, nodes) -> Node:
        out = self.false
        for node in nodes:
            out = self.or_(out, node)
        return out

    def and_many(self, nodes) -> Node:
        out = self.true
        for node in nodes:
            out = self.and_(out, node)
        return out

    def input_bus(self, label: str, width: int) -> list[Node]:
        """Declare a ``width``-bit input bus (LSB first)."""
        return [self.var(f"{label}[{i}]") for i in range(width)]

    def __len__(self) -> int:
        return len(self.nodes)


def _complements(a: Node, b: Node) -> bool:
    return (a.op == "not" and a.args[0] is b) or (b.op == "not" and b.args[0] is a)


# ----------------------------------------------------------------------
# word-level helpers (buses are LSB-first node lists)
# ----------------------------------------------------------------------


def bus_const(builder: Builder, value: int, width: int) -> list[Node]:
    """Constant bus; ``value`` is taken modulo ``2**width`` (so negative
    constants become their two's-complement pattern)."""
    value &= (1 << width) - 1
    return [builder.const((value >> i) & 1) for i in range(width)]


def bus_zero_extend(builder: Builder, bus: list[Node], width: int) -> list[Node]:
    if len(bus) >= width:
        return list(bus[:width])
    return list(bus) + [builder.false] * (width - len(bus))


def add(
    builder: Builder, xs: list[Node], ys: list[Node], cin: Node | None = None
) -> list[Node]:
    """Ripple-carry sum of two equal-or-unequal width buses.

    Returns ``max(len(xs), len(ys)) + 1`` bits (the carry out is the
    MSB), so word growth is always explicit at the call site.
    """
    width = max(len(xs), len(ys))
    xs = bus_zero_extend(builder, xs, width)
    ys = bus_zero_extend(builder, ys, width)
    carry = builder.false if cin is None else cin
    out = []
    for x, y in zip(xs, ys):
        out.append(builder.xor3(x, y, carry))
        carry = builder.maj3(x, y, carry)
    out.append(carry)
    return out


def add_const(builder: Builder, xs: list[Node], value: int, width: int) -> list[Node]:
    """``(xs + value) mod 2**width``; negative values wrap (two's
    complement), which is how the encoders apply signed corrections."""
    xs = bus_zero_extend(builder, xs, width)
    ys = bus_const(builder, value, width)
    return add(builder, xs, ys)[:width]


def ugt(builder: Builder, xs: list[Node], ys: list[Node]) -> Node:
    """Unsigned ``xs > ys``: borrow out of ``ys - xs``."""
    width = max(len(xs), len(ys))
    xs = bus_zero_extend(builder, xs, width)
    ys = bus_zero_extend(builder, ys, width)
    gt = builder.false
    for x, y in zip(xs, ys):  # LSB to MSB; later bits dominate
        x_gt = builder.and_(x, builder.not_(y))
        x_eq = builder.not_(builder.xor(x, y))
        gt = builder.or_(x_gt, builder.and_(x_eq, gt))
    return gt


def bus_equal(builder: Builder, xs: list[Node], ys: list[Node]) -> Node:
    width = max(len(xs), len(ys))
    xs = bus_zero_extend(builder, xs, width)
    ys = bus_zero_extend(builder, ys, width)
    return builder.and_many(
        builder.not_(builder.xor(x, y)) for x, y in zip(xs, ys)
    )


def bus_or_reduce(builder: Builder, bus: list[Node]) -> Node:
    return builder.or_many(bus)


def bus_mux(
    builder: Builder, b0: list[Node], b1: list[Node], sel: Node
) -> list[Node]:
    width = max(len(b0), len(b1))
    b0 = bus_zero_extend(builder, b0, width)
    b1 = bus_zero_extend(builder, b1, width)
    return [builder.mux(x, y, sel) for x, y in zip(b0, b1)]


def shift_left_var(
    builder: Builder, bus: list[Node], amount: list[Node], max_shift: int
) -> list[Node]:
    """Barrel shifter: ``bus << amount`` for ``amount <= max_shift``.

    The result is ``len(bus) + max_shift`` bits; amount bits beyond
    ``ceil(log2(max_shift + 1))`` must be provably zero at the call site
    (they are ignored, exactly like a hardware shifter's unused selects).
    """
    out = list(bus) + [builder.false] * max_shift
    width = len(out)
    stages = max(1, (max_shift).bit_length())
    for stage in range(min(stages, len(amount))):
        step = 1 << stage
        if step > max_shift:
            break
        sel = amount[stage]
        shifted = [builder.false] * step + out[: width - step]
        out = [builder.mux(o, s, sel) for o, s in zip(out, shifted)]
    return out


def mul(builder: Builder, xs: list[Node], ys: list[Node]) -> list[Node]:
    """Exact unsigned shift-add multiplier, ``len(xs) + len(ys)`` bits."""
    width = len(xs) + len(ys)
    acc = [builder.false] * width
    for i, y in enumerate(ys):
        partial = [builder.false] * i + [builder.and_(x, y) for x in xs]
        acc = add(builder, acc, partial)[:width]
    return acc


def mul_const(builder: Builder, xs: list[Node], value: int, width: int) -> list[Node]:
    """``(xs * value) mod 2**width`` via shift-adds on the set bits."""
    if value < 0:
        raise ValueError("mul_const takes non-negative constants")
    acc = [builder.false] * width
    bit = 0
    while (value >> bit) and bit < width:
        if (value >> bit) & 1:
            partial = [builder.false] * bit + list(xs)
            acc = add(builder, acc, partial[:width])[:width]
        bit += 1
    return acc


def const_select(
    builder: Builder, select: list[Node], values, width: int
) -> list[Node]:
    """A hardwired constant table: ``values[select]`` as a ``width``-bit bus.

    ``values`` has ``2**len(select)`` integer entries (negative entries
    wrap to two's complement).  Built as a Shannon mux tree, bottom-up
    from the select LSB; interning collapses shared subtrees, so the
    node count tracks the table's information content, not its size.
    """
    values = [int(v) & ((1 << width) - 1) for v in values]
    if len(values) != 1 << len(select):
        raise ValueError(
            f"table has {len(values)} entries; select width {len(select)} "
            f"needs {1 << len(select)}"
        )
    out = []
    for bit in range(width):
        layer: list[Node] = [builder.const((v >> bit) & 1) for v in values]
        for sel in select:
            layer = [
                builder.mux(layer[2 * i], layer[2 * i + 1], sel)
                for i in range(len(layer) // 2)
            ]
        out.append(layer[0])
    return out


# ----------------------------------------------------------------------
# concrete evaluation on uint64-packed lanes
# ----------------------------------------------------------------------


class Evaluator:
    """One root set compiled to a straight-line uint64 lane program.

    ``roots`` fixes the output cone; only nodes feeding a root are
    evaluated.  :meth:`run` takes per-variable uint64 lane arrays (64
    assignments per word, like :mod:`repro.kernels.netlist`) and returns
    one lane array per root.  :meth:`run_words` wraps the int64 word
    conversion for bus-shaped inputs and outputs.
    """

    def __init__(self, builder: Builder, roots: list[Node]):
        self.builder = builder
        self.roots = list(roots)
        needed = set()
        stack = [r for r in self.roots]
        while stack:
            node = stack.pop()
            if node.id in needed:
                continue
            needed.add(node.id)
            stack.extend(node.args)
        # builder id order is topological by construction
        self.program = [n for n in builder.nodes if n.id in needed]
        self.var_labels = [n.label for n in self.program if n.op == "var"]

    def run(self, assignment: dict[str, np.ndarray], words: int) -> list[np.ndarray]:
        """Evaluate the roots; ``assignment`` maps variable labels to
        uint64 lane arrays of ``words`` words."""
        ones = ~np.uint64(0)
        values: dict[int, np.ndarray] = {}
        for node in self.program:
            op = node.op
            if op == "var":
                try:
                    values[node.id] = assignment[node.label]
                except KeyError:
                    raise KeyError(f"no assignment for variable {node.label!r}")
            elif op == "const0":
                values[node.id] = np.zeros(words, dtype=np.uint64)
            elif op == "const1":
                values[node.id] = np.full(words, ones, dtype=np.uint64)
            elif op == "not":
                values[node.id] = ~values[node.args[0].id]
            elif op == "and":
                values[node.id] = values[node.args[0].id] & values[node.args[1].id]
            elif op == "or":
                values[node.id] = values[node.args[0].id] | values[node.args[1].id]
            elif op == "xor":
                values[node.id] = values[node.args[0].id] ^ values[node.args[1].id]
            else:  # mux
                d0, d1, sel = (values[a.id] for a in node.args)
                values[node.id] = (d0 & ~sel) | (d1 & sel)
        return [values[r.id] for r in self.roots]

    def run_words(
        self, buses: dict[str, np.ndarray], count: int | None = None
    ) -> np.ndarray:
        """Drive integer operand vectors, return roots as int64 words.

        ``buses`` maps bus labels (as given to ``input_bus``) to int64
        value arrays; the roots are interpreted as one LSB-first bus.
        """
        from ..kernels.netlist import _pack_words, _unpack_words

        sizes = {np.asarray(v).size for v in buses.values()}
        if len(sizes) != 1:
            raise ValueError(f"operand vectors disagree on length: {sizes}")
        if count is None:
            count = sizes.pop()
        words = (count + 63) // 64
        assignment: dict[str, np.ndarray] = {}
        by_prefix = {label: set() for label in buses}
        for label in self.var_labels:
            prefix, _, index = label.rpartition("[")
            if prefix in by_prefix:
                by_prefix[prefix].add(int(index[:-1]))
        for label, values in buses.items():
            indices = by_prefix[label]
            width = max(indices, default=-1) + 1
            lanes = _pack_words(np.asarray(values, dtype=np.int64), max(width, 1))
            for i in range(width):
                assignment[f"{label}[{i}]"] = lanes[i]
        lanes = self.run(assignment, words)
        return _unpack_words(np.asarray(lanes), count)

    @property
    def size(self) -> int:
        """Evaluated node count (the cone of the roots)."""
        return len(self.program)
