"""Persisted formal certificates, next to the metrics cache.

Certificates are small JSON documents (an equivalence verdict with its
per-leg statuses and witnesses, or a worst-case error bound with its
exact rational value and replayed witness) stored under a ``formal/``
sibling of the metrics cache directory — one file per
``(design, bitwidth, kind)``, human-readable, and cheap enough to
upload wholesale as CI artifacts.

Unlike the content-addressed metrics cache, certificate filenames are
*claims*: ``realm16-t0-b16-equivalence.json`` states what was certified
for whom.  The payload embeds everything needed to re-check the claim
(witness operands, exact fractions, method, backend), so a stale or
hand-edited certificate is caught by replaying it, not trusted.
"""

from __future__ import annotations

import json
import os
import pathlib
import re

from ..analysis.cache import resolve_cache_dir

__all__ = [
    "certificate_dir",
    "certificate_path",
    "list_certificates",
    "load_certificate",
    "save_certificate",
]


def certificate_dir(cache=True) -> pathlib.Path | None:
    """The ``formal/`` directory beside the metrics cache, or ``None``."""
    base = resolve_cache_dir(cache)
    if base is None:
        return None
    return base / "formal"


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text)


def certificate_path(
    design: str, bitwidth: int, kind: str, cache=True
) -> pathlib.Path | None:
    directory = certificate_dir(cache)
    if directory is None:
        return None
    return directory / f"{_slug(design)}-b{bitwidth}-{_slug(kind)}.json"


def save_certificate(payload: dict, cache=True) -> pathlib.Path | None:
    """Atomically persist one certificate payload; returns its path.

    ``payload`` must carry ``design``, ``bitwidth`` and ``kind`` (the
    ``to_payload()`` of :class:`~repro.formal.equiv.EquivalenceResult`
    and :class:`~repro.formal.bounds.WorstCaseBounds` both do).
    Returns ``None`` when caching is disabled.
    """
    path = certificate_path(
        payload["design"], payload["bitwidth"], payload["kind"], cache
    )
    if path is None:
        return None
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_suffix(f".tmp{os.getpid()}")
    temp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    os.replace(temp, path)
    return path


def load_certificate(
    design: str, bitwidth: int, kind: str, cache=True
) -> dict | None:
    """One stored certificate, or ``None`` (disabled, missing, corrupt)."""
    path = certificate_path(design, bitwidth, kind, cache)
    if path is None:
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("kind") != kind:
        return None
    return payload


def list_certificates(cache=True) -> list[pathlib.Path]:
    """Every stored certificate file, sorted by name."""
    directory = certificate_dir(cache)
    if directory is None or not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
