"""Equivalence proofs: model ↔ RTL ↔ compiled kernel, with witnesses.

:func:`prove_equivalence` runs each *leg* of the agreement claim for one
design through the strongest applicable method:

* **model ↔ rtl** — both sides are lowered to formulas and the miter is
  discharged by the backend ladder (z3 when installed, bounded BDD,
  exhaustive sweep for narrow operands).  ``proved`` here is a real
  proof over the full operand space.
* **model ↔ kernel** — at narrow widths the compiled kernel is lowered
  exactly from its enumerated product table and proved like the RTL
  leg.  At wider operands the kernel is a NumPy closure with no exact
  lowering, so the leg is *validated*: the model formula and the kernel
  are compared on a structured + seeded operand sample (corners,
  power-of-two neighborhoods, random).  ``validated`` is deliberately a
  weaker verdict than ``proved`` and is reported as such.
* **formula ↔ model self-check** — the symbolic encoder itself is
  cross-checked against the interpreted model on the same sample; an
  encoder bug therefore surfaces as a refutation with a witness instead
  of silently certifying the wrong function.

Every refuted leg carries a concrete ``(a, b)`` witness, shrunk through
the conformance shrinker (:func:`repro.conformance.fuzz.shrink_pair`)
with the leg's own disagreement as the predicate — the same reduction
pipeline fuzz divergences go through.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis import telemetry
from .backends import default_ladder, resolve_backend
from .encode import (
    Encoding,
    UnsupportedDesignError,
    encode_kernel,
    encode_model,
    encode_netlist,
)

__all__ = ["LegResult", "EquivalenceResult", "prove_equivalence", "sample_operands"]


@dataclasses.dataclass(frozen=True)
class LegResult:
    """Outcome of one leg of the equivalence claim."""

    leg: str  # "model~rtl" | "model~kernel" | "formula~model"
    status: str  # "proved" | "validated" | "refuted" | "unknown" | "skipped"
    backend: str | None = None
    witness: tuple[int, int] | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("proved", "validated")


@dataclasses.dataclass(frozen=True)
class EquivalenceResult:
    """All legs for one design at one bitwidth."""

    design: str
    bitwidth: int
    legs: tuple[LegResult, ...]

    @property
    def refuted(self) -> bool:
        return any(leg.status == "refuted" for leg in self.legs)

    @property
    def proved(self) -> bool:
        """Every non-skipped leg discharged (proved or validated)."""
        checked = [leg for leg in self.legs if leg.status != "skipped"]
        return bool(checked) and all(leg.ok for leg in checked)

    def to_payload(self) -> dict:
        return {
            "design": self.design,
            "bitwidth": self.bitwidth,
            "kind": "equivalence",
            "refuted": self.refuted,
            "proved": self.proved,
            "legs": [dataclasses.asdict(leg) for leg in self.legs],
        }


def sample_operands(
    bitwidth: int, count: int = 4096, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Structured + seeded operand pairs for validation legs.

    Deterministic: corners (0, 1, extremes), power-of-two neighborhoods
    (where the log families switch characteristics), then a seeded
    uniform fill — the high-yield regions the fuzzer's corpus converges
    on, available without running it.
    """
    corners = [0, 1, 2, 3, (1 << bitwidth) - 1, (1 << bitwidth) - 2]
    for k in range(1, bitwidth):
        corners.extend(((1 << k) - 1, 1 << k, (1 << k) + 1))
    corners = np.array(
        [v for v in corners if 0 <= v < (1 << bitwidth)], dtype=np.int64
    )
    pairs_a = [np.repeat(corners, corners.size)]
    pairs_b = [np.tile(corners, corners.size)]
    have = pairs_a[0].size
    if count > have:
        rng = np.random.default_rng(seed)
        fill = count - have
        pairs_a.append(rng.integers(0, 1 << bitwidth, fill, dtype=np.int64))
        pairs_b.append(rng.integers(0, 1 << bitwidth, fill, dtype=np.int64))
    return np.concatenate(pairs_a), np.concatenate(pairs_b)


def _shrink(predicate, witness: tuple[int, int]) -> tuple[int, int]:
    """Reduce a witness through the conformance shrinker."""
    from ..conformance.fuzz import shrink_pair

    return shrink_pair(predicate, *witness)


def _check_leg(
    leg: str, f: Encoding, g: Encoding, backend_name: str | None
) -> LegResult:
    """Run one formula-vs-formula leg through a backend or the ladder."""
    ladder = (
        [resolve_backend(backend_name)]
        if backend_name
        else default_ladder(f.bitwidth)
    )
    last_detail = ""
    for backend in ladder:
        status, extra = backend.check_equal(f, g)
        if status == "proved":
            return LegResult(leg, "proved", backend.name)
        if status == "refuted":
            witness = _shrink(
                lambda a, b: int(f.eval_pairs(a, b)[0])
                != int(g.eval_pairs(a, b)[0]),
                extra,
            )
            return LegResult(
                leg,
                "refuted",
                backend.name,
                witness,
                f"{f.source} and {g.source} disagree on (a={witness[0]}, "
                f"b={witness[1]})",
            )
        last_detail = str(extra or "")
    return LegResult(leg, "unknown", None, None, last_detail)


def _validate_by_sampling(
    leg: str,
    reference: Encoding,
    evaluate,
    disagree_predicate,
    samples: int,
    seed: int,
) -> LegResult:
    """Sampled agreement check; refutations still carry shrunk witnesses.

    At enumerable widths the "sample" is the complete pair grid, which
    upgrades the verdict from ``validated`` to ``proved``.
    """
    n = reference.bitwidth
    complete = n <= 8
    if complete:
        space = np.arange(np.int64(1) << n, dtype=np.int64)
        a = np.repeat(space, space.size)
        b = np.tile(space, space.size)
    else:
        a, b = sample_operands(n, samples, seed)
    want = reference.eval_pairs(a, b)
    got = np.asarray(evaluate(a, b), dtype=np.int64)
    diff = np.nonzero(got != want)[0]
    if diff.size:
        i = int(diff[0])
        witness = _shrink(disagree_predicate, (int(a[i]), int(b[i])))
        return LegResult(
            leg, "refuted", "exhaustive" if complete else "sampling", witness,
            f"disagreement at (a={witness[0]}, b={witness[1]})",
        )
    if complete:
        return LegResult(
            leg, "proved", "exhaustive", None,
            f"complete {a.size}-pair sweep",
        )
    return LegResult(
        leg, "validated", "sampling", None,
        f"{a.size} structured+seeded pairs agree (not a proof)",
    )


def prove_equivalence(
    design: str,
    bitwidth: int | None = None,
    *,
    backend: str | None = None,
    samples: int = 4096,
    seed: int = 0,
) -> EquivalenceResult:
    """Prove (or refute) model ↔ RTL ↔ kernel agreement for a design.

    ``design`` accepts registry ids and ad-hoc REALM specs, exactly like
    ``repro conform``.  ``backend`` pins one backend instead of the
    ladder.  Raises :class:`UnsupportedDesignError` only when even the
    model cannot be encoded; individual legs degrade to ``skipped``.
    """
    from ..conformance.oracles import resolve_design

    design_id, model, rtl_factory, _ = resolve_design(design, bitwidth)
    n = model.bitwidth
    tele = telemetry.get()
    legs: list[LegResult] = []
    with tele.span("formal.prove_equiv", design=design_id, bitwidth=n):
        model_enc = encode_model(model, design_id)

        # formula ~ model: the encoder's own self-check
        legs.append(
            _validate_by_sampling(
                "formula~model",
                model_enc,
                lambda a, b: model.multiply(a, b),
                lambda a, b: int(model_enc.eval_pairs(a, b)[0])
                != int(model.multiply(a, b)),
                samples,
                seed,
            )
        )

        # model ~ rtl
        if rtl_factory is None:
            legs.append(
                LegResult(
                    "model~rtl", "skipped",
                    detail="no netlist generator for this design",
                )
            )
        else:
            try:
                netlist = rtl_factory()
            except ValueError as exc:
                legs.append(
                    LegResult(
                        "model~rtl", "skipped",
                        detail=f"netlist unbuildable: {exc}",
                    )
                )
            else:
                rtl_enc = encode_netlist(netlist, n, design_id)
                legs.append(_check_leg("model~rtl", model_enc, rtl_enc, backend))

        # model ~ kernel
        try:
            kernel_enc = encode_kernel(model, design_id)
        except UnsupportedDesignError:
            from ..kernels import kernel_for

            kernel = kernel_for(model)
            legs.append(
                _validate_by_sampling(
                    "model~kernel",
                    model_enc,
                    kernel,
                    lambda a, b: int(model_enc.eval_pairs(a, b)[0])
                    != int(kernel(np.asarray([a]), np.asarray([b]))[0]),
                    samples,
                    seed,
                )
            )
        else:
            legs.append(
                _check_leg("model~kernel", model_enc, kernel_enc, backend)
            )

    result = EquivalenceResult(design_id, n, tuple(legs))
    tele.counter("formal.equiv_refuted" if result.refuted else "formal.equiv_ok")
    return result
