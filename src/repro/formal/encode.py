"""Lower netlists and functional models into bit-vector formulas.

Two independent lowerings produce :class:`Encoding` objects over the same
input variables (``a[i]``/``b[i]``, LSB first):

* :func:`encode_netlist` walks a registered gate-level netlist
  (:mod:`repro.logic.netlist`) cell by cell — a direct structural
  translation, one DAG node per gate.
* :func:`encode_model` re-derives the functional model *symbolically*:
  the same decomposition the kernel specializers in
  :mod:`repro.kernels.tables` fold into lookup tables (LOD
  characteristic, barrel-shifted log fraction, truncated fraction,
  segment index, hardwired correction LUT) is expressed over symbolic
  bits, so the formula mirrors the NumPy datapath arithmetic — not the
  RTL — and an equivalence proof between the two is meaningful.

Families whose models are irregular array multipliers (AM1/AM2, IntALP,
ImpLM) have no symbolic encoder; at ``N <= FULL_TABLE_MAX_BITWIDTH``
they are lowered exactly from their exhaustive product table
(:func:`encode_table`), which builds a reduced ordered decision diagram
per output bit with an interleaved ``a``/``b`` variable order — the
table *is* the specification at those widths, the same way
``compile_full_table`` treats it as the kernel.  The compiled kernels
themselves are NumPy closures, not circuits, so :func:`encode_kernel`
uses the same exhaustive-table route and is exact (and only available)
at narrow widths; at 16-bit the kernel leg is cross-validated by
sampling instead (see :mod:`repro.formal.equiv`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis import telemetry
from ..logic.netlist import CONST0, CONST1, Netlist
from .bitvec import (
    Builder,
    Evaluator,
    Node,
    add,
    bus_mux,
    const_select,
    mul,
    shift_left_var,
)

__all__ = [
    "Encoding",
    "UnsupportedDesignError",
    "SYMBOLIC_FAMILIES",
    "encode_kernel",
    "encode_model",
    "encode_netlist",
    "encode_table",
]

#: families with a direct symbolic model encoder (any bitwidth)
SYMBOLIC_FAMILIES = frozenset(
    {"Accurate", "ALM-LOA", "ALM-MAA", "ALM-SOA", "cALM", "DNNCO", "DRUM",
     "ESSM", "MBM", "REALM", "scaleTRIM", "SSM"}
)


class UnsupportedDesignError(ValueError):
    """No formal encoding exists for this design at this bitwidth."""


@dataclasses.dataclass
class Encoding:
    """A design lowered to a boolean DAG over the operand input bits.

    ``outputs`` is the product bus (LSB first, unsigned); widths differ
    per source (REALM's extend mode emits ``2N + 1`` bits, most others
    ``2N``) — consumers compare integer values, not bit patterns.
    """

    design: str
    bitwidth: int
    source: str  # "model" | "rtl" | "kernel"
    method: str  # "symbolic" | "netlist" | "truth-table"
    builder: Builder
    a: list[Node]
    b: list[Node]
    outputs: list[Node]
    _evaluator: Evaluator | None = dataclasses.field(default=None, repr=False)

    def evaluator(self) -> Evaluator:
        """The compiled concrete evaluator of the output cone (cached)."""
        if self._evaluator is None:
            self._evaluator = Evaluator(self.builder, self.outputs)
        return self._evaluator

    def eval_pairs(self, a_values, b_values) -> np.ndarray:
        """Evaluate the formula on operand vectors; int64 products."""
        a_values = np.atleast_1d(np.asarray(a_values, dtype=np.int64))
        b_values = np.atleast_1d(np.asarray(b_values, dtype=np.int64))
        return self.evaluator().run_words({"a": a_values, "b": b_values})

    @property
    def size(self) -> int:
        """Node count of the output cone."""
        return self.evaluator().size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Encoding {self.design!r} {self.source}/{self.method}: "
            f"{len(self.outputs)} out, {len(self.builder)} nodes>"
        )


# ----------------------------------------------------------------------
# netlist lowering: one node per gate
# ----------------------------------------------------------------------

def _cell_node(builder: Builder, name: str, ins: list[Node]) -> Node:
    if name == "INV":
        return builder.not_(ins[0])
    if name == "BUF":
        return ins[0]
    if name == "AND2":
        return builder.and_(ins[0], ins[1])
    if name == "OR2":
        return builder.or_(ins[0], ins[1])
    if name == "NAND2":
        return builder.not_(builder.and_(ins[0], ins[1]))
    if name == "NOR2":
        return builder.not_(builder.or_(ins[0], ins[1]))
    if name == "XOR2":
        return builder.xor(ins[0], ins[1])
    if name == "XNOR2":
        return builder.not_(builder.xor(ins[0], ins[1]))
    if name == "ANDN2":
        return builder.and_(ins[0], builder.not_(ins[1]))
    if name == "ORN2":
        return builder.or_(ins[0], builder.not_(ins[1]))
    if name == "MUX2":
        return builder.mux(ins[0], ins[1], ins[2])
    if name == "MAJ3":
        return builder.maj3(ins[0], ins[1], ins[2])
    if name == "XOR3":
        return builder.xor3(ins[0], ins[1], ins[2])
    raise UnsupportedDesignError(f"no formula lowering for cell {name!r}")


def encode_netlist(netlist: Netlist, bitwidth: int, design: str = "?") -> Encoding:
    """Translate a combinational netlist gate-for-gate into a formula.

    The netlist input convention of :mod:`repro.circuits` is assumed:
    ``inputs[:bitwidth]`` is operand ``a`` (LSB first), the rest is ``b``.
    """
    if len(netlist.inputs) != 2 * bitwidth:
        raise ValueError(
            f"netlist {netlist.name!r} has {len(netlist.inputs)} inputs; "
            f"expected {2 * bitwidth} for two {bitwidth}-bit operands"
        )
    tele = telemetry.get()
    with tele.span(
        "formal.encode", design=design, source="rtl", bitwidth=bitwidth
    ):
        builder = Builder()
        a = builder.input_bus("a", bitwidth)
        b = builder.input_bus("b", bitwidth)
        values: dict[int, Node] = {CONST0: builder.false, CONST1: builder.true}
        for i, net in enumerate(netlist.inputs):
            values[net] = a[i] if i < bitwidth else b[i - bitwidth]
        for gate in netlist.gates:
            ins = [values[net] for net in gate.inputs]
            values[gate.output] = _cell_node(builder, gate.cell.name, ins)
        outputs = [values[net] for net in netlist.outputs]
    return Encoding(design, bitwidth, "rtl", "netlist", builder, a, b, outputs)


# ----------------------------------------------------------------------
# symbolic model encoders
# ----------------------------------------------------------------------

def _one_hot_lod(builder: Builder, bus: list[Node]) -> tuple[list[Node], Node]:
    """Leading-one detector: one-hot position bus + nonzero flag.

    ``hot[i]`` is true iff bit ``i`` is the operand's leading one
    (``hot[i] = v_i & ~(v_{i+1} | ... | v_{n-1})``); all-zero input
    yields an all-zero one-hot, matching the models' zero-safe path.
    """
    hot: list[Node] = [builder.false] * len(bus)
    seen = builder.false
    for i in range(len(bus) - 1, -1, -1):
        hot[i] = builder.and_(bus[i], builder.not_(seen))
        seen = builder.or_(seen, bus[i])
    return hot, seen


def _log_front(
    builder: Builder, bus: list[Node]
) -> tuple[list[Node], list[Node], Node]:
    """Symbolic LOD + input barrel shifter: ``(k, x, nonzero)``.

    Mirrors ``floor_log2`` + ``log_fraction``: ``k`` is the
    characteristic as a ``ceil(log2(N))``-bit bus, ``x`` the ``N-1``-bit
    left-aligned log fraction (``x_w = v_{k-(N-1-w)}``, selected through
    the one-hot LOD).  Zero inputs give ``k = x = 0``, exactly like the
    models' ``safe = max(v, 1)`` path.
    """
    n = len(bus)
    hot, nonzero = _one_hot_lod(builder, bus)
    kw = max((n - 1).bit_length(), 1)
    k = [
        builder.or_many(hot[i] for i in range(n) if (i >> j) & 1)
        for j in range(kw)
    ]
    width = n - 1
    x = []
    for w in range(width):
        x.append(
            builder.or_many(
                builder.and_(hot[i], bus[i - (width - w)])
                for i in range(width - w, n)
            )
        )
    return k, x, nonzero


def _truncate(builder: Builder, x: list[Node], t: int) -> list[Node]:
    """``(x >> t) | 1``: drop ``t`` LSBs, force the new LSB to 1."""
    return [builder.true] + x[t + 1 :]


def _shift_const(value: int, shift: int) -> int:
    """``value * 2**shift`` with floor semantics (``shift_value`` on ints)."""
    return value << shift if shift >= 0 else value >> -shift


def _mask_zero(builder: Builder, bus: list[Node], nonzero: Node) -> list[Node]:
    return [builder.and_(bit, nonzero) for bit in bus]


def _encode_log_corrected(
    design: str,
    n: int,
    t: int,
    q: int,
    codes: np.ndarray,
    saturate: bool,
) -> Encoding:
    """REALM/MBM: truncated log add + segment-selected correction.

    ``codes`` is the ``(M, M)`` quantized LUT (``M = 1`` for MBM).  The
    two carry variants of the correction — ``2**width + s_full`` for
    ``c_of = 0``, ``s_half`` for ``c_of = 1`` — are folded into one
    hardwired constant table indexed by ``(carry, seg_a, seg_b)``, so
    the mantissa is a single adder ``fraction_sum + K`` and the Fig. 3
    carry mux becomes one more select line of the LUT.
    """
    m = codes.shape[0]
    logm = m.bit_length() - 1
    raw_width = n - 1
    width = raw_width - t
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)
    ka, xa, nza = _log_front(builder, a)
    kb, xb, nzb = _log_front(builder, b)
    seg_a = xa[raw_width - logm :] if logm else []
    seg_b = xb[raw_width - logm :] if logm else []

    fsum = add(builder, _truncate(builder, xa, t), _truncate(builder, xb, t))
    carry = fsum[width]

    # mantissa < 2**(width+2) in both carry branches (factors < 0.25)
    mant_width = width + 2
    table = []
    for index in range(2 << (2 * logm)):
        c = index & 1
        i = (index >> 1) & (m - 1)
        j = index >> (1 + logm)
        code = int(codes[i, j])
        if c:
            table.append(_shift_const(code, width - q - 1))
        else:
            table.append(_shift_const(code, width - q) + (1 << width))
    correction = const_select(
        builder, [carry] + seg_a + seg_b, table, mant_width
    )
    mantissa = add(builder, fsum, correction)[:mant_width]

    shift = add(builder, ka, kb, cin=carry)  # ka + kb + c_of, never negative
    shifted = shift_left_var(builder, mantissa, shift, 2 * (n - 1) + 1)
    product = shifted[width : width + 2 * n + 1]
    product = _mask_zero(builder, product, builder.and_(nza, nzb))
    if saturate:
        low, over = product[: 2 * n], product[2 * n]
        product = bus_mux(builder, low, [builder.true] * (2 * n), over)
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


def _encode_log_add(design: str, n: int, adder: str | None, m: int) -> Encoding:
    """cALM and the ALM variants: log add (exact or approximate) + antilog.

    ``adder`` is ``None`` for the exact adder (cALM) or one of
    ``"LOA"``/``"SOA"``/``"MAA"`` applied to the low ``m`` log-sum bits
    (``m <= N - 1``, so the approximate part never touches the
    characteristic field).
    """
    width = n - 1
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)
    ka, xa, nza = _log_front(builder, a)
    kb, xb, nzb = _log_front(builder, b)
    log_a = xa + ka  # (k << width) | x, LSB first
    log_b = xb + kb

    if adder is None:
        log_sum = add(builder, log_a, log_b)
    else:
        if adder == "LOA":
            low = [builder.or_(x, y) for x, y in zip(log_a[:m], log_b[:m])]
            cin = builder.and_(log_a[m - 1], log_b[m - 1])
        elif adder == "SOA":
            low = [builder.true] * m
            cin = builder.and_(log_a[m - 1], log_b[m - 1])
        elif adder == "MAA":
            low = list(log_a[:m])
            cin = log_b[m - 1]
        else:
            raise UnsupportedDesignError(f"unknown ALM adder {adder!r}")
        log_sum = low + add(builder, log_a[m:], log_b[m:], cin=cin)

    mantissa = log_sum[:width] + [builder.true]  # 1.fraction
    characteristic = log_sum[width:]
    shifted = shift_left_var(builder, mantissa, characteristic, 2 * (n - 1) + 1)
    product = shifted[width : width + 2 * n]
    product = _mask_zero(builder, product, builder.and_(nza, nzb))
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


def _encode_drum(design: str, n: int, k: int) -> Encoding:
    """DRUM: leading-one fragment with forced LSB, then exact multiply.

    For leading-one position ``i`` the fragment shift is
    ``s_i = max(i - (k - 1), 0)``; the approximated operand is
    ``(v & ~mask(s_i)) | 2**s_i`` when ``s_i > 0`` and ``v`` itself
    otherwise, expressed per bit through the one-hot LOD.
    """
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)

    def approximate(bus: list[Node]) -> list[Node]:
        hot, _ = _one_hot_lod(builder, bus)
        shifts = [max(i - (k - 1), 0) for i in range(n)]
        out = []
        for w in range(n):
            keep = builder.or_many(
                hot[i] for i in range(n) if shifts[i] == 0 or w > shifts[i]
            )
            force = builder.or_many(
                hot[i] for i in range(n) if shifts[i] > 0 and w == shifts[i]
            )
            out.append(builder.or_(builder.and_(bus[w], keep), force))
        return out

    product = mul(builder, approximate(a), approximate(b))
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


def _encode_segment(design: str, n: int, offsets_above: list[tuple[int, int]]) -> Encoding:
    """SSM/ESSM: static segment truncation, then exact multiply.

    ``offsets_above`` lists ``(threshold_bit, shift)`` pairs, highest
    first: the operand's low ``shift`` bits are cleared when any bit at
    or above ``threshold_bit`` is set (the highest matching rule wins;
    no match keeps the operand exact).
    """
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)

    def approximate(bus: list[Node]) -> list[Node]:
        triggers = [
            builder.or_many(bus[threshold:]) for threshold, _ in offsets_above
        ]
        out = []
        for w in range(n):
            # the first (highest) rule with shift > w decides bit w's fate
            cleared = builder.false
            not_higher = builder.true
            for trigger, (_, shift) in zip(triggers, offsets_above):
                if shift > w:
                    cleared = builder.or_(
                        cleared, builder.and_(trigger, not_higher)
                    )
                not_higher = builder.and_(not_higher, builder.not_(trigger))
            out.append(builder.and_(bus[w], builder.not_(cleared)))
        return out

    product = mul(builder, approximate(a), approximate(b))
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


def _sub(builder: Builder, xs: list[Node], ys: list[Node]) -> list[Node]:
    """``xs - ys`` in two's complement over ``len(xs)`` bits.

    Callers guarantee ``xs >= ys`` (the encoders only subtract
    non-negative deficits from values they bound), so the dropped
    borrow is provably one.
    """
    from .bitvec import bus_zero_extend

    width = len(xs)
    ys = bus_zero_extend(builder, ys, width)
    inverted = [builder.not_(y) for y in ys]
    return add(builder, xs, inverted, cin=builder.true)[:width]


def _encode_scaletrim(
    design: str, n: int, t: int, c: int, lut: np.ndarray
) -> Encoding:
    """scaleTRIM: scaled-fraction linearized product + compensation LUT.

    Mirrors the NumPy model: the scaled fraction is the top ``t`` bits
    of the left-aligned log fraction, the fraction-sum carry gates the
    linearization overflow term, and the compensation constants sit
    behind a ``2c``-bit hardwired select — the same mantissa
    ``2^2t + (S << t) + carry * (S mod 2^t) * 2^t + LB`` on the
    ``2^-2t`` grid, scaled out by a ``ka + kb`` barrel shift.
    """
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)
    ka, xa, nza = _log_front(builder, a)
    kb, xb, nzb = _log_front(builder, b)
    xs_a = xa[n - 1 - t :]
    xs_b = xb[n - 1 - t :]

    fsum = add(builder, xs_a, xs_b)  # t + 1 bits: S = xs_a + xs_b
    carry = fsum[t]
    overflow = [builder.and_(fsum[i], carry) for i in range(t)]
    head = add(builder, fsum, overflow)  # S + max(0, S - 2^t)
    head = add(builder, head, [builder.false] * t + [builder.true])  # + 2^t

    mantissa = [builder.false] * t + head[: t + 2]
    lb_width = max(int(v) for v in lut).bit_length()
    if lb_width:
        select = xs_b[t - c :] + xs_a[t - c :]
        comp = const_select(builder, select, [int(v) for v in lut], lb_width)
        mantissa = add(builder, mantissa, comp)

    shift = add(builder, ka, kb)  # <= 2 (n - 1), never negative
    shifted = shift_left_var(builder, mantissa, shift, 2 * (n - 1))
    product = shifted[2 * t : 2 * t + 2 * n + 1]
    product = _mask_zero(builder, product, builder.and_(nza, nzb))
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


def _encode_dnnco(design: str, n: int, l: int) -> Encoding:
    """DNNCO: exact product minus the OR-column deficits.

    The deficit ``sum_{j<l} 2^j (colsum_j - or_j)`` is assembled from
    the low-triangle partial products directly (column bit counts as a
    weighted accumulation, column ORs as a bus), then subtracted from
    the exact shift-add product — exactly the model's arithmetic, and
    naturally zero-safe (a zero operand zeroes every term).
    """
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)
    full = mul(builder, a, b)

    deficit_width = l + 4  # sum_j (j+1) 2^j < l * 2^l <= 2^(l+3)
    colsum = [builder.false] * deficit_width
    orsum: list[Node] = []
    for j in range(min(l, 2 * n - 1)):
        pps = [
            builder.and_(a[i], b[j - i])
            for i in range(max(0, j - n + 1), min(j + 1, n))
        ]
        orsum.append(builder.or_many(pps))
        for pp in pps:
            colsum = add(builder, colsum, [builder.false] * j + [pp])[
                :deficit_width
            ]
    deficit = _sub(builder, colsum, orsum)
    product = _sub(builder, full, deficit)
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


def _encode_accurate(design: str, n: int) -> Encoding:
    builder = Builder()
    a = builder.input_bus("a", n)
    b = builder.input_bus("b", n)
    product = mul(builder, a, b)
    return Encoding(design, n, "model", "symbolic", builder, a, b, product)


# ----------------------------------------------------------------------
# exhaustive truth-table lowering (narrow widths)
# ----------------------------------------------------------------------

def encode_table(
    table: np.ndarray, bitwidth: int, design: str = "?", source: str = "model"
) -> Encoding:
    """Lower an exhaustive product table (``table[(a << N) | b]``) exactly.

    Per output bit a reduced ordered decision diagram is built bottom-up
    over an *interleaved* variable order (``b0, a0, b1, a1, ...`` — the
    order that keeps multiplier BDDs smallest), with ``np.unique``
    interning each level so only distinct cofactor pairs become MUX
    nodes; the global builder cache then shares structure across output
    bits.  Exact for any function, and the only encoding available for
    the irregular array families — but the table has ``4**N`` entries,
    so this route is gated to ``N <= FULL_TABLE_MAX_BITWIDTH``.
    """
    from ..kernels.tables import FULL_TABLE_MAX_BITWIDTH

    if bitwidth > FULL_TABLE_MAX_BITWIDTH:
        raise UnsupportedDesignError(
            f"truth-table encoding needs N <= {FULL_TABLE_MAX_BITWIDTH}, "
            f"got {bitwidth}"
        )
    table = np.asarray(table, dtype=np.int64)
    if table.size != 1 << (2 * bitwidth):
        raise ValueError(
            f"table has {table.size} entries; expected {1 << (2 * bitwidth)}"
        )
    builder = Builder()
    a = builder.input_bus("a", bitwidth)
    b = builder.input_bus("b", bitwidth)

    # permute to the interleaved index: bit 2i = b_i, bit 2i+1 = a_i
    index = np.arange(table.size, dtype=np.int64)
    a_val = np.zeros_like(index)
    b_val = np.zeros_like(index)
    for i in range(bitwidth):
        b_val |= ((index >> (2 * i)) & 1) << i
        a_val |= ((index >> (2 * i + 1)) & 1) << i
    reordered = table[(a_val << bitwidth) | b_val]
    select = [node for pair in zip(b, a) for node in pair]

    out_width = max(int(table.max()).bit_length(), 1)
    outputs = []
    for bit in range(out_width):
        layer = ((reordered >> bit) & np.int64(1)).astype(np.int64)
        nodes = [builder.false, builder.true]
        for var in select:
            lo, hi = layer[0::2], layer[1::2]
            keys = lo * np.int64(len(nodes)) + hi
            unique, layer = np.unique(keys, return_inverse=True)
            nodes = [
                builder.mux(
                    nodes[int(key) // len(nodes)],
                    nodes[int(key) % len(nodes)],
                    var,
                )
                for key in unique
            ]
        outputs.append(nodes[int(layer[0])])
    return Encoding(
        design, bitwidth, source, "truth-table", builder, a, b, outputs
    )


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

def encode_model(model, design: str = "?") -> Encoding:
    """Symbolically encode a functional model's datapath.

    Falls back to the exhaustive truth table for families without a
    symbolic encoder when the width allows; raises
    :class:`UnsupportedDesignError` otherwise.
    """
    tele = telemetry.get()
    family = model.family
    n = model.bitwidth
    with tele.span("formal.encode", design=design, source="model", family=family):
        if family == "REALM":
            cfg = model.config
            return _encode_log_corrected(
                design, n, cfg.t, cfg.q, model.lut_codes,
                saturate=model.overflow == "saturate",
            )
        if family == "MBM":
            codes = np.array([[model.correction_code]], dtype=np.int64)
            return _encode_log_corrected(
                design, n, model.t, model.q, codes, saturate=False
            )
        if family == "cALM":
            return _encode_log_add(design, n, None, 0)
        if family in ("ALM-LOA", "ALM-SOA", "ALM-MAA"):
            return _encode_log_add(design, n, model.adder, model.m)
        if family == "DRUM":
            return _encode_drum(design, n, model.k)
        if family == "SSM":
            return _encode_segment(design, n, [(model.m, n - model.m)])
        if family == "ESSM":
            high = n - model.m
            mid = high // 2
            return _encode_segment(
                design, n, [(model.m + mid, high), (model.m, mid)]
            )
        if family == "scaleTRIM":
            return _encode_scaletrim(design, n, model.t, model.c, model.lut)
        if family == "DNNCO":
            return _encode_dnnco(design, n, model.l)
        if family == "Accurate":
            return _encode_accurate(design, n)
        from ..kernels.tables import FULL_TABLE_MAX_BITWIDTH, build_full_table

        if n <= FULL_TABLE_MAX_BITWIDTH:
            return encode_table(
                build_full_table(model), n, design, source="model"
            )
        raise UnsupportedDesignError(
            f"family {family!r} has no symbolic encoder and {n}-bit operands "
            f"exceed the truth-table limit ({FULL_TABLE_MAX_BITWIDTH})"
        )


def encode_kernel(model, design: str = "?") -> Encoding:
    """Encode the *compiled kernel* exactly from its full product table.

    The kernels are NumPy closures, not circuits, so the only exact
    lowering enumerates them; gated to narrow widths like
    ``compile_full_table``.  At wider operands the kernel leg of an
    equivalence claim is validated by structured sampling instead
    (:mod:`repro.formal.equiv`).
    """
    from ..kernels import kernel_for
    from ..kernels.tables import FULL_TABLE_MAX_BITWIDTH

    n = model.bitwidth
    if n > FULL_TABLE_MAX_BITWIDTH:
        raise UnsupportedDesignError(
            f"kernel encoding enumerates the product table; needs "
            f"N <= {FULL_TABLE_MAX_BITWIDTH}, got {n}"
        )
    tele = telemetry.get()
    with tele.span("formal.encode", design=design, source="kernel", bitwidth=n):
        kernel = kernel_for(model)
        space = np.arange(np.int64(1) << n, dtype=np.int64)
        table = kernel(np.repeat(space, space.size), np.tile(space, space.size))
        return encode_table(table, n, design, source="kernel")
