"""Bounded reduced ordered BDDs — the pure-python proof engine.

A :class:`Bdd` manager holds the shared unique table for one variable
ordering.  DAGs from :mod:`repro.formal.bitvec` are translated node by
node (:meth:`Bdd.from_dag`); because two encodings of the same design
share input variable *labels*, translating both into one manager
canonicalizes them over the same ordering — two functions are equal iff
their root ids are equal, and a counterexample to equality is one
descent of the XOR diagram.

The manager is **bounded**: constructions that would exceed the node
budget raise :class:`BudgetExceeded`, which the backend ladder converts
into an honest ``unknown`` (falling through to exhaustive sweeps or
SMT) rather than an unbounded memory walk.  The default variable order
interleaves the operand bits (``b0 < a0 < b1 < a1 < ...``), the order
under which log/segment datapath diagrams stay polynomial; the exact
multiplier core is exponential under *every* order (Bryant 1986), which
is precisely why the ladder exists.
"""

from __future__ import annotations

from .bitvec import Builder, Node

__all__ = ["Bdd", "BudgetExceeded", "interleaved_order"]

FALSE = 0
TRUE = 1


class BudgetExceeded(RuntimeError):
    """The node budget was hit; the result so far is meaningless."""


def interleaved_order(labels) -> dict[str, int]:
    """Variable order interleaving the ``a``/``b`` buses by bit index.

    ``b[i]`` sits immediately below ``a[i]``; unknown label shapes sort
    after the operand bits, in name order.
    """

    def key(label: str):
        prefix, _, index = label.rpartition("[")
        if prefix in ("a", "b") and index.endswith("]"):
            return (0, int(index[:-1]), 0 if prefix == "b" else 1, label)
        return (1, 0, 0, label)

    return {label: level for level, label in enumerate(sorted(set(labels), key=key))}


class Bdd:
    """A shared-table ROBDD manager with an ``ite``-based operator set."""

    def __init__(self, order: dict[str, int], budget: int = 2_000_000):
        if len(set(order.values())) != len(order):
            raise ValueError("variable order must be a bijection onto levels")
        self.order = dict(order)
        self.budget = budget
        #: node id -> (level, lo, hi); terminals carry an off-scale level
        self._level = [1 << 60, 1 << 60]
        self._lo = [FALSE, TRUE]
        self._hi = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    def __len__(self) -> int:
        return len(self._level)

    def var(self, label: str) -> int:
        try:
            level = self.order[label]
        except KeyError:
            raise KeyError(f"variable {label!r} not in the ordering") from None
        return self._mk(level, FALSE, TRUE)

    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            if len(self._level) >= self.budget:
                raise BudgetExceeded(
                    f"BDD exceeded {self.budget} nodes at level {level}"
                )
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def _cofactors(self, f: int, level: int) -> tuple[int, int]:
        if self._level[f] == level:
            return self._lo[f], self._hi[f]
        return f, f

    def ite(self, f: int, g: int, h: int) -> int:
        """``f ? g : h`` — the one recursive operator everything uses."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        out = self._ite_cache.get(key)
        if out is None:
            level = min(self._level[f], self._level[g], self._level[h])
            f0, f1 = self._cofactors(f, level)
            g0, g1 = self._cofactors(g, level)
            h0, h1 = self._cofactors(h, level)
            out = self._mk(
                level, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
            )
            self._ite_cache[key] = out
        return out

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.ite(g, FALSE, TRUE), g)

    def from_dag(self, builder: Builder, roots: list[Node]) -> list[int]:
        """Translate DAG roots into this manager (shared subgraphs once)."""
        needed: set[int] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node.id in needed:
                continue
            needed.add(node.id)
            stack.extend(node.args)
        values: dict[int, int] = {}
        for node in builder.nodes:  # construction order is topological
            if node.id not in needed:
                continue
            op = node.op
            if op == "const0":
                values[node.id] = FALSE
            elif op == "const1":
                values[node.id] = TRUE
            elif op == "var":
                values[node.id] = self.var(node.label)
            elif op == "not":
                values[node.id] = self.not_(values[node.args[0].id])
            elif op == "and":
                values[node.id] = self.and_(
                    values[node.args[0].id], values[node.args[1].id]
                )
            elif op == "or":
                values[node.id] = self.or_(
                    values[node.args[0].id], values[node.args[1].id]
                )
            elif op == "xor":
                values[node.id] = self.xor(
                    values[node.args[0].id], values[node.args[1].id]
                )
            else:  # mux: sel ? d1 : d0
                d0, d1, sel = (values[arg.id] for arg in node.args)
                values[node.id] = self.ite(sel, d1, d0)
        return [values[root.id] for root in roots]

    def satisfying_assignment(self, f: int) -> dict[str, int] | None:
        """One satisfying assignment of ``f`` (unmentioned vars are free).

        Returns ``{label: 0/1}`` for the variables on the chosen path, or
        ``None`` when ``f`` is unsatisfiable.
        """
        if f == FALSE:
            return None
        by_level = {level: label for label, level in self.order.items()}
        assignment: dict[str, int] = {}
        while f != TRUE:
            label = by_level[self._level[f]]
            if self._lo[f] != FALSE:
                assignment[label] = 0
                f = self._lo[f]
            else:
                assignment[label] = 1
                f = self._hi[f]
        return assignment
