"""The solver ladder: optional SMT on top, pure python underneath.

Equivalence queries run through one of three interchangeable backends:

* :class:`Z3Backend` — lowers both DAGs into z3 and checks the miter.
  **Strictly optional**: z3 is imported lazily and its absence only
  removes this rung; nothing in tier-1 touches it.
* :class:`BddBackend` — canonicalizes both DAGs in one bounded ROBDD
  manager (:mod:`repro.formal.bdd`).  Complete while the diagrams fit
  the node budget; answers ``unknown`` (never wrong) when they don't —
  which the exact-multiplier cores of the product-form families always
  will, BDDs of multiplication being exponential in every order.
* :class:`ExhaustiveBackend` — bit-parallel sweep of the full
  ``2**(2N)`` pair grid through both compiled evaluators.  Complete and
  fast for narrow operands, gated by ``max_bitwidth``.

``check_equal(f, g)`` returns ``(status, witness)`` with status
``"proved"`` / ``"refuted"`` / ``"unknown"``; a witness is the concrete
``(a, b)`` pair on which the encodings disagree.  Buses of different
widths compare as unsigned integers (zero-extended).
"""

from __future__ import annotations

import numpy as np

from ..analysis import telemetry
from .bdd import Bdd, BudgetExceeded, interleaved_order
from .encode import Encoding

__all__ = [
    "BddBackend",
    "ExhaustiveBackend",
    "Z3Backend",
    "available_backends",
    "default_ladder",
    "import_z3",
    "resolve_backend",
    "z3_available",
]


def import_z3():
    """The z3 module, or ``None`` when not installed (never raises)."""
    try:
        import z3  # type: ignore
    except ImportError:
        return None
    return z3


def z3_available() -> bool:
    return import_z3() is not None


class ExhaustiveBackend:
    """Complete equivalence by sweeping every operand pair.

    ``chunk`` bounds the pairs evaluated per batch so the uint64 lane
    matrices stay cache-sized; ``max_bitwidth`` bounds the total
    ``4**N`` sweep (N=12 is ~17M pairs, a few seconds of NumPy).
    """

    name = "exhaustive"

    def __init__(self, max_bitwidth: int = 12, chunk: int = 1 << 18):
        self.max_bitwidth = max_bitwidth
        self.chunk = chunk

    def check_equal(self, f: Encoding, g: Encoding):
        n = f.bitwidth
        if n != g.bitwidth:
            raise ValueError("encodings disagree on bitwidth")
        if n > self.max_bitwidth:
            return "unknown", None
        tele = telemetry.get()
        with tele.span(
            "formal.solve", backend=self.name, design=f.design, bitwidth=n
        ):
            space = np.arange(np.int64(1) << n, dtype=np.int64)
            rows = max(self.chunk >> n, 1)
            for start in range(0, space.size, rows):
                a_block = space[start : start + rows]
                a = np.repeat(a_block, space.size)
                b = np.tile(space, a_block.size)
                fv = f.eval_pairs(a, b)
                gv = g.eval_pairs(a, b)
                diff = np.nonzero(fv != gv)[0]
                if diff.size:
                    i = int(diff[0])
                    return "refuted", (int(a[i]), int(b[i]))
            return "proved", None


class BddBackend:
    """Canonical equivalence through a bounded shared ROBDD manager."""

    name = "bdd"

    def __init__(self, budget: int = 2_000_000):
        self.budget = budget

    def check_equal(self, f: Encoding, g: Encoding):
        tele = telemetry.get()
        labels = [node.label for node in f.builder.nodes if node.op == "var"]
        labels += [node.label for node in g.builder.nodes if node.op == "var"]
        manager = Bdd(interleaved_order(labels), budget=self.budget)
        with tele.span(
            "formal.solve", backend=self.name, design=f.design,
            bitwidth=f.bitwidth,
        ):
            try:
                f_bits = manager.from_dag(f.builder, f.outputs)
                g_bits = manager.from_dag(g.builder, g.outputs)
                width = max(len(f_bits), len(g_bits))
                f_bits += [0] * (width - len(f_bits))
                g_bits += [0] * (width - len(g_bits))
                miter = 0
                for fb, gb in zip(f_bits, g_bits):
                    miter = manager.or_(miter, manager.xor(fb, gb))
            except BudgetExceeded as exc:
                tele.counter("formal.bdd_budget_exceeded")
                return "unknown", str(exc)
            if miter == 0:
                return "proved", None
            assignment = manager.satisfying_assignment(miter)
            return "refuted", _assignment_to_pair(assignment, f.bitwidth)


class Z3Backend:
    """Miter check through z3's bit-blasted SAT core (when installed)."""

    name = "z3"

    def __init__(self, timeout_ms: int | None = None):
        self.timeout_ms = timeout_ms

    def check_equal(self, f: Encoding, g: Encoding):
        z3 = import_z3()
        if z3 is None:
            return "unknown", "z3 is not installed"
        tele = telemetry.get()
        with tele.span(
            "formal.solve", backend=self.name, design=f.design,
            bitwidth=f.bitwidth,
        ):
            variables: dict[str, object] = {}
            f_bits = _to_z3(z3, f, variables)
            g_bits = _to_z3(z3, g, variables)
            width = max(len(f_bits), len(g_bits))
            false = z3.BoolVal(False)
            f_bits += [false] * (width - len(f_bits))
            g_bits += [false] * (width - len(g_bits))
            solver = z3.Solver()
            if self.timeout_ms is not None:
                solver.set("timeout", self.timeout_ms)
            solver.add(
                z3.Or([z3.Xor(fb, gb) for fb, gb in zip(f_bits, g_bits)])
            )
            status = solver.check()
            if status == z3.unsat:
                return "proved", None
            if status == z3.sat:
                model = solver.model()
                assignment = {
                    label: int(
                        bool(model.eval(var, model_completion=True))
                    )
                    for label, var in variables.items()
                }
                return "refuted", _assignment_to_pair(assignment, f.bitwidth)
            return "unknown", f"z3 returned {status!r}"


def _to_z3(z3, encoding: Encoding, variables: dict):
    """Lower an encoding's output cone to z3 booleans; shared var map."""
    roots = encoding.outputs
    needed: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.id in needed:
            continue
        needed.add(node.id)
        stack.extend(node.args)
    values: dict[int, object] = {}
    for node in encoding.builder.nodes:
        if node.id not in needed:
            continue
        op = node.op
        if op == "const0":
            values[node.id] = z3.BoolVal(False)
        elif op == "const1":
            values[node.id] = z3.BoolVal(True)
        elif op == "var":
            if node.label not in variables:
                variables[node.label] = z3.Bool(node.label)
            values[node.id] = variables[node.label]
        elif op == "not":
            values[node.id] = z3.Not(values[node.args[0].id])
        elif op == "and":
            values[node.id] = z3.And(
                values[node.args[0].id], values[node.args[1].id]
            )
        elif op == "or":
            values[node.id] = z3.Or(
                values[node.args[0].id], values[node.args[1].id]
            )
        elif op == "xor":
            values[node.id] = z3.Xor(
                values[node.args[0].id], values[node.args[1].id]
            )
        else:  # mux
            d0, d1, sel = (values[arg.id] for arg in node.args)
            values[node.id] = z3.If(sel, d1, d0)
    return [values[root.id] for root in roots]


def _assignment_to_pair(assignment: dict[str, int], bitwidth: int):
    """Rebuild the concrete ``(a, b)`` witness; unassigned bits are 0."""
    a = b = 0
    for label, bit in (assignment or {}).items():
        if not bit:
            continue
        prefix, _, index = label.rpartition("[")
        if prefix == "a":
            a |= 1 << int(index[:-1])
        elif prefix == "b":
            b |= 1 << int(index[:-1])
    return a, b


def available_backends() -> list[str]:
    """Backend names usable right now, strongest first."""
    names = []
    if z3_available():
        names.append("z3")
    names.extend(["bdd", "exhaustive"])
    return names


def resolve_backend(name: str):
    """One backend instance by name (``z3``/``bdd``/``exhaustive``)."""
    if name == "z3":
        return Z3Backend()
    if name == "bdd":
        return BddBackend()
    if name == "exhaustive":
        return ExhaustiveBackend()
    raise ValueError(
        f"unknown backend {name!r}; choose from z3, bdd, exhaustive"
    )


def default_ladder(bitwidth: int) -> list:
    """The fallback order a proof attempt walks through.

    Narrow designs try the exhaustive sweep first (complete, fast, no
    diagram blowup risk); wide designs need a symbolic backend and only
    fall back to exhaustion when it still applies.
    """
    symbolic = [Z3Backend()] if z3_available() else []
    symbolic.append(BddBackend())
    if bitwidth <= 8:
        return [ExhaustiveBackend(), *symbolic]
    return [*symbolic, ExhaustiveBackend()]
