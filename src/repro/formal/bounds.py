"""Exact worst-case relative-error certificates.

:func:`certify_worst_error` answers, for one design, the question the
Monte-Carlo characterization can only sample: *what is the exact
extreme of the signed relative error ``(P̂ - ab) / ab`` over every
nonzero operand pair?*  Three routes, picked by width and availability:

* **formula sweep** — at narrow widths the encoded formula is evaluated
  over the complete pair grid in bit-parallel chunks; the extreme is
  located in float64 and then re-resolved *exactly* among the near-tied
  candidates with rational arithmetic, so the certified error and its
  canonical (lexicographically smallest) witness are bit-identical to
  brute force by construction.
* **SMT ascent** — with z3 installed, a witness-guided climb: ask the
  solver for any pair whose error strictly beats the best concrete
  error seen, replace the best with the witness's exact error, repeat;
  the final UNSAT is a machine-checked proof that no pair does better,
  i.e. the best is the global extreme.  Terminates because every
  iteration strictly improves a value drawn from a finite set.
* **interval branch-and-bound** — pure python for wide operands: the
  operand space is split into boxes on which the datapath's interval
  enclosure is sound (log families: fixed characteristic per box makes
  truncated fraction and segment index monotone; product-form
  families: range extrema of the per-operand approximation table), and
  boxes whose enclosure cannot beat the best concrete error are pruned.
  If the queue drains, the result is exact; if the box budget trips
  first, the certificate degrades honestly to a *sound bound* with
  ``exact=False``.

Every certificate is **replayed**: the witness pair is pushed through
the concrete model and the recomputed error must match (equal for exact
certificates, within the bound otherwise).  A failed replay marks the
certificate refuted — that is the formal layer catching its own encoder
drift, and the CLI turns it into exit code 2.
"""

from __future__ import annotations

import dataclasses
import heapq
from fractions import Fraction

import numpy as np

from ..analysis import telemetry
from .backends import import_z3
from .encode import Encoding, UnsupportedDesignError, encode_model

__all__ = [
    "ErrorCertificate",
    "WorstCaseBounds",
    "certify_worst_error",
]

#: families the interval branch-and-bound engine can box soundly
_INTERVAL_LOG_FAMILIES = frozenset({"REALM", "MBM", "cALM"})
_INTERVAL_PRODUCT_FAMILIES = frozenset({"DRUM", "SSM", "ESSM", "Accurate"})


@dataclasses.dataclass(frozen=True)
class ErrorCertificate:
    """One certified error extreme: bound, witness, and its provenance.

    ``error_num / error_den`` is the certified bound (the exact extreme
    when ``exact``, a sound outer bound otherwise); the witness
    ``(a, b)`` achieves ``witness_num / witness_den``, which equals the
    bound exactly when ``exact``.  ``replayed`` records that the
    concrete model reproduced the witness error on replay.
    """

    direction: str  # "min" | "max"
    a: int
    b: int
    error_num: int
    error_den: int
    witness_num: int
    witness_den: int
    exact: bool
    replayed: bool

    @property
    def error(self) -> float:
        return self.error_num / self.error_den

    @property
    def error_percent(self) -> float:
        return 100.0 * self.error_num / self.error_den

    def as_fraction(self) -> Fraction:
        return Fraction(self.error_num, self.error_den)

    def to_payload(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class WorstCaseBounds:
    """Both certified peaks for one design at one bitwidth."""

    design: str
    bitwidth: int
    method: str  # "formula-sweep" | "smt-ascent" | "interval-bb"
    peak_min: ErrorCertificate
    peak_max: ErrorCertificate

    @property
    def exact(self) -> bool:
        return self.peak_min.exact and self.peak_max.exact

    @property
    def replayed(self) -> bool:
        return self.peak_min.replayed and self.peak_max.replayed

    def peak_certified(self) -> tuple[float, float]:
        """The ``ErrorMetrics.peak_certified`` payload, in percent."""
        return (self.peak_min.error_percent, self.peak_max.error_percent)

    def to_payload(self) -> dict:
        return {
            "design": self.design,
            "bitwidth": self.bitwidth,
            "kind": "worst-case-error",
            "method": self.method,
            "exact": self.exact,
            "replayed": self.replayed,
            "peak_min": self.peak_min.to_payload(),
            "peak_max": self.peak_max.to_payload(),
        }


def _replay(model, a: int, b: int, claimed: Fraction) -> bool:
    """Self-check: the concrete model must reproduce the witness error."""
    product = int(model.multiply(a, b))
    return a > 0 and b > 0 and Fraction(product - a * b, a * b) == claimed


def _certificate(
    model, direction: str, a: int, b: int, bound: Fraction, exact: bool
) -> ErrorCertificate:
    witness = Fraction(int(model.multiply(a, b)) - a * b, a * b)
    if exact:
        bound = witness if bound is None else bound
    return ErrorCertificate(
        direction=direction,
        a=a,
        b=b,
        error_num=bound.numerator,
        error_den=bound.denominator,
        witness_num=witness.numerator,
        witness_den=witness.denominator,
        exact=exact,
        replayed=_replay(model, a, b, witness)
        and (not exact or bound == witness),
    )


# ----------------------------------------------------------------------
# route 1: exhaustive formula sweep (exact, narrow widths)
# ----------------------------------------------------------------------

def _sweep(model, encoding: Encoding, chunk_rows: int = 64):
    """Exact extremes of the encoded formula over the full pair grid.

    Floats preselect candidates; rationals decide.  Witnesses are
    canonical: the lexicographically smallest ``(a, b)`` among exact
    ties, i.e. the first hit of a row-major brute-force scan.
    """
    n = encoding.bitwidth
    space = np.arange(np.int64(1) << n, dtype=np.int64)
    best: dict[str, tuple[Fraction, int, int]] = {}
    for start in range(1, space.size, chunk_rows):  # a = 0 has no valid pairs
        a_block = space[start : start + chunk_rows]
        a = np.repeat(a_block, space.size - 1)
        b = np.tile(space[1:], a_block.size)
        approx = encoding.eval_pairs(a, b)
        exact_products = a * b
        errors = (approx - exact_products) / exact_products
        for direction, pick in (("min", np.argmin), ("max", np.argmax)):
            extreme = float(errors[pick(errors)])
            tolerance = 1e-9 * max(1.0, abs(extreme))
            if direction == "max":
                candidates = np.nonzero(errors >= extreme - tolerance)[0]
            else:
                candidates = np.nonzero(errors <= extreme + tolerance)[0]
            for i in candidates:
                value = Fraction(
                    int(approx[i]) - int(exact_products[i]),
                    int(exact_products[i]),
                )
                key = (int(a[i]), int(b[i]))
                incumbent = best.get(direction)
                better = (
                    incumbent is None
                    or (value > incumbent[0] if direction == "max" else value < incumbent[0])
                    or (value == incumbent[0] and key < incumbent[1:])
                )
                if better:
                    best[direction] = (value, *key)
    return best["min"], best["max"]


# ----------------------------------------------------------------------
# route 2: SMT witness-guided ascent (exact, needs z3)
# ----------------------------------------------------------------------

def _smt_ascent(model, encoding: Encoding, direction: str, timeout_ms: int | None):
    """Climb to the exact extreme with z3; final UNSAT is the proof."""
    z3 = import_z3()
    assert z3 is not None
    from .backends import _to_z3

    variables: dict[str, object] = {}
    bits = _to_z3(z3, encoding, variables)
    n = encoding.bitwidth

    def bus_int(prefix: str):
        return z3.Sum(
            [
                z3.If(variables[f"{prefix}[{i}]"], 1 << i, 0)
                for i in range(n)
                if f"{prefix}[{i}]" in variables
            ]
        )

    a_int, b_int = bus_int("a"), bus_int("b")
    p_int = z3.Sum([z3.If(bit, 1 << i, 0) for i, bit in enumerate(bits)])
    product = a_int * b_int

    # seed with structured concrete samples so the climb starts close
    from .equiv import sample_operands

    sa, sb = sample_operands(n, 2048, seed=0)
    valid = (sa > 0) & (sb > 0)
    sa, sb = sa[valid], sb[valid]
    approx = encoding.eval_pairs(sa, sb)
    err_f = (approx - sa * sb) / (sa * sb)
    i = int(np.argmax(err_f) if direction == "max" else np.argmin(err_f))
    best_pair = (int(sa[i]), int(sb[i]))
    best = Fraction(int(approx[i]) - best_pair[0] * best_pair[1],
                    best_pair[0] * best_pair[1])

    while True:
        solver = z3.Solver()
        if timeout_ms is not None:
            solver.set("timeout", timeout_ms)
        solver.add(a_int > 0, b_int > 0)
        # strict improvement over the incumbent: (P - ab) / ab > best
        gap = (p_int - product) * best.denominator
        threshold = product * best.numerator
        solver.add(gap > threshold if direction == "max" else gap < threshold)
        status = solver.check()
        if status == z3.unsat:
            return best, best_pair, True
        if status != z3.sat:
            return best, best_pair, False  # timeout: best is only a lower bound
        m = solver.model()
        a_val = b_val = 0
        for label, var in variables.items():
            if bool(m.eval(var, model_completion=True)):
                prefix, _, index = label.rpartition("[")
                if prefix == "a":
                    a_val |= 1 << int(index[:-1])
                elif prefix == "b":
                    b_val |= 1 << int(index[:-1])
        approx_val = int(encoding.eval_pairs(a_val, b_val)[0])
        best = Fraction(approx_val - a_val * b_val, a_val * b_val)
        best_pair = (a_val, b_val)


# ----------------------------------------------------------------------
# route 3: interval branch-and-bound (pure python, wide operands)
# ----------------------------------------------------------------------

def _shift_floor(value: int, shift: int) -> int:
    return value << shift if shift >= 0 else value >> -shift


class _LogBoxEngine:
    """Interval enclosures for the REALM/MBM/cALM datapath skeleton.

    Boxes live inside a fixed characteristic pair ``(ka, kb)``, where
    the truncated fraction ``u = xt(v)`` and segment index are monotone
    in the operand value.  The enclosure exploits the shape of

        err + 1  =  (base_c + s + u_a + u_b) * 2^E
                    / ((2^raw + x_a) (2^raw + x_b))

    per carry branch: with the LUT term pinned to its extreme over the
    segment rectangle and each denominator bounded by the truncation
    bucket of ``u``, the expression is a two-variable fractional form
    whose per-axis derivative has constant sign — so its extreme over a
    box is attained at one of the four ``(u_a, u_b)`` corners.  That
    makes the enclosure *exact* on the corners for cALM (no truncation,
    no LUT) and tight to the bucket/LUT granularity for REALM/MBM,
    which is what lets boxes along the zero-error power-of-two edges
    prune instead of splintering into singletons.
    """

    def __init__(self, model):
        from ..core.bitops import floor_log2, log_fraction, truncate_fraction

        family = model.family
        n = model.bitwidth
        raw = n - 1
        v = np.arange(np.int64(1) << n, dtype=np.int64)
        safe = np.where(v > 0, v, 1)
        self.k = floor_log2(safe)
        x = log_fraction(safe, self.k, n)
        self.raw = raw
        if family == "REALM":
            cfg = model.config
            if model.overflow == "saturate":
                raise UnsupportedDesignError(
                    "interval engine models the extend overflow mode only"
                )
            from ..core.factors import segment_index

            self.t = cfg.t
            self.forced = True  # truncation ORs a 1 into the kept LSB
            self.width = cfg.fraction_width
            self.xt = truncate_fraction(x, cfg.t, raw)
            self.seg = segment_index(x, raw, cfg.m)
            codes = model.lut_codes
        elif family == "MBM":
            self.t = model.t
            self.forced = True
            self.width = raw - model.t
            self.xt = truncate_fraction(x, model.t, raw)
            self.seg = np.zeros_like(v)
            codes = np.array([[model.correction_code]], dtype=np.int64)
        else:  # cALM: untruncated fraction, no correction
            self.t = 0
            self.forced = False
            self.width = raw
            self.xt = x
            self.seg = np.zeros_like(v)
            codes = np.zeros((1, 1), dtype=np.int64)
        q = model.config.q if family == "REALM" else getattr(model, "q", 0)
        self.s_full = np.array(
            [[_shift_floor(int(c), self.width - q) for c in row] for row in codes],
            dtype=np.int64,
        )
        self.s_half = np.array(
            [[_shift_floor(int(c), self.width - q - 1) for c in row] for row in codes],
            dtype=np.int64,
        )

    def initial_boxes(self, bitwidth: int):
        for ka in range(bitwidth):
            for kb in range(bitwidth):
                yield (
                    1 << ka,
                    min((1 << (ka + 1)) - 1, (1 << bitwidth) - 1),
                    1 << kb,
                    min((1 << (kb + 1)) - 1, (1 << bitwidth) - 1),
                )

    def _bucket(self, u: int) -> tuple[int, int]:
        """The raw-fraction interval consistent with truncated value ``u``."""
        if not self.forced:
            return u, u
        lo = max((u - 1) << self.t, 0)
        hi = min(((u + 1) << self.t) - 1, (1 << self.raw) - 1)
        return lo, hi

    def enclosure(self, a_lo, a_hi, b_lo, b_hi) -> tuple[Fraction, Fraction]:
        """Sound bounds on the relative error over the box."""
        width, raw = self.width, self.raw
        one = 1 << width
        big = 1 << raw
        ka, kb = int(self.k[a_lo]), int(self.k[b_lo])
        ua = (int(self.xt[a_lo]), int(self.xt[a_hi]))
        ub = (int(self.xt[b_lo]), int(self.xt[b_hi]))
        sa_lo, sa_hi = int(self.seg[a_lo]), int(self.seg[a_hi])
        sb_lo, sb_hi = int(self.seg[b_lo]), int(self.seg[b_hi])
        err_hi = err_lo = None
        for carry in (0, 1):
            if carry == 0 and ua[0] + ub[0] > one - 1:
                continue  # every fraction sum in the box carries out
            if carry == 1 and ua[1] + ub[1] < one:
                continue  # no fraction sum in the box can carry out
            lut = (self.s_half if carry else self.s_full)[
                sa_lo : sa_hi + 1, sb_lo : sb_hi + 1
            ]
            s_min, s_max = int(lut.min()), int(lut.max())
            base = 0 if carry else one
            exponent = 2 * raw + carry - width  # always >= 0
            corner_hi = corner_lo = None
            for corner_a in ua:
                da_min = big + self._bucket(corner_a)[0]
                da_max = big + self._bucket(corner_a)[1]
                for corner_b in ub:
                    db_min = big + self._bucket(corner_b)[0]
                    db_max = big + self._bucket(corner_b)[1]
                    shared = corner_a + corner_b + base
                    hi = Fraction((shared + s_max) << exponent, da_min * db_min)
                    lo = Fraction((shared + s_min) << exponent, da_max * db_max)
                    corner_hi = hi if corner_hi is None else max(corner_hi, hi)
                    corner_lo = lo if corner_lo is None else min(corner_lo, lo)
            # the corner bound ignores the carry band; a decoupled bound
            # that clamps the fraction sum to the band is also sound, and
            # tighter on boxes straddling the carry boundary — keep the
            # intersection of the two
            fs_hi = min(ua[1] + ub[1], one - 1 + (carry << width))
            fs_lo = max(ua[0] + ub[0], carry << width)
            band_hi = Fraction(
                (base + fs_hi + s_max) << exponent,
                (big + self._bucket(ua[0])[0]) * (big + self._bucket(ub[0])[0]),
            )
            band_lo = Fraction(
                (base + fs_lo + s_min) << exponent,
                (big + self._bucket(ua[1])[1]) * (big + self._bucket(ub[1])[1]),
            )
            hi = min(corner_hi, band_hi)
            lo = max(corner_lo, band_lo)
            err_hi = hi if err_hi is None else max(err_hi, hi)
            err_lo = lo if err_lo is None else min(err_lo, lo)
        assert err_hi is not None, "no feasible carry branch in a nonempty box"
        err_hi = err_hi - 1
        err_lo = err_lo - 1
        if ka + kb < width:
            # final right shift floors; it can lose at most 1 ulp of product
            err_lo -= Fraction(1, a_lo * b_lo)
        return err_lo, err_hi


def _product_form_extremes(model):
    """Exact extremes for ``approx(a) * approx(b)`` designs, closed form.

    The error factors per operand: ``err + 1 = r(a) * r(b)`` with
    ``r(v) = approx(v) / v > 0``, so the extremes over the full pair
    grid are exactly ``max(r)^2 - 1`` and ``min(r)^2 - 1``, attained at
    the (smallest) per-operand ratio extremizers — no search needed at
    any bitwidth.  Floats preselect the extremizers; exact rational
    comparison decides among near-ties.
    """
    n = model.bitwidth
    v = np.arange(1, np.int64(1) << n, dtype=np.int64)
    if model.family == "DRUM":
        approx = model._approximate(v)
    elif model.family in ("SSM", "ESSM"):
        seg, shift = model._segment(v)
        approx = seg << shift
    else:  # Accurate
        approx = v.copy()
    ratio = approx / v
    out = {}
    for direction, pick in (("min", np.argmin), ("max", np.argmax)):
        extreme = float(ratio[pick(ratio)])
        tolerance = 1e-9 * max(1.0, abs(extreme))
        if direction == "max":
            candidates = np.nonzero(ratio >= extreme - tolerance)[0]
        else:
            candidates = np.nonzero(ratio <= extreme + tolerance)[0]
        best_num = best_den = best_v = None
        for i in candidates:  # increasing v: ties keep the first (smallest)
            num, den = int(approx[i]), int(v[i])
            if best_num is None:
                best_num, best_den, best_v = num, den, den
                continue
            left, right = num * best_den, best_num * den
            if left > right if direction == "max" else left < right:
                best_num, best_den, best_v = num, den, den
        ratio_best = Fraction(best_num, best_den)
        out[direction] = (ratio_best * ratio_best - 1, best_v, best_v)
    return out["min"], out["max"]


def _interval_engine(model):
    if model.family in _INTERVAL_LOG_FAMILIES:
        return _LogBoxEngine(model)
    raise UnsupportedDesignError(
        f"no interval enclosure for family {model.family!r}; install z3 or "
        f"use a width the exhaustive sweep covers"
    )


def _branch_and_bound(model, engine, direction: str, budget: int):
    """Prune-and-split search for one error extreme.

    Exact iff the queue drains within the budget: every discarded box
    was proven (in exact rational arithmetic) unable to beat the best
    concrete witness.  On budget exhaustion the sound outer bound is
    the extreme over the surviving boxes' enclosures.
    """
    sign = 1 if direction == "max" else -1

    def box_bound(box) -> Fraction:
        lo, hi = engine.enclosure(*box)
        return hi if sign > 0 else -lo

    best: Fraction | None = None
    best_pair = None

    def observe(a_vals, b_vals):
        nonlocal best, best_pair
        a_vals = np.asarray(a_vals, dtype=np.int64)
        b_vals = np.asarray(b_vals, dtype=np.int64)
        products = model.multiply(a_vals, b_vals)
        for a, b, p in zip(a_vals, b_vals, products):
            value = sign * Fraction(int(p) - int(a) * int(b), int(a) * int(b))
            if best is None or value > best:
                best, best_pair = value, (int(a), int(b))

    heap: list = []
    counter = 0
    def observe_corners(box):
        a_lo, a_hi, b_lo, b_hi = box
        mid_a, mid_b = (a_lo + a_hi) // 2, (b_lo + b_hi) // 2
        observe(
            [a_lo, a_lo, a_hi, a_hi, mid_a],
            [b_lo, b_hi, b_lo, b_hi, mid_b],
        )

    # seed the incumbent from the structured sample so pruning starts
    # against a near-extreme witness instead of discovering one box by box
    from .equiv import sample_operands

    seed_a, seed_b = sample_operands(model.bitwidth, 4096, seed=0)
    valid = (seed_a > 0) & (seed_b > 0)
    observe(seed_a[valid], seed_b[valid])

    for box in engine.initial_boxes(model.bitwidth):
        bound = box_bound(box)
        heap.append((-float(bound), counter, bound, box))
        counter += 1
        observe_corners(box)
    heapq.heapify(heap)

    processed = 0
    while heap and processed < budget:
        processed += 1
        _, _, bound, box = heapq.heappop(heap)
        if best is not None and bound <= best:
            continue  # exact comparison: the box cannot improve the best
        a_lo, a_hi, b_lo, b_hi = box
        if a_lo == a_hi and b_lo == b_hi:
            observe([a_lo], [b_lo])
            continue
        if a_hi - a_lo >= b_hi - b_lo:
            mid = (a_lo + a_hi) // 2
            children = ((a_lo, mid, b_lo, b_hi), (mid + 1, a_hi, b_lo, b_hi))
        else:
            mid = (b_lo + b_hi) // 2
            children = ((a_lo, a_hi, b_lo, mid), (a_lo, a_hi, mid + 1, b_hi))
        for child in children:
            child_bound = box_bound(child)
            if best is not None and child_bound <= best:
                continue
            observe_corners(child)
            heapq.heappush(heap, (-float(child_bound), counter, child_bound, child))
            counter += 1

    exact = not heap
    bound = best
    for _, _, child_bound, _ in heap:
        if child_bound > bound:
            bound = child_bound
    return sign * bound, best_pair, exact, processed


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

def certify_worst_error(
    design: str,
    bitwidth: int | None = None,
    *,
    method: str | None = None,
    sweep_max_bitwidth: int = 11,
    box_budget: int = 50_000,
    smt_timeout_ms: int | None = None,
) -> WorstCaseBounds:
    """Certify both peaks of the signed relative error for a design.

    ``method`` pins a route (``"sweep"``/``"smt"``/``"interval"``);
    by default narrow designs sweep exhaustively, wider ones use z3
    when installed and the interval engine otherwise.  Raises
    :class:`UnsupportedDesignError` when no route applies.
    """
    from ..conformance.oracles import resolve_design

    design_id, model, _, _ = resolve_design(design, bitwidth)
    n = model.bitwidth
    if method is None:
        if n <= sweep_max_bitwidth:
            method = "sweep"
        elif import_z3() is not None:
            method = "smt"
        else:
            method = "interval"

    tele = telemetry.get()
    with tele.span(
        "formal.solve", design=design_id, bitwidth=n, query="max-error",
        method=method,
    ):
        if method == "sweep":
            if n > sweep_max_bitwidth:
                raise UnsupportedDesignError(
                    f"exhaustive sweep gated to N <= {sweep_max_bitwidth}, "
                    f"got {n}; use method='smt' or 'interval'"
                )
            encoding = encode_model(model, design_id)
            (lo, a_lo, b_lo), (hi, a_hi, b_hi) = _sweep(model, encoding)
            peak_min = _certificate(model, "min", a_lo, b_lo, lo, True)
            peak_max = _certificate(model, "max", a_hi, b_hi, hi, True)
            return WorstCaseBounds(design_id, n, "formula-sweep", peak_min, peak_max)

        if method == "smt":
            if import_z3() is None:
                raise UnsupportedDesignError(
                    "method 'smt' requires z3, which is not installed"
                )
            encoding = encode_model(model, design_id)
            lo, pair_lo, exact_lo = _smt_ascent(model, encoding, "min", smt_timeout_ms)
            hi, pair_hi, exact_hi = _smt_ascent(model, encoding, "max", smt_timeout_ms)
            peak_min = _certificate(model, "min", *pair_lo, lo, exact_lo)
            peak_max = _certificate(model, "max", *pair_hi, hi, exact_hi)
            return WorstCaseBounds(design_id, n, "smt-ascent", peak_min, peak_max)

        if method == "interval":
            if model.family in _INTERVAL_PRODUCT_FAMILIES:
                (lo, a_lo, b_lo), (hi, a_hi, b_hi) = _product_form_extremes(model)
                peak_min = _certificate(model, "min", a_lo, b_lo, lo, True)
                peak_max = _certificate(model, "max", a_hi, b_hi, hi, True)
                return WorstCaseBounds(
                    design_id, n, "ratio-exact", peak_min, peak_max
                )
            engine = _interval_engine(model)
            hi, pair_hi, exact_hi, _ = _branch_and_bound(
                model, engine, "max", box_budget
            )
            lo, pair_lo, exact_lo, _ = _branch_and_bound(
                model, engine, "min", box_budget
            )
            peak_min = _certificate(model, "min", *pair_lo, lo, exact_lo)
            peak_max = _certificate(model, "max", *pair_hi, hi, exact_hi)
            return WorstCaseBounds(design_id, n, "interval-bb", peak_min, peak_max)

    raise ValueError(f"unknown method {method!r}; use sweep, smt or interval")
