"""Formal layer: bit-vector equivalence certificates and exact error bounds.

This package replaces *sampled* confidence with *certified* claims:

* :mod:`~repro.formal.bitvec` — a hash-consed boolean DAG IR with
  word-level helpers and a bit-parallel concrete evaluator;
* :mod:`~repro.formal.encode` — lowers registered netlists and the
  functional models into formulas over shared operand variables;
* :mod:`~repro.formal.backends` — the solver ladder: z3 (strictly
  optional, used when importable) → bounded pure-python BDD →
  exhaustive bit-parallel sweep; tier-1 never needs a dependency;
* :mod:`~repro.formal.equiv` — model↔RTL↔kernel equivalence proofs with
  concrete divergence witnesses that feed the conformance shrinker;
* :mod:`~repro.formal.bounds` — exact worst-case relative-error
  certificates ``(a*, b*, err*)``, replayed through the concrete model
  as a self-check, via exhaustive formula sweep, SMT binary search, or
  a branch-and-bound interval engine for wide log/segment designs;
* :mod:`~repro.formal.certificates` — JSON persistence of proofs and
  bounds under the cache directory.

The ``formal`` conformance layer (:mod:`repro.conformance.oracles`) and
the ``repro formal`` CLI are the consumer surfaces.
"""

from __future__ import annotations

from .backends import BddBackend, ExhaustiveBackend, available_backends, z3_available
from .bitvec import Builder, Evaluator
from .bounds import ErrorCertificate, WorstCaseBounds, certify_worst_error
from .certificates import certificate_dir, load_certificate, save_certificate
from .encode import (
    SYMBOLIC_FAMILIES,
    Encoding,
    UnsupportedDesignError,
    encode_kernel,
    encode_model,
    encode_netlist,
    encode_table,
)
from .equiv import EquivalenceResult, LegResult, prove_equivalence

__all__ = [
    "BddBackend",
    "Builder",
    "Encoding",
    "EquivalenceResult",
    "ErrorCertificate",
    "LegResult",
    "WorstCaseBounds",
    "Evaluator",
    "ExhaustiveBackend",
    "SYMBOLIC_FAMILIES",
    "UnsupportedDesignError",
    "available_backends",
    "certificate_dir",
    "certify_worst_error",
    "encode_kernel",
    "encode_model",
    "encode_netlist",
    "encode_table",
    "load_certificate",
    "prove_equivalence",
    "save_certificate",
    "z3_available",
]
