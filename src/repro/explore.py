"""Design-space explorer: pick a multiplier for an error/efficiency budget.

The workflow the library exists to serve, packaged: given constraints
(max mean error, max peak error, minimum area/power reduction) and an
objective (power, area, or error), search the named Table I space plus —
optionally — the *full* REALM grid (every power-of-two ``M``, every ``t``,
``q`` in a practical range), which is wider than what the paper tabulates.

Results come back ranked, with each candidate's measured metrics and
modeled cost attached, so the caller can inspect the trade-off curve
rather than a single point.  ``explore`` is deterministic (seeded MC) and
caches characterizations per configuration.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Sequence

from .analysis.metrics import ErrorMetrics
from .analysis.montecarlo import characterize
from .multipliers.registry import TABLE1_IDS, build
from .synth.cost import reductions

__all__ = ["Candidate", "Constraints", "explore", "realm_grid_ids"]


@dataclasses.dataclass(frozen=True)
class Constraints:
    """Feasibility bounds; ``None`` disables a bound."""

    max_mean_error: float | None = None
    max_peak_error: float | None = None
    max_bias: float | None = None
    min_area_reduction: float | None = None
    min_power_reduction: float | None = None

    def admits(self, candidate: "Candidate") -> bool:
        checks = (
            (self.max_mean_error, candidate.metrics.mean_error, "<="),
            (self.max_peak_error, candidate.peak_error, "<="),
            (
                self.max_bias,
                abs(candidate.metrics.bias),
                "<=",
            ),
            (self.min_area_reduction, candidate.area_reduction, ">="),
            (self.min_power_reduction, candidate.power_reduction, ">="),
        )
        for bound, value, direction in checks:
            if bound is None:
                continue
            if direction == "<=" and value > bound:
                return False
            if direction == ">=" and value < bound:
                return False
        return True


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One explored configuration with all decision data attached."""

    name: str
    display: str
    metrics: ErrorMetrics
    area_reduction: float
    power_reduction: float

    @property
    def peak_error(self) -> float:
        return max(abs(self.metrics.peak_min), abs(self.metrics.peak_max))


_OBJECTIVES = {
    "power": lambda c: -c.power_reduction,
    "area": lambda c: -c.area_reduction,
    "error": lambda c: c.metrics.mean_error,
}


def realm_grid_ids(
    m_values: Sequence[int] = (2, 4, 8, 16, 32),
    t_values: Sequence[int] = tuple(range(10)),
) -> list[str]:
    """REALM configurations beyond the paper's table (M=2 and M=32 too)."""
    return [f"realm-grid-m{m}-t{t}" for m in m_values for t in t_values]


def _build_any(name: str, bitwidth: int = 16):
    if name.startswith("realm-grid-"):
        from .core.realm import RealmMultiplier

        parts = name.split("-")
        m = int(parts[2][1:])
        t = int(parts[3][1:])
        return RealmMultiplier(bitwidth=bitwidth, m=m, t=t)
    return build(name, bitwidth)


def _synthesis_for(name: str) -> tuple[float, float]:
    if name.startswith("realm-grid-"):
        from .circuits.realm_rtl import realm_netlist
        from .synth.cost import synthesize, synthesize_design

        parts = name.split("-")
        m = int(parts[2][1:])
        t = int(parts[3][1:])
        design = synthesize(realm_netlist(16, m=m, t=t))
        reference = synthesize_design("accurate")
        return design.reductions(reference)
    return reductions(name)


@functools.lru_cache(maxsize=None)
def _candidate(name: str, samples: int, seed: int) -> Candidate:
    multiplier = _build_any(name)
    metrics = characterize(multiplier, samples=samples, seed=seed)
    area_reduction, power_reduction = _synthesis_for(name)
    return Candidate(
        name=name,
        display=multiplier.name,
        metrics=metrics,
        area_reduction=area_reduction,
        power_reduction=power_reduction,
    )


def explore(
    constraints: Constraints,
    objective: str = "power",
    include_realm_grid: bool = False,
    ids: Sequence[str] | None = None,
    samples: int = 1 << 19,
    seed: int = 2020,
    top: int = 10,
) -> list[Candidate]:
    """Feasible configurations ranked by the objective (best first)."""
    if objective not in _OBJECTIVES:
        raise ValueError(
            f"objective must be one of {sorted(_OBJECTIVES)}, got {objective!r}"
        )
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    names = list(ids) if ids is not None else list(TABLE1_IDS)
    if include_realm_grid:
        names += realm_grid_ids()
    candidates = [_candidate(name, samples, seed) for name in names]
    feasible = [c for c in candidates if constraints.admits(c)]
    feasible.sort(key=_OBJECTIVES[objective])
    return feasible[:top]
