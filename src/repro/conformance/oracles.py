"""Differential and metamorphic oracles across the repo's answer layers.

The repository holds six independent answers to "what does design X
return on ``(a, b)``": the functional NumPy model, the gate-level RTL
netlist, the compiled kernel (:mod:`repro.kernels` — table-specialized
model and bit-parallel netlist programs), the served (batched protocol)
path, the formal layer's bit-vector formula (:mod:`repro.formal` — the
object equivalence proofs and error certificates reason about), and —
on inputs where a family guarantees exactness — arithmetic itself.  The :class:`DifferentialOracle` evaluates operand batches
through every available layer and reports structured
:class:`Divergence` records wherever two layers disagree.

Where no second implementation exists, **metamorphic relations** apply to
the model alone (family lists pinned by measurement over the registry,
see ``tests/test_conformance.py``):

* ``commute`` — ``f(a, b) == f(b, a)`` for symmetric datapaths;
* ``pow2-shift`` — ``f(2a, b) >> 1 == f(a, b)`` for the log-family
  designs, whose datapath depends on the operands only through
  ``(k, fraction)`` and a final barrel shift (doubling increments ``k``);
* ``underestimate`` — ``f(a, b) <= a * b`` for truncation-only designs;
* the ``exact`` layer — ``f`` must equal ``a * b`` whenever one operand
  is zero, everywhere for the accurate design, and on power-of-two pairs
  for the families whose log fractions vanish there.

A deliberately broken model can be injected through the chaos harness
(:mod:`repro.analysis.chaos`): a ``corrupt`` fault spec whose ``design``
matches the conformance design id (and ``block`` 0) makes the oracle's
model layer misreport every nonzero product by +1 for the claim's
lifetime — the detect-and-shrink path is then testable end to end, with
the usual cross-process exact firing counts.
"""

from __future__ import annotations

import dataclasses
import re

import numpy as np

from ..analysis import chaos, telemetry
from ..circuits.catalog import NETLISTS, netlist_for
from ..core.realm import RealmMultiplier
from ..kernels import compile_netlist, kernel_for
from ..logic.sim import evaluate_words
from ..multipliers.registry import REGISTRY, build

__all__ = [
    "LAYERS",
    "RELATIONS",
    "Divergence",
    "DifferentialOracle",
    "resolve_design",
]

#: evaluation layers, in reporting order; "model" is the reference.
#: "kernel" is the compiled evaluator of :mod:`repro.kernels` — always
#: available (every design compiles, worst case to an interpreted
#: fallback) and required to be bit-identical to the model.  "formal"
#: evaluates the bit-vector formula the formal layer lowers the model
#: into (:mod:`repro.formal`) — a third independent interpretation of
#: the design, available for every symbolic family and for table
#: families at enumerable widths.
LAYERS = ("model", "rtl", "kernel", "serve", "formal", "exact")

#: metamorphic relations checked on the model layer
RELATIONS = ("commute", "pow2-shift", "underestimate", "comp-monotone")

# family lists for the relations/exactness guarantees.  COMMUTE and the
# exactness families mirror tests/test_multiplier_properties.py; the
# POW2_SHIFT list is pinned by an exhaustive 8-bit + randomized 16-bit
# sweep (DRUM/SSM/AM fail it: their truncation windows move with the
# leading one or the array structure, not with a final barrel shift;
# DNNCO fails it too — its OR window is anchored at the LSB).
COMMUTE_FAMILIES = frozenset(
    {"Accurate", "ALM-SOA", "ALM-LOA", "cALM", "DNNCO", "DRUM", "ESSM",
     "ImpLM", "IntALP", "MBM", "REALM", "scaleTRIM", "SSM"}
)
POW2_SHIFT_FAMILIES = frozenset(
    {"Accurate", "ALM-MAA", "ALM-SOA", "ALM-LOA", "cALM", "ImpLM",
     "IntALP", "MBM", "REALM", "scaleTRIM"}
)
UNDERESTIMATE_FAMILIES = frozenset(
    {"Accurate", "AM1", "AM2", "cALM", "DNNCO", "ESSM", "scaleTRIM", "SSM"}
)
POW2_EXACT_FAMILIES = frozenset(
    {"Accurate", "ALM-MAA", "AM1", "AM2", "cALM", "DNNCO", "ESSM", "ImpLM",
     "IntALP", "scaleTRIM", "SSM"}
)
#: families with a compensation knob whose safe lower-bound LUT must never
#: move the product past the exact value: the compensated result dominates
#: the uncompensated one pointwise (and ``underestimate`` bounds it above)
COMP_MONOTONE_FAMILIES = frozenset({"scaleTRIM"})

#: ad-hoc REALM design spec: realm-<bitwidth>-m<M>-q<Q>[-t<T>]
_REALM_SPEC = re.compile(r"^realm-(\d+)-m(\d+)-q(\d+)(?:-t(\d+))?$")


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One input pair on which a check failed.

    ``kind`` is ``"layer"`` (cross-implementation mismatch) or
    ``"relation"`` (metamorphic violation); ``name`` identifies the layer
    or relation; ``got``/``want`` are the two disagreeing values (for
    relations: the transformed and the reference evaluation).
    """

    design: str
    kind: str
    name: str
    a: int
    b: int
    got: int
    want: int

    def key(self) -> tuple[str, str]:
        return (self.kind, self.name)


def resolve_design(spec: str, bitwidth: int | None = None):
    """Map a design spec to ``(design_id, multiplier, rtl_factory, servable)``.

    ``spec`` is either a registry id (``"realm16-t3"``, ``"drum-k6"``,
    ...) or an ad-hoc REALM point ``realm-<N>-m<M>-q<Q>[-t<T>]`` — e.g.
    ``realm-16-m4-q5`` — which builds a :class:`RealmMultiplier` outside
    the registry grid (the fuzzer's way to conformance-test unpublished
    configurations).  ``bitwidth`` defaults to 16 for registry ids and to
    the embedded ``<N>`` for ad-hoc specs; a conflicting explicit value
    raises ``ValueError``.  ``rtl_factory`` is ``None`` when no netlist
    generator exists; ``servable`` says whether the in-process serve
    layer can resolve the id (registry ids only).
    """
    match = _REALM_SPEC.match(spec)
    if match is not None:
        n, m, q, t = (int(g) if g is not None else 0 for g in match.groups())
        if bitwidth is not None and bitwidth != n:
            raise ValueError(
                f"design {spec!r} embeds bitwidth {n}, got --bitwidth {bitwidth}"
            )
        multiplier = RealmMultiplier(bitwidth=n, m=m, t=t, q=q)

        def rtl_factory():
            from ..circuits.realm_rtl import realm_netlist

            netlist = realm_netlist(n, m=m, t=t, q=q)
            netlist.prune()
            return netlist

        return spec, multiplier, rtl_factory, False
    if spec not in REGISTRY:
        known = "', '".join(sorted(REGISTRY)[:6])
        raise KeyError(
            f"unknown design {spec!r}; use a registry id (e.g. '{known}', ...)"
            " or an ad-hoc REALM spec like 'realm-16-m4-q5'"
        )
    width = 16 if bitwidth is None else bitwidth
    multiplier = build(spec, width)
    rtl_factory = None
    if spec in NETLISTS:
        def rtl_factory():  # noqa: F811 - conditional redefinition
            return netlist_for(spec, width)

    return spec, multiplier, rtl_factory, True


class DifferentialOracle:
    """Evaluate operand batches through every available answer layer.

    ``layers`` restricts the checked layers (default: every layer the
    design supports); unavailable requested layers are recorded in
    ``skipped_layers`` with a reason instead of failing, so one CLI
    invocation works across the whole registry.  ``limit`` bounds the
    :class:`Divergence` records kept per check (totals are still exact).

    The ``kernel`` layer compares the compiled evaluator of
    :mod:`repro.kernels` against the model on every pair; it is always
    available.  ``compiled_rtl`` (default on) evaluates the ``rtl``
    layer through the bit-parallel :class:`~repro.kernels.NetlistKernel`
    instead of the per-gate interpreter — bit-identical by construction
    and roughly an order of magnitude faster, which is what makes
    gate-level fuzzing batches affordable; pass ``False`` to force the
    interpreted simulator.
    """

    def __init__(
        self,
        design: str,
        bitwidth: int | None = None,
        layers=None,
        *,
        compiled_rtl: bool = True,
    ):
        self.design, self.model, rtl_factory, servable = resolve_design(
            design, bitwidth
        )
        self.bitwidth = self.model.bitwidth
        requested = tuple(layers) if layers else LAYERS
        unknown = set(requested) - set(LAYERS)
        if unknown:
            raise ValueError(
                f"unknown layers {sorted(unknown)}; choose from {LAYERS}"
            )
        if "model" not in requested:
            raise ValueError("the 'model' layer is the reference; it is required")
        self.skipped_layers: dict[str, str] = {}
        self._netlist = None
        self._rtl_kernel = None
        if "rtl" in requested:
            if rtl_factory is None:
                self.skipped_layers["rtl"] = "no netlist generator for this design"
            else:
                try:
                    self._netlist = rtl_factory()
                except ValueError as exc:
                    self.skipped_layers["rtl"] = f"netlist unbuildable: {exc}"
            if self._netlist is not None and compiled_rtl:
                self._rtl_kernel = compile_netlist(self._netlist)
        if "serve" in requested and not servable:
            self.skipped_layers["serve"] = "not a registry id; serve cannot resolve it"
        self._formal_encoding = None
        if "formal" in requested:
            from ..formal.encode import UnsupportedDesignError, encode_model

            try:
                self._formal_encoding = encode_model(self.model, self.design)
            except UnsupportedDesignError as exc:
                self.skipped_layers["formal"] = str(exc)
        self.layers = tuple(
            name
            for name in LAYERS
            if name in requested and name not in self.skipped_layers
        )
        family = self.model.family
        self.relations = tuple(
            name
            for name, families in (
                ("commute", COMMUTE_FAMILIES),
                ("pow2-shift", POW2_SHIFT_FAMILIES),
                ("underestimate", UNDERESTIMATE_FAMILIES),
                ("comp-monotone", COMP_MONOTONE_FAMILIES),
            )
            if family in families
        )
        self._uncompensated = None
        self._broken_by_chaos: bool | None = None

    # -- layer evaluation ------------------------------------------------

    def _eval_model(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        products = self.model.multiply(a, b)
        if self._chaos_broken():
            products = np.where((a > 0) & (b > 0), products + 1, products)
        return products

    def _chaos_broken(self) -> bool:
        """True when a chaos ``corrupt`` fault targets this design.

        The claim is taken once per oracle (spec ``times`` bounds how many
        oracles go bad, exactly, across processes) and then sticks for the
        oracle's lifetime, so shrinking sees the same broken model the
        fuzzing loop saw.
        """
        if self._broken_by_chaos is None:
            self._broken_by_chaos = False
            plan = chaos.active_plan()
            if plan is not None:
                match = plan.fault_for(0, self.design)
                if match is not None and match[1].kind == "corrupt":
                    self._broken_by_chaos = plan.claim(*match)
        return self._broken_by_chaos

    def _eval_rtl(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = self.bitwidth
        netlist = self._netlist
        buses = [netlist.inputs[:n], netlist.inputs[n:]]
        if self._rtl_kernel is not None:
            return self._rtl_kernel.evaluate_words(buses, [a, b])
        return evaluate_words(netlist, buses, [a, b])

    def _eval_kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return kernel_for(self.model)(a, b)

    def _eval_formal(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # the lowered bit-vector formula, evaluated bit-parallel — a
        # third independent interpretation of the design (and the one
        # equivalence proofs and error certificates reason about)
        return self._formal_encoding.eval_pairs(a, b)

    def _eval_serve(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        import asyncio

        from ..serve import InProcessClient, LocalShard, Supervisor

        async def roundtrip():
            # the supervised fleet path: requests route through the
            # consistent-hash ring to one of two in-process shards —
            # exactly the dispatch a production fleet uses, minus the
            # sockets.  Fresh per call: the shards' flusher tasks and
            # asyncio primitives must live on this run's event loop.
            supervisor = Supervisor(
                [LocalShard("shard-0"), LocalShard("shard-1")]
            )
            await supervisor.up()
            supervisor.start()
            try:
                client = InProcessClient(supervisor)
                return await client.multiply(
                    self.design, [int(v) for v in a], [int(v) for v in b],
                    bitwidth=self.bitwidth,
                )
            finally:
                await supervisor.drain()

        return np.asarray(asyncio.run(roundtrip()), dtype=np.int64)

    def exactness_mask(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pairs on which the family guarantees the exact product."""
        mask = (a == 0) | (b == 0)
        if self.model.family == "Accurate":
            return np.ones_like(mask)
        if self.model.family in POW2_EXACT_FAMILIES:
            pow2 = (a > 0) & (b > 0) & ((a & (a - 1)) == 0) & ((b & (b - 1)) == 0)
            mask = mask | pow2
        return mask

    # -- checks ----------------------------------------------------------

    def evaluate(self, a, b, *, limit: int = 8) -> tuple[list[Divergence], int]:
        """Run every layer and relation on a batch.

        Returns ``(records, total)`` where ``records`` holds at most
        ``limit`` :class:`Divergence` records per check and ``total`` is
        the exact count of divergent (pair, check) combinations.
        """
        a = np.atleast_1d(np.asarray(a, dtype=np.int64))
        b = np.atleast_1d(np.asarray(b, dtype=np.int64))
        tele = telemetry.get()
        with tele.span("conform.eval", design=self.design, pairs=int(a.size)):
            reference = self._eval_model(a, b)
            records: list[Divergence] = []
            total = 0
            for name, values in self._layer_values(a, b, reference):
                mask = values != reference
                total += self._record(
                    records, "layer", name, a, b, values, reference, mask, limit
                )
            for name, got, want, valid in self._relation_values(a, b, reference):
                mask = valid & (got != want)
                total += self._record(
                    records, "relation", name, a, b, got, want, mask, limit
                )
            records = [
                dataclasses.replace(record, design=self.design)
                for record in records
            ]
        tele.counter("conform.divergences", total)
        return records, total

    def _layer_values(self, a, b, reference):
        for name in self.layers:
            if name == "rtl":
                yield name, self._eval_rtl(a, b)
            elif name == "kernel":
                yield name, self._eval_kernel(a, b)
            elif name == "serve":
                yield name, self._eval_serve(a, b)
            elif name == "formal":
                yield name, self._eval_formal(a, b)
            elif name == "exact":
                mask = self.exactness_mask(a, b)
                # outside the guaranteed region the model is the truth
                yield name, np.where(mask, a * b, reference)

    def _relation_values(self, a, b, reference):
        for name in self.relations:
            if name == "commute":
                yield name, self._eval_model(b, a), reference, np.ones(
                    a.shape, dtype=bool
                )
            elif name == "pow2-shift":
                valid = (a > 0) & (a < (1 << (self.bitwidth - 1)))
                doubled = self._eval_model(np.where(valid, 2 * a, a), b)
                yield name, doubled >> 1, reference, valid
            elif name == "underestimate":
                exact = a * b
                yield name, np.maximum(reference, exact), exact, np.ones(
                    a.shape, dtype=bool
                )
            elif name == "comp-monotone":
                # compensation only ever moves the product toward the
                # exact value: the c=0 sibling never exceeds the model
                # (underestimate bounds the other side)
                if self._uncompensated is None:
                    from ..multipliers.scaletrim import ScaleTrimMultiplier

                    self._uncompensated = ScaleTrimMultiplier(
                        self.bitwidth, t=self.model.t, c=0
                    )
                plain = self._uncompensated.multiply(a, b)
                yield name, np.maximum(plain, reference), reference, np.ones(
                    a.shape, dtype=bool
                )

    @staticmethod
    def _record(records, kind, name, a, b, got, want, mask, limit) -> int:
        hits = np.nonzero(mask)[0]
        for index in hits[:limit]:
            records.append(
                Divergence(
                    design="",  # filled below to keep the hot loop light
                    kind=kind,
                    name=name,
                    a=int(a[index]),
                    b=int(b[index]),
                    got=int(got[index]),
                    want=int(want[index]),
                )
            )
        return int(hits.size)

    # -- single-pair re-checks (the shrinker's predicate) ----------------

    def check_pair(self, kind: str, name: str, a: int, b: int) -> bool:
        """Does the named check still fail on ``(a, b)``?"""
        if not (0 <= a <= self.model.max_operand and 0 <= b <= self.model.max_operand):
            return False
        aa = np.array([a], dtype=np.int64)
        bb = np.array([b], dtype=np.int64)
        reference = self._eval_model(aa, bb)
        if kind == "layer":
            for layer, values in self._layer_values(aa, bb, reference):
                if layer == name:
                    return bool(values[0] != reference[0])
            return False
        for relation, got, want, valid in self._relation_values(aa, bb, reference):
            if relation == name:
                return bool(valid[0] and got[0] != want[0])
        return False
