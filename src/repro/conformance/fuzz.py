"""Coverage-guided differential fuzzing with counterexample shrinking.

The generator is **deterministic and worker-invariant**: every batch of
operand pairs is a pure function of ``(seed, batch_index)`` through the
same counter-based substreams the Monte-Carlo engine uses
(:func:`repro.analysis.parallel.substream`), and batch *planning* only
reads coverage state that was folded in ascending batch order.  Fanning
the batches out over a process pool therefore changes wall time, never
the report: ``--workers 1`` and ``--workers 4`` produce identical JSON.

The loop:

1. seed the **corpus** — operand corners (zeros, ones, powers of two and
   their neighbours, all-ones) and every segment-boundary value ±1;
2. while budget remains and reachable cells are uncovered, plan one
   round: synthesize one pair per uncovered ``(ka, kb, i, j)`` cell and
   per uncovered fraction-LSB pattern, plus boundary **mutations** of
   pairs that previously hit new cells (±1, bit flips at and just below
   the leading-one position, halving, min/max fractions);
3. evaluate each batch through the :class:`~repro.conformance.oracles.
   DifferentialOracle`, fold coverage and divergences in batch order;
4. **shrink** the first divergence of every failing check to a locally
   minimal pair (operand halving, then greedy MSB-first bit clearing,
   then decrement — each accepted move strictly shrinks ``a + b``), and
   persist the shrunk counterexamples under the cache directory.

With the chaos harness injecting a broken model (see
:mod:`repro.conformance.oracles`), run serial (``workers=None``): each
worker process builds its own oracle and would consume one chaos claim.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

import numpy as np

from ..analysis import telemetry
from ..analysis.cache import resolve_cache_dir
from ..analysis.parallel import substream
from .coverage import CoverageMap, default_segments
from .oracles import DifferentialOracle, Divergence

__all__ = ["BatchSpec", "FuzzResult", "fuzz", "shrink_pair"]

#: operand pairs per batch (one inter-process message in pooled runs)
BATCH_PAIRS = 256

#: most pairs one planning round may spend
ROUND_PAIRS = 4096

#: planning rounds before giving up on the remaining cells
MAX_ROUNDS = 128

#: new-cell-hitting pairs kept as mutation bases
MAX_INTERESTING = 256

#: divergence records carried in the result (totals stay exact)
MAX_RECORDS = 64


# ----------------------------------------------------------------------
# Pure batch generation
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BatchSpec:
    """One plannable, picklable unit of generation + evaluation.

    ``index`` selects the substream; ``kind`` picks the generator
    (``corpus``/``cells``/``lsb``/``mutate``); ``payload`` carries the
    explicit targets (cell tuples, LSB patterns, or base pairs) so
    generation never reads shared state.
    """

    index: int
    kind: str
    payload: tuple = ()
    start: int = 0
    count: int = 0


def corner_values(bitwidth: int) -> np.ndarray:
    """Deduplicated operand corners: 0..3, ``2**k`` and neighbours, max."""
    top = (1 << bitwidth) - 1
    values = {0, 1, 2, 3, top, top - 1}
    for k in range(bitwidth):
        for v in ((1 << k) - 1, 1 << k, (1 << k) + 1):
            if 0 <= v <= top:
                values.add(v)
    return np.array(sorted(values), dtype=np.int64)


def segment_edge_values(bitwidth: int, m: int) -> np.ndarray:
    """Every segment-boundary operand value, ±1 (the REALM LUT seams)."""
    top = (1 << bitwidth) - 1
    logm = m.bit_length() - 1
    values = set()
    for ka in range(bitwidth):
        base = 1 << ka
        if ka >= logm:
            step = 1 << (ka - logm)
            edges = [base + i * step for i in range(m)]
        else:
            edges = [base + (i >> (logm - ka)) for i in range(0, m, m >> ka)]
        for edge in edges:
            for v in (edge - 1, edge, edge + 1):
                if 0 <= v <= top:
                    values.add(v)
    return np.array(sorted(values), dtype=np.int64)


def corpus_pairs(bitwidth: int, m: int) -> tuple[np.ndarray, np.ndarray]:
    """The canonical seed corpus: corner cross products + boundary pairs."""
    corners = corner_values(bitwidth)
    if corners.size > 32:
        picks = np.linspace(0, corners.size - 1, 32).astype(np.int64)
        corners = np.unique(corners[picks])
    a = [np.repeat(corners, corners.size)]
    b = [np.tile(corners, corners.size)]
    edges = segment_edge_values(bitwidth, m)
    top = (1 << bitwidth) - 1
    for partner in (edges[::-1], np.full_like(edges, 1), np.full_like(edges, top)):
        a.append(edges)
        b.append(partner)
    return np.concatenate(a), np.concatenate(b)


def _synthesize_operand(k: int, segment: int, m: int, bitwidth: int, rng):
    """A value in leading-one interval ``k`` selecting ``segment``."""
    logm = m.bit_length() - 1
    base = 1 << k
    if k >= logm:
        step = 1 << (k - logm)
        low = int(rng.integers(0, step)) if step > 1 else 0
        return base + segment * step + low
    return base + (segment >> (logm - k))


def _lsb_operand(pattern: int, lsb_bits: int, bitwidth: int, rng):
    """A max-interval value whose fraction LSBs equal ``pattern``."""
    width = bitwidth - 1
    base = 1 << width
    high = int(rng.integers(0, 1 << max(0, width - lsb_bits)))
    return base + ((high << lsb_bits) | pattern) % (1 << width)


def _mutations(a: int, b: int, bitwidth: int, rng) -> list[tuple[int, int]]:
    """Boundary mutations of one base pair (clipped to the operand range)."""
    top = (1 << bitwidth) - 1
    out = []

    def lod_flips(v: int) -> list[int]:
        if v <= 0:
            return [1]
        lod = v.bit_length() - 1
        flips = [v ^ (1 << lod)]  # drop the leading one: interval transition
        if lod > 0:
            flips.append(v ^ (1 << (lod - 1)))  # graze the segment MSB
        flips.append(v ^ (1 << int(rng.integers(0, lod + 1))))
        return flips

    for va in (a - 1, a + 1, a >> 1, *lod_flips(a)):
        out.append((va, b))
    for vb in (b - 1, b + 1, b >> 1, *lod_flips(b)):
        out.append((a, vb))
    if a > 0:  # min/max fractions of a's interval
        ka = a.bit_length() - 1
        out.append(((1 << ka), b))
        out.append(((1 << (ka + 1)) - 1 if ka + 1 < bitwidth else top, b))
    return [(min(max(x, 0), top), min(max(y, 0), top)) for x, y in out]


def generate_batch(
    spec: BatchSpec, bitwidth: int, m: int, lsb_bits: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Materialize one batch — a pure function of ``(spec, seed)``."""
    rng = substream(seed, spec.index)
    if spec.kind == "corpus":
        a, b = corpus_pairs(bitwidth, m)
        return (
            a[spec.start : spec.start + spec.count],
            b[spec.start : spec.start + spec.count],
        )
    if spec.kind == "cells":
        a = np.empty(len(spec.payload), dtype=np.int64)
        b = np.empty(len(spec.payload), dtype=np.int64)
        for pos, (ka, kb, i, j) in enumerate(spec.payload):
            a[pos] = _synthesize_operand(ka, i, m, bitwidth, rng)
            b[pos] = _synthesize_operand(kb, j, m, bitwidth, rng)
        return a, b
    if spec.kind == "lsb":
        a = np.empty(len(spec.payload), dtype=np.int64)
        b = np.empty(len(spec.payload), dtype=np.int64)
        for pos, (pa, pb) in enumerate(spec.payload):
            a[pos] = _lsb_operand(pa, lsb_bits, bitwidth, rng)
            b[pos] = _lsb_operand(pb, lsb_bits, bitwidth, rng)
        return a, b
    if spec.kind == "mutate":
        pairs = []
        for base_a, base_b in spec.payload:
            pairs.extend(_mutations(int(base_a), int(base_b), bitwidth, rng))
        pairs = pairs[: spec.count] if spec.count else pairs
        if not pairs:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        arr = np.array(pairs, dtype=np.int64)
        return arr[:, 0], arr[:, 1]
    raise ValueError(f"unknown batch kind {spec.kind!r}")


# ----------------------------------------------------------------------
# Worker body (module-level for picklability; oracle cached per process)
# ----------------------------------------------------------------------

_WORKER_ORACLES: dict = {}


def _oracle_for(design, bitwidth, layers) -> DifferentialOracle:
    key = (design, bitwidth, layers)
    oracle = _WORKER_ORACLES.get(key)
    if oracle is None:
        oracle = DifferentialOracle(design, bitwidth, layers)
        _WORKER_ORACLES[key] = oracle
    return oracle


def _eval_batch(design, bitwidth, layers, m, lsb_bits, seed, limit, spec):
    oracle = _oracle_for(design, bitwidth, layers)
    a, b = generate_batch(spec, oracle.bitwidth, m, lsb_bits, seed)
    if a.size == 0:
        return spec.index, a, b, [], 0
    records, total = oracle.evaluate(a, b, limit=limit)
    return spec.index, a, b, records, total


# ----------------------------------------------------------------------
# The fuzzing loop
# ----------------------------------------------------------------------


@dataclasses.dataclass
class FuzzResult:
    """Everything one fuzzing campaign established."""

    design: str
    bitwidth: int
    m: int
    seed: int
    budget: int
    pairs: int
    rounds: int
    full_cover: bool
    layers: tuple[str, ...]
    skipped_layers: dict[str, str]
    relations: tuple[str, ...]
    coverage: CoverageMap
    records: list[Divergence]
    counts: dict[str, int]
    total_divergences: int
    shrunk: list[dict]
    counterexample_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.total_divergences == 0


def _plan_round(coverage: CoverageMap, interesting, next_index: int, budget_left: int):
    """Batch specs for one round, reading only folded coverage state."""
    specs: list[BatchSpec] = []
    allowance = min(budget_left, ROUND_PAIRS)
    cells = coverage.uncovered()[:allowance]
    for start in range(0, len(cells), BATCH_PAIRS):
        chunk = cells[start : start + BATCH_PAIRS]
        specs.append(
            BatchSpec(
                index=next_index + len(specs),
                kind="cells",
                payload=tuple(tuple(int(v) for v in cell) for cell in chunk),
            )
        )
        allowance -= len(chunk)
    patterns = coverage.uncovered_lsb()[: max(0, allowance)]
    if len(patterns):
        specs.append(
            BatchSpec(
                index=next_index + len(specs),
                kind="lsb",
                payload=tuple(tuple(int(v) for v in p) for p in patterns),
            )
        )
        allowance -= len(patterns)
    if allowance > 0 and interesting:
        specs.append(
            BatchSpec(
                index=next_index + len(specs),
                kind="mutate",
                payload=tuple(interesting[-16:]),
                count=min(allowance, BATCH_PAIRS),
            )
        )
    return specs


def fuzz(
    design: str,
    budget: int,
    seed: int = 0,
    *,
    bitwidth: int | None = None,
    layers=None,
    workers: int | None = None,
    m: int | None = None,
    limit: int = 8,
    cache=None,
    on_progress=None,
    warehouse=None,
) -> FuzzResult:
    """Run one coverage-guided conformance campaign.

    ``budget`` bounds generated operand pairs; the campaign stops early on
    full coverage of every reachable cell and LSB pattern.  ``workers``
    fans batch evaluation out over a process pool — the result is
    bit-identical at any worker count.  ``cache`` resolves like the
    metrics cache (``None``: only if ``REPRO_CACHE_DIR`` is set) and
    receives the shrunk counterexamples of a failing run.  ``warehouse``
    opts into the experiment warehouse: the campaign summary (coverage,
    divergences, counterexample count) is recorded as one
    ``conformance`` run with full provenance.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    campaign_start = time.perf_counter()
    layers = tuple(layers) if layers else None
    oracle = DifferentialOracle(design, bitwidth, layers)
    n = oracle.bitwidth
    grid = m if m is not None else default_segments(oracle.model)
    coverage = CoverageMap(n, grid)
    tele = telemetry.get()

    corpus_a, _ = corpus_pairs(n, grid)
    corpus_size = min(int(corpus_a.size), budget)
    specs = [
        BatchSpec(
            index=batch,
            kind="corpus",
            start=start,
            count=min(BATCH_PAIRS, corpus_size - start),
        )
        for batch, start in enumerate(range(0, corpus_size, BATCH_PAIRS))
    ]
    next_index = len(specs)

    records: list[Divergence] = []
    counts: dict[str, int] = {}
    first_by_key: dict[tuple[str, str], Divergence] = {}
    interesting: list[tuple[int, int]] = []
    total = 0
    pairs_done = 0
    pairs_reported = 0
    rounds = 0

    pool = None
    try:
        if workers and workers > 1:
            import concurrent.futures

            pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)

        while specs:
            if pool is not None:
                futures = [
                    pool.submit(
                        _eval_batch, design, bitwidth, layers, grid,
                        coverage.lsb_bits, seed, limit, spec,
                    )
                    for spec in specs
                ]
                results = [future.result() for future in futures]
            else:
                # serial: evaluate on this call's own oracle (the worker
                # cache would outlive the chaos plan's install window)
                results = []
                for spec in specs:
                    a, b = generate_batch(spec, n, grid, coverage.lsb_bits, seed)
                    if a.size == 0:
                        results.append((spec.index, a, b, [], 0))
                        continue
                    batch_records, batch_total = oracle.evaluate(a, b, limit=limit)
                    results.append((spec.index, a, b, batch_records, batch_total))
            for _, a, b, batch_records, batch_total in results:
                if a.size == 0:
                    continue
                new_mask = coverage.newly_covered(a, b)
                coverage.update(a, b)
                if len(interesting) < MAX_INTERESTING:
                    for pos in np.nonzero(new_mask)[0][:8]:
                        interesting.append((int(a[pos]), int(b[pos])))
                pairs_done += int(a.size)
                total += batch_total
                for record in batch_records:
                    counts_key = f"{record.kind}:{record.name}"
                    counts[counts_key] = counts.get(counts_key, 0) + 1
                    first_by_key.setdefault(record.key(), record)
                    if len(records) < MAX_RECORDS:
                        records.append(record)
            rounds += 1
            tele.gauge("conform.coverage", coverage.segment_cell_coverage())
            tele.counter("conform.pairs", pairs_done - pairs_reported)
            pairs_reported = pairs_done
            if on_progress is not None:
                on_progress(
                    {
                        "event": "round",
                        "round": rounds,
                        "pairs": pairs_done,
                        "coverage": coverage.segment_cell_coverage(),
                        "divergences": total,
                    }
                )
            if pairs_done >= budget or coverage.full_cover() or rounds >= MAX_ROUNDS:
                break
            specs = _plan_round(
                coverage, interesting, next_index, budget - pairs_done
            )
            next_index += len(specs)
    finally:
        if pool is not None:
            pool.shutdown()

    shrunk = []
    for (kind, name), record in sorted(first_by_key.items()):
        with tele.span("conform.shrink", design=oracle.design, check=f"{kind}:{name}"):
            small_a, small_b = shrink_pair(
                lambda x, y: oracle.check_pair(kind, name, x, y),
                record.a,
                record.b,
            )
        shrunk.append(
            {
                "kind": kind,
                "name": name,
                "a": record.a,
                "b": record.b,
                "shrunk_a": small_a,
                "shrunk_b": small_b,
                "got": record.got,
                "want": record.want,
            }
        )

    result = FuzzResult(
        design=oracle.design,
        bitwidth=n,
        m=grid,
        seed=seed,
        budget=budget,
        pairs=pairs_done,
        rounds=rounds,
        full_cover=coverage.full_cover(),
        layers=oracle.layers,
        skipped_layers=dict(oracle.skipped_layers),
        relations=oracle.relations,
        coverage=coverage,
        records=records,
        counts=counts,
        total_divergences=total,
        shrunk=shrunk,
    )
    if shrunk:
        result.counterexample_path = _persist_counterexamples(result, cache)
    _record_campaign(result, time.perf_counter() - campaign_start, warehouse, cache)
    return result


def shrink_pair(check, a: int, b: int, max_checks: int = 4096) -> tuple[int, int]:
    """Greedy shrink of a divergent pair to a locally minimal one.

    ``check(a, b) -> bool`` decides whether the divergence persists.
    Candidate moves — operand halving, MSB-first bit clearing, decrement —
    all strictly decrease ``a + b``, so the loop terminates; the result is
    minimal in the sense that no single remaining move keeps the check
    failing.  Deterministic: same check and start pair, same result.
    """
    if not check(a, b):
        return a, b
    budget = max_checks
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in _shrink_candidates(a, b):
            budget -= 1
            if check(*candidate):
                a, b = candidate
                improved = True
                break
            if budget <= 0:
                break
    return a, b


def _shrink_candidates(a: int, b: int):
    if a > 0:
        yield a >> 1, b
    if b > 0:
        yield a, b >> 1
    for bit in reversed(range(max(0, a.bit_length() - 1))):
        if (a >> bit) & 1:
            yield a & ~(1 << bit), b
    for bit in reversed(range(max(0, b.bit_length() - 1))):
        if (b >> bit) & 1:
            yield a, b & ~(1 << bit)
    if a > 0:
        yield a - 1, b
    if b > 0:
        yield a, b - 1


def _record_campaign(result: FuzzResult, wall: float, warehouse, cache) -> None:
    """Record the campaign summary in the experiment warehouse, if on."""
    from ..warehouse.store import WarehouseError, open_warehouse

    wh = open_warehouse(warehouse, cache)
    if wh is None:
        return
    payload = {
        "kind": "conformance",
        "design": result.design,
        "bitwidth": result.bitwidth,
        "m": result.m,
        "seed": result.seed,
        "budget": result.budget,
        "layers": list(result.layers),
        "relations": list(result.relations),
    }
    data = {
        "pairs": result.pairs,
        "rounds": result.rounds,
        "full_cover": result.full_cover,
        "coverage": result.coverage.segment_cell_coverage(),
        "total_divergences": result.total_divergences,
        "counts": dict(sorted(result.counts.items())),
        "counterexamples": len(result.shrunk),
    }
    try:
        wh.record_run(
            "conformance",
            [(result.design, payload, data, False)],
            seed=result.seed,
            samples=result.pairs,
            wall_seconds=wall,
        )
    except WarehouseError as exc:
        telemetry.get().counter("warehouse.errors")
        telemetry.get().event(
            "warehouse.error", kind="conformance", cause=str(exc)
        )
    finally:
        wh.close()


def _persist_counterexamples(result: FuzzResult, cache) -> str | None:
    """Write the shrunk counterexamples under the cache dir, if resolved."""
    directory = resolve_cache_dir(cache)
    if directory is None:
        return None
    directory = pathlib.Path(directory) / "conformance"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.design}-b{result.bitwidth}-s{result.seed}.json"
    payload = {
        "design": result.design,
        "bitwidth": result.bitwidth,
        "seed": result.seed,
        "budget": result.budget,
        "layers": list(result.layers),
        "relations": list(result.relations),
        "total_divergences": result.total_divergences,
        "counterexamples": result.shrunk,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return str(path)
