"""Structural operand coverage over REALM's native coordinates.

Uniform Monte-Carlo rarely lands on the operand regions where
approximate-multiplier bugs concentrate — segment boundaries, leading-one
transitions, carry chains (Masadeh et al., PAPERS.md).  This module makes
those regions *countable*: every operand pair is mapped to a cell in the
log-domain coordinate system the REALM datapath itself computes with,

* the **leading-one interval pair** ``(ka, kb)`` — which power-of-two
  interval each operand falls in (the LOD output);
* the **segment cell** ``(i, j)`` — the ``log2(M)`` fraction MSBs of each
  operand, i.e. which entry of the ``M x M`` correction LUT the pair
  selects;
* the **fraction-LSB pattern** ``(pa, pb)`` — the low bits of the log
  fractions, the bits truncation and the forced rounding 1 interact with.

Not every cell is reachable: an operand in interval ``ka`` has only
``ka`` variable fraction bits, so for ``ka < log2(M)`` only segment
indices that are multiples of ``M / 2**ka`` occur.  The map knows the
exact reachable set (:meth:`CoverageMap.reachable_segments`), so coverage
fractions are over *reachable* cells — 100% is attainable and the fuzzer
in :mod:`repro.conformance.fuzz` targets exactly the uncovered remainder.

Hit counters export as a telemetry gauge (``conform.coverage``) and a
JSON-stable report dict; both are pure functions of the evaluated pair
stream, so they are bit-identical at any fuzzing worker count.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.factors import segment_index
from ..multipliers.mitchell import log_operands

__all__ = ["CoverageMap", "FAMILY_SEGMENTS", "default_segments"]

#: fraction LSBs tracked per operand (2 bits -> 16 joint patterns)
LSB_BITS = 2

#: family -> segment grid size, for designs whose config carries no
#: power-of-two ``m`` of its own.  Every registry family must appear here
#: (tests/test_registry_completeness.py enforces it) so that adding a
#: family without declaring its coverage structure is a loud failure,
#: not a silent 4x4 fallback.  scaleTRIM gets an 8x8 grid: its error
#: surface is stratified by the ``t``-bit scaled fraction and the
#: compensation buckets, which a 4x4 grid would alias together.
FAMILY_SEGMENTS: dict[str, int] = {
    "ALM-MAA": 4,
    "ALM-SOA": 4,
    "AM1": 4,
    "AM2": 4,
    "Accurate": 4,
    "DNNCO": 4,
    "DRUM": 4,
    "ESSM": 4,
    "ImpLM": 4,
    "IntALP": 4,
    "MBM": 4,
    "REALM": 16,
    "SSM": 4,
    "cALM": 4,
    "scaleTRIM": 8,
}


def default_segments(multiplier) -> int:
    """The natural segment grid for a design: its own ``M`` when the
    config carries one (REALM), else the :data:`FAMILY_SEGMENTS` entry
    for its family.  Unknown families raise ``KeyError`` — declare the
    structure when registering the family."""
    config = getattr(multiplier, "config", None)
    m = getattr(config, "m", None)
    if isinstance(m, int) and m >= 1 and (m & (m - 1)) == 0:
        return m
    family = getattr(multiplier, "family", None)
    try:
        return FAMILY_SEGMENTS[family]
    except KeyError:
        raise KeyError(
            f"family {family!r} has no FAMILY_SEGMENTS entry; add its "
            "segment grid to repro.conformance.coverage"
        ) from None


@dataclasses.dataclass
class CoverageMap:
    """Hit counters over ``(ka, kb) x (i, j)`` cells plus LSB patterns.

    ``cells[ka, kb, i, j]`` counts pairs whose operands fell in leading-one
    intervals ``(ka, kb)`` and selected segment cell ``(i, j)``;
    ``lsb[pa, pb]`` counts joint fraction-LSB patterns.  Pairs with a zero
    operand have no leading one and are tallied in ``zero_pairs``.
    """

    bitwidth: int
    m: int = 4
    lsb_bits: int = LSB_BITS

    def __post_init__(self):
        if self.m < 1 or (self.m & (self.m - 1)) != 0:
            raise ValueError(f"segment count m must be a power of two, got {self.m}")
        logm = self.m.bit_length() - 1
        if logm > self.bitwidth - 1:
            raise ValueError(
                f"m={self.m} needs {logm} fraction bits; "
                f"bitwidth {self.bitwidth} has {self.bitwidth - 1}"
            )
        if not 0 <= self.lsb_bits <= self.bitwidth - 1:
            raise ValueError(f"lsb_bits out of range: {self.lsb_bits}")
        n = self.bitwidth
        self.cells = np.zeros((n, n, self.m, self.m), dtype=np.int64)
        self.lsb = np.zeros((1 << self.lsb_bits, 1 << self.lsb_bits), dtype=np.int64)
        self.zero_pairs = 0
        self.pairs = 0

    # -- coordinate mapping ---------------------------------------------

    def coordinates(self, a, b):
        """Map operand arrays to ``(ka, kb, i, j, pa, pb, nonzero)``."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        width = self.bitwidth - 1
        ka, kb, xa, xb, nonzero = log_operands(a, b, self.bitwidth)
        i = segment_index(xa, width, self.m)
        j = segment_index(xb, width, self.m)
        pmask = (1 << self.lsb_bits) - 1
        return ka, kb, i, j, xa & pmask, xb & pmask, nonzero

    def newly_covered(self, a, b) -> np.ndarray:
        """Mask of pairs that would hit a currently-empty segment cell."""
        ka, kb, i, j, _, _, nonzero = self.coordinates(a, b)
        return nonzero & (self.cells[ka, kb, i, j] == 0)

    def update(self, a, b) -> int:
        """Tally a batch of pairs; returns how many new cells were hit."""
        a = np.atleast_1d(np.asarray(a, dtype=np.int64))
        b = np.atleast_1d(np.asarray(b, dtype=np.int64))
        ka, kb, i, j, pa, pb, nonzero = self.coordinates(a, b)
        before = int(np.count_nonzero(self.cells))
        np.add.at(self.cells, (ka[nonzero], kb[nonzero], i[nonzero], j[nonzero]), 1)
        np.add.at(self.lsb, (pa[nonzero], pb[nonzero]), 1)
        self.zero_pairs += int(np.count_nonzero(~nonzero))
        self.pairs += int(a.size)
        return int(np.count_nonzero(self.cells)) - before

    # -- reachability ----------------------------------------------------

    def reachable_segments(self, k: int) -> np.ndarray:
        """Segment indices an interval-``k`` operand can select.

        Interval ``k`` leaves ``k`` variable fraction bits, so for
        ``k < log2(M)`` only every ``M / 2**k``-th index occurs.
        """
        step = max(1, self.m >> min(k, self.m.bit_length() - 1))
        return np.arange(0, self.m, step, dtype=np.int64)

    def reachable_mask(self) -> np.ndarray:
        """Boolean mask over ``cells`` of the reachable coordinate tuples."""
        n = self.bitwidth
        per_k = np.zeros((n, self.m), dtype=bool)
        for k in range(n):
            per_k[k, self.reachable_segments(k)] = True
        return per_k[:, None, :, None] & per_k[None, :, None, :]

    def reachable_lsb_mask(self) -> np.ndarray:
        """Reachable joint LSB patterns (all of them when the fraction is
        at least ``lsb_bits`` wide, i.e. ``bitwidth - 1 >= lsb_bits``)."""
        count = 1 << self.lsb_bits
        if self.bitwidth - 1 >= self.lsb_bits:
            per = np.ones(count, dtype=bool)
        else:
            per = np.zeros(count, dtype=bool)
            step = 1 << (self.lsb_bits - (self.bitwidth - 1))
            per[::step] = True
        return per[:, None] & per[None, :]

    # -- queries ---------------------------------------------------------

    def uncovered(self) -> np.ndarray:
        """Reachable-but-unhit ``(ka, kb, i, j)`` tuples, lexicographic."""
        missing = self.reachable_mask() & (self.cells == 0)
        return np.argwhere(missing)

    def uncovered_lsb(self) -> np.ndarray:
        """Reachable-but-unhit ``(pa, pb)`` patterns, lexicographic."""
        missing = self.reachable_lsb_mask() & (self.lsb == 0)
        return np.argwhere(missing)

    def segment_cell_coverage(self) -> float:
        """Hit fraction of the reachable ``(ka, kb, i, j)`` cells."""
        reachable = self.reachable_mask()
        total = int(np.count_nonzero(reachable))
        hit = int(np.count_nonzero(self.cells[reachable]))
        return hit / total if total else 1.0

    def lsb_coverage(self) -> float:
        reachable = self.reachable_lsb_mask()
        total = int(np.count_nonzero(reachable))
        hit = int(np.count_nonzero(self.lsb[reachable]))
        return hit / total if total else 1.0

    def full_cover(self) -> bool:
        return self.uncovered().size == 0 and self.uncovered_lsb().size == 0

    # -- reporting -------------------------------------------------------

    def segment_table(self) -> np.ndarray:
        """Hit counts aggregated over intervals: an ``(M, M)`` grid."""
        return self.cells.sum(axis=(0, 1))

    def report(self) -> dict:
        """JSON-stable summary (pure function of the evaluated pairs)."""
        reachable = self.reachable_mask()
        lsb_reachable = self.reachable_lsb_mask()
        return {
            "bitwidth": self.bitwidth,
            "m": self.m,
            "lsb_bits": self.lsb_bits,
            "pairs": int(self.pairs),
            "zero_pairs": int(self.zero_pairs),
            "segment_cells": {
                "reachable": int(np.count_nonzero(reachable)),
                "hit": int(np.count_nonzero(self.cells[reachable])),
                "coverage": round(self.segment_cell_coverage(), 6),
            },
            "lsb_patterns": {
                "reachable": int(np.count_nonzero(lsb_reachable)),
                "hit": int(np.count_nonzero(self.lsb[lsb_reachable])),
                "coverage": round(self.lsb_coverage(), 6),
            },
            "segment_table": self.segment_table().tolist(),
        }
