"""Deterministic conformance reports: JSON artifact + terminal rendering.

The JSON report is a pure function of the evaluated pair stream — no
wall-clock timestamps, no host info, keys sorted — so two runs with the
same seed and budget (at any worker count) produce byte-identical files.
That property is what lets CI diff reports directly and what the
acceptance tests pin.
"""

from __future__ import annotations

import json

from .fuzz import FuzzResult

__all__ = ["build_report", "render_json", "render_text"]


def build_report(result: FuzzResult) -> dict:
    """Fold a :class:`~repro.conformance.fuzz.FuzzResult` into a
    JSON-stable dict (sorted keys on serialization, no timing fields)."""
    return {
        "design": result.design,
        "bitwidth": result.bitwidth,
        "m": result.m,
        "seed": result.seed,
        "budget": result.budget,
        "pairs": result.pairs,
        "rounds": result.rounds,
        "full_cover": result.full_cover,
        "layers": list(result.layers),
        "skipped_layers": dict(sorted(result.skipped_layers.items())),
        "relations": list(result.relations),
        "coverage": result.coverage.report(),
        "divergences": {
            "total": result.total_divergences,
            "by_check": dict(sorted(result.counts.items())),
            "records": [
                {
                    "kind": record.kind,
                    "name": record.name,
                    "a": record.a,
                    "b": record.b,
                    "got": record.got,
                    "want": record.want,
                }
                for record in result.records
            ],
            "shrunk": result.shrunk,
        },
        "ok": result.ok,
    }


def render_json(result: FuzzResult) -> str:
    return json.dumps(build_report(result), indent=1, sort_keys=True) + "\n"


def _coverage_table(result: FuzzResult) -> list[str]:
    """The per-cell ``(i, j)`` hit-count grid, intervals aggregated."""
    table = result.coverage.segment_table()
    m = result.m
    width = max(5, len(str(int(table.max()))) + 1)
    lines = ["segment-cell hits (rows: i of a, cols: j of b):"]
    header = "   i\\j " + "".join(f"{j:>{width}}" for j in range(m))
    lines.append(header)
    for i in range(m):
        row = "".join(f"{int(table[i, j]):>{width}}" for j in range(m))
        lines.append(f"  {i:>4} {row}")
    return lines


def render_text(result: FuzzResult) -> str:
    """Human-oriented summary: verdict, coverage, table, counterexamples."""
    lines = [
        f"design      {result.design} ({result.bitwidth}-bit, M={result.m})",
        f"layers      {', '.join(result.layers)}"
        + (
            f"  (skipped: {', '.join(sorted(result.skipped_layers))})"
            if result.skipped_layers
            else ""
        ),
        f"relations   {', '.join(result.relations)}",
        f"pairs       {result.pairs} of budget {result.budget}"
        f" in {result.rounds} round(s)",
        f"coverage    {result.coverage.segment_cell_coverage():.2%} of "
        f"{result.coverage.report()['segment_cells']['reachable']}"
        f" reachable segment cells, "
        f"{result.coverage.lsb_coverage():.2%} of LSB patterns"
        + ("  [full cover]" if result.full_cover else ""),
    ]
    lines.extend(_coverage_table(result))
    if result.ok:
        lines.append("verdict     OK — no divergences")
    else:
        lines.append(
            f"verdict     FAIL — {result.total_divergences} divergence(s)"
            f" across {len(result.counts)} check(s)"
        )
        for check, count in sorted(result.counts.items()):
            lines.append(f"  {check}: {count} recorded")
        for entry in result.shrunk:
            lines.append(
                f"  shrunk counterexample [{entry['kind']}:{entry['name']}]"
                f" a={entry['shrunk_a']} b={entry['shrunk_b']}"
                f" (from a={entry['a']} b={entry['b']})"
            )
        if result.counterexample_path:
            lines.append(f"  counterexamples saved to {result.counterexample_path}")
    return "\n".join(lines) + "\n"
