"""Cross-layer conformance checking for the multiplier zoo.

Four independent answers exist for "what does design X return on
``(a, b)``" — the functional models, the gate-level RTL netlists, the
served path, and exact arithmetic where exactness is guaranteed.  This
package ties them together: a differential + metamorphic oracle
(:mod:`.oracles`), a structural operand-coverage map in REALM's native
log-domain coordinates (:mod:`.coverage`), a deterministic
coverage-guided fuzzer with counterexample shrinking (:mod:`.fuzz`), and
byte-stable reporting (:mod:`.report`).  CLI: ``repro conform``.
"""

from .coverage import CoverageMap, default_segments
from .fuzz import BatchSpec, FuzzResult, fuzz, shrink_pair
from .oracles import DifferentialOracle, Divergence, resolve_design
from .report import build_report, render_json, render_text

__all__ = [
    "BatchSpec",
    "CoverageMap",
    "DifferentialOracle",
    "Divergence",
    "FuzzResult",
    "build_report",
    "default_segments",
    "fuzz",
    "render_json",
    "render_text",
    "resolve_design",
    "shrink_pair",
]
