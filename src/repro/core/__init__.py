"""The paper's primary contribution: REALM and its factor mathematics."""

from .bitops import floor_log2, log_fraction, mask, shift_value, truncate_fraction
from .config import RealmConfig
from .factors import (
    compute_factors,
    compute_factors_mse,
    dequantize_factors,
    mitchell_relative_error,
    quantize_factors,
    segment_denominator,
    segment_index,
    segment_numerator,
)
from .realm import RealmMultiplier
from .theory import TheoreticalMetrics, mitchell_bias, predict_metrics

__all__ = [
    "RealmConfig",
    "RealmMultiplier",
    "TheoreticalMetrics",
    "mitchell_bias",
    "predict_metrics",
    "compute_factors",
    "compute_factors_mse",
    "dequantize_factors",
    "floor_log2",
    "log_fraction",
    "mask",
    "mitchell_relative_error",
    "quantize_factors",
    "segment_denominator",
    "segment_index",
    "segment_numerator",
    "shift_value",
    "truncate_fraction",
]
