"""Bit-level helpers shared by the functional multiplier models.

All functions are vectorized over NumPy integer arrays and exact: they
mirror what the corresponding hardware blocks (leading-one detectors,
barrel shifters, truncation wiring) compute, bit for bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "floor_log2",
    "log_fraction",
    "truncate_fraction",
    "shift_value",
    "mask",
]


def floor_log2(values: np.ndarray) -> np.ndarray:
    """Position of the leading one of each value (``floor(log2(v))``).

    This is what the leading-one detector (LOD) plus priority encoder of a
    log-based multiplier computes.  Inputs must be positive integers below
    ``2**53`` (so the float64 trick below is exact).  Vectorized.
    """
    values = np.asarray(values)
    if np.any(values <= 0):
        raise ValueError("floor_log2 requires positive inputs")
    # frexp is exact for integers representable in float64: v = m * 2**e
    # with 0.5 <= m < 1, hence floor(log2(v)) == e - 1.
    _, exponents = np.frexp(values.astype(np.float64))
    return (exponents - 1).astype(np.int64)


def log_fraction(values: np.ndarray, k: np.ndarray, bitwidth: int) -> np.ndarray:
    """Fractional part of the linear-log, as a ``bitwidth-1``-bit integer.

    For ``v = 2**k * (1 + x)`` the fraction ``x`` is the bits of ``v`` below
    the leading one, left-aligned into ``bitwidth - 1`` bits by the input
    barrel shifter:  returned integer ``X`` satisfies ``x = X / 2**(N-1)``.
    """
    values = np.asarray(values, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    return (values - (np.int64(1) << k)) << (bitwidth - 1 - k)


def truncate_fraction(fraction: np.ndarray, t: int, width: int) -> np.ndarray:
    """Truncate ``t`` LSBs and force the new LSB to 1 (paper Section III-C).

    ``fraction`` is a ``width``-bit integer.  The result is a
    ``width - t``-bit integer whose LSB is the constant 1, so effectively
    ``t + 1`` of the original bits are dropped from the datapath.  The
    forced 1 is the round-to-mid compensation DRUM/MBM/REALM all use: it
    replaces the truncated tail (expected value half an LSB) by half an LSB.
    """
    if not 0 <= t < width:
        raise ValueError(f"truncation t={t} out of range for width {width}")
    fraction = np.asarray(fraction, dtype=np.int64)
    return (fraction >> t) | np.int64(1)


def shift_value(value: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """Arithmetic scaling by ``2**shift`` with floor semantics.

    ``shift`` may be negative (right shift): the final barrel shifter of a
    log multiplier floors away fraction bits that fall below the integer
    LSB (the paper's second "special case").  Vectorized over both args.
    """
    value = np.asarray(value, dtype=np.int64)
    shift = np.asarray(shift, dtype=np.int64)
    left = value << np.maximum(shift, 0)
    return left >> np.maximum(-shift, 0)


def mask(nbits: int) -> np.int64:
    """All-ones mask of ``nbits`` bits."""
    if nbits < 0:
        raise ValueError(f"mask width must be non-negative, got {nbits}")
    return np.int64((1 << nbits) - 1)
