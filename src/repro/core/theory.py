"""Closed-form error predictions for REALM — theory to check the MC against.

The Monte-Carlo numbers of Table I are estimates of integrals that the
paper's own formulation makes computable: with uniform operands the log
fractions ``(x, y)`` are (asymptotically in N) uniform on the unit square,
so REALM's corrected relative error ``E(x, y) = E_mitchell + s_ij * g``
(``g = 1/((1+x)(1+y))``, Eq. 7) has

* bias      = the integral of ``E`` over the square,
* mean error = the integral of ``|E|``,
* variance  = the integral of ``E^2`` minus bias^2,

each summed over the ``M x M`` segments.  This module evaluates those
integrals numerically to high precision, giving the infinite-resolution
limit of Table I's error columns — what the MC converges to as the sample
count grows and the fraction grid refines (``t = 0``, unquantized or
quantized factors).

Agreement between :func:`predict_metrics` and the measured 2^24-sample MC
(tested in ``tests/test_theory.py``) closes the loop between the paper's
mathematics and its experiment.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from .factors import compute_factors, dequantize_factors, quantize_factors

__all__ = ["TheoreticalMetrics", "predict_metrics", "mitchell_bias"]


@dataclasses.dataclass(frozen=True)
class TheoreticalMetrics:
    """Infinite-resolution error statistics (percent, like Table I)."""

    bias: float
    mean_error: float
    variance: float
    peak_min: float
    peak_max: float


def _segment_grid(m: int, i: int, j: int, points: int):
    """Gauss-Legendre tensor grid over segment (i, j) of the unit square."""
    nodes, weights = np.polynomial.legendre.leggauss(points)
    x0, x1 = i / m, (i + 1) / m
    y0, y1 = j / m, (j + 1) / m
    x = (nodes + 1.0) / 2.0 * (x1 - x0) + x0
    y = (nodes + 1.0) / 2.0 * (y1 - y0) + y0
    wx = weights * (x1 - x0) / 2.0
    wy = weights * (y1 - y0) / 2.0
    return x[:, None], y[None, :], wx[:, None] * wy[None, :]


def _corrected_error(x, y, s):
    denom = (1.0 + x) * (1.0 + y)
    mitchell = np.where(
        x + y < 1.0,
        (1.0 + x + y) / denom - 1.0,
        2.0 * (x + y) / denom - 1.0,
    )
    return mitchell + s / denom


@functools.lru_cache(maxsize=None)
def predict_metrics(
    m: int, q: int | None = 6, points: int = 96
) -> TheoreticalMetrics:
    """Predicted REALM error metrics for ``M`` segments at ``t = 0``.

    ``q`` selects the factor quantization (``None`` = ideal unquantized
    factors).  ``points`` is the per-axis Gauss-Legendre order per
    segment half; segments crossed by ``x + y = 1`` are split along the
    line so the integrand is smooth on every panel.
    """
    factors = compute_factors(m)
    if q is not None:
        factors = dequantize_factors(quantize_factors(factors, q), q)

    total_bias = 0.0
    total_abs = 0.0
    total_square = 0.0
    peak_min = 0.0
    peak_max = 0.0
    for i in range(m):
        for j in range(m):
            s = factors[i, j]
            if i + j == m - 1:
                # split the crossing segment into its two triangles by
                # integrating each branch with the indicator inside; the
                # high node count keeps the residual discretization error
                # far below the reported precision
                points_here = points * 2
            else:
                points_here = points
            x, y, w = _segment_grid(m, i, j, points_here)
            errors = _corrected_error(x, y, s)
            total_bias += float((errors * w).sum())
            total_abs += float((np.abs(errors) * w).sum())
            total_square += float((errors**2 * w).sum())
            peak_min = min(peak_min, float(errors.min()))
            peak_max = max(peak_max, float(errors.max()))

    variance = total_square - total_bias**2
    return TheoreticalMetrics(
        bias=total_bias * 100.0,
        mean_error=total_abs * 100.0,
        variance=variance * 100.0 * 100.0,
        peak_min=peak_min * 100.0,
        peak_max=peak_max * 100.0,
    )


def mitchell_bias() -> float:
    """cALM's theoretical bias in percent: the whole-square integral."""
    from .factors import segment_numerator

    return segment_numerator(1, 0, 0) * 100.0
