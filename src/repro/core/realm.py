"""REALM: the reduced-error approximate log-based multiplier (paper Fig. 3).

The functional model mirrors the hardware datapath bit for bit:

1. Leading-one detectors and input barrel shifters produce the
   characteristics ``ka, kb`` and the ``N-1``-bit log fractions ``x, y``.
2. The fractions are truncated by ``t`` bits with a forced rounding 1
   (paper Section III-C: ``t+1`` shifter output bits are dropped).
3. The ``log2(M)`` MSBs of each fraction select the segment, and the
   quantized error-reduction factor ``s_ij`` is fetched from the hardwired
   constant-input LUT mux.
4. The fractions are added; the carry-out ``c_of`` selects ``s_ij`` or
   ``s_ij >> 1`` (the 2x1 mux of Fig. 3) so that Eq. 13 is realized before
   the final scaling.
5. The output barrel shifter scales the corrected mantissa by
   ``2**(ka + kb + c_of)``; fraction bits that fall below the integer LSB
   are floored away (the paper's second special case).

The paper's first special case — the corrected product overflowing to
``2N + 1`` bits for operands near ``2**N - 1`` — is handled by the
``overflow`` mode: ``"extend"`` (default) keeps the exact wider value, as
the error characterization needs, while ``"saturate"`` clamps to
``2**(2N) - 1`` like a strictly ``2N``-bit output port would.
"""

from __future__ import annotations

import numpy as np

from ..multipliers.base import Multiplier
from .bitops import mask, shift_value, truncate_fraction
from .config import RealmConfig
from .factors import (
    compute_factors,
    compute_factors_mse,
    quantize_factors,
    segment_index,
)
from ..multipliers.mitchell import log_operands

__all__ = ["RealmMultiplier"]


class RealmMultiplier(Multiplier):
    """The proposed REALM multiplier (paper Section III).

    Parameters mirror :class:`repro.core.config.RealmConfig`; a config
    object may also be passed directly.  The LUT codes are computed once at
    construction (the paper computes them offline and hardwires them).

    >>> realm = RealmMultiplier(m=16, t=0)
    >>> int(realm.multiply(40000, 50000))  # doctest: +SKIP
    """

    family = "REALM"

    def __init__(
        self,
        bitwidth: int = 16,
        m: int = 16,
        t: int = 0,
        q: int = 6,
        objective: str = "mean",
        overflow: str = "extend",
        config: RealmConfig | None = None,
    ):
        if config is None:
            config = RealmConfig(
                bitwidth=bitwidth, m=m, t=t, q=q, objective=objective
            )
        super().__init__(config.bitwidth)
        if overflow not in ("extend", "saturate"):
            raise ValueError(
                f"overflow must be 'extend' or 'saturate', got {overflow!r}"
            )
        self.config = config
        self.overflow = overflow
        factors = (
            compute_factors(config.m)
            if config.objective == "mean"
            else compute_factors_mse(config.m)
        )
        #: (M, M) int LUT codes; value = code / 2**q  (paper Section III-C)
        self.lut_codes = quantize_factors(factors, config.q)

    @property
    def name(self) -> str:
        return self.config.name

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        cfg = self.config
        raw_width = self.bitwidth - 1
        ka, kb, xa, xb, nonzero = log_operands(a, b, self.bitwidth)

        # Segment selection uses the fraction MSBs, which truncation never
        # touches (Fig. 3: x_msbs / y_msbs feed the LUT mux select lines).
        i = segment_index(xa, raw_width, cfg.m)
        j = segment_index(xb, raw_width, cfg.m)
        s_codes = self.lut_codes[i, j]

        # Fraction truncation with the forced rounding 1 (t+1 bits dropped).
        width = cfg.fraction_width
        xa_t = truncate_fraction(xa, cfg.t, raw_width)
        xb_t = truncate_fraction(xb, cfg.t, raw_width)

        fraction_sum = xa_t + xb_t  # width+1 bits; MSB is c_of
        carry = fraction_sum >> width

        # Fixed-point realization of Eq. 13.  The LUT output is added to
        # the fraction sum, so it is aligned to the fraction grid
        # (2**-width): factor bits below that grid are floored away by the
        # adder wiring.  For the paper's q=6 this matters only at t=9,
        # where the halved factor s_ij/2 loses its LSB — which is exactly
        # the paper's observed t=9 bias/error jump (Table I).
        s_full = shift_value(s_codes, width - cfg.q)
        s_half = shift_value(s_codes, width - cfg.q - 1)
        mantissa = np.where(
            carry == 0,
            # 2**(ka+kb)   * (1 + x + y + s_ij)
            (np.int64(1) << width) + fraction_sum + s_full,
            # 2**(ka+kb+1) * (x + y + s_ij/2); fraction_sum already >= 2**width
            fraction_sum + s_half,
        )
        product = shift_value(mantissa, ka + kb + carry - width)
        product = np.where(nonzero, product, 0)
        if self.overflow == "saturate":
            product = np.minimum(product, mask(2 * self.bitwidth))
        return product
