"""Configuration record for REALM design points.

REALM exposes two design-time error-configuration knobs (paper
Section III-C):

* ``m`` — number of segments per power-of-two-interval axis (the paper's
  ``M``); the LUT then stores ``M**2`` quantized factors.  Must be a power
  of two so the segment index is a plain bit-slice of the log fraction.
* ``t`` — number of LSBs truncated from the ``N-1``-bit log fractions
  (with the forced rounding 1, so ``t+1`` barrel-shifter output bits are
  dropped).

``q`` is the LUT precision (the paper evaluates ``q = 6``) and
``objective`` selects how the factors are derived: ``"mean"`` is the
paper's formulation (zero average relative error per segment, Eq. 8);
``"mse"`` is the future-work least-squares variant.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RealmConfig"]


@dataclasses.dataclass(frozen=True)
class RealmConfig:
    """A single REALM design point."""

    bitwidth: int = 16
    m: int = 16
    t: int = 0
    q: int = 6
    objective: str = "mean"

    def __post_init__(self) -> None:
        if self.bitwidth < 2:
            raise ValueError(f"bitwidth must be >= 2, got {self.bitwidth}")
        if self.m < 1 or (self.m & (self.m - 1)) != 0:
            raise ValueError(f"M must be a power of two >= 1, got {self.m}")
        logm = self.m.bit_length() - 1
        if logm > self.bitwidth - 1:
            raise ValueError(
                f"M={self.m} needs {logm} fraction MSBs but the fraction "
                f"has only {self.bitwidth - 1} bits"
            )
        if not 0 <= self.t < self.bitwidth - 1:
            raise ValueError(
                f"truncation t must be in [0, {self.bitwidth - 2}], got {self.t}"
            )
        if self.fraction_width < logm:
            raise ValueError(
                f"t={self.t} leaves a {self.fraction_width}-bit fraction, too "
                f"narrow to index M={self.m} segments"
            )
        if self.q < 3:
            raise ValueError(f"LUT precision q must be >= 3, got {self.q}")
        if self.objective not in ("mean", "mse"):
            raise ValueError(
                f"objective must be 'mean' or 'mse', got {self.objective!r}"
            )

    @property
    def fraction_width(self) -> int:
        """Width of the truncated log fraction fed to the adder."""
        return self.bitwidth - 1 - self.t

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"REALM16 (t=3)"``."""
        suffix = "" if self.objective == "mean" else f", {self.objective}"
        return f"REALM{self.m} (t={self.t}{suffix})"
