"""Error-reduction factors ``s_ij`` for REALM (paper Section III-B).

The classical log-based multiplier (Mitchell [8]) has relative error

.. math::

    \\tilde{E}_{rel}(x, y) =
    \\begin{cases}
        \\frac{1+x+y}{(1+x)(1+y)} - 1, & x + y < 1 \\\\
        \\frac{2(x+y)}{(1+x)(1+y)} - 1, & x + y \\ge 1
    \\end{cases}

where ``x`` and ``y`` are the fractional parts of the binary logs of the
operands.  REALM partitions the unit square of ``(x, y)`` into ``M x M``
equispaced segments and solves, per segment ``(i, j)``, for the factor that
zeroes the average relative error over the segment (paper Eq. 8-11):

.. math::

    s_{ij} = - \\frac{\\iint_{seg} \\tilde{E}_{rel} \\, dx\\,dy}
                    {\\iint_{seg} \\frac{dx\\,dy}{(1+x)(1+y)}}

The paper computes these integrals with the MATLAB Symbolic Math Toolbox;
here they are evaluated with closed-form antiderivatives for segments that
lie entirely on one side of the line ``x + y = 1``, and with adaptive
quadrature (``scipy.integrate.dblquad``) for the anti-diagonal segments the
line crosses.  For equispaced segments the line crosses a segment exactly
when ``i + j == M - 1``, and then it passes through two opposite corners of
the segment, splitting it into two triangles.

Invariants established by the mathematics (and enforced by the test suite):

* ``s_ij == s_ji`` (the error surface is symmetric in ``x`` and ``y``);
* ``0 < s_ij < 0.25`` for every segment (paper Section III-C observes this
  for practical ``M`` and uses it to drop the two always-zero MSBs of the
  stored values).

The paper also mentions, as future work, re-deriving the factors for other
error objectives such as mean *square* error; :func:`compute_factors_mse`
implements that variant (least-squares optimal ``s_ij``).
"""

from __future__ import annotations

import functools
import math

import numpy as np
from scipy import integrate

__all__ = [
    "mitchell_relative_error",
    "compute_factors",
    "compute_factors_mse",
    "quantize_factors",
    "dequantize_factors",
    "segment_numerator",
    "segment_denominator",
    "segment_index",
]


def mitchell_relative_error(x, y):
    """Relative error of the classical log-based multiplier (paper Eq. 5).

    ``x`` and ``y`` are the fractional parts of the operand logs, both in
    ``[0, 1)``.  Accepts scalars or NumPy arrays (broadcast), returns the
    signed relative error ``(C_approx - C) / C``.  The value is always in
    ``[-1/9, 0]``: Mitchell's multiplier never overestimates.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    denom = (1.0 + x) * (1.0 + y)
    low = (1.0 + x + y) / denom - 1.0
    high = 2.0 * (x + y) / denom - 1.0
    return np.where(x + y < 1.0, low, high)


def _log_ratio(a0: float, a1: float) -> float:
    """``ln((1 + a1) / (1 + a0))``, the 1-D building block of the integrals."""
    return math.log1p(a1) - math.log1p(a0)


def _rect_integral_low(x0: float, x1: float, y0: float, y1: float) -> float:
    """Integral of the ``x + y < 1`` branch of Eq. 5 over a rectangle.

    Uses the decomposition
    ``(1+x+y)/((1+x)(1+y)) = 1/(1+y) + y/((1+x)(1+y))`` so every term has an
    elementary antiderivative.
    """
    lx = _log_ratio(x0, x1)
    ly = _log_ratio(y0, y1)
    area = (x1 - x0) * (y1 - y0)
    # integral of y/(1+y) over [y0, y1]
    int_y_frac = (y1 - y0) - ly
    return (x1 - x0) * ly + lx * int_y_frac - area


def _rect_integral_high(x0: float, x1: float, y0: float, y1: float) -> float:
    """Integral of the ``x + y >= 1`` branch of Eq. 5 over a rectangle.

    Uses ``2(x+y)/((1+x)(1+y)) = 2/(1+y) + 2/(1+x) - 4/((1+x)(1+y))``.
    """
    lx = _log_ratio(x0, x1)
    ly = _log_ratio(y0, y1)
    area = (x1 - x0) * (y1 - y0)
    return 2.0 * (x1 - x0) * ly + 2.0 * (y1 - y0) * lx - 4.0 * lx * ly - area


def _crossing_integral(x0: float, x1: float, y0: float, y1: float) -> float:
    """Integral of Eq. 5 over a segment crossed by the line ``x + y = 1``.

    For equispaced segments the line runs corner-to-corner, splitting the
    rectangle into a lower-left triangle (``x + y < 1`` branch) and an
    upper-right triangle (``x + y >= 1`` branch).  The triangle integrals
    involve dilogarithms, so adaptive quadrature is used instead of closed
    forms; tolerances are far below the ``q``-bit quantization step the
    factors are later rounded to.
    """
    lower, lower_err = integrate.dblquad(
        lambda y, x: (1.0 + x + y) / ((1.0 + x) * (1.0 + y)) - 1.0,
        x0,
        x1,
        y0,
        lambda x: min(y1, max(y0, 1.0 - x)),
        epsabs=1e-13,
        epsrel=1e-12,
    )
    upper, upper_err = integrate.dblquad(
        lambda y, x: 2.0 * (x + y) / ((1.0 + x) * (1.0 + y)) - 1.0,
        x0,
        x1,
        lambda x: min(y1, max(y0, 1.0 - x)),
        y1,
        epsabs=1e-13,
        epsrel=1e-12,
    )
    if lower_err + upper_err > 1e-9:
        raise ArithmeticError(
            f"quadrature failed to converge on segment [{x0},{x1}]x[{y0},{y1}]"
        )
    return lower + upper


def segment_numerator(m: int, i: int, j: int) -> float:
    """Integral of the Mitchell relative error over segment ``(i, j)``.

    This is the numerator integral of paper Eq. 11 (without the minus sign).
    Segment ``(i, j)`` covers ``x`` in ``[i/M, (i+1)/M]`` and ``y`` in
    ``[j/M, (j+1)/M]``.
    """
    _check_segment(m, i, j)
    x0, x1 = i / m, (i + 1) / m
    y0, y1 = j / m, (j + 1) / m
    if i + j + 2 <= m:
        # Entire segment satisfies x + y <= 1 (the boundary case
        # i + j + 2 == m touches the line only along an edge of measure 0).
        return _rect_integral_low(x0, x1, y0, y1)
    if i + j >= m:
        return _rect_integral_high(x0, x1, y0, y1)
    return _crossing_integral(x0, x1, y0, y1)


def segment_denominator(m: int, i: int, j: int) -> float:
    """Integral of ``1 / ((1+x)(1+y))`` over segment ``(i, j)`` (Eq. 11).

    Separable, hence exactly ``ln((1+x1)/(1+x0)) * ln((1+y1)/(1+y0))``.
    """
    _check_segment(m, i, j)
    return _log_ratio(i / m, (i + 1) / m) * _log_ratio(j / m, (j + 1) / m)


def _check_segment(m: int, i: int, j: int) -> None:
    if m < 1:
        raise ValueError(f"number of segments M must be >= 1, got {m}")
    if not (0 <= i < m and 0 <= j < m):
        raise ValueError(f"segment indices must be in [0, {m}), got ({i}, {j})")


@functools.lru_cache(maxsize=None)
def _factors_cached(m: int) -> tuple[tuple[float, ...], ...]:
    rows = []
    for i in range(m):
        row = []
        for j in range(m):
            if j < i:
                row.append(rows[j][i])  # symmetry: s_ij == s_ji
                continue
            s = -segment_numerator(m, i, j) / segment_denominator(m, i, j)
            row.append(s)
        rows.append(tuple(row))
    return tuple(rows)


def compute_factors(m: int) -> np.ndarray:
    """Error-reduction factors ``s_ij`` for ``M x M`` segments (Eq. 11).

    Returns an ``(M, M)`` float array indexed ``[i, j]`` where ``i`` is the
    segment index of ``x`` (first operand's log fraction) and ``j`` of ``y``.
    The factors are interval-independent (Eq. 12): the same table serves
    every power-of-two interval of the operands.
    """
    return np.array(_factors_cached(m), dtype=float)


@functools.lru_cache(maxsize=None)
def _factors_mse_cached(m: int) -> tuple[tuple[float, ...], ...]:
    def weight(y, x):
        return 1.0 / ((1.0 + x) * (1.0 + y))

    def err_times_weight(y, x):
        if x + y < 1.0:
            e = (1.0 + x + y) / ((1.0 + x) * (1.0 + y)) - 1.0
        else:
            e = 2.0 * (x + y) / ((1.0 + x) * (1.0 + y)) - 1.0
        return e * weight(y, x)

    rows = []
    for i in range(m):
        row = []
        for j in range(m):
            if j < i:
                row.append(rows[j][i])
                continue
            x0, x1 = i / m, (i + 1) / m
            y0, y1 = j / m, (j + 1) / m
            # tolerances sit well below the q-bit quantization step; the
            # suppressed roundoff warning fires when quadpack converges
            # past float64 noise on the kink along x + y = 1
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", integrate.IntegrationWarning)
                num, _ = integrate.dblquad(
                    err_times_weight, x0, x1, y0, y1, epsabs=1e-11, epsrel=1e-10
                )
                den, _ = integrate.dblquad(
                    lambda y, x: weight(y, x) ** 2,
                    x0,
                    x1,
                    y0,
                    y1,
                    epsabs=1e-11,
                    epsrel=1e-10,
                )
            row.append(-num / den)
        rows.append(tuple(row))
    return tuple(rows)


def compute_factors_mse(m: int) -> np.ndarray:
    """Least-squares-optimal factors (the paper's future-work variant).

    Instead of zeroing the segment's *average* relative error (Eq. 8), each
    factor minimizes the segment's *mean squared* relative error:
    ``d/ds \\iint (E + s * g)^2 = 0`` with ``g = 1/((1+x)(1+y))`` gives
    ``s = -(\\iint E g) / (\\iint g^2)``.
    """
    return np.array(_factors_mse_cached(m), dtype=float)


def quantize_factors(factors: np.ndarray, q: int) -> np.ndarray:
    """Round factors to ``q``-bit precision (paper Section III-C).

    The LSB weight is ``2^-q`` and round-to-nearest is applied.  Returns an
    integer array of the fixed-point codes (value = code / 2^q).  For the
    practical ``M`` of the paper every factor is in ``(0, 0.25)``, so the
    codes fit in ``q - 2`` bits; this function validates that property so a
    hardware LUT of width ``q - 2`` is always sufficient.
    """
    if q < 3:
        raise ValueError(f"LUT precision q must be >= 3 bits, got {q}")
    factors = np.asarray(factors, dtype=float)
    if np.any(factors < 0.0) or np.any(factors >= 0.25):
        raise ValueError("factors outside [0, 0.25): q-2 bit storage invalid")
    codes = np.rint(factors * (1 << q)).astype(np.int64)
    # Round-to-nearest of a value just below 0.25 can still land on the
    # 0.25 code; clamp into the q-2-bit range like the hardwired LUT would.
    limit = (1 << (q - 2)) - 1
    return np.minimum(codes, limit)


def dequantize_factors(codes: np.ndarray, q: int) -> np.ndarray:
    """Real values represented by ``q``-bit LUT codes."""
    return np.asarray(codes, dtype=float) / float(1 << q)


def segment_index(fraction_bits: np.ndarray, width: int, m: int) -> np.ndarray:
    """Segment index from the ``log2(M)`` MSBs of a log fraction.

    ``fraction_bits`` holds the fraction as unsigned integers of ``width``
    bits (value = bits / 2**width).  Equispaced segmentation makes the index
    a pure bit-slice (paper Fig. 3: ``x_msbs`` / ``y_msbs`` drive the LUT
    mux select lines).
    """
    logm = m.bit_length() - 1
    if 1 << logm != m:
        raise ValueError(f"M must be a power of two, got {m}")
    if logm > width:
        raise ValueError(f"log2(M)={logm} exceeds fraction width {width}")
    return np.asarray(fraction_bits) >> (width - logm)
