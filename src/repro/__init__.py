"""REALM: Reduced-Error Approximate Log-based Integer Multiplier.

Full reproduction of Saadat, Javaid, Ignjatovic, Parameswaran (DATE 2020):
the REALM multiplier, every baseline of its evaluation, bit-accurate
functional models, gate-level structural models with a calibrated
area/power cost model, the error-characterization framework, and the JPEG
application study.

Quickstart::

    from repro import RealmMultiplier, characterize

    realm = RealmMultiplier(bitwidth=16, m=16, t=0)
    print(realm.multiply(40000, 50000))
    print(characterize(realm, samples=1 << 20))

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every table and figure.
"""

from .core.config import RealmConfig
from .core.factors import (
    compute_factors,
    compute_factors_mse,
    mitchell_relative_error,
    quantize_factors,
)
from .core.realm import RealmMultiplier
from .analysis.metrics import ErrorMetrics, compute_metrics
from .analysis.montecarlo import characterize
from .multipliers.base import Multiplier
from .multipliers.registry import REGISTRY, TABLE1_IDS, build
from .explore import Candidate, Constraints, explore
from .multipliers.signed import SignedMultiplier, convolve2d, dot_product

__version__ = "1.0.0"

__all__ = [
    "Candidate",
    "Constraints",
    "ErrorMetrics",
    "Multiplier",
    "REGISTRY",
    "RealmConfig",
    "RealmMultiplier",
    "SignedMultiplier",
    "TABLE1_IDS",
    "build",
    "characterize",
    "compute_factors",
    "compute_factors_mse",
    "compute_metrics",
    "convolve2d",
    "dot_product",
    "explore",
    "mitchell_relative_error",
    "quantize_factors",
    "__version__",
]
