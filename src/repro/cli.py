"""Command-line interface: regenerate any table or figure of the paper.

::

    repro-realm list                      # all named configurations
    repro-realm multiply realm16-t0 40000 50000
    repro-realm factors --m 8             # the s_ij table + LUT codes
    repro-realm table1 [--quick]          # errors + synthesis columns
    repro-realm table2                    # JPEG PSNR study
    repro-realm fig1 | fig2 | fig3 | fig4 | fig5
    repro-realm characterize realm8-t4    # one design's error metrics
    repro-realm characterize calm --trace trace.jsonl
    repro-realm telemetry summarize trace.jsonl
    repro-realm serve --port 7325         # batched TCP serving layer
    repro-realm client multiply realm16-t0 40000 50000
    repro-realm client characterize drum-k8 --samples 65536

``--quick`` shrinks the Monte-Carlo depth for fast smoke runs; the
defaults match the reproduction used in EXPERIMENTS.md.  ``--trace``
records a JSONL telemetry trace of the whole command (per-phase wall/CPU
timings, cache/retry counters — see ``repro.analysis.telemetry``), and
``telemetry summarize`` renders one as a per-phase table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import experiments, paper
from .analysis import telemetry
from .analysis.cache import cache_stats
from .analysis.distribution import ascii_histogram
from .analysis.montecarlo import characterize
from .analysis.profiles import ascii_heatmap
from .multipliers.registry import build, names

QUICK_SAMPLES = 1 << 18


def _samples(args) -> int:
    return QUICK_SAMPLES if args.quick else args.samples


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if not value >= 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _known_design(args) -> "object":
    """Build ``args.design``, or exit 2 with a readable message.

    An unknown design id is a usage error, not a crash: the CLI answers
    with the same message the library's ``KeyError`` carries, plus the
    hint, on stderr.
    """
    try:
        return build(args.design)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        print("hint: 'repro-realm list' shows all design ids", file=sys.stderr)
        raise SystemExit(2) from None


def _engine_options(args) -> dict:
    """Monte-Carlo engine knobs shared by the characterization commands."""
    cache = False if getattr(args, "no_cache", False) else getattr(args, "cache", None)
    resume = getattr(args, "resume", False)
    return {
        "workers": getattr(args, "workers", None),
        "cache": cache,
        "progress": _progress_printer(args),
        "max_retries": getattr(args, "max_retries", None),
        "batch_timeout": getattr(args, "batch_timeout", None),
        # --resume implies checkpointing, else there is nothing to resume to
        "checkpoint": getattr(args, "checkpoint", False) or resume,
        "resume": resume,
        "warehouse": _warehouse_option(args),
    }


def _warehouse_option(args):
    """The experiment-warehouse argument from ``--warehouse``/``--no-warehouse``."""
    if getattr(args, "no_warehouse", False):
        return False
    return getattr(args, "warehouse", None)


def _progress_printer(args):
    if not getattr(args, "progress", False):
        return None

    def emit(event):
        kind = event.get("event")
        if kind == "design":
            print(
                f"[{event['index']}/{event['total']}] {event['design']}: "
                f"{event['seconds']:.2f}s (cache {event['cache']})",
                file=sys.stderr,
            )
        elif kind == "done":
            rate = event.get("samples_per_sec")
            rate_text = f"  {rate / 1e6:.2f} Msamples/s" if rate else ""
            print(
                f"{event['design']}: {event['samples']} samples in "
                f"{event['seconds']:.2f}s{rate_text} (cache {event['cache']})",
                file=sys.stderr,
            )
        elif kind == "retry":
            print(
                f"{event['design']}: retrying batch@{event['batch']} "
                f"(attempt {event['attempt']}, backoff {event['delay']:.2f}s): "
                f"{event['cause']}",
                file=sys.stderr,
            )
        elif kind == "pool-rebuild":
            print(
                f"{event['design']}: rebuilding worker pool "
                f"(#{event['rebuilds']}): {event['cause']}",
                file=sys.stderr,
            )
        elif kind == "degraded":
            print(
                f"{event['design']}: degraded to serial execution after "
                f"{event['rebuilds']} pool rebuilds ({event['cause']})",
                file=sys.stderr,
            )
        elif kind == "resume":
            print(
                f"{event['design']}: resumed {event['blocks_done']} block(s) "
                f"({event['samples_done']} samples) from checkpoint",
                file=sys.stderr,
            )
        elif kind == "design-fallback":
            print(
                f"{event['design']}: worker task failed, recomputing "
                f"serially: {event['cause']}",
                file=sys.stderr,
            )

    return emit


class _RunSummary:
    """Prints wall time, throughput and cache hit/miss counts on exit."""

    def __init__(self, samples: int | None = None):
        self.samples = samples

    def __enter__(self):
        import time

        self.start = time.perf_counter()
        self.stats = cache_stats()
        return self

    def __exit__(self, exc_type, exc, tb):
        import time

        if exc_type is not None:
            return
        elapsed = time.perf_counter() - self.start
        after = cache_stats()
        hits = after.hits - self.stats.hits
        misses = after.misses - self.stats.misses
        parts = [f"wall {elapsed:.2f}s"]
        if self.samples and elapsed > 0:
            parts.append(f"{self.samples / elapsed / 1e6:.2f} Msamples/s/design")
        parts.append(f"cache {hits} hit / {misses} miss")
        print("# " + "  ".join(parts), file=sys.stderr)


def cmd_list(args) -> int:
    for name in names():
        print(f"{name:14s} {build(name).name}")
    return 0


def cmd_multiply(args) -> int:
    multiplier = _known_design(args)
    try:
        product = int(multiplier.multiply(args.a, args.b))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    exact = args.a * args.b
    print(f"{multiplier.name}: {args.a} * {args.b} = {product}")
    if exact:
        print(f"exact {exact}, relative error {(product - exact) / exact * 100:+.4f}%")
    return 0


def cmd_factors(args) -> int:
    from .core.factors import compute_factors, compute_factors_mse, quantize_factors

    factors = (
        compute_factors(args.m) if args.objective == "mean" else compute_factors_mse(args.m)
    )
    codes = quantize_factors(factors, args.q)
    print(f"s_ij factors for M={args.m} (objective={args.objective}):")
    print(np.array2string(factors, precision=5, suppress_small=True))
    print(f"\nquantized LUT codes (q={args.q}, value = code / {1 << args.q}):")
    print(np.array2string(codes))
    return 0


def cmd_characterize(args) -> int:
    multiplier = _known_design(args)
    with _RunSummary(_samples(args)):
        metrics = characterize(multiplier, samples=_samples(args), **_engine_options(args))
    print(f"{multiplier.name}: {metrics}")
    reference = paper.TABLE1.get(args.design)
    if reference is not None:
        print(
            "paper:  bias "
            f"{reference.bias}%  ME {reference.mean_error}%  "
            f"peak [{reference.peak_min}%, {reference.peak_max}%]  "
            f"var {reference.variance}"
        )
    return 0


def cmd_table1(args) -> int:
    with _RunSummary(_samples(args)):
        text = experiments.table1_text(samples=_samples(args), **_engine_options(args))
    print(text)
    return 0


def cmd_table2(args) -> int:
    print(experiments.table2_text())
    print(
        "\nNote: images are procedural stand-ins (DESIGN.md); compare the"
        " accurate-vs-approximate PSNR gaps, not the absolute values."
    )
    return 0


def cmd_fig1(args) -> int:
    for name, summary in experiments.fig1_profiles().items():
        print(
            f"\n{summary.name}  (A,B in {{32..255}}):  "
            f"ME {summary.mean_error:.2f}%  peak {summary.peak_error:.2f}%  "
            f"bias {summary.bias:+.2f}%"
        )
        print(ascii_heatmap(summary.errors, width=56))
    return 0


def cmd_fig2(args) -> int:
    data = experiments.fig2_segments(m=args.m)
    print(f"cALM per-segment mean relative error (%%), M={args.m}:")
    print(np.array2string(data["calm_segment_means"] * 100, precision=2))
    print("\nREALM per-segment mean relative error (%):")
    print(np.array2string(data["realm_segment_means"] * 100, precision=2))
    print("\nerror-reduction factors s_ij:")
    print(np.array2string(data["factors"], precision=4))
    return 0


def cmd_fig3(args) -> int:
    info = experiments.fig3_hardware(m=args.m, t=args.t)
    print(f"REALM{args.m} (t={args.t}) datapath:")
    for key in ("gate_count", "depth", "area_um2", "power_uw", "lut_entries",
                "lut_width_bits", "output_bits"):
        print(f"  {key:15s} {info[key]}")
    print("  cells:", ", ".join(f"{k}x{v}" for k, v in sorted(info["cells"].items())))
    return 0


def cmd_fig4(args) -> int:
    with _RunSummary(_samples(args)):
        data = experiments.fig4_designspace(
            source=args.source, samples=_samples(args), **_engine_options(args)
        )
    print(f"design space ({args.source} synthesis numbers):")
    rows = [
        (
            p.display,
            f"{p.area_reduction:.1f}",
            f"{p.power_reduction:.1f}",
            f"{p.mean_error:.2f}",
            f"{p.peak_error:.2f}",
        )
        for p in data["plotted"]
    ]
    print(
        experiments.format_table(
            ["design", "areaR%", "powR%", "ME%", "PE%"], rows
        )
    )
    for panel, front in data["fronts"].items():
        realm = sum(1 for n in front if n.startswith("realm"))
        print(f"\nPareto front ({panel}): {realm}/{len(front)} REALM points")
        print("  " + " -> ".join(front))
    return 0


def cmd_fig5(args) -> int:
    for histogram in experiments.fig5_histograms(samples=_samples(args)):
        print(f"\n{histogram.name}: spread {histogram.spread():.2f}%  "
              f"mode {histogram.mode_center():+.2f}%")
        print(ascii_histogram(histogram))
    return 0


def cmd_verilog(args) -> int:
    import numpy as np

    from .circuits.catalog import netlist_for
    from .logic.sim import evaluate_words
    from .logic.verilog import testbench, to_verilog

    netlist = netlist_for(args.design)
    text = to_verilog(netlist)
    if args.testbench:
        rng = np.random.default_rng(0)
        width = len(netlist.inputs) // 2
        a = rng.integers(0, 1 << width, args.vectors)
        b = rng.integers(0, 1 << width, args.vectors)
        buses = [netlist.inputs[:width], netlist.inputs[width:]]
        golden = evaluate_words(netlist, buses, [a, b])
        text += "\n\n" + testbench(netlist, buses, [a, b], golden)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text)
    return 0


def cmd_report(args) -> int:
    if args.design is not None:
        from .circuits.catalog import netlist_for
        from .synth.report import design_report

        print(design_report(netlist_for(args.design)))
        return 0
    from .warehouse import build_trends, open_warehouse, render_json, render_text

    warehouse = _warehouse_option(args)
    wh = open_warehouse(True if warehouse is None else warehouse)
    if wh is None:
        print(
            "no experiment warehouse available (pass --warehouse DIR or set "
            "REPRO_WAREHOUSE_DIR / REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 1
    try:
        trends = build_trends(wh, kind=args.kind, limit=args.limit)
    finally:
        wh.close()
    sys.stdout.write(render_json(trends) if args.json else render_text(trends))
    return 0


def cmd_theory(args) -> int:
    from .core.theory import predict_metrics

    for m in (4, 8, 16):
        theory = predict_metrics(m, q=args.q)
        print(
            f"REALM{m:2d} (q={args.q}): bias {theory.bias:+.3f}%  "
            f"ME {theory.mean_error:.3f}%  var {theory.variance:.3f}  "
            f"peaks [{theory.peak_min:.2f}%, {theory.peak_max:.2f}%]"
        )
    return 0


def cmd_nn(args) -> int:
    from .experiments import format_table
    from .nn import evaluate_multipliers, float_accuracy, logit_distortion, trained_setup

    designs = args.designs or [
        "accurate", "realm16-t0", "realm4-t9", "mbm-t0", "calm", "drum-k8",
    ]
    data, params = trained_setup()
    print(f"float reference accuracy: {float_accuracy(data, params):.3f}\n")
    accuracy = evaluate_multipliers(designs)
    distortion = logit_distortion(designs)
    rows = [
        (build(name).name, f"{accuracy[name]:.3f}", f"{distortion[name]:.2f}")
        for name in designs
    ]
    print(format_table(["multiplier", "accuracy", "logit distortion %"], rows))
    return 0


def cmd_cnn(args) -> int:
    from .experiments import cnn_text

    print(cnn_text(args.designs or None, warehouse=_warehouse_option(args)))
    return 0


def cmd_fir(args) -> int:
    from .dsp import fir_filter, lowpass_taps, multitone_signal, output_snr_db, quantize_q15
    from .experiments import format_table

    designs = args.designs or [
        "realm16-t0", "realm8-t8", "realm4-t9", "mbm-t0", "calm", "drum-k8",
    ]
    taps = quantize_q15(lowpass_taps(63, 0.2))
    signal = quantize_q15(multitone_signal(4096))
    reference = fir_filter(build("accurate"), signal, taps)
    rows = [
        (
            build(name).name,
            f"{output_snr_db(reference, fir_filter(build(name), signal, taps)):.1f}",
        )
        for name in designs
    ]
    print(format_table(["multiplier", "SNR dB"], rows))
    return 0


def cmd_divide(args) -> int:
    from .extensions.divider import MitchellDivider, RealmDivider

    divider = (
        MitchellDivider()
        if args.m is None
        else RealmDivider(m=args.m, q=args.q)
    )
    quotient = int(divider.divide(args.a, args.b))
    print(f"{divider.name}: {args.a} / {args.b} = {quotient}")
    if args.b:
        exact = args.a / args.b
        if exact:
            print(
                f"exact {exact:.3f}, relative error "
                f"{(quotient - exact) / exact * 100:+.3f}%"
            )
    return 0


def cmd_explore(args) -> int:
    from .experiments import format_table
    from .explore import Constraints, explore

    constraints = Constraints(
        max_mean_error=args.max_me,
        max_peak_error=args.max_pe,
        max_bias=args.max_bias,
        min_area_reduction=args.min_area,
        min_power_reduction=args.min_power,
    )
    results = explore(
        constraints,
        objective=args.objective,
        include_realm_grid=args.grid,
        samples=QUICK_SAMPLES if args.quick else 1 << 19,
        top=args.top,
    )
    if not results:
        print("no feasible configuration under these constraints")
        return 1
    rows = [
        (
            c.display,
            f"{c.metrics.mean_error:.2f}",
            f"{c.peak_error:.2f}",
            f"{c.metrics.bias:+.2f}",
            f"{c.area_reduction:.1f}",
            f"{c.power_reduction:.1f}",
        )
        for c in results
    ]
    print(
        format_table(
            ["design", "ME%", "PE%", "bias%", "areaR%", "powR%"], rows
        )
    )
    return 0


def _serve_engine_options(args) -> dict:
    """Characterize-engine kwargs the serve command forwards per request."""
    engine: dict = {}
    cache = False if args.no_cache else args.cache
    if cache is not None:
        engine["cache"] = cache
    if args.max_retries is not None:
        engine["max_retries"] = args.max_retries
    if args.batch_timeout is not None:
        engine["batch_timeout"] = args.batch_timeout
    return engine


def _serve_probe(args) -> int:
    """``repro-realm serve --probe``: /healthz-style readiness check.

    Sends one ``status`` request; exit 0 when the endpoint reports
    ready, 1 otherwise (unreachable, draining, or fleet exhausted).
    """
    import json

    from .serve import ServeError, request_once

    try:
        response = request_once(
            args.host, args.port, {"op": "status"}, timeout=5.0
        )
    except ServeError as exc:
        print(f"not ready: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(f"not ready: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    result = response["result"]
    print(json.dumps(result, sort_keys=True))
    return 0 if result.get("ready") else 1


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from .serve import (
        BatchPolicy,
        ProcessShard,
        Service,
        ShardConfig,
        Supervisor,
        TcpServer,
    )

    if args.probe:
        return _serve_probe(args)

    policy = BatchPolicy(
        max_batch=args.max_batch,
        max_latency=args.max_latency_ms / 1000.0,
        max_queue=args.max_queue,
    )
    supervisor = None
    if args.shards > 1:
        shards = [
            ProcessShard(
                ShardConfig(
                    f"shard-{index}",
                    policy=policy,
                    workers=args.workers,
                    engine=_serve_engine_options(args),
                )
            )
            for index in range(args.shards)
        ]
        front = supervisor = Supervisor(shards)
    else:
        front = Service(
            policy=policy,
            workers=args.workers,
            engine=_serve_engine_options(args),
            characterize_slots=args.characterize_slots,
        )

    async def run() -> None:
        if supervisor is not None:
            await supervisor.up()
        server = TcpServer(front, args.host, args.port)
        await server.start()
        host, port = server.address
        flavour = (
            f"{args.shards} supervised shards" if supervisor is not None
            else "single service"
        )
        print(
            f"repro-realm serving on {host}:{port} ({flavour}, max_batch "
            f"{policy.max_batch}, max_latency "
            f"{policy.max_latency * 1000:.1f}ms, max_queue {policy.max_queue})",
            file=sys.stderr,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if supervisor is not None:
            # zero-downtime reconfig: SIGHUP replaces shards one at a time
            def hup() -> None:
                print("rolling restart ...", file=sys.stderr)
                loop.create_task(supervisor.rolling_restart())

            try:
                loop.add_signal_handler(signal.SIGHUP, hup)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            print("draining ...", file=sys.stderr)
            await server.close()
            print("stopped", file=sys.stderr)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # signal handler unavailable (rare platforms)
        pass
    return 0


def cmd_client(args) -> int:
    from .serve import ServeError, request_once

    command = args.client_command
    if command == "multiply":
        payload = {
            "op": "multiply",
            "design": args.design,
            "a": args.a,
            "b": args.b,
            "bitwidth": args.bitwidth,
        }
    elif command == "characterize":
        payload = {
            "op": "characterize",
            "design": args.design,
            "bitwidth": args.bitwidth,
            "samples": args.samples,
            "seed": args.seed,
        }
    elif command == "designs":
        payload = {"op": "designs", "prefix": args.prefix}
    elif command == "status":
        payload = {"op": "status"}
    else:
        payload = {"op": "ping"}
    try:
        response = request_once(args.host, args.port, payload, timeout=args.timeout)
    except ServeError as exc:
        print(f"server error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(
            f"cannot reach {args.host}:{args.port}: {exc} "
            "(is 'repro-realm serve' running?)",
            file=sys.stderr,
        )
        return 1
    result = response["result"]
    if command == "multiply":
        products = result["products"]
        for a, b, product in zip([args.a], [args.b], products[:1]):
            print(f"{args.design}: {a} * {b} = {product}")
            exact = a * b
            if exact:
                print(
                    f"exact {exact}, relative error "
                    f"{(product - exact) / exact * 100:+.4f}%"
                )
    elif command == "characterize":
        metrics = result["metrics"]
        print(
            f"{args.design}: bias {metrics['bias']:+.2f}%  "
            f"ME {metrics['mean_error']:.2f}%  "
            f"peak [{metrics['peak_min']:.2f}%, {metrics['peak_max']:.2f}%]  "
            f"var {metrics['variance']:.2f}  ({metrics['samples']} samples)"
        )
    elif command == "designs":
        for entry in result["designs"]:
            print(f"{entry['id']:14s} {entry['name']}")
    else:
        print(result)
    return 0


def cmd_conform(args) -> int:
    from .conformance import fuzz, render_json, render_text
    from .conformance.oracles import LAYERS

    if args.layers:
        unknown = sorted(set(args.layers) - set(LAYERS))
        if unknown:
            print(
                f"error: unknown layer(s) {', '.join(unknown)}; "
                f"choose from {', '.join(LAYERS)}",
                file=sys.stderr,
            )
            return 2
    cache = False if args.no_cache else args.cache
    try:
        result = fuzz(
            args.design,
            args.budget,
            args.seed,
            bitwidth=args.bitwidth,
            layers=args.layers or None,
            workers=args.workers,
            m=args.m,
            cache=cache,
            on_progress=_conform_progress(args),
            warehouse=_warehouse_option(args),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        print("hint: 'repro-realm list' shows all design ids", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(render_json(result))
        print(f"# JSON report written to {args.json}", file=sys.stderr)
    print(render_text(result), end="")
    return 0 if result.ok else 2


def cmd_formal(args) -> int:
    import json

    from .formal import certify_worst_error, prove_equivalence
    from .formal.certificates import save_certificate
    from .formal.encode import UnsupportedDesignError

    if not args.prove_equiv and not args.max_error:
        print(
            "error: nothing to do; pass --prove-equiv and/or --max-error",
            file=sys.stderr,
        )
        return 2
    cache = False if args.no_cache else args.cache
    payloads = []
    exit_code = 0
    try:
        if args.prove_equiv:
            result = prove_equivalence(
                args.design,
                args.bitwidth,
                backend=args.backend,
                samples=args.samples,
                seed=args.seed,
            )
            payloads.append(result.to_payload())
            print(f"equivalence {result.design} @ {result.bitwidth}-bit")
            for leg in result.legs:
                line = f"  {leg.leg:14s} {leg.status}"
                if leg.backend:
                    line += f" [{leg.backend}]"
                if leg.witness is not None:
                    line += f" witness a={leg.witness[0]} b={leg.witness[1]}"
                if leg.detail:
                    line += f" ({leg.detail})"
                print(line)
            if result.refuted:
                exit_code = 2
            elif not result.proved:
                exit_code = max(exit_code, 1)
        if args.max_error:
            bounds = certify_worst_error(
                args.design, args.bitwidth, method=args.method
            )
            payloads.append(bounds.to_payload())
            print(
                f"worst-case error {bounds.design} @ {bounds.bitwidth}-bit "
                f"via {bounds.method}"
            )
            for cert in (bounds.peak_min, bounds.peak_max):
                quality = "exact" if cert.exact else "sound bound"
                replay = "replayed" if cert.replayed else "REPLAY FAILED"
                print(
                    f"  peak_{cert.direction}: {cert.error_percent:+.6f}% "
                    f"({quality}, {replay}) witness a={cert.a} b={cert.b} "
                    f"err={cert.witness_num}/{cert.witness_den}"
                )
            if not bounds.replayed:
                exit_code = 2
    except UnsupportedDesignError as exc:
        print(f"unsupported: {exc}", file=sys.stderr)
        return 1
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        print("hint: 'repro-realm list' shows all design ids", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for payload in payloads:
        path = save_certificate(payload, cache)
        if path is not None:
            print(f"# certificate written to {path}", file=sys.stderr)
    if payloads:
        _record_certificates(payloads, args, cache)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payloads, handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"# JSON report written to {args.json}", file=sys.stderr)
    return exit_code


def _record_certificates(payloads, args, cache) -> None:
    """Record a ``repro formal`` run in the experiment warehouse, if on."""
    from .warehouse import WarehouseError, open_warehouse

    wh = open_warehouse(_warehouse_option(args), cache)
    if wh is None:
        return
    rows = []
    for payload in payloads:
        description = {
            "kind": "formal",
            "certificate": payload.get("kind"),
            "design": payload.get("design", args.design),
            "bitwidth": payload.get("bitwidth"),
        }
        rows.append(
            (payload.get("design", args.design), description, payload, False)
        )
    try:
        wh.record_run("formal", rows, seed=getattr(args, "seed", None))
    except WarehouseError as exc:
        telemetry.get().counter("warehouse.errors")
        print(f"# warehouse recording failed: {exc}", file=sys.stderr)
    finally:
        wh.close()


def _conform_progress(args):
    if not getattr(args, "progress", False):
        return None

    def emit(event):
        print(
            f"round {event['round']}: {event['pairs']} pairs, "
            f"{event['coverage']:.1%} cells, "
            f"{event['divergences']} divergence(s)",
            file=sys.stderr,
        )

    return emit


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-realm",
        description="Reproduce the REALM paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _warehouse_flags(p):
        p.add_argument(
            "--warehouse",
            nargs="?",
            const=True,
            default=None,
            metavar="DIR",
            help="record this run in the experiment warehouse and reuse "
            "stored results by fingerprint (bare flag: $REPRO_WAREHOUSE_DIR "
            "or <cache>/warehouse; default: only if $REPRO_WAREHOUSE_DIR is "
            "set)",
        )
        p.add_argument(
            "--no-warehouse",
            action="store_true",
            help="disable the experiment warehouse",
        )

    def common(p):
        p.add_argument(
            "--samples", type=_positive_int, default=experiments.DEFAULT_SAMPLES
        )
        p.add_argument("--quick", action="store_true", help="small Monte-Carlo run")
        p.add_argument(
            "--workers",
            type=_positive_int,
            default=None,
            help="parallel worker processes for the Monte-Carlo engine",
        )
        p.add_argument(
            "--max-retries",
            type=_nonnegative_int,
            default=None,
            help="re-executions allowed per failed batch (default 2)",
        )
        p.add_argument(
            "--batch-timeout",
            type=_positive_float,
            default=None,
            metavar="SECONDS",
            help="seconds to wait for one parallel batch before declaring "
            "the worker hung and rebuilding the pool",
        )
        p.add_argument(
            "--checkpoint",
            action="store_true",
            help="periodically persist per-block state under the cache dir "
            "so an interrupted run can be resumed",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="skip blocks/designs a previous interrupted run already "
            "finished (implies --checkpoint)",
        )
        p.add_argument(
            "--cache",
            nargs="?",
            const=True,
            default=None,
            metavar="DIR",
            help="metrics cache directory (bare flag: $REPRO_CACHE_DIR or "
            "the user cache dir; default: only if $REPRO_CACHE_DIR is set)",
        )
        p.add_argument(
            "--no-cache", action="store_true", help="disable the metrics cache"
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="print per-design progress/throughput to stderr",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write a JSONL telemetry trace of this run to PATH "
            "(summarize it with 'repro-realm telemetry summarize PATH')",
        )
        _warehouse_flags(p)

    sub.add_parser("list").set_defaults(func=cmd_list)

    p = sub.add_parser("multiply")
    p.add_argument("design")
    p.add_argument("a", type=int)
    p.add_argument("b", type=int)
    p.set_defaults(func=cmd_multiply)

    p = sub.add_parser("factors")
    p.add_argument("--m", type=int, default=8)
    p.add_argument("--q", type=int, default=6)
    p.add_argument("--objective", choices=("mean", "mse"), default="mean")
    p.set_defaults(func=cmd_factors)

    p = sub.add_parser("characterize")
    p.add_argument("design")
    common(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("table1")
    common(p)
    p.set_defaults(func=cmd_table1)

    sub.add_parser("table2").set_defaults(func=cmd_table2)
    sub.add_parser("fig1").set_defaults(func=cmd_fig1)

    p = sub.add_parser("fig2")
    p.add_argument("--m", type=int, default=4)
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("fig3")
    p.add_argument("--m", type=int, default=16)
    p.add_argument("--t", type=int, default=0)
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("fig4")
    p.add_argument("--source", choices=("paper", "model"), default="paper")
    common(p)
    p.set_defaults(func=cmd_fig4)

    p = sub.add_parser("fig5")
    common(p)
    p.set_defaults(func=cmd_fig5)

    p = sub.add_parser("verilog", help="export a design as structural Verilog")
    p.add_argument("design")
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.add_argument(
        "--testbench",
        action="store_true",
        help="append a self-checking testbench with golden vectors",
    )
    p.add_argument("--vectors", type=int, default=64)
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser(
        "report",
        help="warehouse trend report (no argument), or the area/power/"
        "timing report for one design",
    )
    p.add_argument(
        "design", nargs="?", default=None,
        help="design id for a synthesis report; omit for warehouse trends",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the trends as byte-stable JSON instead of text tables",
    )
    p.add_argument(
        "--kind", default=None,
        choices=("characterize", "sweep", "table1", "conformance", "formal",
                 "cnn"),
        help="only runs of this kind",
    )
    p.add_argument(
        "--limit", type=_positive_int, default=None, metavar="N",
        help="only the most recent N runs",
    )
    _warehouse_flags(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("theory", help="closed-form REALM error predictions")
    p.add_argument("--q", type=int, default=6)
    p.set_defaults(func=cmd_theory)

    p = sub.add_parser("nn", help="quantized-MLP accuracy per multiplier")
    p.add_argument("designs", nargs="*")
    p.set_defaults(func=cmd_nn)

    p = sub.add_parser(
        "cnn", help="fixed-point CNN accuracy-vs-area study (full registry)"
    )
    p.add_argument("designs", nargs="*")
    _warehouse_flags(p)
    p.set_defaults(func=cmd_cnn)

    p = sub.add_parser("fir", help="FIR filtering SNR per multiplier")
    p.add_argument("designs", nargs="*")
    p.set_defaults(func=cmd_fir)

    p = sub.add_parser("divide", help="approximate division (extension)")
    p.add_argument("a", type=int)
    p.add_argument("b", type=int)
    p.add_argument("--m", type=int, help="REALM-style correction segments")
    p.add_argument("--q", type=int, default=None, help="correction precision")
    p.set_defaults(func=cmd_divide)

    p = sub.add_parser(
        "serve", help="batched TCP serving of multiply/characterize/designs"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=_nonnegative_int, default=7325,
                   help="TCP port (0 binds an ephemeral port)")
    p.add_argument(
        "--shards", type=_positive_int, default=1,
        help="worker shard processes; >1 serves through the supervised "
        "fleet (consistent-hash routing, heartbeats, automatic restart; "
        "SIGHUP triggers a zero-downtime rolling restart)",
    )
    p.add_argument(
        "--probe", action="store_true",
        help="/healthz-style readiness check against a running server: "
        "send one status request, exit 0 if ready, 1 otherwise",
    )
    p.add_argument(
        "--max-batch", type=_positive_int, default=1 << 12,
        help="operand pairs fused into one model evaluation",
    )
    p.add_argument(
        "--max-latency-ms", type=_nonnegative_float, default=2.0,
        help="longest a request waits for co-batching, milliseconds",
    )
    p.add_argument(
        "--max-queue", type=_positive_int, default=1 << 14,
        help="queued pairs before requests are shed with 'overloaded'",
    )
    p.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker processes reused across characterize requests",
    )
    p.add_argument(
        "--characterize-slots", type=_positive_int, default=1,
        help="concurrent characterize runs (multiplies are unaffected)",
    )
    p.add_argument(
        "--max-retries", type=_nonnegative_int, default=None,
        help="per-batch retry budget for characterize requests",
    )
    p.add_argument(
        "--batch-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-batch timeout for characterize requests",
    )
    p.add_argument(
        "--cache", nargs="?", const=True, default=None, metavar="DIR",
        help="metrics cache for characterize requests",
    )
    p.add_argument("--no-cache", action="store_true")
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL telemetry trace (serve.batch spans, shed "
        "counters, queue-depth gauges) to PATH",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "conform",
        help="coverage-guided differential fuzzing across model/RTL/kernel/"
        "serve/formal/exact layers; exits 2 on any divergence",
    )
    p.add_argument(
        "--design", required=True,
        help="registry id, or an ad-hoc REALM spec like 'realm-16-m4-q5'",
    )
    p.add_argument(
        "--budget", type=_positive_int, default=1 << 16,
        help="operand-pair budget (stops early on full coverage)",
    )
    p.add_argument("--seed", type=_nonnegative_int, default=0)
    p.add_argument(
        "--layers", nargs="+", default=None, metavar="LAYER",
        help="layers to cross-check (model rtl kernel serve formal exact); "
        "default: all available for the design",
    )
    p.add_argument(
        "--bitwidth", type=_positive_int, default=None,
        help="operand bitwidth (default: the design's own)",
    )
    p.add_argument(
        "--workers", type=_positive_int, default=None,
        help="process-pool fan-out for batch evaluation (bit-identical "
        "report at any worker count)",
    )
    p.add_argument(
        "--m", type=_positive_int, default=None,
        help="segment grid for the coverage map (default: the design's M)",
    )
    p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the deterministic JSON report to PATH",
    )
    p.add_argument(
        "--cache", nargs="?", const=True, default=None, metavar="DIR",
        help="cache dir receiving shrunk counterexamples of failing runs",
    )
    p.add_argument("--no-cache", action="store_true")
    p.add_argument(
        "--progress", action="store_true",
        help="print per-round coverage progress to stderr",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL telemetry trace (conform.eval/conform.shrink "
        "spans) to PATH",
    )
    _warehouse_flags(p)
    p.set_defaults(func=cmd_conform)

    p = sub.add_parser(
        "formal",
        help="equivalence proofs and exact worst-case error certificates; "
        "exits 2 on any refuted claim, 1 when a claim stays unknown",
    )
    p.add_argument(
        "--design", required=True,
        help="registry id, or an ad-hoc REALM spec like 'realm-16-m4-q3'",
    )
    p.add_argument(
        "--bitwidth", type=_positive_int, default=None,
        help="operand bitwidth (default: the design's own)",
    )
    p.add_argument(
        "--prove-equiv", action="store_true",
        help="prove model~RTL~kernel agreement through the backend ladder",
    )
    p.add_argument(
        "--max-error", action="store_true",
        help="certify the exact worst-case relative error with a replayed "
        "(a*, b*, err*) witness",
    )
    p.add_argument(
        "--backend", choices=("z3", "bdd", "exhaustive"), default=None,
        help="pin one equivalence backend instead of the ladder",
    )
    p.add_argument(
        "--method", choices=("sweep", "smt", "interval"), default=None,
        help="pin the worst-case-error route (default: by width and "
        "backend availability)",
    )
    p.add_argument(
        "--samples", type=_positive_int, default=4096,
        help="operand pairs for sampled validation legs",
    )
    p.add_argument("--seed", type=_nonnegative_int, default=0)
    p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the certificates as JSON to PATH",
    )
    p.add_argument(
        "--cache", nargs="?", const=True, default=None, metavar="DIR",
        help="persist certificates under <cache>/formal/",
    )
    p.add_argument("--no-cache", action="store_true")
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL telemetry trace (formal.encode/formal.solve "
        "spans) to PATH",
    )
    _warehouse_flags(p)
    p.set_defaults(func=cmd_formal)

    p = sub.add_parser("client", help="talk to a running 'repro-realm serve'")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=_positive_int, default=7325)
    p.add_argument("--timeout", type=_positive_float, default=30.0)
    csub = p.add_subparsers(dest="client_command", required=True)
    cp = csub.add_parser("multiply")
    cp.add_argument("design")
    cp.add_argument("a", type=int)
    cp.add_argument("b", type=int)
    cp.add_argument("--bitwidth", type=int, default=16)
    cp = csub.add_parser("characterize")
    cp.add_argument("design")
    cp.add_argument("--bitwidth", type=int, default=16)
    cp.add_argument("--samples", type=_positive_int, default=1 << 16)
    cp.add_argument("--seed", type=_nonnegative_int, default=2020)
    cp = csub.add_parser("designs")
    cp.add_argument("--prefix", default="")
    csub.add_parser("ping")
    csub.add_parser("status")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser(
        "telemetry", help="inspect JSONL telemetry traces"
    )
    tsub = p.add_subparsers(dest="telemetry_command", required=True)
    ts = tsub.add_parser(
        "summarize", help="per-phase time/counter table from a trace"
    )
    ts.add_argument("path", help="a trace file or a directory of *.jsonl files")
    ts.set_defaults(func=cmd_telemetry_summarize)

    p = sub.add_parser(
        "explore", help="search the design space under error/cost budgets"
    )
    p.add_argument("--max-me", type=float, help="max mean error %%")
    p.add_argument("--max-pe", type=float, help="max peak error %%")
    p.add_argument("--max-bias", type=float, help="max |bias| %%")
    p.add_argument("--min-area", type=float, help="min area reduction %%")
    p.add_argument("--min-power", type=float, help="min power reduction %%")
    p.add_argument(
        "--objective", choices=("power", "area", "error"), default="power"
    )
    p.add_argument(
        "--grid", action="store_true", help="include the extended REALM grid"
    )
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=cmd_explore)

    return parser


def cmd_telemetry_summarize(args) -> int:
    import pathlib

    source = pathlib.Path(args.path)
    if not source.exists():
        print(f"no trace at {source}", file=sys.stderr)
        return 1
    print(telemetry.format_summary(telemetry.summarize_trace(source)))
    return 0


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_cache", False) and getattr(args, "cache", None) is not None:
        parser.error("--cache and --no-cache are mutually exclusive")
    if getattr(args, "no_cache", False) and getattr(args, "resume", False):
        parser.error("--resume needs the cache; it conflicts with --no-cache")
    if getattr(args, "no_warehouse", False) and getattr(args, "warehouse", None) is not None:
        parser.error("--warehouse and --no-warehouse are mutually exclusive")
    trace = getattr(args, "trace", None)
    if trace is not None:
        with telemetry.tracing(trace):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
