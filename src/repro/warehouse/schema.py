"""Versioned SQLite schema for the experiment warehouse.

The warehouse stores two kinds of rows:

* **runs** — one per recorded campaign (a ``characterize_many`` sweep, a
  design-space sweep, a conformance campaign, a formal-certificate run),
  carrying the full provenance: kind, creation time, wall seconds,
  git revision, engine/kernel schema versions, seed, sample depth and the
  telemetry counters the run observed;
* **results** — one per design within a run, keyed by the design's
  content-addressed *fingerprint* (the :func:`repro.analysis.cache.
  cache_key` of the exact run payload), holding the payload and the
  result data as canonical JSON text.  JSON keeps floats bit-exact
  (``repr`` semantics) and rationals arbitrary-precision, so a row read
  back compares equal to the recorded object — the property the delta
  recompute and the Hypothesis roundtrip suite rely on.

Schema history (``meta['schema_version']``):

* **v1** — runs + results, no per-run telemetry counters and no
  reused-vs-recomputed marker on results;
* **v2** (current) — adds ``runs.counters`` (JSON telemetry counters)
  and ``results.reused`` (1 when the row was served from the warehouse
  instead of recomputed).  The v1→v2 migration is two ``ADD COLUMN``
  statements with constant defaults: no row is dropped or rewritten.

Migrations run inside one transaction on open; a database written by a
*newer* schema than this process understands is refused (raising
:class:`SchemaError`), never silently downgraded.
"""

from __future__ import annotations

import sqlite3

__all__ = ["SCHEMA_VERSION", "SchemaError", "create_schema", "migrate"]

#: the schema version this module writes
SCHEMA_VERSION = 2

#: v1 DDL, kept verbatim so tests can build migration fixtures
DDL_V1 = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        id             INTEGER PRIMARY KEY AUTOINCREMENT,
        kind           TEXT NOT NULL,
        created        REAL NOT NULL,
        wall_seconds   REAL,
        git_rev        TEXT,
        engine_version INTEGER,
        kernel_version INTEGER,
        seed           INTEGER,
        samples        INTEGER
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS results (
        id          INTEGER PRIMARY KEY AUTOINCREMENT,
        run_id      INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
        design      TEXT NOT NULL,
        fingerprint TEXT NOT NULL,
        payload     TEXT NOT NULL,
        data        TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_results_fingerprint"
    " ON results(fingerprint)",
    "CREATE INDEX IF NOT EXISTS idx_results_design ON results(design)",
    "CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs(kind)",
)

#: per-version upgrade statements; step ``n`` takes a v``n`` database to
#: v``n+1``.  Additive-only: existing rows survive every step unchanged.
_UPGRADES: dict[int, tuple[str, ...]] = {
    1: (
        "ALTER TABLE runs ADD COLUMN counters TEXT",
        "ALTER TABLE results ADD COLUMN reused INTEGER NOT NULL DEFAULT 0",
    ),
}


class SchemaError(Exception):
    """The database schema cannot be brought to :data:`SCHEMA_VERSION`."""


def _transaction(connection: sqlite3.Connection, statements) -> None:
    """Run ``statements`` as one explicit transaction (any isolation mode)."""
    fresh = not connection.in_transaction
    if fresh:
        connection.execute("BEGIN IMMEDIATE")
    try:
        for statement in statements:
            if isinstance(statement, tuple):
                connection.execute(*statement)
            else:
                connection.execute(statement)
    except BaseException:
        if fresh:
            connection.rollback()
        raise
    if fresh:
        connection.commit()


def _read_version(connection: sqlite3.Connection) -> int:
    """The stored schema version; 0 for a database with no tables yet."""
    row = connection.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
    ).fetchone()
    if row is None:
        return 0
    row = connection.execute(
        "SELECT value FROM meta WHERE key='schema_version'"
    ).fetchone()
    if row is None:
        return 0
    try:
        return int(row[0])
    except (TypeError, ValueError):
        raise SchemaError(f"unreadable schema_version {row[0]!r}") from None


def _set_version(version: int) -> tuple[str, tuple]:
    return (
        "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
        "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
        (str(version),),
    )


def create_schema(connection: sqlite3.Connection, version: int = SCHEMA_VERSION) -> None:
    """Create a fresh schema at ``version`` (v1 kept for test fixtures)."""
    if not 1 <= version <= SCHEMA_VERSION:
        raise SchemaError(f"cannot create schema version {version}")
    statements: list = list(DDL_V1)
    for step in range(1, version):
        statements.extend(_UPGRADES[step])
    statements.append(_set_version(version))
    _transaction(connection, statements)


def migrate(connection: sqlite3.Connection) -> int:
    """Bring the database to :data:`SCHEMA_VERSION`; returns the version
    found before migrating.

    Fresh databases are created at the current version; older ones are
    upgraded step by step inside a single transaction (an interrupted
    migration rolls back wholesale); newer ones raise :class:`SchemaError`.
    """
    found = _read_version(connection)
    if found == 0:
        create_schema(connection)
        return found
    if found > SCHEMA_VERSION:
        raise SchemaError(
            f"database schema v{found} is newer than this build "
            f"(v{SCHEMA_VERSION}); refusing to touch it"
        )
    if found < SCHEMA_VERSION:
        statements: list = []
        for step in range(found, SCHEMA_VERSION):
            statements.extend(_UPGRADES[step])
        statements.append(_set_version(SCHEMA_VERSION))
        _transaction(connection, statements)
    return found
