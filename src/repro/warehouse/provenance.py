"""Provenance capture for warehouse runs.

Every recorded run carries enough context to answer "what produced this
number": the git revision of the working tree, the engine and kernel
schema versions that define the result semantics, and the wall clock.
All fields degrade gracefully — a tree without git (an sdist install, a
stripped CI image) records ``None`` rather than failing the run.
"""

from __future__ import annotations

import dataclasses
import pathlib
import subprocess

__all__ = ["Provenance", "capture", "git_rev"]


def git_rev(cwd=None) -> str | None:
    """The current ``HEAD`` commit hash, or ``None`` outside a git tree.

    ``cwd`` defaults to this package's directory, so the revision
    describes the *code*, not whatever directory the process happens to
    run in.
    """
    if cwd is None:
        cwd = pathlib.Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


@dataclasses.dataclass(frozen=True)
class Provenance:
    """The per-run provenance columns of the ``runs`` table."""

    git_rev: str | None
    engine_version: int
    kernel_version: int


def capture() -> Provenance:
    """Snapshot the current provenance (imports deferred: no cycles)."""
    from ..analysis.montecarlo import ENGINE_VERSION
    from ..kernels.compiler import KERNEL_VERSION

    return Provenance(
        git_rev=git_rev(),
        engine_version=ENGINE_VERSION,
        kernel_version=KERNEL_VERSION,
    )
