"""Experiment warehouse: provenance-complete store of every recorded run.

A SQLite database (by default ``<cache-dir>/warehouse/warehouse.db``)
recording each characterization, design-space sweep, conformance
campaign and formal-certificate run together with its provenance —
registry fingerprints, engine/kernel versions, seed, git revision,
wall clock and telemetry counters.  Sitting above the per-entry metrics
cache, it answers two questions the cache cannot: *how did this design's
error trend across runs* (``repro report``) and *which designs actually
changed since last time* (incremental recompute in
:func:`repro.analysis.montecarlo.characterize_many`,
:func:`repro.analysis.designspace.sweep` and
:func:`repro.experiments.table1_errors`).

Opt-in resolution (mirrors the metrics cache): pass ``warehouse=True`` /
a path, or set :data:`REPRO_WAREHOUSE_DIR <WAREHOUSE_ENV>`; the default
``None`` enables the store only when that variable is set, so existing
cache-only workflows are untouched.
"""

from .provenance import Provenance, capture, git_rev
from .report import build_trends, render_json, render_text
from .schema import SCHEMA_VERSION, SchemaError, create_schema, migrate
from .store import (
    DB_NAME,
    WAREHOUSE_ENV,
    ResultRow,
    RunRow,
    Warehouse,
    WarehouseError,
    metrics_fields,
    open_warehouse,
    resolve_warehouse_path,
)

__all__ = [
    "DB_NAME",
    "Provenance",
    "ResultRow",
    "RunRow",
    "SCHEMA_VERSION",
    "SchemaError",
    "WAREHOUSE_ENV",
    "Warehouse",
    "WarehouseError",
    "build_trends",
    "capture",
    "create_schema",
    "git_rev",
    "metrics_fields",
    "migrate",
    "open_warehouse",
    "render_json",
    "render_text",
    "resolve_warehouse_path",
]
