"""SQLite-backed experiment warehouse under the cache directory.

One database records every characterization, design-space sweep,
conformance campaign and formal-certificate run with full provenance
(see :mod:`repro.warehouse.schema` for the row layout).  The store is
the queryable tier above the content-addressed metrics cache: cache
entries memoize one run each, the warehouse keeps *all* of them with
their run context, so trends across PRs and incremental recompute both
become single queries.

Guarantees, enforced by ``tests/test_warehouse.py``:

* **exact roundtrip** — payloads and results are stored as canonical
  JSON text, so floats keep ``repr`` semantics and certificate
  rationals keep arbitrary precision; a row read back compares equal to
  what was recorded;
* **atomic writes** — every :meth:`Warehouse.record_run` is one
  ``BEGIN IMMEDIATE`` transaction: a run and its result rows land
  together or not at all, and concurrent writers from other processes
  serialize on SQLite's lock (30 s busy timeout) without losing rows;
* **corruption containment** — a truncated or corrupt database is
  quarantined (renamed to ``warehouse.db.corrupt-<pid>``) and rebuilt
  empty; opening the warehouse never raises for corruption, so a
  damaged store can never take ``characterize`` down with it;
* **schema migrations** — old databases are upgraded in one
  transaction on open; newer-than-this-build databases are refused
  with :class:`WarehouseError`, never downgraded.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import sqlite3
import time

from ..analysis import telemetry
from ..analysis.cache import metrics_from_fields, resolve_cache_dir
from ..analysis.metrics import ErrorMetrics
from .provenance import Provenance, capture
from .schema import SCHEMA_VERSION, SchemaError, migrate

__all__ = [
    "DB_NAME",
    "WAREHOUSE_ENV",
    "ResultRow",
    "RunRow",
    "Warehouse",
    "WarehouseError",
    "metrics_fields",
    "open_warehouse",
    "resolve_warehouse_path",
]

#: environment opt-in: directory receiving the warehouse database
WAREHOUSE_ENV = "REPRO_WAREHOUSE_DIR"

#: database filename inside the warehouse directory
DB_NAME = "warehouse.db"

#: how long one writer waits for another's transaction, seconds
BUSY_TIMEOUT = 30.0


class WarehouseError(Exception):
    """The warehouse cannot serve this request (schema/storage trouble)."""


def _canonical(value) -> str:
    """Canonical JSON text: sorted keys, no whitespace — byte-stable."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def metrics_fields(metrics: ErrorMetrics) -> dict:
    """The JSON-ready field dict of one :class:`ErrorMetrics`."""
    fields = dataclasses.asdict(metrics)
    if fields.get("peak_certified") is not None:
        fields["peak_certified"] = list(fields["peak_certified"])
    return fields


@dataclasses.dataclass(frozen=True)
class RunRow:
    """One recorded campaign with its provenance columns."""

    id: int
    kind: str
    created: float
    wall_seconds: float | None
    git_rev: str | None
    engine_version: int | None
    kernel_version: int | None
    seed: int | None
    samples: int | None
    counters: dict


@dataclasses.dataclass(frozen=True)
class ResultRow:
    """One design's result within a run, keyed by its fingerprint."""

    id: int
    run_id: int
    design: str
    fingerprint: str
    payload: dict
    data: dict
    reused: bool


def resolve_warehouse_path(warehouse, cache=None) -> pathlib.Path | None:
    """Map a ``warehouse`` argument to a database path, or ``None``.

    * ``False`` — warehouse off;
    * ``None`` (default) — on only if :data:`WAREHOUSE_ENV` is set;
    * ``True`` — :data:`WAREHOUSE_ENV`, else a ``warehouse/`` subdirectory
      of the resolved metrics cache directory (so ``clear_cache`` owns it);
    * a path — that directory (or the file itself when it ends in ``.db``).
    """
    if warehouse is False:
        return None
    if warehouse is None or warehouse is True:
        env = os.environ.get(WAREHOUSE_ENV)
        if env:
            return pathlib.Path(env) / DB_NAME
        if warehouse is None:
            return None
        base = resolve_cache_dir(cache if cache is not None else True)
        if base is None:
            base = resolve_cache_dir(True)
        return base / "warehouse" / DB_NAME
    path = pathlib.Path(warehouse)
    return path if path.suffix == ".db" else path / DB_NAME


def open_warehouse(warehouse, cache=None) -> "Warehouse | None":
    """A ready :class:`Warehouse` per the resolution rules, or ``None``.

    Unusable stores (e.g. written by a newer schema) resolve to ``None``
    with a ``warehouse.errors`` counter rather than raising: recording
    provenance must never take the computation it describes down.
    """
    path = resolve_warehouse_path(warehouse, cache)
    if path is None:
        return None
    store = Warehouse(path)
    try:
        store.connect()
    except WarehouseError:
        telemetry.get().counter("warehouse.errors")
        store.close()
        return None
    return store


class Warehouse:
    """One experiment database; see the module docstring for guarantees."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._connection: sqlite3.Connection | None = None

    # -- lifecycle ------------------------------------------------------

    def connect(self) -> sqlite3.Connection:
        """The live connection, opening (and migrating) on first use.

        A corrupt database is quarantined and rebuilt once; schema
        trouble raises :class:`WarehouseError`.
        """
        if self._connection is not None:
            return self._connection
        try:
            self._connection = self._open()
        except sqlite3.DatabaseError:
            self._quarantine()
            try:
                self._connection = self._open()
            except sqlite3.DatabaseError as exc:  # pragma: no cover - defensive
                raise WarehouseError(f"cannot rebuild {self.path}: {exc}") from exc
        return self._connection

    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT)
        try:
            connection.row_factory = sqlite3.Row
            # autocommit + explicit BEGIN IMMEDIATE in record_run: the
            # write lock is taken up front, so a run and its result rows
            # are one atomic unit under concurrent writers
            connection.isolation_level = None
            connection.execute(f"PRAGMA busy_timeout = {int(BUSY_TIMEOUT * 1000)}")
            # a truncated or bit-flipped file often connects fine and only
            # fails later; quick_check surfaces the damage at open time
            verdict = connection.execute("PRAGMA quick_check").fetchone()[0]
            if verdict != "ok":
                raise sqlite3.DatabaseError(f"quick_check: {verdict}")
            try:
                migrate(connection)
            except SchemaError as exc:
                raise WarehouseError(str(exc)) from exc
        except BaseException:
            connection.close()
            raise
        return connection

    def _quarantine(self) -> None:
        """Move the damaged database aside; the evidence stays on disk."""
        target = self.path.with_name(f"{self.path.name}.corrupt-{os.getpid()}")
        index = 0
        while target.exists():
            index += 1
            target = self.path.with_name(
                f"{self.path.name}.corrupt-{os.getpid()}-{index}"
            )
        try:
            os.replace(self.path, target)
        except FileNotFoundError:
            pass  # another process already quarantined it
        telemetry.get().counter("warehouse.quarantined")
        telemetry.get().event(
            "warehouse.quarantined", path=str(self.path), moved_to=str(target)
        )

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "Warehouse":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        row = self.connect().execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        return int(row[0]) if row is not None else SCHEMA_VERSION

    # -- recording ------------------------------------------------------

    def record_run(
        self,
        kind: str,
        results,
        *,
        seed: int | None = None,
        samples: int | None = None,
        wall_seconds: float | None = None,
        counters: dict | None = None,
        provenance: Provenance | None = None,
        created: float | None = None,
    ) -> int:
        """Atomically persist one run plus its result rows; returns run id.

        ``results`` is an iterable of ``(design, payload, data, reused)``
        tuples — ``payload`` is the content-addressed run description
        (its :func:`~repro.analysis.cache.cache_key` becomes the stored
        fingerprint), ``data`` the JSON-ready result, ``reused`` whether
        the row was served from the warehouse rather than recomputed.
        """
        if provenance is None:
            provenance = capture()
        if created is None:
            created = time.time()
        from ..analysis.cache import cache_key

        try:  # serialize everything up front: nothing fails mid-transaction
            counters_text = _canonical(counters or {})
            rows = [
                (design, cache_key(payload), _canonical(payload),
                 _canonical(data), 1 if reused else 0)
                for design, payload, data, reused in results
            ]
        except (TypeError, ValueError) as exc:
            raise WarehouseError(f"unserializable run data: {exc}") from exc
        connection = self.connect()
        try:
            with connection:  # one transaction: run + rows, all or nothing
                connection.execute("BEGIN IMMEDIATE")
                cursor = connection.execute(
                    "INSERT INTO runs (kind, created, wall_seconds, git_rev,"
                    " engine_version, kernel_version, seed, samples, counters)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        kind,
                        created,
                        wall_seconds,
                        provenance.git_rev,
                        provenance.engine_version,
                        provenance.kernel_version,
                        seed,
                        samples,
                        counters_text,
                    ),
                )
                run_id = cursor.lastrowid
                connection.executemany(
                    "INSERT INTO results (run_id, design, fingerprint,"
                    " payload, data, reused) VALUES (?, ?, ?, ?, ?, ?)",
                    [(run_id, *row) for row in rows],
                )
        except sqlite3.Error as exc:
            raise WarehouseError(f"record_run failed: {exc}") from exc
        telemetry.get().counter("warehouse.records")
        return run_id

    # -- querying -------------------------------------------------------

    def latest(self, fingerprint: str) -> ResultRow | None:
        """The most recent result row with this fingerprint, or ``None``."""
        try:
            row = self.connect().execute(
                "SELECT * FROM results WHERE fingerprint = ?"
                " ORDER BY id DESC LIMIT 1",
                (fingerprint,),
            ).fetchone()
        except sqlite3.Error as exc:
            raise WarehouseError(f"lookup failed: {exc}") from exc
        return self._result_row(row) if row is not None else None

    def latest_metrics(self, fingerprint: str) -> ErrorMetrics | None:
        """The stored :class:`ErrorMetrics` for a fingerprint, or ``None``.

        Accepts both row shapes: a bare metrics field dict (characterize
        runs) and decorated rows holding the field dict under a
        ``"metrics"`` key (sweep/table rows with synthesis columns).
        Rows whose data does not validate as a complete metrics field set
        (hand-edited databases, rows of a different kind) are treated as
        misses, mirroring the metrics cache's corrupt-entry semantics.
        """
        row = self.latest(fingerprint)
        if row is None:
            return None
        fields = row.data
        if isinstance(fields, dict) and isinstance(fields.get("metrics"), dict):
            fields = fields["metrics"]
        try:
            return metrics_from_fields(fields)
        except (ValueError, TypeError, KeyError):
            return None

    def runs(self, kind: str | None = None, limit: int | None = None) -> list[RunRow]:
        """Recorded runs, oldest first, optionally filtered by kind."""
        query = "SELECT * FROM runs"
        args: tuple = ()
        if kind is not None:
            query += " WHERE kind = ?"
            args = (kind,)
        query += " ORDER BY id"
        rows = [
            self._run_row(row)
            for row in self.connect().execute(query, args).fetchall()
        ]
        return rows[-limit:] if limit is not None else rows

    def results(
        self,
        run_id: int | None = None,
        design: str | None = None,
    ) -> list[ResultRow]:
        """Result rows in insertion order, filtered by run and/or design."""
        clauses, args = [], []
        if run_id is not None:
            clauses.append("run_id = ?")
            args.append(run_id)
        if design is not None:
            clauses.append("design = ?")
            args.append(design)
        query = "SELECT * FROM results"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        return [
            self._result_row(row)
            for row in self.connect().execute(query, tuple(args)).fetchall()
        ]

    def designs(self) -> list[str]:
        """Every design name with at least one recorded result, sorted."""
        return [
            row[0]
            for row in self.connect().execute(
                "SELECT DISTINCT design FROM results ORDER BY design"
            ).fetchall()
        ]

    def count_runs(self) -> int:
        return self.connect().execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def count_results(self) -> int:
        return self.connect().execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def export(self) -> dict:
        """The whole store as one JSON-ready dict, runs oldest first.

        A pure function of the database contents — exporting the same
        store twice yields identical structures (and, serialized with
        sorted keys, identical bytes), which CI relies on to diff trend
        artifacts.
        """
        runs = []
        for run in self.runs():
            entry = dataclasses.asdict(run)
            entry["results"] = [
                dataclasses.asdict(result) for result in self.results(run.id)
            ]
            runs.append(entry)
        return {"schema_version": self.schema_version, "runs": runs}

    # -- row adapters ---------------------------------------------------

    @staticmethod
    def _run_row(row: sqlite3.Row) -> RunRow:
        keys = row.keys()
        counters = {}
        if "counters" in keys and row["counters"]:
            try:
                counters = json.loads(row["counters"])
            except ValueError:
                counters = {}
        return RunRow(
            id=row["id"],
            kind=row["kind"],
            created=row["created"],
            wall_seconds=row["wall_seconds"],
            git_rev=row["git_rev"],
            engine_version=row["engine_version"],
            kernel_version=row["kernel_version"],
            seed=row["seed"],
            samples=row["samples"],
            counters=counters if isinstance(counters, dict) else {},
        )

    @staticmethod
    def _result_row(row: sqlite3.Row) -> ResultRow:
        keys = row.keys()
        return ResultRow(
            id=row["id"],
            run_id=row["run_id"],
            design=row["design"],
            fingerprint=row["fingerprint"],
            payload=json.loads(row["payload"]),
            data=json.loads(row["data"]),
            reused=bool(row["reused"]) if "reused" in keys else False,
        )
