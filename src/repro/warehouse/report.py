"""Trend reports over the experiment warehouse (``repro report``).

Folds the recorded runs into two views:

* a **run log** — one line per recorded run with its provenance (kind,
  wall clock, recomputed-vs-reused counts, throughput, git revision);
* **per-design trajectories** — for every design with error data, the
  mean/peak error across recorded runs (certified peaks preferred, the
  PR 8 semantics) plus the area/power columns when the run was a
  design-space sweep.

``build_trends`` is a pure function of the database contents, and the
JSON rendering sorts keys — exporting the same store twice yields
byte-identical artifacts, which is what lets CI diff trend files
directly.
"""

from __future__ import annotations

import datetime
import json

from .store import ResultRow, RunRow, Warehouse

__all__ = ["build_trends", "render_json", "render_text"]


def _fmt(value, precision: int = 2) -> str:
    if value is None:
        return "--"
    return f"{value:.{precision}f}"


def _table(headers, rows) -> str:
    """Minimal aligned text table (first column left, rest right)."""
    widths = [len(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    def line(cells):
        return "  ".join(
            c.ljust(w) if i == 0 else c.rjust(w)
            for i, (c, w) in enumerate(zip(cells, widths))
        )
    out = [line(headers), "-" * len(line(headers))]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def _error_fields(data: dict) -> dict | None:
    """Extract ``(mean, peak_min, peak_max, certified)`` from a result row.

    Understands both raw metrics field dicts (characterize runs) and
    sweep/table rows that embed a ``metrics`` sub-dict or flat columns.
    Certified peaks take precedence, mirroring
    :meth:`repro.analysis.metrics.ErrorMetrics.peaks`.
    """
    if not isinstance(data, dict):
        return None
    fields = data.get("metrics") if isinstance(data.get("metrics"), dict) else data
    mean = fields.get("mean_error")
    peak_min, peak_max = fields.get("peak_min"), fields.get("peak_max")
    certified = fields.get("peak_certified")
    if certified is None and isinstance(data.get("peak_certified"), (list, tuple)):
        certified = data["peak_certified"]
    if not isinstance(mean, (int, float)) or isinstance(mean, bool):
        return None
    is_certified = isinstance(certified, (list, tuple)) and len(certified) == 2
    if is_certified:
        peak_min, peak_max = certified
    return {
        "mean_error": mean,
        "peak_min": peak_min,
        "peak_max": peak_max,
        "certified": is_certified,
    }


def _accuracy_fields(data: dict) -> dict | None:
    """Extract application-accuracy fields from a result row (CNN/MLP
    study runs), or ``None`` when the row carries no accuracy column."""
    if not isinstance(data, dict):
        return None
    accuracy = data.get("accuracy")
    if not isinstance(accuracy, (int, float)) or isinstance(accuracy, bool):
        return None
    fields = {"accuracy": accuracy}
    for column in ("accuracy_drop", "logit_distortion", "area_reduction",
                   "power_reduction"):
        value = data.get(column)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            fields[column] = value
    return fields


def _run_entry(run: RunRow, results: list[ResultRow]) -> dict:
    recomputed = sum(1 for r in results if not r.reused)
    reused = len(results) - recomputed
    pairs_per_sec = None
    if run.wall_seconds and run.samples and recomputed:
        pairs_per_sec = run.samples * recomputed / run.wall_seconds
    return {
        "id": run.id,
        "kind": run.kind,
        "created": run.created,
        "wall_seconds": run.wall_seconds,
        "git_rev": run.git_rev,
        "engine_version": run.engine_version,
        "kernel_version": run.kernel_version,
        "seed": run.seed,
        "samples": run.samples,
        "designs": len(results),
        "recomputed": recomputed,
        "reused": reused,
        "pairs_per_sec": pairs_per_sec,
        "counters": dict(sorted(run.counters.items())),
    }


def build_trends(
    warehouse: Warehouse,
    kind: str | None = None,
    design: str | None = None,
    limit: int | None = None,
) -> dict:
    """The JSON-ready trend structure for ``repro report``.

    ``kind``/``design`` filter; ``limit`` keeps only the most recent N
    runs.  Deterministic for a given database: runs ascend by id,
    designs sort lexicographically, keys serialize sorted.
    """
    runs = warehouse.runs(kind=kind, limit=limit)
    run_ids = {run.id for run in runs}
    by_run: dict[int, list[ResultRow]] = {run.id: [] for run in runs}
    trajectories: dict[str, list[dict]] = {}
    applications: dict[str, list[dict]] = {}
    for row in warehouse.results(design=design):
        if row.run_id not in run_ids:
            continue
        by_run[row.run_id].append(row)
        errors = _error_fields(row.data)
        if errors is not None:
            point = {"run": row.run_id, "reused": row.reused, **errors}
            for column in ("area_reduction", "power_reduction"):
                value = row.data.get(column)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    point[column] = value
            trajectories.setdefault(row.design, []).append(point)
        accuracy = _accuracy_fields(row.data)
        if accuracy is not None:
            applications.setdefault(row.design, []).append(
                {"run": row.run_id, "reused": row.reused, **accuracy}
            )
    return {
        "schema_version": warehouse.schema_version,
        "runs": [_run_entry(run, by_run[run.id]) for run in runs],
        "designs": {name: trajectories[name] for name in sorted(trajectories)},
        "applications": {
            name: applications[name] for name in sorted(applications)
        },
    }


def render_json(trends: dict) -> str:
    """Byte-stable JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(trends, indent=1, sort_keys=True) + "\n"


def _iso(timestamp: float | None) -> str:
    if timestamp is None:
        return "--"
    return datetime.datetime.fromtimestamp(
        timestamp, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M:%S")


def render_text(trends: dict) -> str:
    """Terminal rendering: run log + per-design error trajectories."""
    lines = []
    runs = trends["runs"]
    if not runs:
        return "warehouse is empty — no recorded runs\n"
    rows = []
    for run in runs:
        rate = run["pairs_per_sec"]
        rows.append(
            (
                run["id"],
                run["kind"],
                _iso(run["created"]),
                run["designs"],
                f"{run['recomputed']}/{run['reused']}",
                _fmt(run["wall_seconds"]),
                f"{rate / 1e6:.2f}M" if rate else "--",
                (run["git_rev"] or "--")[:10],
            )
        )
    lines.append(f"recorded runs ({len(runs)}):")
    lines.append(
        _table(
            ["run", "kind", "created (UTC)", "designs", "new/reused",
             "wall s", "pairs/s", "rev"],
            rows,
        )
    )
    designs = trends["designs"]
    if designs:
        rows = []
        for name, points in designs.items():
            first, last = points[0], points[-1]
            peak = max(abs(last["peak_min"]), abs(last["peak_max"]))
            area = last.get("area_reduction")
            rows.append(
                (
                    name,
                    len(points),
                    _fmt(first["mean_error"], 3),
                    _fmt(last["mean_error"], 3),
                    f"{last['mean_error'] - first['mean_error']:+.3f}",
                    _fmt(peak, 2) + ("*" if last["certified"] else ""),
                    _fmt(area, 1),
                )
            )
        lines.append("")
        lines.append(f"design trajectories ({len(designs)}):")
        lines.append(
            _table(
                ["design", "runs", "first ME%", "last ME%", "dME%",
                 "last |peak|%", "areaR%"],
                rows,
            )
        )
        if any(points[-1]["certified"] for points in designs.values()):
            lines.append("* formally certified worst-case peak (repro formal)")
    applications = trends.get("applications", {})
    if applications:
        rows = []
        for name, points in applications.items():
            first, last = points[0], points[-1]
            rows.append(
                (
                    name,
                    len(points),
                    _fmt(first["accuracy"], 3),
                    _fmt(last["accuracy"], 3),
                    f"{last['accuracy'] - first['accuracy']:+.3f}",
                    _fmt(last.get("logit_distortion"), 2),
                    _fmt(last.get("area_reduction"), 1),
                )
            )
        lines.append("")
        lines.append(f"application accuracy trajectories ({len(applications)}):")
        lines.append(
            _table(
                ["design", "runs", "first acc", "last acc", "dAcc",
                 "logitD%", "areaR%"],
                rows,
            )
        )
    return "\n".join(lines) + "\n"
