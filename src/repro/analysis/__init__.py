"""Error characterization, design-space and distribution analyses."""

from .accumulation import AccumulationPoint, accumulation_profile, predicted_floor

from .designspace import DesignPoint, fig4_front, fig4_points, sweep
from .scaling import bitwidth_scaling, knob_surface
from .distribution import Histogram, ascii_histogram, error_histogram
from .cache import (
    cache_stats,
    clear_cache,
    invalidate,
    reset_cache_stats,
    resolve_cache_dir,
    sweep_stale_temps,
)
from .runtime import (
    BatchFailure,
    Checkpoint,
    CorruptResultError,
    ResiliencePolicy,
    monotonic_progress,
    run_plan,
)
from .telemetry import (
    Telemetry,
    TelemetrySnapshot,
    PhaseStat,
    format_summary,
    merge_workers,
    summarize_trace,
    tracing,
)
from .exhaustive import error_grid, exhaustive_metrics
from .metrics import (
    Accumulator,
    ErrorMetrics,
    accumulate_chunk,
    compute_metrics,
    merge_accumulators,
    merge_metrics,
    relative_errors,
)
from .montecarlo import (
    ENGINE_VERSION,
    characterize,
    characterize_many,
    characterize_workload,
    gaussian_sampler,
    lognormal_sampler,
    sample_pairs,
)
from .pareto import is_dominated, pareto_front
from .profiles import ProfileSummary, ascii_heatmap, profile, segment_mean_errors
from .render import render_heatmap, render_histogram, save_pgm

__all__ = [
    "AccumulationPoint",
    "Accumulator",
    "BatchFailure",
    "Checkpoint",
    "CorruptResultError",
    "DesignPoint",
    "ENGINE_VERSION",
    "ErrorMetrics",
    "Histogram",
    "PhaseStat",
    "ProfileSummary",
    "ResiliencePolicy",
    "Telemetry",
    "TelemetrySnapshot",
    "run_plan",
    "accumulate_chunk",
    "ascii_heatmap",
    "ascii_histogram",
    "accumulation_profile",
    "bitwidth_scaling",
    "cache_stats",
    "characterize",
    "characterize_many",
    "characterize_workload",
    "clear_cache",
    "gaussian_sampler",
    "invalidate",
    "lognormal_sampler",
    "compute_metrics",
    "error_grid",
    "error_histogram",
    "exhaustive_metrics",
    "fig4_front",
    "fig4_points",
    "is_dominated",
    "merge_accumulators",
    "merge_metrics",
    "merge_workers",
    "monotonic_progress",
    "format_summary",
    "summarize_trace",
    "tracing",
    "knob_surface",
    "pareto_front",
    "predicted_floor",
    "profile",
    "render_heatmap",
    "render_histogram",
    "reset_cache_stats",
    "resolve_cache_dir",
    "save_pgm",
    "sample_pairs",
    "relative_errors",
    "segment_mean_errors",
    "sweep",
    "sweep_stale_temps",
]
