"""Design-space sweep for Fig. 4: accuracy vs. resource efficiency.

Fig. 4 scatters every Table I configuration on four axes — mean/peak error
against area/power reduction — constrained to mean error <= 4% and peak
error <= 15%, and outlines the Pareto front.  Two synthesis sources are
supported:

* ``source="model"`` — this library's calibrated cost model (a fully
  self-contained reproduction);
* ``source="paper"`` — the paper's published area/power columns combined
  with this library's measured errors, isolating the error reproduction
  from the cost-model substitution (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses

from .. import paper
from ..multipliers.registry import TABLE1_IDS, build
from . import telemetry
from .metrics import ErrorMetrics
from .montecarlo import characterize_many
from .pareto import pareto_front

__all__ = ["DesignPoint", "sweep", "fig4_points", "fig4_front"]

#: Fig. 4 plot constraints
MAX_MEAN_ERROR = 4.0
MAX_PEAK_ERROR = 15.0


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One design in the Fig. 4 space."""

    name: str
    display: str
    area_reduction: float
    power_reduction: float
    mean_error: float
    peak_error: float
    metrics: ErrorMetrics

    @property
    def is_realm(self) -> bool:
        return self.name.startswith("realm")


def _synthesis_columns(name: str, source: str) -> tuple[float, float] | None:
    if source == "model":
        from ..synth.cost import reductions

        return reductions(name)
    if source == "paper":
        row = paper.TABLE1.get(name)
        if row is None or row.area_reduction is None or row.power_reduction is None:
            return None
        return row.area_reduction, row.power_reduction
    raise ValueError(f"source must be 'model' or 'paper', got {source!r}")


def sweep(
    ids: tuple[str, ...] = TABLE1_IDS,
    samples: int = 1 << 22,
    seed: int = 2020,
    source: str = "model",
    *,
    chunk: int | None = None,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    policy=None,
    checkpoint: bool = False,
    resume: bool = False,
    with_telemetry: bool = False,
    warehouse=None,
) -> list[DesignPoint]:
    """Characterize error and synthesis cost for each design.

    The Monte-Carlo engine options (``workers``/``cache``/``progress``
    plus the resilience knobs ``max_retries``/``batch_timeout``/
    ``policy``/``checkpoint``/``resume``) are forwarded to
    :func:`repro.analysis.montecarlo.characterize_many`, so the whole
    sweep fans out across designs, reuses cached metrics, survives
    worker faults, and — with ``checkpoint``/``resume`` — an
    interrupted sweep restarted with ``resume=True`` recomputes only
    the unfinished blocks/designs.  ``with_telemetry=True`` returns
    ``(points, TelemetrySnapshot)`` with the sweep's per-phase timings
    and counters (see :mod:`repro.analysis.telemetry`).
    ``warehouse`` opts into the experiment warehouse (see
    :mod:`repro.warehouse`): a warm sweep over an unchanged registry
    performs zero model evaluations — every design is served from the
    store by fingerprint — and the sweep is recorded as one ``sweep``
    run whose rows carry the synthesis columns alongside the metrics.
    """
    if with_telemetry:
        with telemetry.recording() as rec:
            points = sweep(
                ids, samples=samples, seed=seed, source=source, chunk=chunk,
                workers=workers, cache=cache, progress=progress,
                max_retries=max_retries, batch_timeout=batch_timeout,
                policy=policy, checkpoint=checkpoint, resume=resume,
                warehouse=warehouse,
            )
        return points, rec.snapshot
    chosen = []
    for name in ids:
        columns = _synthesis_columns(name, source)
        if columns is not None:
            chosen.append((name, build(name), columns))
    synthesis = {name: columns for name, _, columns in chosen}
    engine = {} if chunk is None else {"chunk": chunk}
    measured = characterize_many(
        [(name, multiplier) for name, multiplier, _ in chosen],
        samples=samples,
        seed=seed,
        workers=workers,
        **engine,
        cache=cache,
        progress=progress,
        max_retries=max_retries,
        batch_timeout=batch_timeout,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
        warehouse=warehouse,
        _warehouse_kind="sweep",
        _warehouse_decorate=lambda name: {
            "source": source,
            "area_reduction": synthesis[name][0],
            "power_reduction": synthesis[name][1],
        },
    )
    points = []
    for name, multiplier, columns in chosen:
        metrics = measured[name]
        peak_min, peak_max = metrics.peaks()  # certified when available
        peak = max(abs(peak_min), abs(peak_max))
        points.append(
            DesignPoint(
                name=name,
                display=multiplier.name,
                area_reduction=columns[0],
                power_reduction=columns[1],
                mean_error=metrics.mean_error,
                peak_error=peak,
                metrics=metrics,
            )
        )
    return points


def fig4_points(points: list[DesignPoint]) -> list[DesignPoint]:
    """Apply Fig. 4's mean/peak error constraints."""
    return [
        p
        for p in points
        if p.mean_error <= MAX_MEAN_ERROR and p.peak_error <= MAX_PEAK_ERROR
    ]


def fig4_front(
    points: list[DesignPoint], efficiency: str = "power", error: str = "mean"
) -> list[str]:
    """Pareto front names for one of Fig. 4's four panels."""
    if efficiency not in ("area", "power"):
        raise ValueError(f"efficiency must be 'area' or 'power', got {efficiency!r}")
    if error not in ("mean", "peak"):
        raise ValueError(f"error must be 'mean' or 'peak', got {error!r}")
    coords = {
        p.name: (
            p.area_reduction if efficiency == "area" else p.power_reduction,
            p.mean_error if error == "mean" else p.peak_error,
        )
        for p in fig4_points(points)
    }
    return pareto_front(coords, maximize_x=True)
