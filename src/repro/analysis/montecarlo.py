"""Monte-Carlo error characterization (paper Section IV-B).

The paper draws 2^24 input pairs uniformly from ``{0, ..., 2**16 - 1}``
and reports the error statistics of every design against the accurate
product.  :func:`characterize` reproduces that, chunked so memory stays
bounded and seeded so every run is identical.
"""

from __future__ import annotations

import numpy as np

from ..multipliers.base import Multiplier
from .metrics import ErrorMetrics, merge_metrics

__all__ = [
    "characterize",
    "characterize_many",
    "characterize_workload",
    "gaussian_sampler",
    "lognormal_sampler",
    "sample_pairs",
]

#: the paper's sample count
PAPER_SAMPLES = 1 << 24

_CHUNK = 1 << 20


def sample_pairs(
    bitwidth: int, samples: int, seed: int = 2020
) -> "np.random.Generator":
    """Seeded generator for uniform operand pairs (shared across designs)."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    return np.random.default_rng(seed)


def characterize(
    multiplier: Multiplier,
    samples: int = PAPER_SAMPLES,
    seed: int = 2020,
    chunk: int = _CHUNK,
) -> ErrorMetrics:
    """Monte-Carlo error statistics of one design.

    Uses the paper's input model: both operands i.i.d. uniform over the
    full ``N``-bit range, including zero.  The same ``seed`` gives every
    design the identical input stream, so cross-design comparisons are
    noise-free.
    """
    rng = sample_pairs(multiplier.bitwidth, samples, seed)
    high = 1 << multiplier.bitwidth
    max_product = (high - 1) ** 2

    # draws happen in fixed-size blocks so the input stream depends only on
    # (seed, samples) — the chunk parameter is purely a memory knob
    block = 1 << 16

    def draw(n):
        pieces_a, pieces_b = [], []
        remaining = n
        while remaining > 0:
            take = min(block, remaining)
            pieces_a.append(rng.integers(0, high, block)[:take])
            pieces_b.append(rng.integers(0, high, block)[:take])
            remaining -= take
        return np.concatenate(pieces_a), np.concatenate(pieces_b)

    def chunks():
        remaining = samples
        while remaining > 0:
            n = min(max(chunk, block), remaining)
            n = (n // block) * block or n  # whole blocks, except the tail
            a, b = draw(n)
            yield multiplier.multiply(a, b), a.astype(np.int64) * b
            remaining -= n

    return merge_metrics(chunks(), max_product)


def characterize_many(
    multipliers,
    samples: int = PAPER_SAMPLES,
    seed: int = 2020,
) -> dict[str, ErrorMetrics]:
    """Characterize ``{name: multiplier}`` or ``(name, multiplier)`` pairs."""
    items = multipliers.items() if hasattr(multipliers, "items") else multipliers
    return {name: characterize(mul, samples=samples, seed=seed) for name, mul in items}


def characterize_workload(
    multiplier: Multiplier,
    sampler,
    samples: int = PAPER_SAMPLES,
    seed: int = 2020,
    chunk: int = _CHUNK,
) -> ErrorMetrics:
    """Error statistics under an application-specific input distribution.

    The paper characterizes with uniform inputs; real workloads (DCT
    coefficients, neural-network weights) are far from uniform and shift
    the effective error.  ``sampler(rng, n)`` must return an ``(a, b)``
    pair of int arrays within the multiplier's operand range — see
    ``gaussian_sampler`` / ``lognormal_sampler`` for ready-made ones.
    """
    rng = np.random.default_rng(seed)
    max_product = ((1 << multiplier.bitwidth) - 1) ** 2

    def chunks():
        remaining = samples
        while remaining > 0:
            n = min(chunk, remaining)
            a, b = sampler(rng, n)
            a = np.asarray(a, dtype=np.int64)
            b = np.asarray(b, dtype=np.int64)
            yield multiplier.multiply(a, b), a * b
            remaining -= n

    return merge_metrics(chunks(), max_product)


def gaussian_sampler(bitwidth: int, mean_fraction: float = 0.25, std_fraction: float = 0.1):
    """Clipped-Gaussian operand distribution (ML-weight-like magnitudes)."""
    high = (1 << bitwidth) - 1
    mean = mean_fraction * high
    std = std_fraction * high

    def sample(rng: np.random.Generator, n: int):
        a = np.clip(np.rint(rng.normal(mean, std, n)), 0, high).astype(np.int64)
        b = np.clip(np.rint(rng.normal(mean, std, n)), 0, high).astype(np.int64)
        return a, b

    return sample


def lognormal_sampler(bitwidth: int, sigma: float = 1.5):
    """Heavy-tailed operands (audio/DCT-coefficient-like magnitudes)."""
    high = (1 << bitwidth) - 1
    scale = high / np.exp(3.0 * sigma)

    def sample(rng: np.random.Generator, n: int):
        a = np.clip(np.rint(rng.lognormal(0.0, sigma, n) * scale), 0, high)
        b = np.clip(np.rint(rng.lognormal(0.0, sigma, n) * scale), 0, high)
        return a.astype(np.int64), b.astype(np.int64)

    return sample
