"""Monte-Carlo error characterization (paper Section IV-B).

The paper draws 2^24 input pairs uniformly from ``{0, ..., 2**16 - 1}``
and reports the error statistics of every design against the accurate
product.  :func:`characterize` reproduces that with a deterministic
substream engine (see :mod:`repro.analysis.parallel`): operands are drawn
in fixed 2^16-sample blocks, block ``i`` from
``np.random.default_rng([seed, i])``, and per-block accumulators merge in
block order.  The guarantees:

* the input stream is a pure function of ``(seed, samples)``;
* the resulting :class:`ErrorMetrics` are **bit-identical** at any
  ``chunk`` size and any ``workers`` count;
* the same ``seed`` drives identical inputs into every design, so
  cross-design comparisons are noise-free.

Runs can be fanned out across processes (``workers=``) and memoized in a
content-addressed on-disk cache (``cache=``, see
:mod:`repro.analysis.cache`); ``progress=`` receives event dicts with
per-run wall time, throughput and cache outcome.  Long campaigns survive
worker faults: batches retry with backoff (``max_retries=``), hung
workers time out (``batch_timeout=``), broken pools rebuild and
eventually degrade to serial execution, and per-block state can
checkpoint to disk and resume (``checkpoint=``/``resume=``) — see
:mod:`repro.analysis.runtime` for the guarantees.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..multipliers.base import Multiplier
from ..multipliers.registry import fingerprint
from . import telemetry
from .cache import cache_key, cache_stats, load_metrics, resolve_cache_dir, store_metrics
from .metrics import ErrorMetrics
from .parallel import (
    block_plan,
    draw_uniform_block,
    run_blocked,
    uniform_task,
    workload_task,
)
from .runtime import Checkpoint, ResiliencePolicy

__all__ = [
    "ENGINE_VERSION",
    "PAPER_SAMPLES",
    "characterize",
    "characterize_many",
    "characterize_workload",
    "gaussian_sampler",
    "lognormal_sampler",
    "sample_pairs",
]

#: the paper's sample count
PAPER_SAMPLES = 1 << 24

#: bump on any change to the input stream or accumulation scheme; part of
#: every cache key, so stale entries can never be replayed
ENGINE_VERSION = 2

_CHUNK = 1 << 20


def sample_pairs(bitwidth: int, samples: int, seed: int = 2020):
    """Yield the engine's uniform ``(a, b)`` operand blocks for one run.

    This is the exact input stream :func:`characterize` feeds every
    design: ``samples`` pairs i.i.d. uniform over ``[0, 2**bitwidth)``,
    delivered as int64 array blocks of at most 2^16 pairs, depending only
    on ``(seed, samples)``.
    """
    if bitwidth < 1:
        raise ValueError(f"bitwidth must be >= 1, got {bitwidth}")
    plan = block_plan(samples)  # validates samples

    def blocks():
        for index, count in plan:
            yield draw_uniform_block(bitwidth, seed, index, count)

    return blocks()


def _max_product(multiplier: Multiplier) -> int:
    return ((1 << multiplier.bitwidth) - 1) ** 2


def _validate_engine_args(samples, chunk, workers) -> None:
    """Clear errors at the API boundary, before any fan-out machinery."""
    if not isinstance(samples, (int, np.integer)) or isinstance(samples, bool):
        raise ValueError(f"samples must be an integer, got {samples!r}")
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if not isinstance(chunk, (int, np.integer)) or isinstance(chunk, bool):
        raise ValueError(f"chunk must be an integer, got {chunk!r}")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if workers is not None and workers < 0:
        raise ValueError(
            f"workers must be None or a non-negative integer, got {workers}"
        )


def _resolve_policy(policy, max_retries, batch_timeout) -> ResiliencePolicy | None:
    """Fold the convenience knobs into a policy (``None`` = runtime default)."""
    if policy is not None:
        if max_retries is not None or batch_timeout is not None:
            raise ValueError(
                "pass either policy= or max_retries=/batch_timeout=, not both"
            )
        return policy
    overrides = {}
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    if batch_timeout is not None:
        overrides["batch_timeout"] = batch_timeout
    return ResiliencePolicy(**overrides) if overrides else None


def _resolve_checkpoint(
    checkpoint, resume, directory, payload
) -> Checkpoint | None:
    """A :class:`Checkpoint` under the cache dir, or ``None`` when off.

    Checkpoints reuse the cache's content-addressing scheme: the key is
    :func:`cache_key` of the exact run payload, so resumed state can
    never leak between different designs, seeds or sample counts.
    """
    if not (checkpoint or resume):
        return None
    if payload is None:
        raise ValueError(
            "checkpointing requires a fingerprintable run description "
            "(this sampler has no stable fingerprint)"
        )
    if directory is None:
        directory = resolve_cache_dir(True)
    return Checkpoint(directory, cache_key(payload), payload)


def _emit(progress, **event) -> None:
    if progress is not None:
        progress(event)


def _recorded(run):
    """Run ``run()`` capturing a telemetry delta; returns ``(result, snapshot)``.

    Backs the ``with_telemetry=True`` keyword of the public entry points:
    the snapshot holds only what this call recorded (counters and phase
    stats delta against the surrounding registry state) and works even
    with telemetry disabled, via a temporary in-memory registry.
    """
    with telemetry.recording() as rec:
        result = run()
    return result, rec.snapshot


def _uniform_payload(multiplier: Multiplier, samples: int, seed: int) -> dict:
    return {
        "engine": ENGINE_VERSION,
        "kind": "uniform",
        "design": fingerprint(multiplier),
        "bitwidth": multiplier.bitwidth,
        "samples": samples,
        "seed": seed,
    }


def _warehouse_many(
    wh,
    items,
    *,
    samples,
    seed,
    chunk,
    workers,
    cache,
    progress,
    policy,
    checkpoint,
    resume,
    kind="characterize",
    decorate=None,
) -> dict[str, ErrorMetrics]:
    """Incremental recompute through the experiment warehouse.

    Looks every design up by its content-addressed fingerprint first
    (``warehouse.hits``/``warehouse.misses`` counters); only designs whose
    fingerprint is absent — new designs, changed knobs, a bumped engine —
    are recomputed (``warehouse.deltas``), by recursing into
    :func:`characterize_many` with the warehouse off.  The run is then
    recorded whole: hit rows flagged ``reused``, recomputed rows carrying
    the telemetry counters of the recompute.  Stored metrics are canonical
    JSON with ``repr`` float semantics, so a warm result is bit-identical
    to the cold run that produced it.
    """
    from ..warehouse.store import WarehouseError, metrics_fields

    tele = telemetry.get()
    start = time.perf_counter()
    payloads = {name: _uniform_payload(m, samples, seed) for name, m in items}
    hits: dict[str, ErrorMetrics] = {}
    misses = []
    with tele.span("warehouse.lookup", kind=kind, designs=len(items)):
        for name, multiplier in items:
            metrics = wh.latest_metrics(cache_key(payloads[name]))
            if metrics is not None:
                hits[name] = metrics
                tele.counter("warehouse.hits")
            else:
                misses.append((name, multiplier))
                tele.counter("warehouse.misses")
    tele.counter("warehouse.deltas", len(misses))
    fresh: dict[str, ErrorMetrics] = {}
    counters: dict = {}
    if misses:
        with telemetry.recording() as rec:
            fresh = characterize_many(
                misses, samples=samples, seed=seed, chunk=chunk,
                workers=workers, cache=cache, progress=progress,
                policy=policy, checkpoint=checkpoint, resume=resume,
                warehouse=False,
            )
        counters = dict(rec.snapshot.counters)
        for phase, stat in rec.snapshot.phases.items():
            counters[f"phase.{phase}"] = stat.count
    elif progress is not None:
        for index, (name, _) in enumerate(items, start=1):
            _emit(
                progress, event="design", design=name, index=index,
                total=len(items), samples=samples, seconds=0.0,
                cache="warehouse",
            )
    results = {
        name: fresh[name] if name in fresh else hits[name] for name, _ in items
    }
    rows = []
    for name, _ in items:
        data = metrics_fields(results[name])
        if decorate is not None:
            # extra columns ride under their own keys; the metrics stay an
            # exact, strictly-validated field set under "metrics"
            data = {"metrics": data, **decorate(name)}
        rows.append((name, payloads[name], data, name in hits))
    wall = time.perf_counter() - start
    with tele.span("warehouse.record", kind=kind, designs=len(items)):
        try:
            wh.record_run(
                kind, rows, seed=seed, samples=samples,
                wall_seconds=wall, counters=counters,
            )
        except WarehouseError as exc:
            # provenance must never take the computation down with it
            tele.counter("warehouse.errors")
            tele.event("warehouse.error", kind=kind, cause=str(exc))
    return results


def _run_cached(
    multiplier: Multiplier,
    payload: dict | None,
    task,
    task_args: tuple,
    samples: int,
    chunk: int,
    workers,
    cache,
    progress,
    label: str,
    policy: ResiliencePolicy | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    pool=None,
) -> ErrorMetrics:
    """Cache lookup -> blocked engine run -> cache store, with telemetry."""
    tele = telemetry.get()
    directory = resolve_cache_dir(cache) if payload is not None else None
    key = cache_key(payload) if directory is not None else None
    start = time.perf_counter()
    with tele.span("characterize", design=label, samples=samples):
        if directory is not None:
            with tele.span("cache.lookup", design=label):
                hit = load_metrics(directory, key)
            if hit is not None:
                _emit(
                    progress,
                    event="done",
                    design=label,
                    samples=samples,
                    seconds=time.perf_counter() - start,
                    cache="hit",
                )
                tele.event("mc.done", design=label, samples=samples, cache="hit")
                return hit

        def on_progress(done):
            _emit(
                progress,
                event="progress",
                design=label,
                samples_done=done,
                samples_total=samples,
            )

        def on_event(event):
            _emit(progress, design=label, **event)

        accumulator = run_blocked(
            task,
            task_args,
            samples,
            chunk,
            workers=workers,
            on_progress=on_progress,
            policy=policy,
            checkpoint=_resolve_checkpoint(checkpoint, resume, directory, payload),
            resume=resume,
            on_event=on_event,
            label=label,
            pool=pool,
        )
        with tele.span("finalize", design=label):
            metrics = accumulator.finalize(_max_product(multiplier))
        elapsed = time.perf_counter() - start
        if directory is not None:
            with tele.span("cache.store", design=label):
                store_metrics(directory, key, metrics, payload)
    outcome = "miss" if directory is not None else "off"
    _emit(
        progress,
        event="done",
        design=label,
        samples=samples,
        seconds=elapsed,
        samples_per_sec=samples / elapsed if elapsed > 0 else float("inf"),
        cache=outcome,
    )
    tele.event(
        "mc.done", design=label, samples=samples, seconds=elapsed, cache=outcome
    )
    if elapsed > 0:
        tele.gauge("mc.samples_per_sec", samples / elapsed)
    return metrics


def characterize(
    multiplier: Multiplier,
    samples: int = PAPER_SAMPLES,
    seed: int = 2020,
    chunk: int = _CHUNK,
    *,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    policy: ResiliencePolicy | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    with_telemetry: bool = False,
    pool=None,
    warehouse=None,
) -> ErrorMetrics:
    """Monte-Carlo error statistics of one design.

    Uses the paper's input model: both operands i.i.d. uniform over the
    full ``N``-bit range, including zero.  The same ``seed`` gives every
    design the identical input stream, so cross-design comparisons are
    noise-free; results are bit-identical at any ``chunk``/``workers``
    — and under any retry/rebuild/degradation recovery path.

    ``workers`` > 1 fans blocks out over a process pool; ``cache`` keys
    the result on (engine, design fingerprint, bitwidth, seed, samples)
    and short-circuits repeat runs (see :mod:`repro.analysis.cache`).
    ``max_retries``/``batch_timeout`` (or a full
    :class:`~repro.analysis.runtime.ResiliencePolicy` via ``policy``)
    tune failure handling; ``checkpoint=True`` persists per-block state
    under the cache dir and ``resume=True`` skips blocks a previous
    interrupted run already finished.  ``with_telemetry=True`` returns
    ``(metrics, TelemetrySnapshot)`` — the per-phase timings and
    counters this call recorded (see :mod:`repro.analysis.telemetry`).
    ``pool`` is an optional :class:`~repro.analysis.runtime.SharedPool`
    whose workers are reused across calls (the serving layer's mode).
    ``warehouse`` opts the run into the experiment warehouse (see
    :mod:`repro.warehouse`): the stored result for this exact fingerprint
    is reused if present, and the run is recorded with full provenance.
    """
    if with_telemetry:
        return _recorded(
            lambda: characterize(
                multiplier, samples=samples, seed=seed, chunk=chunk,
                workers=workers, cache=cache, progress=progress,
                max_retries=max_retries, batch_timeout=batch_timeout,
                policy=policy, checkpoint=checkpoint, resume=resume,
                pool=pool, warehouse=warehouse,
            )
        )
    _validate_engine_args(samples, chunk, workers)
    if warehouse is not False and pool is None:
        from ..warehouse.store import open_warehouse

        wh = open_warehouse(warehouse, cache)
        if wh is not None:
            try:
                return _warehouse_many(
                    wh, [(multiplier.name, multiplier)],
                    samples=samples, seed=seed, chunk=chunk,
                    workers=workers, cache=cache, progress=progress,
                    policy=_resolve_policy(policy, max_retries, batch_timeout),
                    checkpoint=checkpoint, resume=resume,
                )[multiplier.name]
            finally:
                wh.close()
    return _run_cached(
        multiplier,
        _uniform_payload(multiplier, samples, seed),
        uniform_task,
        (multiplier, seed),
        samples,
        chunk,
        workers,
        cache,
        progress,
        multiplier.name,
        policy=_resolve_policy(policy, max_retries, batch_timeout),
        checkpoint=checkpoint,
        resume=resume,
        pool=pool,
    )


def _serial_design_task(
    multiplier,
    samples,
    seed,
    chunk,
    policy=None,
    checkpoint_dir=None,
    payload=None,
    resume=False,
):
    """Whole-design serial characterization (picklable, for design fan-out)."""
    ckpt = None
    if checkpoint_dir is not None and payload is not None:
        ckpt = Checkpoint(checkpoint_dir, cache_key(payload), payload)
    return run_blocked(
        uniform_task,
        (multiplier, seed),
        samples,
        chunk,
        policy=policy,
        checkpoint=ckpt,
        resume=resume,
        label=multiplier.name,
    ).finalize(_max_product(multiplier))


def characterize_many(
    multipliers,
    samples: int = PAPER_SAMPLES,
    seed: int = 2020,
    chunk: int = _CHUNK,
    *,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    policy: ResiliencePolicy | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    with_telemetry: bool = False,
    warehouse=None,
    _warehouse_kind: str = "characterize",
    _warehouse_decorate=None,
) -> dict[str, ErrorMetrics]:
    """Characterize ``{name: multiplier}`` or ``(name, multiplier)`` pairs.

    All engine options are forwarded.  With ``workers`` > 1 the fan-out is
    per design (one pool task each — the right granularity for Table I's
    40+ configurations); cache hits are resolved up front and never occupy
    a worker.  ``progress`` receives one ``{"event": "design", ...}`` dict
    as each design completes (completion order under workers).

    A design whose pool task dies (crashed worker, exhausted in-worker
    retries) is recomputed serially in this process after the others
    finish — one faulty design degrades gracefully instead of discarding
    the whole campaign.  ``checkpoint``/``resume`` give every design its
    own content-addressed per-block checkpoint, so an interrupted sweep
    restarted with ``resume=True`` recomputes only unfinished designs
    (finished ones are cache hits) and, within those, only unfinished
    blocks.  ``with_telemetry=True`` returns ``(results, snapshot)``.
    ``warehouse`` opts into the experiment warehouse (see
    :mod:`repro.warehouse`): designs whose exact fingerprint was already
    recorded are served from the store without a single model
    evaluation, only changed fingerprints recompute, and the whole run is
    recorded with provenance and reused-vs-recomputed flags per design.
    """
    if with_telemetry:
        return _recorded(
            lambda: characterize_many(
                multipliers, samples=samples, seed=seed, chunk=chunk,
                workers=workers, cache=cache, progress=progress,
                max_retries=max_retries, batch_timeout=batch_timeout,
                policy=policy, checkpoint=checkpoint, resume=resume,
                warehouse=warehouse, _warehouse_kind=_warehouse_kind,
                _warehouse_decorate=_warehouse_decorate,
            )
        )
    _validate_engine_args(samples, chunk, workers)
    policy = _resolve_policy(policy, max_retries, batch_timeout)
    items = list(multipliers.items() if hasattr(multipliers, "items") else multipliers)
    if warehouse is not False:
        from ..warehouse.store import open_warehouse

        wh = open_warehouse(warehouse, cache)
        if wh is not None:
            try:
                return _warehouse_many(
                    wh, items, samples=samples, seed=seed, chunk=chunk,
                    workers=workers, cache=cache, progress=progress,
                    policy=policy, checkpoint=checkpoint, resume=resume,
                    kind=_warehouse_kind, decorate=_warehouse_decorate,
                )
            finally:
                wh.close()
    total = len(items)
    results: dict[str, ErrorMetrics] = {}

    def emit_design(name, index, seconds, outcome):
        _emit(
            progress,
            event="design",
            design=name,
            index=index,
            total=total,
            samples=samples,
            seconds=seconds,
            cache=outcome,
        )
        telemetry.get().event(
            "mc.design", design=name, index=index, total=total, cache=outcome
        )

    if workers and workers > 1 and total > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        directory = resolve_cache_dir(cache)
        checkpoint_dir = None
        if checkpoint or resume:
            checkpoint_dir = directory if directory is not None else resolve_cache_dir(True)
        pending = []
        completed = 0
        for name, multiplier in items:
            payload = _uniform_payload(multiplier, samples, seed)
            key = cache_key(payload) if directory is not None else None
            hit = load_metrics(directory, key) if directory is not None else None
            if hit is not None:
                results[name] = hit
                completed += 1
                emit_design(name, completed, 0.0, "hit")
            else:
                pending.append((name, multiplier, payload, key))
        if pending:
            start = time.perf_counter()
            failed = []
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                futures = {
                    pool.submit(
                        _serial_design_task, multiplier, samples, seed, chunk,
                        policy, checkpoint_dir, payload, resume,
                    ): (name, multiplier, payload, key)
                    for name, multiplier, payload, key in pending
                }
                for future in as_completed(futures):
                    name, multiplier, payload, key = futures[future]
                    try:
                        metrics = future.result()
                    except Exception as exc:
                        # the design's pool task died (crashed worker or
                        # exhausted in-worker retries): recompute serially
                        # in this process after the pool drains
                        failed.append((name, multiplier, payload, key, exc))
                        continue
                    if directory is not None:
                        store_metrics(directory, key, metrics, payload)
                    results[name] = metrics
                    completed += 1
                    emit_design(
                        name, completed, time.perf_counter() - start,
                        "miss" if directory is not None else "off",
                    )
            # the design pool has drained: fold worker telemetry files in
            telemetry.merge_workers()
            for name, multiplier, payload, key, exc in failed:
                _emit(
                    progress,
                    event="design-fallback",
                    design=name,
                    cause=str(exc),
                )
                tele = telemetry.get()
                tele.counter("runtime.design_fallbacks")
                tele.event("runtime.design-fallback", design=name, cause=str(exc))
                metrics = _serial_design_task(
                    multiplier, samples, seed, chunk,
                    policy, checkpoint_dir, payload, resume,
                )
                if directory is not None:
                    store_metrics(directory, key, metrics, payload)
                results[name] = metrics
                completed += 1
                emit_design(
                    name, completed, time.perf_counter() - start,
                    "miss" if directory is not None else "off",
                )
        return {name: results[name] for name, _ in items}

    for index, (name, multiplier) in enumerate(items, start=1):
        start = time.perf_counter()
        before = cache_stats()
        metrics = characterize(
            multiplier, samples=samples, seed=seed, chunk=chunk,
            workers=workers, cache=cache, progress=None,
            policy=policy, checkpoint=checkpoint, resume=resume,
            warehouse=False,
        )
        results[name] = metrics
        after = cache_stats()
        if after.hits > before.hits:
            outcome = "hit"
        elif after.misses > before.misses:
            outcome = "miss"
        else:
            outcome = "off"
        emit_design(name, index, time.perf_counter() - start, outcome)
    return results


def _sampler_fingerprint(sampler) -> dict | None:
    """A stable description of a sampler, or ``None`` if not cacheable."""
    describe = getattr(sampler, "fingerprint", None)
    if callable(describe):
        return describe()
    if dataclasses.is_dataclass(sampler) and not isinstance(sampler, type):
        return {
            "class": type(sampler).__qualname__,
            "module": type(sampler).__module__,
            **dataclasses.asdict(sampler),
        }
    return None


def characterize_workload(
    multiplier: Multiplier,
    sampler,
    samples: int = PAPER_SAMPLES,
    seed: int = 2020,
    chunk: int = _CHUNK,
    *,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    policy: ResiliencePolicy | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    with_telemetry: bool = False,
) -> ErrorMetrics:
    """Error statistics under an application-specific input distribution.

    The paper characterizes with uniform inputs; real workloads (DCT
    coefficients, neural-network weights) are far from uniform and shift
    the effective error.  ``sampler(rng, n)`` must return an ``(a, b)``
    pair of int arrays within the multiplier's operand range — see
    ``gaussian_sampler`` / ``lognormal_sampler`` for ready-made ones.

    The sampler is called once per fixed-size block with that block's
    substream, so — like :func:`characterize` — the input stream depends
    only on ``(seed, samples)``, never on ``chunk`` or ``workers``.
    Caching requires a fingerprintable sampler (the built-in sampler
    dataclasses are); otherwise the run silently skips the cache.
    Parallel runs require the sampler to be picklable.
    ``with_telemetry=True`` returns ``(metrics, TelemetrySnapshot)``.
    """
    if with_telemetry:
        return _recorded(
            lambda: characterize_workload(
                multiplier, sampler, samples=samples, seed=seed, chunk=chunk,
                workers=workers, cache=cache, progress=progress,
                max_retries=max_retries, batch_timeout=batch_timeout,
                policy=policy, checkpoint=checkpoint, resume=resume,
            )
        )
    _validate_engine_args(samples, chunk, workers)
    sampler_info = _sampler_fingerprint(sampler)
    payload = None
    if sampler_info is not None:
        payload = {
            "engine": ENGINE_VERSION,
            "kind": "workload",
            "design": fingerprint(multiplier),
            "sampler": sampler_info,
            "bitwidth": multiplier.bitwidth,
            "samples": samples,
            "seed": seed,
        }
    return _run_cached(
        multiplier,
        payload,
        workload_task,
        (multiplier, sampler, seed),
        samples,
        chunk,
        workers,
        cache,
        progress,
        multiplier.name,
        policy=_resolve_policy(policy, max_retries, batch_timeout),
        checkpoint=checkpoint,
        resume=resume,
    )


@dataclasses.dataclass(frozen=True)
class GaussianSampler:
    """Clipped-Gaussian operand distribution (ML-weight-like magnitudes).

    A frozen dataclass so workload runs can be pickled to worker
    processes and fingerprinted for the metrics cache.
    """

    bitwidth: int
    mean_fraction: float = 0.25
    std_fraction: float = 0.1

    def __call__(self, rng: np.random.Generator, n: int):
        high = (1 << self.bitwidth) - 1
        mean = self.mean_fraction * high
        std = self.std_fraction * high
        a = np.clip(np.rint(rng.normal(mean, std, n)), 0, high).astype(np.int64)
        b = np.clip(np.rint(rng.normal(mean, std, n)), 0, high).astype(np.int64)
        return a, b


@dataclasses.dataclass(frozen=True)
class LognormalSampler:
    """Heavy-tailed operands (audio/DCT-coefficient-like magnitudes)."""

    bitwidth: int
    sigma: float = 1.5

    def __call__(self, rng: np.random.Generator, n: int):
        high = (1 << self.bitwidth) - 1
        scale = high / np.exp(3.0 * self.sigma)
        a = np.clip(np.rint(rng.lognormal(0.0, self.sigma, n) * scale), 0, high)
        b = np.clip(np.rint(rng.lognormal(0.0, self.sigma, n) * scale), 0, high)
        return a.astype(np.int64), b.astype(np.int64)


def gaussian_sampler(
    bitwidth: int, mean_fraction: float = 0.25, std_fraction: float = 0.1
) -> GaussianSampler:
    """Clipped-Gaussian operand distribution (ML-weight-like magnitudes)."""
    return GaussianSampler(bitwidth, mean_fraction, std_fraction)


def lognormal_sampler(bitwidth: int, sigma: float = 1.5) -> LognormalSampler:
    """Heavy-tailed operands (audio/DCT-coefficient-like magnitudes)."""
    return LognormalSampler(bitwidth, sigma)
