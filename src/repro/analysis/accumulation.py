"""Error accumulation in multiply-accumulate chains.

The paper's design consideration (b): low error bias "facilitates
cancellation of errors in successive computations".  This module makes
that quantitative.  For a dot product of ``n`` approximate products with
exact accumulation, writing each product as ``p_k (1 + e_k)`` with the
multiplier's error distribution ``e ~ (bias mu, std sigma)`` and assuming
same-sign terms of comparable magnitude:

* the *systematic* part of the output error is ``~ mu`` — independent of
  ``n`` (every term is off by the bias, so the sum is too);
* the *random* part averages out like ``sigma / sqrt(n)``.

So for large ``n`` the output error converges to the multiplier's bias:
cALM's dot products settle at -3.85% no matter how long the chain, while
REALM's settle near zero — the whole argument for design consideration
(b), measured by :func:`accumulation_profile` and predicted by
:func:`predicted_floor`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..multipliers.base import Multiplier

__all__ = ["AccumulationPoint", "accumulation_profile", "predicted_floor"]


@dataclasses.dataclass(frozen=True)
class AccumulationPoint:
    """Dot-product error statistics at one chain length."""

    length: int
    mean_error: float  # percent, mean over trials of the signed output error
    spread: float  # percent, std over trials


def accumulation_profile(
    multiplier: Multiplier,
    lengths=(1, 4, 16, 64, 256, 1024),
    trials: int = 256,
    operand_low: int = 256,
    operand_high: int = 1 << 16,
    seed: int = 2020,
) -> list[AccumulationPoint]:
    """Measured dot-product relative error vs. accumulation length.

    Operands are uniform positive (same-sign accumulation — the regime
    where bias cannot cancel and the floor is visible).  Products go
    through the multiplier; accumulation is exact.
    """
    rng = np.random.default_rng(seed)
    points = []
    for length in lengths:
        a = rng.integers(operand_low, operand_high, (trials, length))
        b = rng.integers(operand_low, operand_high, (trials, length))
        approx = multiplier.multiply(a, b).sum(axis=1, dtype=np.int64)
        exact = (a * b).sum(axis=1, dtype=np.int64)
        errors = (approx - exact) / exact * 100.0
        points.append(
            AccumulationPoint(
                length=length,
                mean_error=float(errors.mean()),
                spread=float(errors.std()),
            )
        )
    return points


def predicted_floor(
    multiplier: Multiplier,
    samples: int = 1 << 20,
    operand_low: int = 256,
    operand_high: int = 1 << 16,
    seed: int = 2020,
) -> float:
    """The large-n limit of the dot-product error, in percent.

    The limit is not the plain (Table I) bias: a dot product weights each
    product's relative error by the product's magnitude, so the floor is
    the magnitude-weighted bias ``E[approx - exact] / E[exact]`` — equal
    to the plain bias only when the error is independent of operand
    magnitude (true for the log designs, visibly not for SSM, whose error
    vanishes below the segment width).  Characterized on the same operand
    distribution the profile uses.
    """
    rng = np.random.default_rng(seed)
    a = rng.integers(operand_low, operand_high, samples)
    b = rng.integers(operand_low, operand_high, samples)
    exact = a * b
    deviation = (multiplier.multiply(a, b) - exact).astype(np.float64)
    return float(deviation.sum() / exact.sum() * 100.0)
