"""Scaling studies: operand width and the (M, t) knob surface.

The paper evaluates at 16 bits only.  Two natural questions a user of the
library asks next:

* **Does the error scale with bitwidth?**  For log-based designs it
  should barely move — the relative error is a function of the log
  fractions, whose distribution is (nearly) width-independent — while the
  forced rounding LSB's 2^-(N-1) bias floor grows as N shrinks.
  :func:`bitwidth_scaling` measures that.
* **How dense is the design space the two knobs span?**
  :func:`knob_surface` evaluates the full (M, t) grid, the quantitative
  backing for the paper's "wide and dense design space" claim.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.realm import RealmMultiplier
from ..multipliers.base import Multiplier
from .metrics import ErrorMetrics
from .montecarlo import characterize

__all__ = ["bitwidth_scaling", "knob_surface"]


def bitwidth_scaling(
    factory: Callable[[int], Multiplier],
    bitwidths: Sequence[int] = (8, 10, 12, 16, 20, 24),
    samples: int = 1 << 20,
    seed: int = 2020,
) -> dict[int, ErrorMetrics]:
    """Error metrics of ``factory(bitwidth)`` across operand widths."""
    results = {}
    for bitwidth in bitwidths:
        results[bitwidth] = characterize(
            factory(bitwidth), samples=samples, seed=seed
        )
    return results


def knob_surface(
    m_values: Sequence[int] = (1, 2, 4, 8, 16),
    t_values: Sequence[int] = tuple(range(10)),
    bitwidth: int = 16,
    samples: int = 1 << 20,
    seed: int = 2020,
) -> dict[tuple[int, int], ErrorMetrics]:
    """Error metrics over the full REALM (M, t) configuration grid."""
    results = {}
    for m in m_values:
        for t in t_values:
            realm = RealmMultiplier(bitwidth=bitwidth, m=m, t=t)
            results[(m, t)] = characterize(realm, samples=samples, seed=seed)
    return results
