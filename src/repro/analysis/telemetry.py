"""Tracing + metrics for the characterization runtime (dependency-free).

The engine in :mod:`repro.analysis.montecarlo` /
:mod:`repro.analysis.runtime` is parallel and fault-tolerant, which makes
it a black box: where does a 2^24-sample campaign spend its time, how
often does the cache hit, how many retries did a run absorb?  This module
answers those questions with three primitives:

* **spans** — ``with tele.span("mc.block", block=i):`` times a phase
  (wall *and* CPU seconds) and aggregates per-phase totals;
* **counters and gauges** — monotonic counts (``cache.hits``,
  ``runtime.retries``, ``runtime.checkpoint_writes``) and level samples
  (``mc.samples_per_sec``, ``pool.utilization``);
* **events** — structured dicts appended to a JSONL sink, one line per
  event, for offline analysis (``repro-realm telemetry summarize``).

Design rules, enforced by ``tests/test_telemetry.py``:

* **zero overhead when disabled** — with no ``REPRO_TELEMETRY_DIR`` and
  no explicit :func:`enable`, :func:`get` returns a shared disabled
  instance whose ``span`` is a reusable no-op context manager and whose
  ``counter``/``gauge``/``event`` return immediately;
* **process safety** — every process appends to its own
  ``events-<pid>.jsonl`` under the telemetry directory (fork-inherited
  state is detected by pid and re-resolved), and the parent folds worker
  files into its own registry and sink with :func:`merge_workers` after
  each pool drains;
* **determinism** — the wall/CPU clocks are injectable callables
  (the same injection pattern :class:`~repro.analysis.runtime.
  ResiliencePolicy` uses for sleep/jitter), so tests pin exact timings.

The in-memory registry is queried with :meth:`Telemetry.snapshot`; the
``characterize*`` functions, ``designspace.sweep`` and the experiment
drivers return a per-call :class:`TelemetrySnapshot` delta alongside
their results when called with ``with_telemetry=True``.

The serving layer (:mod:`repro.serve`) emits into the same registry and
trace format — its instrument names, asserted by ``tests/test_serve.py``
and the CI serve smoke test (``tools/serve_smoke.py``):

* spans ``serve.batch`` (one fused multiply evaluation; fields
  ``design``/``pairs``/``requests``) and ``serve.characterize``;
* counters ``serve.requests``, ``serve.shed`` (backpressure drops) and
  ``serve.internal_errors``;
* gauges ``serve.queue_depth`` (operand pairs queued) and
  ``serve.batch_occupancy`` (fused pairs / ``max_batch``, 0..1];
* the ``serve.listening`` event when the TCP endpoint binds.

The supervisor (:mod:`repro.serve.supervisor`) layers fleet-level
instruments on top, asserted by ``tests/test_supervisor.py`` and the
chaos phase of the CI smoke test:

* counters ``supervisor.restarts`` (worker restarts, crash or hang),
  ``supervisor.breaker_trips`` (circuit breakers opening),
  ``supervisor.heartbeat_misses`` (probe deadline misses),
  ``supervisor.redirects`` (requests rerouted off their owner shard)
  and ``supervisor.degraded`` (in-parent fallback evaluations);
* gauges ``supervisor.shards_up`` (live worker count) and
  ``supervisor.queue_depth.<label>`` (per-shard queued pairs, sampled
  at each heartbeat);
* the ``supervisor.shard_failed`` event when a shard exhausts its
  restart budget and is marked permanently down.

The conformance harness (:mod:`repro.conformance`) likewise:

* spans ``conform.eval`` (one differential batch; fields
  ``design``/``pairs``) and ``conform.shrink`` (one counterexample
  minimization; fields ``design``/``check``);
* counters ``conform.divergences`` (exact, per batch) and
  ``conform.pairs`` (operand pairs evaluated);
* the gauge ``conform.coverage`` (reachable segment-cell hit fraction,
  0..1, sampled per fuzzing round).

The experiment warehouse (:mod:`repro.warehouse`), asserted by
``tests/test_warehouse.py``:

* spans ``warehouse.lookup`` (fingerprint resolution for one campaign;
  fields ``kind``/``designs``) and ``warehouse.record`` (one atomic
  run insert);
* counters ``warehouse.hits`` / ``warehouse.misses`` (per-design
  lookup outcomes), ``warehouse.deltas`` (designs actually recomputed
  — zero on a warm run over an unchanged registry),
  ``warehouse.records`` (runs persisted), ``warehouse.errors``
  (recording failures swallowed so the computation survives) and
  ``warehouse.quarantined`` (corrupt databases moved aside);
* the ``warehouse.quarantined`` event naming the damaged file and
  where its evidence went.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pathlib
import time

__all__ = [
    "TELEMETRY_ENV",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "PhaseStat",
    "Recording",
    "Telemetry",
    "TelemetrySnapshot",
    "disable",
    "enable",
    "format_summary",
    "get",
    "merge_workers",
    "recording",
    "summarize_trace",
    "tracing",
]

#: environment override: directory receiving per-process JSONL event files
TELEMETRY_ENV = "REPRO_TELEMETRY_DIR"

#: bump on any change to the JSONL event schema
EVENT_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class NullSink:
    """Discards every event (the in-memory-registry-only mode)."""

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Collects events in a list — the deterministic test sink."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON line per event to ``path``.

    The file opens lazily on the first event and every line is flushed
    immediately, so events from a worker that is later killed (chaos
    ``crash`` faults, OOM) survive up to the last completed emit.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._handle = None

    def emit(self, record: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PhaseStat:
    """Aggregate of one span name: executions, wall and CPU seconds."""

    count: int = 0
    wall: float = 0.0
    cpu: float = 0.0

    def minus(self, earlier: "PhaseStat") -> "PhaseStat":
        return PhaseStat(
            self.count - earlier.count,
            self.wall - earlier.wall,
            self.cpu - earlier.cpu,
        )


_ZERO_PHASE = PhaseStat()


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable copy of the registry: counters, gauges, per-phase stats."""

    counters: dict
    gauges: dict
    phases: dict

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def gauge(self, name: str, default=None):
        """Last sampled level of ``name`` (``default`` if never set)."""
        return self.gauges.get(name, default)

    def phase(self, name: str) -> PhaseStat:
        return self.phases.get(name, _ZERO_PHASE)

    def delta(self, earlier: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """What happened between ``earlier`` and this snapshot.

        Counters and phase stats subtract (zero entries are dropped);
        gauges are level samples, so the later value wins.
        """
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
            if value != earlier.counters.get(name, 0)
        }
        phases = {}
        for name, stat in self.phases.items():
            diff = stat.minus(earlier.phases.get(name, _ZERO_PHASE))
            if diff.count or diff.wall or diff.cpu:
                phases[name] = diff
        return TelemetrySnapshot(counters, dict(self.gauges), phases)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------


class _NoopSpan:
    """Shared reusable no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span; records wall/CPU on exit and emits a span event."""

    __slots__ = ("telemetry", "name", "fields", "start_wall", "start_cpu")

    def __init__(self, telemetry, name, fields):
        self.telemetry = telemetry
        self.name = name
        self.fields = fields

    def __enter__(self):
        self.start_wall = self.telemetry.wall()
        self.start_cpu = self.telemetry.cpu()
        return self

    def __exit__(self, *exc):
        self.telemetry._finish_span(
            self.name,
            self.start_wall,
            self.telemetry.wall() - self.start_wall,
            self.telemetry.cpu() - self.start_cpu,
            self.fields,
        )
        return False


class Telemetry:
    """One process's telemetry registry plus its event sink.

    ``wall`` and ``cpu`` are injectable zero-argument clocks (defaults:
    :func:`time.perf_counter` / :func:`time.process_time`) so tests can
    pin deterministic timings.  All methods are no-ops when
    ``enabled=False`` — the module-level disabled singleton is what
    :func:`get` hands out when telemetry is off.
    """

    def __init__(self, sink=None, *, wall=None, cpu=None, enabled: bool = True):
        self.sink = sink if sink is not None else NullSink()
        self.wall = wall if wall is not None else time.perf_counter
        self.cpu = cpu if cpu is not None else time.process_time
        self.enabled = enabled
        self._counters: dict = {}
        self._gauges: dict = {}
        self._phases: dict = {}

    # -- recording ------------------------------------------------------

    def counter(self, name: str, value=1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value
        self._emit({"event": "counter", "name": name, "value": value})

    def gauge(self, name: str, value) -> None:
        """Record the current level of ``name`` (last sample wins)."""
        if not self.enabled:
            return
        self._gauges[name] = value
        self._emit({"event": "gauge", "name": name, "value": value})

    def event(self, name: str, **fields) -> None:
        """Append one structured event to the sink."""
        if not self.enabled:
            return
        self._emit({"event": name, **fields})

    def span(self, name: str, **fields):
        """Context manager timing one phase execution (wall + CPU)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, fields)

    # -- internals ------------------------------------------------------

    def _emit(self, record: dict) -> None:
        record.setdefault("t", self.wall())
        record.setdefault("pid", os.getpid())
        self.sink.emit(record)

    def _finish_span(self, name, start, wall, cpu, fields) -> None:
        self._add_phase(name, 1, wall, cpu)
        self._emit(
            {
                "event": "span",
                "name": name,
                "t": start,
                "wall": wall,
                "cpu": cpu,
                **fields,
            }
        )

    def _add_phase(self, name, count, wall, cpu) -> None:
        stat = self._phases.get(name, _ZERO_PHASE)
        self._phases[name] = PhaseStat(
            stat.count + count, stat.wall + wall, stat.cpu + cpu
        )

    # -- querying / merging ---------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """An immutable copy of the current registry state."""
        return TelemetrySnapshot(
            dict(self._counters),
            dict(self._gauges),
            dict(self._phases),
        )

    def absorb(self, record: dict) -> None:
        """Fold one parsed event dict (e.g. from a worker file) into the
        registry and forward it to this process's sink verbatim."""
        if not self.enabled:
            return
        kind = record.get("event")
        name = record.get("name")
        if kind == "counter" and isinstance(name, str):
            value = record.get("value", 1)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._counters[name] = self._counters.get(name, 0) + value
        elif kind == "gauge" and isinstance(name, str):
            self._gauges[name] = record.get("value")
        elif kind == "span" and isinstance(name, str):
            wall = record.get("wall", 0.0)
            cpu = record.get("cpu", 0.0)
            if isinstance(wall, (int, float)) and isinstance(cpu, (int, float)):
                self._add_phase(name, 1, float(wall), float(cpu))
        self.sink.emit(record)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._phases.clear()

    def close(self) -> None:
        self.sink.close()


#: the shared disabled instance; every method returns immediately
DISABLED = Telemetry(enabled=False)

#: ``(pid, Telemetry)`` of the explicitly- or env-activated registry.
#: The pid guards against fork inheritance: a worker that inherits the
#: parent's activation re-resolves its own per-pid sink from the
#: environment instead of writing through the parent's file handle.
_ACTIVE: tuple[int, Telemetry] | None = None


def get() -> Telemetry:
    """The active registry for this process, or the disabled singleton.

    Activation order: an explicit :func:`enable` in this process, else
    the :data:`TELEMETRY_ENV` directory (each process lazily opens its
    own ``events-<pid>.jsonl`` there — worker processes inherit the
    variable and activate independently), else disabled.
    """
    global _ACTIVE
    pid = os.getpid()
    if _ACTIVE is not None and _ACTIVE[0] == pid:
        return _ACTIVE[1]
    directory = os.environ.get(TELEMETRY_ENV)
    if not directory:
        if _ACTIVE is not None:  # fork-inherited activation, env cleared
            _ACTIVE = None
        return DISABLED
    telemetry = Telemetry(
        JsonlSink(pathlib.Path(directory) / f"events-{pid}.jsonl")
    )
    _ACTIVE = (pid, telemetry)
    return telemetry


def enable(
    sink=None, directory=None, *, wall=None, cpu=None
) -> Telemetry:
    """Activate telemetry in this process (and, via env, its children).

    ``sink`` is this process's sink (default: a :class:`JsonlSink` under
    ``directory``, or an in-memory registry with a :class:`NullSink`
    when neither is given).  When ``directory`` is set it is also
    exported as :data:`TELEMETRY_ENV` so pool workers spawned later
    activate themselves and write per-pid files there.
    """
    global _ACTIVE
    if directory is not None:
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        os.environ[TELEMETRY_ENV] = str(directory)
        if sink is None:
            sink = JsonlSink(directory / f"events-{os.getpid()}.jsonl")
    telemetry = Telemetry(sink, wall=wall, cpu=cpu)
    _ACTIVE = (os.getpid(), telemetry)
    return telemetry


def disable() -> None:
    """Deactivate: close the active sink and clear the env activation."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE[0] == os.getpid():
        _ACTIVE[1].close()
    _ACTIVE = None
    os.environ.pop(TELEMETRY_ENV, None)


# ----------------------------------------------------------------------
# Cross-process merging
# ----------------------------------------------------------------------


def _worker_files(directory) -> list[pathlib.Path]:
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    own = f"events-{os.getpid()}.jsonl"
    return sorted(
        path for path in directory.glob("events-*.jsonl") if path.name != own
    )


def _read_events(path) -> list[dict]:
    records = []
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # a writer died mid-line; keep everything before it
        if isinstance(record, dict):
            records.append(record)
    return records


def merge_workers(telemetry: Telemetry | None = None) -> int:
    """Fold per-pid worker event files into this process's registry.

    Reads every ``events-<pid>.jsonl`` under the telemetry directory
    except this process's own, absorbs the events (in cross-file
    timestamp order) into the active registry and sink, and removes the
    merged files.  Returns the number of events absorbed; a no-op (0)
    when telemetry is disabled.  Call after a worker pool has drained —
    live writers must not be raced.
    """
    telemetry = telemetry if telemetry is not None else get()
    directory = os.environ.get(TELEMETRY_ENV)
    if not telemetry.enabled or not directory:
        return 0
    merged = []
    for path in _worker_files(directory):
        merged.extend(_read_events(path))
        try:
            path.unlink()
        except FileNotFoundError:
            pass
    merged.sort(key=lambda record: record.get("t", 0.0))
    for record in merged:
        telemetry.absorb(record)
    return len(merged)


# ----------------------------------------------------------------------
# Scoped helpers
# ----------------------------------------------------------------------


class Recording:
    """Result holder for :func:`recording`; ``snapshot`` is the delta of
    everything recorded inside the ``with`` block."""

    snapshot: TelemetrySnapshot | None = None


@contextlib.contextmanager
def recording():
    """Capture the telemetry delta of a block of work.

    Uses the active registry when telemetry is enabled; otherwise
    activates a temporary in-memory registry (no sink, no files) for the
    duration, so ``with_telemetry=True`` callers always get counters and
    phase stats back even with tracing off.
    """
    global _ACTIVE
    telemetry = get()
    previous = None
    temporary = not telemetry.enabled
    if temporary:
        previous = _ACTIVE
        telemetry = Telemetry()
        _ACTIVE = (os.getpid(), telemetry)
    before = telemetry.snapshot()
    holder = Recording()
    try:
        yield holder
    finally:
        holder.snapshot = telemetry.snapshot().delta(before)
        if temporary:
            _ACTIVE = previous


@contextlib.contextmanager
def tracing(path):
    """CLI-level tracing: write a merged JSONL trace to ``path``.

    Enables telemetry with ``path`` as this process's sink and a private
    subdirectory next to it as the worker drop zone, runs the block,
    merges any remaining worker files, appends a final
    ``trace.complete`` event carrying the total wall time, and
    deactivates.  ``path=None`` is a no-op passthrough.

    Each invocation starts fresh: an existing file at ``path`` is
    replaced, not appended to (the sink's append mode exists for worker
    crash survivability, but one trace file must describe one run or
    ``summarize_trace`` double-counts), and the per-run drop zone keeps
    :func:`merge_workers` from absorbing ``events-*.jsonl`` leftovers
    that an earlier crashed or concurrent traced run parked in a shared
    directory.
    """
    if path is None:
        yield get()
        return
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        path.unlink()
    except FileNotFoundError:
        pass
    dropzone = path.parent / f"{path.name}.workers-{os.getpid()}"
    previous_env = os.environ.get(TELEMETRY_ENV)
    telemetry = enable(JsonlSink(path), directory=dropzone)
    start = telemetry.wall()
    try:
        yield telemetry
    finally:
        merge_workers(telemetry)
        telemetry.event(
            "trace.complete",
            schema=EVENT_SCHEMA_VERSION,
            wall=telemetry.wall() - start,
        )
        disable()
        try:
            dropzone.rmdir()
        except OSError:
            pass  # a straggling writer; leave its evidence in place
        if previous_env is not None:
            os.environ[TELEMETRY_ENV] = previous_env


# ----------------------------------------------------------------------
# Offline summaries
# ----------------------------------------------------------------------


def summarize_trace(source) -> dict:
    """Aggregate a JSONL trace into per-phase stats + counters + gauges.

    ``source`` is a trace file, a directory of ``*.jsonl`` files, or a
    list of either.  Returns ``{"phases": {name: PhaseStat}, "counters":
    {...}, "gauges": {...}, "events": N, "total_wall": float | None}``
    where ``total_wall`` comes from the ``trace.complete`` event when
    present.
    """
    if isinstance(source, (list, tuple)):
        paths = [pathlib.Path(p) for p in source]
    else:
        source = pathlib.Path(source)
        paths = sorted(source.glob("*.jsonl")) if source.is_dir() else [source]
    folder = Telemetry()
    events = 0
    total_wall = None
    for path in paths:
        for record in _read_events(path):
            events += 1
            if record.get("event") == "trace.complete":
                wall = record.get("wall")
                if isinstance(wall, (int, float)):
                    total_wall = float(wall)
            folder.absorb(record)
    snapshot = folder.snapshot()
    return {
        "phases": dict(snapshot.phases),
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "events": events,
        "total_wall": total_wall,
    }


def format_summary(summary: dict) -> str:
    """Render a :func:`summarize_trace` result as an aligned text table."""
    lines = []
    phases = summary["phases"]
    if phases:
        rows = [
            (
                name,
                str(stat.count),
                f"{stat.wall:.4f}",
                f"{stat.cpu:.4f}",
            )
            for name, stat in sorted(
                phases.items(), key=lambda item: -item[1].wall
            )
        ]
        widths = [
            max(len(header), *(len(row[i]) for row in rows))
            for i, header in enumerate(("phase", "count", "wall s", "cpu s"))
        ]
        header = "  ".join(
            text.ljust(widths[i]) if i == 0 else text.rjust(widths[i])
            for i, text in enumerate(("phase", "count", "wall s", "cpu s"))
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                "  ".join(
                    cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
        if summary.get("total_wall") is not None:
            covered = sum(stat.wall for stat in phases.values())
            lines.append(
                f"total wall {summary['total_wall']:.4f}s  "
                f"(spans cover {covered:.4f}s)"
            )
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(summary["counters"].items()):
            lines.append(f"  {name:28s} {value}")
    if summary["gauges"]:
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(summary["gauges"].items()):
            text = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:28s} {text}")
    if not lines:
        lines.append(f"(no telemetry events; {summary['events']} lines read)")
    return "\n".join(lines)
