"""Deterministic fault injection for the resilient runtime (chaos harness).

The recovery paths in :mod:`repro.analysis.runtime` — retries, pool
rebuilds, timeouts, degradation — are exactly the code that never runs in
a healthy environment.  This module makes worker faults *reproducible* so
tests can prove each path ends in either a bit-identical result or a
structured error.

A **fault plan** is a list of :class:`FaultSpec`, each targeting the
batch whose first block index equals ``block`` (optionally restricted to
one run label via ``design``).  Kinds:

* ``"crash"`` — ``os._exit`` the process (→ ``BrokenProcessPool``); only
  fires inside worker processes, so degraded in-process execution always
  survives it (mirroring real OOM-killed workers);
* ``"hang"`` — sleep ``seconds`` before computing (→ batch timeout);
* ``"raise"`` — raise :class:`ChaosFault` (an ordinary task error);
* ``"corrupt"`` — compute the batch, then falsify the first
  accumulator's sample count (must be caught by result validation).

Each spec fires for its first ``times`` executions, counted across
processes through lock files in the plan's ``dir`` — so "crash once then
succeed" is expressible even though retries land in fresh workers.

Activation: :func:`install` for in-process plans, or the
:data:`CHAOS_ENV` environment variable (inline JSON or a path to a JSON
file) which worker processes inherit.  With neither set, the runtime's
task wrapper is the identity function — zero overhead in production.

The supervised serve fleet (:mod:`repro.serve.supervisor`) injects
through the same plans via :func:`serve_fault`: ``design`` names the
shard label, ``block`` the shard's multiply-request ordinal, and the
shard process performs the claimed effect before (crash/hang) or after
(corrupt) evaluating — so "kill shard-1 on its third request, exactly
once" is expressible with the same cross-process exact firing counts.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import pathlib
import time

from .metrics import Accumulator

__all__ = [
    "CHAOS_ENV",
    "ChaosFault",
    "ChaosPlan",
    "FaultSpec",
    "active_plan",
    "install",
    "serve_fault",
    "uninstall",
    "wrap",
]

#: environment override: inline JSON plan or a path to a JSON plan file
CHAOS_ENV = "REPRO_CHAOS"

FAULT_KINDS = ("crash", "hang", "raise", "corrupt")


class ChaosFault(RuntimeError):
    """The injected task error raised by ``kind="raise"`` faults."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``block`` matches the first block index of a batch; ``design`` (when
    set) additionally matches the run label (the multiplier display
    name); ``times`` bounds how many executions fault; ``seconds`` is
    the ``hang`` duration.
    """

    kind: str
    block: int
    design: str | None = None
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A fault list plus the directory backing the cross-process counters."""

    specs: tuple[FaultSpec, ...]
    directory: str

    def fault_for(self, block: int, label: str | None) -> tuple[int, FaultSpec] | None:
        for position, spec in enumerate(self.specs):
            if spec.block != block:
                continue
            if spec.design is not None and spec.design != label:
                continue
            return position, spec
        return None

    def claim(self, position: int, spec: FaultSpec) -> bool:
        """Atomically take the next firing slot; ``False`` once spent.

        Slot ``n`` is the lock file ``claim-<position>-<n>``; ``O_EXCL``
        creation makes the count exact even when retries race across
        worker processes.
        """
        directory = pathlib.Path(self.directory)
        directory.mkdir(parents=True, exist_ok=True)
        slot = 0
        while True:
            path = directory / f"claim-{position}-{slot}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                slot += 1
                continue
            os.close(fd)
            return slot < spec.times

    def to_json(self) -> str:
        return json.dumps(
            {
                "dir": self.directory,
                "faults": [dataclasses.asdict(spec) for spec in self.specs],
            }
        )


_INSTALLED: ChaosPlan | None = None


def install(specs, directory) -> ChaosPlan:
    """Activate an in-process plan (serial runs and the installing process).

    Parallel runs should set :data:`CHAOS_ENV` instead (e.g. to
    ``plan.to_json()``) so worker processes see the plan too.
    """
    global _INSTALLED
    _INSTALLED = ChaosPlan(tuple(specs), str(directory))
    return _INSTALLED


def uninstall() -> None:
    global _INSTALLED
    _INSTALLED = None


def _parse_plan(text: str) -> ChaosPlan | None:
    try:
        if not text.lstrip().startswith("{"):
            text = pathlib.Path(text).read_text()
        data = json.loads(text)
        specs = tuple(FaultSpec(**spec) for spec in data["faults"])
        return ChaosPlan(specs, str(data["dir"]))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def active_plan() -> ChaosPlan | None:
    """The installed plan, else the environment plan, else ``None``."""
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get(CHAOS_ENV)
    if not text:
        return None
    return _parse_plan(text)


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


@dataclasses.dataclass
class _FaultingTask:
    """Picklable task wrapper that consults the active plan at call time."""

    inner: object
    label: str | None = None

    def __call__(self, blocks):
        plan = active_plan()
        if plan is None or not blocks:
            return self.inner(blocks)
        match = plan.fault_for(blocks[0][0], self.label)
        if match is None:
            return self.inner(blocks)
        position, spec = match
        if spec.kind == "crash" and not _in_worker():
            # crashes model killed workers; in-process execution survives
            return self.inner(blocks)
        if not plan.claim(position, spec):
            return self.inner(blocks)
        if spec.kind == "crash":
            os._exit(17)
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            return self.inner(blocks)
        if spec.kind == "raise":
            raise ChaosFault(
                f"injected fault on batch starting at block {blocks[0][0]}"
            )
        # corrupt: compute honestly, then falsify the first accumulator
        out = list(self.inner(blocks))
        if out and isinstance(out[0], Accumulator):
            poisoned = Accumulator(**dataclasses.asdict(out[0]))
            poisoned.all_count += 1
            out[0] = poisoned
        return out


def wrap(task, label: str | None = None):
    """Wrap a bound batch task with fault injection when a plan is active.

    Returns ``task`` unchanged when no plan is installed and the
    environment variable is unset, so healthy runs pay nothing.
    """
    if _INSTALLED is None and not os.environ.get(CHAOS_ENV):
        return task
    return _FaultingTask(task, label)


def serve_fault(label: str, ordinal: int) -> FaultSpec | None:
    """Claim a serve-layer fault for request ``ordinal`` at shard ``label``.

    The serve fleet reuses the :class:`FaultSpec` schema with
    ``design`` = the shard label (``"shard-0"``, ...) and ``block`` = the
    shard's multiply-request ordinal (0-based, counted per shard process
    lifetime).  Returns the spec once claimed — the caller performs the
    effect (``crash`` → ``os._exit``, ``hang`` → block the event loop,
    ``corrupt`` → truncate the reply, ``raise`` → :class:`ChaosFault`) —
    or ``None`` when no plan is active, nothing matches, or the spec's
    firing budget is spent.  ``crash`` only claims inside worker
    processes (same guard as the batch-task wrapper), so an in-process
    shard can never take its parent down.  Claims go through the plan's
    cross-process lock files, so firing counts stay exact even when the
    supervisor restarts shards mid-campaign.
    """
    plan = active_plan()
    if plan is None:
        return None
    match = plan.fault_for(ordinal, label)
    if match is None:
        return None
    position, spec = match
    if spec.kind == "crash" and not _in_worker():
        return None
    if not plan.claim(position, spec):
        return None
    return spec
