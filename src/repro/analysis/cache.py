"""Content-addressed on-disk cache for Monte-Carlo error metrics.

Characterizing all Table I configurations at the paper's 2^24 depth costs
minutes of CPU; the metrics themselves are a few hundred bytes.  This
cache keys each :class:`~repro.analysis.metrics.ErrorMetrics` by a SHA-256
digest of the complete run description — engine version, multiplier
fingerprint (see :func:`repro.multipliers.registry.fingerprint`), input
kind, bitwidth, seed and sample count — so a hit is guaranteed to describe
the exact run being requested, and any change to a knob (``M``, ``t``,
``q``, seed, samples, engine) lands on a different key.

Layout: one ``<key>.json`` file per entry under the cache directory,
holding ``{"payload": <the keyed description>, "metrics": <fields>}``.
Floats survive the JSON round-trip bit-exactly (``repr`` semantics), so a
cache hit compares equal to the recomputed object.  Corrupt or truncated
files are treated as misses and silently recomputed/overwritten.

The directory is resolved per call:

* ``cache=False`` — caching off;
* ``cache=None`` (default) — on only if ``REPRO_CACHE_DIR`` is set;
* ``cache=True`` — ``REPRO_CACHE_DIR`` or the user cache directory
  (``$XDG_CACHE_HOME``/``~/.cache`` + ``repro-realm/metrics``);
* a path — that directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time

from . import telemetry
from .metrics import ErrorMetrics

__all__ = [
    "CACHE_ENV",
    "CacheStats",
    "cache_key",
    "cache_stats",
    "clear_cache",
    "default_cache_dir",
    "invalidate",
    "load_metrics",
    "metrics_from_fields",
    "reset_cache_stats",
    "resolve_cache_dir",
    "store_metrics",
    "sweep_stale_temps",
]

#: environment override for the cache directory (also the global opt-in)
CACHE_ENV = "REPRO_CACHE_DIR"

#: temp files older than this are considered orphaned (a writer that died
#: between write and rename); younger ones may belong to a live writer
STALE_TEMP_SECONDS = 3600.0

_METRIC_FIELDS = tuple(field.name for field in dataclasses.fields(ErrorMetrics))
_NUMERIC_FIELDS = tuple(
    name for name in _METRIC_FIELDS if name != "peak_certified"
)


def _load_certified(value) -> tuple[float, float] | None:
    """Validate a stored ``peak_certified`` entry (JSON list or null)."""
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise ValueError("peak_certified must be a 2-element pair or null")
    lo, hi = value
    for side in (lo, hi):
        if isinstance(side, bool) or not isinstance(side, (int, float)):
            raise ValueError("non-numeric peak_certified bound")
    return (float(lo), float(hi))


@dataclasses.dataclass
class CacheStats:
    """Process-wide hit/miss/store counters for run instrumentation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores)


_STATS = CacheStats()


def cache_stats() -> CacheStats:
    """A copy of the global counters (hits/misses/stores this process)."""
    return _STATS.snapshot()


def reset_cache_stats() -> None:
    _STATS.hits = _STATS.misses = _STATS.stores = 0


def default_cache_dir() -> pathlib.Path:
    """``$XDG_CACHE_HOME``/``~/.cache`` + ``repro-realm/metrics``."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-realm" / "metrics"


def resolve_cache_dir(cache) -> pathlib.Path | None:
    """Map a ``cache`` argument to a directory, or ``None`` for no caching."""
    if cache is False:
        return None
    if cache is None or cache is True:
        env = os.environ.get(CACHE_ENV)
        if env:
            return pathlib.Path(env)
        return default_cache_dir() if cache is True else None
    return pathlib.Path(cache)


def cache_key(payload: dict) -> str:
    """Stable content address of a run description (canonical-JSON SHA-256)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _entry_path(directory: pathlib.Path, key: str) -> pathlib.Path:
    return pathlib.Path(directory) / f"{key}.json"


def metrics_from_fields(fields: dict) -> ErrorMetrics:
    """Strictly validate a metrics field mapping into :class:`ErrorMetrics`.

    The shared deserializer of the metrics cache and the experiment
    warehouse: every numeric field must be present and numeric (booleans
    rejected), unknown fields are refused, and ``peak_certified`` is
    optional — entries written before that field arrived stay loadable
    (they simply carry no proof).  Raises ``ValueError``/``TypeError``/
    ``KeyError`` on anything else.
    """
    if not isinstance(fields, dict):
        raise TypeError("metric fields must be a mapping")
    if set(fields) - {"peak_certified"} != set(_NUMERIC_FIELDS):
        raise ValueError("unexpected metric fields")
    values = {}
    for name in _NUMERIC_FIELDS:
        value = fields[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"non-numeric metric field {name!r}")
        values[name] = int(value) if name == "samples" else float(value)
    values["peak_certified"] = _load_certified(fields.get("peak_certified"))
    return ErrorMetrics(**values)


def load_metrics(directory, key: str) -> ErrorMetrics | None:
    """The cached metrics for ``key``, or ``None`` (missing or corrupt)."""
    path = _entry_path(directory, key)
    try:
        data = json.loads(path.read_text())
        metrics = metrics_from_fields(data["metrics"])
    except (OSError, ValueError, KeyError, TypeError):
        # missing, unreadable, truncated or hand-edited entries all fall
        # back to recomputation; store_metrics repairs the file afterwards
        _STATS.misses += 1
        telemetry.get().counter("cache.misses")
        return None
    _STATS.hits += 1
    telemetry.get().counter("cache.hits")
    return metrics


def sweep_stale_temps(
    directory, max_age_seconds: float = STALE_TEMP_SECONDS
) -> int:
    """Remove orphaned ``*.tmp<pid>`` files; returns how many were removed.

    Writers that die between ``write_text`` and ``os.replace`` leave
    their temp file behind forever (every process embeds its own pid in
    the name, so no later writer reuses it).  Only files older than
    ``max_age_seconds`` are swept, so a concurrent live writer is never
    raced.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return 0
    cutoff = time.time() - max_age_seconds
    removed = 0
    for path in directory.glob("*.tmp*"):
        try:
            if path.stat().st_mtime < cutoff:
                path.unlink()
                removed += 1
        except FileNotFoundError:
            pass  # another sweeper got there first
    return removed


#: directories already swept for stale temps by this process
_SWEPT: set[str] = set()


def _init_cache_dir(directory: pathlib.Path) -> None:
    """Create the directory and (once per process) sweep orphaned temps."""
    directory.mkdir(parents=True, exist_ok=True)
    marker = str(directory)
    if marker not in _SWEPT:
        _SWEPT.add(marker)
        sweep_stale_temps(directory)


def store_metrics(directory, key: str, metrics: ErrorMetrics, payload: dict) -> None:
    """Atomically persist one entry (write-temp-then-rename)."""
    directory = pathlib.Path(directory)
    _init_cache_dir(directory)
    path = _entry_path(directory, key)
    text = json.dumps(
        {"payload": payload, "metrics": dataclasses.asdict(metrics)},
        sort_keys=True,
        indent=1,
    )
    temp = path.with_suffix(f".tmp{os.getpid()}")
    temp.write_text(text + "\n")
    os.replace(temp, path)
    _STATS.stores += 1
    telemetry.get().counter("cache.stores")


def invalidate(key: str, cache=True) -> bool:
    """Drop one entry; returns whether a file was removed."""
    directory = resolve_cache_dir(cache)
    if directory is None:
        return False
    try:
        _entry_path(directory, key).unlink()
        return True
    except FileNotFoundError:
        return False


#: cache-dir glob patterns covering every subsystem store that lives
#: under the metrics cache directory; clear_cache drops them all
_SUBSYSTEM_GLOBS = (
    "*.json",                 # metrics entries
    "checkpoints/*.json",     # campaign checkpoints (runtime.Checkpoint)
    "formal/*.json",          # equivalence/worst-case certificates
    "conformance/*.json",     # shrunk fuzzing counterexamples
    "warehouse/warehouse.db*",  # experiment warehouse + quarantined copies
)


def clear_cache(cache=True) -> int:
    """Drop every entry in the resolved directory; returns the count.

    Covers all subsystem stores under the cache dir — metrics entries,
    campaign checkpoints (``checkpoints/``), formal certificates
    (``formal/``), conformance counterexamples (``conformance/``) and
    the experiment warehouse database (``warehouse/``, including
    quarantined copies) — and sweeps orphaned temp files left by
    writers that died mid-store (the returned count covers removed
    entries only, not the swept temps).
    """
    directory = resolve_cache_dir(cache)
    if directory is None or not directory.is_dir():
        return 0
    removed = 0
    for pattern in _SUBSYSTEM_GLOBS:
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except (FileNotFoundError, IsADirectoryError):
                pass
    for subdirectory in ("", "checkpoints", "formal", "conformance"):
        sweep_stale_temps(directory / subdirectory if subdirectory else directory)
    return removed
