"""Relative-error distributions (paper Fig. 5).

Fig. 5 shows histograms of REALM's signed relative error for the three
``M`` values and ``t = {0, 6, 9}``: double-sided, near-centered on zero,
narrowing as ``M`` grows, and only widening/displacing at ``t = 9``.
:func:`error_histogram` produces the same series; an ASCII sparkline
renderer is included for terminal output.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..multipliers.base import Multiplier
from .metrics import relative_errors

__all__ = ["Histogram", "error_histogram", "ascii_histogram"]


@dataclasses.dataclass(frozen=True)
class Histogram:
    """Normalized histogram of signed relative error (percent bins)."""

    name: str
    edges: np.ndarray  # bin edges in percent, len bins+1
    density: np.ndarray  # fraction of samples per bin, sums to ~1

    @property
    def centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def mode_center(self) -> float:
        """Center of the most populated bin, percent."""
        return float(self.centers[int(np.argmax(self.density))])

    def spread(self) -> float:
        """Standard deviation of the binned distribution, percent."""
        mean = float(np.sum(self.centers * self.density))
        return float(np.sqrt(np.sum((self.centers - mean) ** 2 * self.density)))


def error_histogram(
    multiplier: Multiplier,
    samples: int = 1 << 22,
    seed: int = 2020,
    bins: int = 81,
    span: float = 8.0,
) -> Histogram:
    """Monte-Carlo histogram of the signed relative error.

    ``span`` sets the symmetric range in percent (Fig. 5 uses about ±8%);
    samples beyond it land in the edge bins so nothing is silently lost.
    """
    rng = np.random.default_rng(seed)
    high = 1 << multiplier.bitwidth
    a = rng.integers(0, high, samples)
    b = rng.integers(0, high, samples)
    errors, _ = relative_errors(multiplier.multiply(a, b), a.astype(np.int64) * b)
    percent = np.clip(errors * 100.0, -span, span)
    counts, edges = np.histogram(percent, bins=bins, range=(-span, span))
    return Histogram(multiplier.name, edges, counts / counts.sum())


_BARS = " ▁▂▃▄▅▆▇█"


def ascii_histogram(hist: Histogram, width: int = 81) -> str:
    """One-line sparkline of a histogram for terminal display."""
    density = hist.density
    if len(density) > width:
        step = len(density) // width
        density = density[: step * width].reshape(width, step).sum(axis=1)
    peak = density.max()
    if peak == 0:
        return " " * len(density)
    levels = np.minimum(
        (density / peak * (len(_BARS) - 1)).astype(int), len(_BARS) - 1
    )
    return "".join(_BARS[v] for v in levels)
