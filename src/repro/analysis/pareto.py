"""Pareto-front extraction for the design space of Fig. 4.

A design point is Pareto optimal when no other point is at least as good
in both objectives and strictly better in one.  Fig. 4 plots accuracy
(mean or peak error, lower is better) against resource efficiency (area or
power *reduction*, higher is better); :func:`pareto_front` handles any
such min/max objective pair.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["pareto_front", "is_dominated"]


def is_dominated(
    point: tuple[float, float],
    others: Sequence[tuple[float, float]],
    maximize_x: bool = True,
) -> bool:
    """True if some other point dominates ``point``.

    ``x`` is the efficiency axis (maximized when ``maximize_x``), ``y`` the
    error axis (always minimized).
    """
    px, py = point
    for ox, oy in others:
        if (ox, oy) == (px, py):
            continue
        x_no_worse = ox >= px if maximize_x else ox <= px
        x_better = ox > px if maximize_x else ox < px
        if x_no_worse and oy <= py and (x_better or oy < py):
            return True
    return False


def pareto_front(
    points: dict[str, tuple[float, float]], maximize_x: bool = True
) -> list[str]:
    """Names of the Pareto-optimal points, sorted along the x axis.

    ``points`` maps a design name to ``(efficiency, error)``.  Duplicated
    coordinates are all kept (they tie on the front).
    """
    values = list(points.values())
    front = [
        name
        for name, point in points.items()
        if not is_dominated(point, values, maximize_x)
    ]
    return sorted(front, key=lambda name: points[name][0], reverse=not maximize_x)
