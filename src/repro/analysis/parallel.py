"""Deterministic substreams and process-pool fan-out for characterization.

The Monte-Carlo engine draws operands in fixed :data:`BLOCK`-sample blocks,
each from its own counter-based substream
``np.random.default_rng([seed, block_index])``.  Because a block's content
depends only on ``(seed, block_index)`` — never on who computed the blocks
before it — any block can be produced independently, in any process, and
the full input stream is a pure function of ``(seed, samples)``.

Per-block :class:`~repro.analysis.metrics.Accumulator` objects are merged
in ascending block order, which pins the floating-point addition order, so
the resulting :class:`~repro.analysis.metrics.ErrorMetrics` are
bit-identical at any ``chunk`` size and any ``workers`` count.  ``chunk``
is purely a batching knob: how many blocks one task (and one inter-process
message) covers.

Because every block is a pure function of ``(seed, block_index)``, any
block can be recomputed anywhere — the failure-handling layer in
:mod:`repro.analysis.runtime` (retries, timeouts, pool rebuilds,
serial degradation, checkpoint/resume) leans on exactly this property:
no recovery path can change the result.
"""

from __future__ import annotations

import numpy as np

from . import telemetry
from .metrics import Accumulator, accumulate_chunk

__all__ = [
    "BLOCK",
    "substream",
    "block_plan",
    "group_blocks",
    "draw_uniform_block",
    "uniform_task",
    "workload_task",
    "run_blocked",
]

#: fixed draw granularity (samples per substream); changing this changes
#: the input stream — bump ``montecarlo.ENGINE_VERSION`` if you do
BLOCK = 1 << 16


def substream(seed: int, index: int) -> np.random.Generator:
    """The independent generator of block ``index`` for a run seed."""
    return np.random.default_rng([seed, index])


def block_plan(samples: int) -> list[tuple[int, int]]:
    """The canonical ``(block_index, count)`` partition of a run.

    Every block is :data:`BLOCK` samples except a possibly-shorter tail, so
    the partition — and therefore the stream — depends only on ``samples``.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    full, tail = divmod(samples, BLOCK)
    plan = [(index, BLOCK) for index in range(full)]
    if tail:
        plan.append((full, tail))
    return plan


def group_blocks(
    blocks: list[tuple[int, int]], chunk: int
) -> list[list[tuple[int, int]]]:
    """Group consecutive blocks into per-task batches of ``~chunk`` samples."""
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    per_task = max(1, chunk // BLOCK)
    return [blocks[i : i + per_task] for i in range(0, len(blocks), per_task)]


def draw_uniform_block(
    bitwidth: int, seed: int, index: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform i.i.d. operand pair arrays for one block (paper input model)."""
    rng = substream(seed, index)
    high = 1 << bitwidth
    return rng.integers(0, high, count), rng.integers(0, high, count)


def uniform_task(multiplier, seed: int, blocks) -> list[Accumulator]:
    """Per-block accumulators for uniform operands (picklable worker body)."""
    tele = telemetry.get()
    out = []
    for index, count in blocks:
        with tele.span("mc.block", block=index, design=multiplier.name):
            a, b = draw_uniform_block(multiplier.bitwidth, seed, index, count)
            out.append(accumulate_chunk(multiplier.multiply(a, b), a * b))
    return out


def workload_task(multiplier, sampler, seed: int, blocks) -> list[Accumulator]:
    """Per-block accumulators for a custom operand distribution.

    ``sampler`` must be picklable (a plain function or one of the sampler
    dataclasses in :mod:`repro.analysis.montecarlo`) to run with workers.
    """
    tele = telemetry.get()
    out = []
    for index, count in blocks:
        with tele.span("mc.block", block=index, design=multiplier.name):
            a, b = sampler(substream(seed, index), count)
            a = np.asarray(a, dtype=np.int64)
            b = np.asarray(b, dtype=np.int64)
            out.append(accumulate_chunk(multiplier.multiply(a, b), a * b))
    return out


def run_blocked(
    task,
    task_args: tuple,
    samples: int,
    chunk: int,
    workers: int | None = None,
    on_progress=None,
    *,
    policy=None,
    checkpoint=None,
    resume: bool = False,
    on_event=None,
    label: str = "run",
    pool=None,
) -> Accumulator:
    """Execute ``task(*task_args, blocks)`` over the canonical partition.

    Serial when ``workers`` is falsy or 1, else fanned out over a
    process pool by the resilient runtime (see
    :mod:`repro.analysis.runtime`), which retries failed batches,
    rebuilds broken pools, degrades to serial execution and honours
    ``checkpoint``/``resume``.  Accumulators always merge in block
    order, so the result is independent of the execution strategy *and*
    of any recovery path taken.  ``on_progress(samples_done)`` fires
    after each task batch; ``on_event`` receives retry/degradation event
    dicts.  ``pool`` is an optional
    :class:`~repro.analysis.runtime.SharedPool` reused across calls (a
    server amortizing worker startup over many requests).
    """
    from .runtime import run_plan

    return run_plan(
        task,
        task_args,
        block_plan(samples),
        chunk,
        workers=workers,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
        on_progress=on_progress,
        on_event=on_event,
        label=label,
        pool=pool,
    )
