"""Dependency-free figure rendering: PGM images for the paper's plots.

No plotting stack is assumed, so the figure benches export raw CSV plus
ASCII art; this module adds real *images* — binary PGM (portable graymap),
the simplest standard raster format, viewable everywhere — for the three
visual figures:

* :func:`render_heatmap` — an error surface (Fig. 1/2 panels) as a
  grayscale map, optional signed mode (negative dark / positive bright
  around mid-gray);
* :func:`render_histogram` — a Fig. 5 panel as a bar raster;
* :func:`save_pgm` — the underlying writer.
"""

from __future__ import annotations

import pathlib

import numpy as np

__all__ = ["save_pgm", "render_heatmap", "render_histogram"]


def save_pgm(pixels: np.ndarray, path) -> pathlib.Path:
    """Write an 8-bit grayscale image as binary PGM (P5)."""
    pixels = np.asarray(pixels)
    if pixels.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {pixels.shape}")
    if pixels.dtype != np.uint8:
        if pixels.min() < 0 or pixels.max() > 255:
            raise ValueError("pixel values outside [0, 255]")
        pixels = pixels.astype(np.uint8)
    path = pathlib.Path(path)
    height, width = pixels.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())
    return path


def render_heatmap(
    errors: np.ndarray,
    path,
    signed: bool = True,
    scale: int = 2,
) -> pathlib.Path:
    """Render an error surface to PGM.

    ``signed=True`` maps zero error to mid-gray (128), the most negative
    value to black and the most positive to white — the reading of the
    paper's Fig. 1 colormaps.  ``signed=False`` maps |error| to
    brightness.  ``scale`` integer-upsamples for visibility.
    """
    surface = np.asarray(errors, dtype=np.float64)
    if signed:
        peak = np.abs(surface).max() or 1.0
        pixels = 128.0 + surface / peak * 127.0
    else:
        magnitude = np.abs(surface)
        peak = magnitude.max() or 1.0
        pixels = magnitude / peak * 255.0
    pixels = np.clip(np.rint(pixels), 0, 255).astype(np.uint8)
    if scale > 1:
        pixels = np.kron(pixels, np.ones((scale, scale), dtype=np.uint8))
    return save_pgm(pixels, path)


def render_histogram(
    density: np.ndarray,
    path,
    height: int = 120,
    bar_width: int = 3,
) -> pathlib.Path:
    """Render a histogram (Fig. 5 panel) as a white-bars-on-black PGM."""
    density = np.asarray(density, dtype=np.float64)
    if density.ndim != 1:
        raise ValueError(f"expected a 1-D density, got shape {density.shape}")
    peak = density.max() or 1.0
    heights = np.rint(density / peak * height).astype(int)  # full bar = top
    width = len(density) * bar_width
    pixels = np.zeros((height, width), dtype=np.uint8)
    for index, bar in enumerate(heights):
        if bar > 0:
            x0 = index * bar_width
            pixels[height - bar :, x0 : x0 + bar_width] = 255
    return save_pgm(pixels, path)
