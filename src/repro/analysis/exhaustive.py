"""Exhaustive sweeps over small operand ranges.

Figures 1 and 2 of the paper plot the relative-error surface over every
operand pair in a small range (``{32..255}`` and ``{64..255}``), which is
cheap to enumerate exactly.  Exhaustive evaluation is also the gold
standard the test suite uses for 8-bit designs, where the full
``2^16``-pair cross product fits easily in memory.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..multipliers.base import Multiplier
from .metrics import ErrorMetrics, compute_metrics

__all__ = ["error_grid", "exhaustive_metrics"]


def error_grid(
    multiplier: Multiplier, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relative-error surface over ``a, b in [lo, hi]`` (inclusive).

    Returns ``(values, grid, errors)`` where ``values`` is the operand
    axis, ``grid`` the approximate products and ``errors`` the signed
    relative errors, both shaped ``(hi-lo+1, hi-lo+1)`` and indexed
    ``[a - lo, b - lo]``.  ``lo`` must be positive so every relative error
    is defined.
    """
    if lo < 1:
        raise ValueError(f"lo must be >= 1 for relative errors, got {lo}")
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    values = np.arange(lo, hi + 1, dtype=np.int64)
    a, b = np.meshgrid(values, values, indexing="ij")
    approx = multiplier.multiply(a.ravel(), b.ravel()).reshape(a.shape)
    exact = a * b
    errors = (approx - exact) / exact
    return values, approx, errors


def exhaustive_metrics(multiplier: Multiplier, lo: int = 0, hi: int | None = None) -> ErrorMetrics:
    """Exact error statistics over every pair in ``[lo, hi]^2``.

    Defaults to the multiplier's full operand range — use only for small
    bitwidths (the pair count is quadratic).
    """
    if hi is None:
        hi = multiplier.max_operand
    if not 0 <= lo <= hi:
        raise ValueError(f"invalid operand bounds: need 0 <= lo <= hi, got [{lo}, {hi}]")
    if hi > multiplier.max_operand:
        raise ValueError(
            f"hi={hi} exceeds the {multiplier.bitwidth}-bit operand "
            f"maximum {multiplier.max_operand}"
        )
    values = np.arange(lo, hi + 1, dtype=np.int64)
    a, b = np.meshgrid(values, values, indexing="ij")
    a = a.ravel()
    b = b.ravel()
    approx = multiplier.multiply(a, b)
    metrics = compute_metrics(approx, a * b, max_product=multiplier.max_operand**2)
    if lo <= 1 and hi == multiplier.max_operand:
        # the sweep visited every pair with a defined relative error, so
        # the observed extremes are the certified worst case
        metrics = dataclasses.replace(
            metrics, peak_certified=(metrics.peak_min, metrics.peak_max)
        )
    return metrics
