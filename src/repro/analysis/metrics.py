"""Error metrics for approximate multipliers (paper Section IV-B).

The paper characterizes every design with five relative-error statistics,
all in percent:

* **error bias** — mean of the signed relative error [3];
* **mean error** — mean of the absolute relative error (MRED [2], [4]);
* **peak errors** — minimum and maximum signed relative error [4];
* **variance** — variance of the signed relative error [3].

Errors are measured against the accurate product.  Input pairs whose
accurate product is zero are excluded: the relative error ``0/0`` is
undefined there, and every design in the library returns an exact 0 for
them anyway (their absolute error is also zero).

Two extension metrics used by the wider literature [2] are included:
NMED (mean absolute error normalized to the maximum product) and the RMS
relative error.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

__all__ = [
    "Accumulator",
    "ErrorMetrics",
    "relative_errors",
    "compute_metrics",
    "accumulate_chunk",
    "merge_accumulators",
    "merge_metrics",
]


@dataclasses.dataclass(frozen=True)
class ErrorMetrics:
    """Error statistics of one design; percentages, like the paper."""

    bias: float
    mean_error: float
    peak_min: float
    peak_max: float
    variance: float
    rms: float
    nmed: float
    samples: int
    #: formally certified worst-case peaks ``(min%, max%)`` when a
    #: certificate covers this design (exhaustive sweep or
    #: :func:`repro.formal.certify_worst_error`); ``None`` for sampled runs
    peak_certified: tuple[float, float] | None = None

    def row(self) -> tuple[float, float, float, float, float]:
        """The five Table I error columns, in table order.

        Certified peaks take precedence over the sampled extremes when a
        certificate is attached.
        """
        peak_min, peak_max = self.peaks()
        return (self.bias, self.mean_error, peak_min, peak_max, self.variance)

    def peaks(self) -> tuple[float, float]:
        """``(peak_min, peak_max)``, preferring the certified values."""
        if self.peak_certified is not None:
            return self.peak_certified
        return (self.peak_min, self.peak_max)

    def __str__(self) -> str:
        peak_min, peak_max = self.peaks()
        certified = "certified " if self.peak_certified is not None else ""
        return (
            f"bias {self.bias:+.2f}%  ME {self.mean_error:.2f}%  "
            f"{certified}peak [{peak_min:.2f}%, {peak_max:.2f}%]  "
            f"var {self.variance:.2f}  ({self.samples} samples)"
        )


def relative_errors(
    approx: np.ndarray, exact: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Signed relative errors and the exact products of the valid samples.

    Zero exact products are dropped (see module docstring).  Returns
    ``(errors, exact_nonzero)`` as float64/int64 arrays.
    """
    approx = np.asarray(approx, dtype=np.int64)
    exact = np.asarray(exact, dtype=np.int64)
    if approx.shape != exact.shape:
        raise ValueError(f"shape mismatch: {approx.shape} vs {exact.shape}")
    valid = exact != 0
    exact_nz = exact[valid]
    errors = (approx[valid] - exact_nz) / exact_nz
    return errors, exact_nz


def compute_metrics(
    approx: np.ndarray, exact: np.ndarray, max_product: int | None = None
) -> ErrorMetrics:
    """All error statistics for a batch of products.

    ``max_product`` (default ``max(exact)``) normalizes NMED; pass
    ``(2**N - 1)**2`` for the paper's convention.
    """
    errors, exact_nz = relative_errors(approx, exact)
    if errors.size == 0:
        raise ValueError("no nonzero products to characterize")
    approx = np.asarray(approx, dtype=np.int64)
    exact = np.asarray(exact, dtype=np.int64)
    if max_product is None:
        max_product = int(exact.max())
    abs_err = np.abs(np.asarray(approx - exact, dtype=np.float64))
    return ErrorMetrics(
        bias=float(errors.mean() * 100.0),
        mean_error=float(np.abs(errors).mean() * 100.0),
        peak_min=float(errors.min() * 100.0),
        peak_max=float(errors.max() * 100.0),
        variance=float(errors.var() * 100.0 * 100.0),
        rms=float(math.sqrt(np.mean(errors**2)) * 100.0),
        nmed=float(abs_err.mean() / max_product * 100.0),
        samples=int(errors.size),
    )


@dataclasses.dataclass
class Accumulator:
    """Streaming moments so 2^24-sample runs never hold all errors at once.

    Accumulators are the merge unit of the characterization engine: each
    input block produces one (see :func:`accumulate_chunk`), and merging
    them in block order reproduces the serial float operations exactly, so
    results are bit-identical at any chunk size or worker count.  The
    dataclass is plain picklable state, safe to ship across processes.
    """

    count: int = 0
    total: float = 0.0
    total_abs: float = 0.0
    total_sq: float = 0.0
    total_abs_err: float = 0.0
    peak_min: float = math.inf
    peak_max: float = -math.inf
    all_count: int = 0

    def update(self, errors: np.ndarray, abs_err_sum: float, batch: int) -> None:
        if errors.size:
            self.count += errors.size
            self.total += float(errors.sum())
            self.total_abs += float(np.abs(errors).sum())
            self.total_sq += float((errors**2).sum())
            self.peak_min = min(self.peak_min, float(errors.min()))
            self.peak_max = max(self.peak_max, float(errors.max()))
        self.total_abs_err += abs_err_sum
        self.all_count += batch

    def merge(self, other: "Accumulator") -> None:
        """Fold another accumulator in; addition order defines the result
        bit-exactly, so callers must merge in canonical block order."""
        self.count += other.count
        self.total += other.total
        self.total_abs += other.total_abs
        self.total_sq += other.total_sq
        self.total_abs_err += other.total_abs_err
        self.peak_min = min(self.peak_min, other.peak_min)
        self.peak_max = max(self.peak_max, other.peak_max)
        self.all_count += other.all_count

    def finalize(self, max_product: int) -> ErrorMetrics:
        if self.count == 0:
            raise ValueError("no nonzero products to characterize")
        mean = self.total / self.count
        return ErrorMetrics(
            bias=mean * 100.0,
            mean_error=self.total_abs / self.count * 100.0,
            peak_min=self.peak_min * 100.0,
            peak_max=self.peak_max * 100.0,
            variance=(self.total_sq / self.count - mean**2) * 100.0 * 100.0,
            rms=math.sqrt(self.total_sq / self.count) * 100.0,
            nmed=self.total_abs_err / self.all_count / max_product * 100.0,
            samples=self.count,
        )


#: backward-compatible alias for the pre-engine private name
_Accumulator = Accumulator


def accumulate_chunk(approx: np.ndarray, exact: np.ndarray) -> Accumulator:
    """Streaming statistics of one ``(approx, exact)`` product batch."""
    acc = Accumulator()
    errors, _ = relative_errors(approx, exact)
    abs_err = np.abs(np.asarray(approx, dtype=np.float64) - exact)
    acc.update(errors, float(abs_err.sum()), int(np.asarray(exact).size))
    return acc


def merge_accumulators(accumulators) -> Accumulator:
    """Sequentially fold accumulators (in iteration order) into one."""
    total = Accumulator()
    for acc in accumulators:
        total.merge(acc)
    return total


def merge_metrics(chunks, max_product: int) -> ErrorMetrics:
    """Combine per-chunk ``(approx, exact)`` batches into one metric set.

    ``chunks`` yields ``(approx, exact)`` array pairs; used by the
    Monte-Carlo engine to characterize 2^24 samples in bounded memory.
    """
    return merge_accumulators(
        accumulate_chunk(approx, exact) for approx, exact in chunks
    ).finalize(max_product)
