"""Error-profile surfaces (paper Fig. 1) and segment analysis (Fig. 2).

Fig. 1 plots the signed relative error of each log-based multiplier over
the exhaustive operand grid ``A, B in {32..255}``; Fig. 2 overlays the
``M x M`` segmentation of each power-of-two interval and shows how REALM
zeroes the per-segment average error.  Without a plotting stack the
benches export the same data as CSV series plus an ASCII heatmap for the
terminal.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.factors import segment_index
from ..core.bitops import floor_log2, log_fraction
from ..multipliers.base import Multiplier
from .exhaustive import error_grid

__all__ = [
    "ProfileSummary",
    "profile",
    "ascii_heatmap",
    "segment_mean_errors",
]

#: Fig. 1 operand range
FIG1_RANGE = (32, 255)
#: Fig. 2 operand range
FIG2_RANGE = (64, 255)


@dataclasses.dataclass(frozen=True)
class ProfileSummary:
    """One Fig. 1 panel: the error surface plus its headline statistics."""

    name: str
    values: np.ndarray
    errors: np.ndarray  # signed relative errors, shape (n, n)

    @property
    def mean_error(self) -> float:
        """Mean absolute relative error over the grid, percent."""
        return float(np.abs(self.errors).mean() * 100.0)

    @property
    def peak_error(self) -> float:
        """Peak absolute relative error over the grid, percent."""
        return float(np.abs(self.errors).max() * 100.0)

    @property
    def bias(self) -> float:
        """Mean signed relative error over the grid, percent."""
        return float(self.errors.mean() * 100.0)


def profile(
    multiplier: Multiplier, lo: int = FIG1_RANGE[0], hi: int = FIG1_RANGE[1]
) -> ProfileSummary:
    """Exhaustive error profile of one design (one Fig. 1 panel)."""
    values, _, errors = error_grid(multiplier, lo, hi)
    return ProfileSummary(multiplier.name, values, errors)


_SHADES = " .:-=+*#%@"


def ascii_heatmap(errors: np.ndarray, width: int = 64) -> str:
    """Render an error surface as an ASCII heatmap (|error| magnitude).

    Rows are the first operand (top = small), columns the second.  Useful
    for eyeballing Fig. 1/2 structure in a terminal; the benches also dump
    the raw CSV for real plotting.
    """
    mag = np.abs(np.asarray(errors, dtype=float))
    n = mag.shape[0]
    step = max(1, n // width)
    # block-average downsample to the display resolution
    trimmed = mag[: (n // step) * step, : (n // step) * step]
    blocks = trimmed.reshape(n // step, step, n // step, step).mean(axis=(1, 3))
    peak = blocks.max()
    if peak == 0:
        levels = np.zeros_like(blocks, dtype=int)
    else:
        levels = np.minimum(
            (blocks / peak * (len(_SHADES) - 1)).astype(int), len(_SHADES) - 1
        )
    return "\n".join("".join(_SHADES[v] for v in row) for row in levels)


def segment_mean_errors(
    multiplier: Multiplier,
    m: int,
    lo: int = FIG2_RANGE[0],
    hi: int = FIG2_RANGE[1],
) -> np.ndarray:
    """Per-segment mean signed relative error (the substance of Fig. 2).

    Buckets every operand pair of the exhaustive grid into its ``(i, j)``
    log-fraction segment and averages the signed error per bucket.  For
    cALM the buckets show the characteristic error hills; for REALM each
    bucket's mean collapses toward zero — the paper's per-segment
    error-reduction claim, made quantitative.
    """
    values, _, errors = error_grid(multiplier, lo, hi)
    width = multiplier.bitwidth - 1
    k = floor_log2(values)
    fractions = log_fraction(values, k, multiplier.bitwidth)
    segments = segment_index(fractions, width, m)
    means = np.zeros((m, m))
    for i in range(m):
        for j in range(m):
            cell = errors[np.ix_(segments == i, segments == j)]
            means[i, j] = cell.mean() if cell.size else np.nan
    return means
