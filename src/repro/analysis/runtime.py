"""Resilient execution layer for the characterization engine.

:mod:`repro.analysis.parallel` makes a Monte-Carlo campaign a pure
function of ``(seed, samples)``: every block can be recomputed anywhere,
by any process, with a bit-identical result.  This module exploits that
purity to make the fan-out *survivable*:

* **bounded retries** — a batch whose task raises (or returns a corrupt
  result) is re-executed up to ``max_retries`` times, with exponential
  backoff and decorrelated jitter between attempts (injectable
  sleep/jitter hooks keep tests deterministic);
* **per-batch timeouts** — ``batch_timeout`` bounds how long the parent
  waits for one batch result; a hung worker forfeits its pool;
* **pool rebuilds** — a ``BrokenProcessPool`` (worker killed by a crash,
  OOM or signal) rebuilds the pool and resubmits the unfinished batches
  instead of discarding the campaign;
* **graceful degradation** — after ``max_pool_rebuilds`` rebuilds the
  run falls back to in-process serial execution of the remaining
  batches, which is slower but cannot be killed by worker faults;
* **checkpoint/resume** — completed per-block accumulators are
  periodically persisted (content-addressed like the metrics cache, see
  :class:`Checkpoint`), so a restarted campaign recomputes only the
  unfinished blocks.

Because accumulators always merge in ascending block order, none of the
recovery paths can change the result: a run that completes — retried,
rebuilt, degraded or resumed — returns :class:`ErrorMetrics` bit-identical
to an undisturbed serial run.  A run that cannot complete raises
:class:`BatchFailure`, which names the exact blocks and the last cause.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import pathlib
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from . import telemetry
from .metrics import Accumulator

__all__ = [
    "BatchFailure",
    "Checkpoint",
    "CorruptResultError",
    "ResiliencePolicy",
    "SharedPool",
    "monotonic_progress",
    "run_plan",
    "validate_batch",
]

#: bump on any change to the checkpoint file layout
CHECKPOINT_VERSION = 1

_ACC_FIELDS = tuple(field.name for field in dataclasses.fields(Accumulator))
_ACC_INT_FIELDS = ("count", "all_count")


def _default_jitter(low: float, high: float) -> float:
    return random.uniform(low, high)


@dataclasses.dataclass(frozen=True)
class ResiliencePolicy:
    """Retry/timeout/degradation knobs for one campaign.

    ``sleep`` and ``jitter`` are injectable for deterministic tests:
    ``sleep(seconds)`` replaces :func:`time.sleep` and ``jitter(low,
    high)`` replaces the uniform draw of the decorrelated-jitter backoff.
    Leave both ``None`` for production behaviour (the defaults are
    picklable, so a policy can ride along to worker processes).
    """

    max_retries: int = 2
    batch_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_rebuilds: int = 2
    sleep: object | None = None
    jitter: object | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.batch_timeout is not None and not self.batch_timeout > 0:
            raise ValueError(
                f"batch_timeout must be positive, got {self.batch_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def next_delay(self, previous: float) -> float:
        """Decorrelated-jitter backoff: ``min(cap, U(base, 3*previous))``."""
        uniform = self.jitter if self.jitter is not None else _default_jitter
        high = max(self.backoff_base, 3.0 * previous)
        return min(self.backoff_cap, uniform(self.backoff_base, high))

    def pause(self, seconds: float) -> None:
        if seconds > 0:
            (self.sleep if self.sleep is not None else time.sleep)(seconds)


class CorruptResultError(ValueError):
    """A task returned accumulators that cannot describe its batch."""


class SharedPool:
    """A worker pool reused across campaigns (the serving layer's mode).

    :func:`run_plan` normally builds a :class:`ProcessPoolExecutor` per
    call and tears it down on exit — the right lifecycle for a one-shot
    CLI run, but a server answering a stream of ``characterize``
    requests would pay worker startup on every one.  A ``SharedPool``
    owns one lazily-built executor and hands it to :func:`run_plan` via
    ``pool=``; the run leaves it alive on success, and on a broken pool
    the runtime calls :meth:`invalidate` so the next acquire rebuilds a
    fresh executor (counted in ``rebuilds``).  None of this affects
    results: block merge order is unchanged, so the §7 bit-identity
    guarantee holds with or without pool reuse.

    Not thread-safe: callers sharing one instance across threads must
    serialize the campaigns that use it (the serve layer runs
    characterize requests through a concurrency gate for exactly this
    reason).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.rebuilds = 0
        self._pool: ProcessPoolExecutor | None = None

    @property
    def live(self) -> bool:
        """Whether an executor is currently alive."""
        return self._pool is not None

    def acquire(self) -> ProcessPoolExecutor:
        """The live executor, building one on first use / after a break."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def invalidate(self) -> None:
        """Discard a compromised executor; the next acquire rebuilds."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.rebuilds += 1

    def close(self) -> None:
        """Shut the executor down cleanly (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SharedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BatchFailure(RuntimeError):
    """A batch exhausted its retry budget; names the precise blocks.

    Attributes: ``label`` (the run/design label), ``blocks`` (the
    ``(block_index, count)`` pairs of the failed batch), ``attempts``
    and ``cause`` (string describing the last failure).
    """

    def __init__(self, label: str, blocks, attempts: int, cause: str):
        self.label = label
        self.blocks = list(blocks)
        self.attempts = attempts
        self.cause = cause
        first, last = self.blocks[0][0], self.blocks[-1][0]
        samples = sum(count for _, count in self.blocks)
        super().__init__(
            f"characterization batch blocks[{first}..{last}] "
            f"({len(self.blocks)} block(s), {samples} samples) of {label!r} "
            f"failed after {attempts} attempt(s): {cause}"
        )


def validate_batch(blocks, accumulators) -> None:
    """Reject results that cannot be the batch's true accumulators.

    A worker returning garbage (truncated lists, wrong types, sample
    counts that do not match the batch) must surface as a retriable
    failure, never as a silently wrong merged metric.
    """
    if not isinstance(accumulators, (list, tuple)):
        raise CorruptResultError(
            f"batch result must be a list of accumulators, got "
            f"{type(accumulators).__name__}"
        )
    if len(accumulators) != len(blocks):
        raise CorruptResultError(
            f"batch covers {len(blocks)} block(s) but returned "
            f"{len(accumulators)} accumulator(s)"
        )
    for (index, count), acc in zip(blocks, accumulators):
        if not isinstance(acc, Accumulator):
            raise CorruptResultError(
                f"block {index}: expected an Accumulator, got "
                f"{type(acc).__name__}"
            )
        if acc.all_count != count or not 0 <= acc.count <= count:
            raise CorruptResultError(
                f"block {index}: accumulator covers {acc.all_count} samples "
                f"({acc.count} nonzero), expected {count}"
            )


@dataclasses.dataclass
class Checkpoint:
    """Periodic persistence of completed per-block accumulators.

    Lives under ``<directory>/checkpoints/<key>.json`` where ``key`` is
    the same content address the metrics cache would use for the run
    (engine version, design fingerprint, seed, samples ...), so a
    checkpoint can never be replayed into a different campaign.  The
    file stores the full run payload plus one accumulator state per
    completed block; floats survive the JSON round trip bit-exactly.
    ``every`` batches between saves bounds the rewrite cost.
    """

    directory: pathlib.Path
    key: str
    payload: dict
    every: int = 1

    @property
    def path(self) -> pathlib.Path:
        return pathlib.Path(self.directory) / "checkpoints" / f"{self.key}.json"

    def load(self) -> dict[int, Accumulator]:
        """Completed ``{block_index: Accumulator}``, or ``{}`` if absent,
        corrupt, or written for a different run description."""
        try:
            data = json.loads(self.path.read_text())
            if data.get("version") != CHECKPOINT_VERSION:
                return {}
            if data.get("payload") != self.payload:
                return {}
            out: dict[int, Accumulator] = {}
            for index, state in data["blocks"].items():
                if set(state) != set(_ACC_FIELDS):
                    return {}
                values = {
                    name: int(state[name]) if name in _ACC_INT_FIELDS
                    else float(state[name])
                    for name in _ACC_FIELDS
                }
                out[int(index)] = Accumulator(**values)
            return out
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return {}

    def save(self, blocks: dict[int, Accumulator]) -> None:
        """Atomically persist the completed blocks (write-temp-then-rename)."""
        tele = telemetry.get()
        with tele.span("checkpoint.save", blocks=len(blocks)):
            path = self.path
            path.parent.mkdir(parents=True, exist_ok=True)
            text = json.dumps(
                {
                    "version": CHECKPOINT_VERSION,
                    "payload": self.payload,
                    "blocks": {
                        str(index): dataclasses.asdict(blocks[index])
                        for index in sorted(blocks)
                    },
                },
                sort_keys=True,
            )
            temp = path.with_suffix(f".tmp{os.getpid()}")
            temp.write_text(text + "\n")
            os.replace(temp, path)
        tele.counter("runtime.checkpoint_writes")

    def discard(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


#: runtime events that also bump a monotonic telemetry counter
_EVENT_COUNTERS = {
    "retry": "runtime.retries",
    "pool-rebuild": "runtime.pool_rebuilds",
    "degraded": "runtime.degraded",
    "resume": "runtime.resumes",
}


def _event(on_event, **fields) -> None:
    """Deliver one runtime event to the callback *and* to telemetry.

    Every recovery event is mirrored as a structured telemetry event
    (``runtime.<kind>``), and the countable kinds (retry, pool-rebuild,
    degraded, resume) bump their monotonic counters — which is what the
    chaos interplay tests compare against exact fault firing counts.
    """
    tele = telemetry.get()
    if tele.enabled:
        kind = fields.get("event")
        counter = _EVENT_COUNTERS.get(kind)
        if counter is not None:
            tele.counter(counter)
        tele.event(
            f"runtime.{kind}",
            **{name: value for name, value in fields.items() if name != "event"},
        )
    if on_event is not None:
        on_event(fields)


def monotonic_progress(callback):
    """Wrap an ``on_progress`` callback so its stream is strictly increasing.

    The runtime's recovery paths (a retried batch completing after a
    later batch, duplicate delivery after a pool rebuild, resumed state)
    must never surface as a ``samples_done`` value that repeats or moves
    backwards.  The wrapper suppresses any report that is not strictly
    greater than the last delivered value; ``None`` passes through.
    """
    if callback is None:
        return None
    last = -1

    def report(samples_done):
        nonlocal last
        if samples_done > last:
            last = samples_done
            callback(samples_done)

    return report


def run_plan(
    task,
    task_args: tuple,
    plan: list[tuple[int, int]],
    chunk: int,
    *,
    workers: int | None = None,
    policy: ResiliencePolicy | None = None,
    checkpoint: Checkpoint | None = None,
    resume: bool = False,
    on_progress=None,
    on_event=None,
    label: str = "run",
    pool: SharedPool | None = None,
) -> Accumulator:
    """Execute ``task(*task_args, blocks)`` over ``plan`` resiliently.

    ``plan`` is the canonical ``(block_index, count)`` partition from
    :func:`repro.analysis.parallel.block_plan`.  Batches retry, pools
    rebuild and execution degrades to serial per the ``policy`` (see the
    module docstring); completed blocks checkpoint through
    ``checkpoint`` and are skipped when ``resume`` is true.  The merged
    accumulator is built in ascending block order, so the result is
    bit-identical to an undisturbed serial run no matter which recovery
    paths fired.  ``on_progress(samples_done)`` reports cumulative
    samples and is guaranteed strictly increasing (duplicate batch
    deliveries are deduplicated and regressions clamped, see
    :func:`monotonic_progress`); ``on_event(dict)`` receives retry /
    pool-rebuild / degraded / resume event dicts.  Recovery events and
    per-phase timings also flow into :mod:`repro.analysis.telemetry`
    when it is enabled.

    Note the per-batch timeout only guards the *parallel* path: once
    degraded to in-process execution a batch cannot be preempted.

    ``pool`` is an optional :class:`SharedPool` reused across calls
    (worker startup amortizes over a request stream); when given and
    ``workers`` is ``None``, the pool's worker count applies.  A broken
    shared pool is invalidated — never silently reused — and the run
    falls through the same rebuild/degradation ladder as an owned pool.
    """
    from .chaos import wrap as chaos_wrap
    from .parallel import group_blocks

    policy = policy if policy is not None else ResiliencePolicy()
    if pool is not None and workers is None:
        workers = pool.workers
    bound = chaos_wrap(functools.partial(task, *task_args), label=label)
    on_progress = monotonic_progress(on_progress)
    run_start = time.perf_counter()

    done: dict[int, Accumulator] = {}
    if checkpoint is not None and resume:
        counts = dict(plan)
        loaded = checkpoint.load()
        done = {
            index: acc
            for index, acc in loaded.items()
            if counts.get(index) == acc.all_count
        }
    samples_done = sum(acc.all_count for acc in done.values())
    if done:
        _event(
            on_event,
            event="resume",
            blocks_done=len(done),
            samples_done=samples_done,
        )
        if on_progress is not None:
            on_progress(samples_done)

    resumed_blocks = len(done)
    groups = group_blocks([b for b in plan if b[0] not in done], chunk)

    attempts: dict[int, int] = {}
    prev_delay: dict[int, float] = {}
    completed_batches = 0

    def record(group, accumulators):
        nonlocal samples_done, completed_batches
        new_samples = 0
        for (index, count), acc in zip(group, accumulators):
            if index in done:
                continue  # duplicate delivery of an already-merged block
            done[index] = acc
            new_samples += count
        if new_samples == 0:
            return
        samples_done += new_samples
        completed_batches += 1
        if checkpoint is not None and completed_batches % checkpoint.every == 0:
            checkpoint.save(done)
        if on_progress is not None:
            on_progress(samples_done)

    def fail(group, cause) -> None:
        """Charge one failed attempt; raise when the budget is spent."""
        first = group[0][0]
        attempts[first] = attempts.get(first, 0) + 1
        if attempts[first] > policy.max_retries:
            raise BatchFailure(label, group, attempts[first], str(cause))
        delay = policy.next_delay(prev_delay.get(first, policy.backoff_base))
        prev_delay[first] = delay
        _event(
            on_event,
            event="retry",
            batch=first,
            attempt=attempts[first],
            delay=delay,
            cause=str(cause),
        )
        policy.pause(delay)

    def run_serial(serial_groups):
        for group in serial_groups:
            while True:
                try:
                    accumulators = bound(group)
                    validate_batch(group, accumulators)
                except Exception as exc:
                    fail(group, exc)
                    continue
                record(group, accumulators)
                break

    tele = telemetry.get()
    if workers and workers > 1 and len(groups) > 1:
        busy_before = tele.snapshot().phase("mc.block").wall if tele.enabled else 0.0
        pool_start = time.perf_counter()
        _run_pooled(
            bound, groups, workers, policy, record, fail, run_serial, on_event,
            shared=pool,
        )
        telemetry.merge_workers(tele)
        if tele.enabled:
            pool_elapsed = time.perf_counter() - pool_start
            busy = tele.snapshot().phase("mc.block").wall - busy_before
            if pool_elapsed > 0:
                tele.gauge("pool.workers", workers)
                tele.gauge(
                    "pool.utilization",
                    min(1.0, busy / (pool_elapsed * workers)),
                )
    else:
        run_serial(groups)

    total = Accumulator()
    for index in sorted(done):
        total.merge(done[index])
    if checkpoint is not None:
        checkpoint.discard()
    if tele.enabled:
        run_elapsed = time.perf_counter() - run_start
        computed = len(plan) - resumed_blocks
        if computed and run_elapsed > 0:
            tele.gauge("runtime.blocks_per_sec", computed / run_elapsed)
    return total


def _run_pooled(
    bound, groups, workers, policy, record, fail, run_serial, on_event,
    shared: SharedPool | None = None,
):
    """The process-pool path: timeouts, pool rebuilds, degradation.

    With ``shared`` the executor is borrowed, not owned: a clean run
    leaves it alive for the next campaign, while any compromise
    (timeout, broken pool, or an exception escaping this run) calls
    ``shared.invalidate()`` so stale in-flight work can never leak into
    a later request.
    """
    pending = list(groups)
    recorded: set[int] = set()

    def keep(group, accumulators):
        record(group, accumulators)
        recorded.add(group[0][0])

    def discard(current):
        if shared is not None:
            shared.invalidate()
        elif current is not None:
            current.shutdown(wait=False, cancel_futures=True)

    rebuilds = 0
    degraded = False
    pool = None
    try:
        while pending:
            if degraded:
                run_serial(pending)
                pending = []
                break
            if pool is None:
                pool = (
                    shared.acquire()
                    if shared is not None
                    else ProcessPoolExecutor(
                        max_workers=min(workers, len(pending))
                    )
                )
            compromised = False
            try:
                futures = [(group, pool.submit(bound, group)) for group in pending]
            except BrokenProcessPool:
                futures = []
                compromised = True
                rebuilds += 1
                _event(
                    on_event, event="pool-rebuild", rebuilds=rebuilds,
                    cause="worker crashed before submission",
                )
                if rebuilds > policy.max_pool_rebuilds:
                    degraded = True
                    _event(
                        on_event, event="degraded", rebuilds=rebuilds,
                        cause="worker crashed before submission",
                    )
            for group, future in futures:
                try:
                    accumulators = future.result(timeout=policy.batch_timeout)
                    validate_batch(group, accumulators)
                except (BrokenProcessPool, FutureTimeout) as exc:
                    timed_out = isinstance(exc, FutureTimeout)
                    cause = (
                        f"no result within {policy.batch_timeout}s"
                        if timed_out
                        else "worker crashed (BrokenProcessPool)"
                    )
                    rebuilds += 1
                    _event(
                        on_event, event="pool-rebuild", rebuilds=rebuilds,
                        batch=group[0][0], cause=cause,
                    )
                    if rebuilds > policy.max_pool_rebuilds:
                        degraded = True
                        _event(
                            on_event, event="degraded", rebuilds=rebuilds,
                            cause=cause,
                        )
                    elif timed_out:
                        # a hang is charged to the batch; a crashed pool is
                        # not, since any neighbour batch may be to blame
                        fail(group, cause)
                    compromised = True
                    break
                except Exception as exc:  # the task itself failed: retriable
                    fail(group, exc)
                else:
                    keep(group, accumulators)
            if compromised and pool is not None:
                discard(pool)
                pool = None
            pending = [g for g in pending if g[0][0] not in recorded]
        if pool is not None:
            if shared is None:
                pool.shutdown(wait=True)
            pool = None  # clean exit: a shared pool stays alive
    finally:
        if pool is not None:  # exceptional exit only
            discard(pool)
