"""Published reference numbers from the REALM paper (DATE 2020).

Transcribed from the paper so every benchmark can print a
"paper vs. measured" comparison and EXPERIMENTS.md can be generated
mechanically.  Three kinds of data live here:

* :data:`TABLE1` — error and synthesis columns of Table I;
* :data:`TABLE2_PSNR` — JPEG PSNR values of Table II;
* :data:`ACCURATE_AREA_UM2` / :data:`ACCURATE_POWER_UW` — the accurate
  16-bit Wallace multiplier reference the reductions are computed against.

Transcription note: the source text available to this reproduction is an
OCR of the paper; a handful of Table I cells in the middle of the REALM
``t``-sweeps are visibly corrupted (dropped minus signs / digits).  Those
cells are recorded as ``None`` rather than guessed.  All headline rows
(t=0, t=9, every baseline) are clean and were additionally cross-checked
against this library's own 2^24-sample Monte-Carlo characterization, which
matches them to the printed precision.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "Table1Row",
    "TABLE1",
    "TABLE2_PSNR",
    "TABLE2_IMAGES",
    "TABLE2_MULTIPLIERS",
    "ACCURATE_AREA_UM2",
    "ACCURATE_POWER_UW",
]

#: Table I caption: accurate multiplier reference point (TSMC 45 nm, 1 GHz)
ACCURATE_AREA_UM2 = 1898.1
ACCURATE_POWER_UW = 821.9


class Table1Row(NamedTuple):
    """One Table I row; percentages throughout, ``None`` = illegible cell."""

    area_reduction: float | None
    power_reduction: float | None
    bias: float | None
    mean_error: float | None
    peak_min: float | None
    peak_max: float | None
    variance: float | None


#: registry id -> published Table I row
TABLE1: dict[str, Table1Row] = {
    # --- REALM16 (q=6, M=16) ---
    "realm16-t0": Table1Row(50.0, 65.6, 0.01, 0.42, -2.08, 1.79, 0.28),
    "realm16-t1": Table1Row(51.5, 67.0, 0.01, 0.42, -2.07, 1.79, 0.28),
    "realm16-t2": Table1Row(52.4, None, 0.02, 0.42, -2.08, 1.80, 0.28),
    "realm16-t3": Table1Row(None, 69.2, 0.02, 0.42, -2.10, 1.81, 0.28),
    "realm16-t4": Table1Row(55.0, 70.2, 0.02, 0.42, -2.12, 1.84, 0.28),
    "realm16-t5": Table1Row(56.6, 72.0, 0.02, 0.42, None, None, 0.28),
    "realm16-t6": Table1Row(57.3, None, 0.02, 0.43, -2.20, 2.01, 0.29),
    "realm16-t7": Table1Row(58.3, 74.8, 0.02, 0.45, -2.47, 2.23, 0.33),
    "realm16-t8": Table1Row(60.1, 76.5, None, None, None, None, None),
    "realm16-t9": Table1Row(62.0, 79.2, -0.13, 0.86, -4.37, 3.81, 1.12),
    # --- REALM8 ---
    "realm8-t0": Table1Row(59.5, 70.8, -0.05, 0.75, -3.70, 2.88, 0.92),
    "realm8-t1": Table1Row(None, None, -0.05, 0.75, -3.70, 2.89, 0.92),
    "realm8-t2": Table1Row(62.6, 74.1, -0.05, 0.75, -3.70, 2.90, 0.92),
    "realm8-t3": Table1Row(64.4, None, -0.05, 0.75, None, 2.91, 0.92),
    "realm8-t4": Table1Row(65.0, 76.8, -0.04, 0.75, -3.74, None, 0.92),
    "realm8-t5": Table1Row(66.8, 77.9, -0.04, 0.75, -3.74, 3.00, 0.92),
    "realm8-t6": Table1Row(68.3, 79.4, -0.04, 0.76, -3.88, 3.13, 0.92),
    "realm8-t7": Table1Row(69.0, 80.6, -0.04, 0.77, -4.09, 3.37, 0.96),
    "realm8-t8": Table1Row(70.9, 82.5, -0.04, 0.83, -4.48, 3.85, 1.11),
    "realm8-t9": Table1Row(72.9, 84.9, -0.18, 1.06, -5.27, 4.81, 1.75),
    # --- REALM4 ---
    "realm4-t0": Table1Row(62.9, 73.2, -0.02, 1.38, -5.71, 5.21, 3.07),
    "realm4-t1": Table1Row(64.5, 74.7, -0.02, 1.38, -5.71, 5.22, 3.07),
    "realm4-t2": Table1Row(64.2, None, -0.02, 1.38, -5.71, 5.23, 3.07),
    "realm4-t3": Table1Row(67.0, 77.4, -0.02, 1.38, -5.73, 5.24, 3.07),
    "realm4-t4": Table1Row(66.1, 77.3, -0.02, 1.38, None, None, 3.07),
    "realm4-t5": Table1Row(69.1, 79.5, -0.02, 1.38, -5.81, 5.34, 3.07),
    "realm4-t6": Table1Row(68.5, 80.1, -0.01, 1.39, -5.90, 5.47, 3.08),
    "realm4-t7": Table1Row(71.7, 82.3, -0.01, 1.39, -6.12, 5.73, 3.12),
    "realm4-t8": Table1Row(74.0, 84.2, -0.01, 1.43, -6.53, 6.25, 3.26),
    "realm4-t9": Table1Row(75.6, 86.4, -0.22, 1.58, -7.35, 7.29, 3.96),
    # --- approximate log-based multipliers from the literature ---
    "calm": Table1Row(69.8, 77.3, -3.85, 3.85, -11.11, 0.00, 8.63),
    "implm-ea": Table1Row(11.9, 54.2, -0.04, 2.89, -11.11, 11.11, 14.70),
    "mbm-t0": Table1Row(63.9, 74.3, -0.09, 2.58, -7.64, 7.81, 10.02),
    "mbm-t2": Table1Row(66.0, 76.8, -0.09, 2.58, -7.65, 7.84, 10.02),
    "mbm-t4": Table1Row(68.5, 79.0, -0.09, 2.58, -7.69, 7.91, 10.02),
    "mbm-t6": Table1Row(70.4, 81.3, -0.09, 2.58, -7.87, 8.20, 10.03),
    "mbm-t8": Table1Row(74.3, 84.8, -0.08, 2.60, -8.59, 9.38, 10.23),
    "mbm-t9": Table1Row(76.2, 86.8, -0.38, 2.70, -10.19, 10.94, 11.33),
    "alm-maa-m3": Table1Row(72.5, 79.9, -3.85, 3.85, -11.12, 0.01, 8.63),
    "alm-maa-m6": Table1Row(74.1, 82.0, -3.85, 3.85, -11.16, 0.10, 8.63),
    "alm-maa-m9": Table1Row(74.7, 83.5, -3.84, 3.86, -11.56, 0.78, 8.72),
    "alm-maa-m11": Table1Row(76.8, 85.7, -3.84, 4.00, -12.92, 3.03, 10.08),
    "alm-maa-m12": Table1Row(76.9, 86.7, -3.81, 4.37, -14.66, 5.88, 14.43),
    "alm-soa-m3": Table1Row(72.9, 79.9, -3.84, 3.84, -11.12, 0.02, 8.63),
    "alm-soa-m6": Table1Row(75.1, 83.2, -3.81, 3.81, -11.16, 0.19, 8.64),
    "alm-soa-m9": Table1Row(76.8, 86.3, -3.58, 3.63, -11.56, 1.56, 8.80),
    "alm-soa-m11": Table1Row(78.8, 88.8, -2.80, 3.34, -12.91, 6.25, 10.78),
    "alm-soa-m12": Table1Row(80.2, 90.3, -1.75, 3.58, -14.66, 12.50, 17.03),
    "intalp-l2": Table1Row(17.8, 21.5, 0.03, 0.99, -2.86, 4.17, 1.67),
    "intalp-l1": Table1Row(56.9, 66.0, 3.91, 3.91, 0.00, 12.50, 9.79),
    # --- other existing approximate multipliers ---
    "am1-nb13": Table1Row(22.5, 46.9, -0.44, 0.44, -61.57, 0.00, 1.79),
    "am1-nb9": Table1Row(31.1, 55.4, -1.41, 1.41, -61.71, 0.00, 12.22),
    "am1-nb5": Table1Row(38.4, 62.4, -6.27, 6.27, -61.93, 0.00, 79.41),
    "am2-nb13": Table1Row(12.8, 40.3, -0.25, 0.25, -61.57, 0.00, 1.20),
    "am2-nb9": Table1Row(26.1, 52.6, -1.21, 1.21, -61.71, 0.00, 11.74),
    "am2-nb5": Table1Row(37.1, 61.8, -6.12, 6.12, -61.93, 0.00, 79.59),
    "drum-k8": Table1Row(49.4, 59.6, 0.01, 0.37, -1.49, 1.57, 0.20),
    "drum-k7": Table1Row(54.9, 67.8, 0.02, 0.73, -2.96, 3.15, 0.81),
    "drum-k6": Table1Row(60.3, 75.1, 0.04, 1.47, -5.78, 6.35, 3.26),
    "drum-k5": Table1Row(76.8, 85.3, 0.14, 2.94, -10.76, 12.89, 13.06),
    "drum-k4": Table1Row(80.4, 88.6, 0.53, 5.89, -18.96, 26.56, 52.69),
    "ssm-m10": Table1Row(56.8, 61.0, -0.40, 0.40, -10.26, 0.00, 0.30),
    "ssm-m9": Table1Row(63.8, 69.6, -0.93, 0.93, -34.27, 0.00, 2.54),
    "ssm-m8": Table1Row(71.4, 77.3, -2.08, 2.08, -72.70, 0.00, 17.61),
    "essm8": Table1Row(68.4, 74.5, -1.14, 1.14, -11.26, 0.00, 0.92),
}

#: Table II column order (registry ids; "accurate" is the reference column)
TABLE2_MULTIPLIERS: tuple[str, ...] = (
    "accurate",
    "realm16-t8",
    "realm8-t8",
    "realm4-t8",
    "mbm-t0",
    "calm",
    "implm-ea",
    "intalp-l1",
    "alm-soa-m11",
)

#: Table II row order (image names; this repo substitutes procedural
#: stand-ins with the same names — see DESIGN.md)
TABLE2_IMAGES: tuple[str, ...] = ("cameraman", "lena", "livingroom")

#: Table II: image -> registry id -> PSNR in dB (quality 50 JPEG)
TABLE2_PSNR: dict[str, dict[str, float]] = {
    "cameraman": {
        "accurate": 31.8,
        "realm16-t8": 32.0,
        "realm8-t8": 31.7,
        "realm4-t8": 31.4,
        "mbm-t0": 28.4,
        "calm": 22.1,
        "implm-ea": 28.0,
        "intalp-l1": 21.5,
        "alm-soa-m11": 23.8,
    },
    "lena": {
        "accurate": 32.1,
        "realm16-t8": 32.2,
        "realm8-t8": 32.1,
        "realm4-t8": 31.7,
        "mbm-t0": 28.8,
        "calm": 23.0,
        "implm-ea": 28.8,
        "intalp-l1": 21.6,
        "alm-soa-m11": 24.7,
    },
    "livingroom": {
        "accurate": 30.4,
        "realm16-t8": 30.5,
        "realm8-t8": 30.5,
        "realm4-t8": 30.1,
        "mbm-t0": 28.1,
        "calm": 23.3,
        "implm-ea": 27.7,
        "intalp-l1": 22.5,
        "alm-soa-m11": 24.8,
    },
}
