"""Newline-delimited JSON protocol of the serving layer.

One request or response per line.  A request is a JSON object with an
``op`` field (``multiply``, ``characterize``, ``designs`` or ``ping``)
plus op-specific fields; a response echoes the request's ``id`` and is
either ``{"id": ..., "ok": true, "result": {...}}`` or ``{"id": ...,
"ok": false, "error": {"code": ..., "message": ...}}``.  Error codes are
closed (:data:`ERROR_CODES`): the 503-style ``overloaded`` is what the
micro-batcher's backpressure sheds with, ``shutting-down`` is what a
draining server answers, ``shard-down``/``deadline-exceeded`` are the
supervised fleet's structured last resorts (the owning shards are dead,
or no shard answered before the request deadline — never a dropped
connection), and the framing codes (``bad-frame``, ``bad-request``,
``unknown-design``, ``bad-operands``) classify every way a request can
be malformed.

The framing layer is total: :func:`decode_frame` and
:func:`parse_request` either return a value or raise
:class:`ProtocolError` — no other exception escapes, for any input
(property-tested by ``tests/test_protocol.py``).  Frames and operand
vectors are bounded (:data:`MAX_FRAME_BYTES`, :data:`MAX_PAIRS`) so a
single client cannot balloon server memory through one giant request.
"""

from __future__ import annotations

import dataclasses
import json

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "MAX_PAIRS",
    "PROTOCOL_VERSION",
    "CharacterizeRequest",
    "DesignsRequest",
    "MultiplyRequest",
    "PingRequest",
    "StatusRequest",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
]

#: bump on any wire-visible change to the request/response schema
PROTOCOL_VERSION = 1

#: largest accepted frame, bytes (a full 2^16-pair multiply fits easily)
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: most operand pairs one multiply request may carry
MAX_PAIRS = 1 << 16

#: the closed set of response error codes
ERROR_CODES = frozenset(
    {
        "bad-frame",         # line is not a JSON object
        "bad-request",       # object violates the request schema
        "unknown-design",    # design id not in the registry
        "bad-operands",      # operand out of range for the bitwidth
        "overloaded",        # backpressure shed (503-style; retry later)
        "shutting-down",     # server is draining; no new work accepted
        "shard-down",        # the fleet cannot answer: owning shards are dead
        "deadline-exceeded", # no shard answered within the request deadline
        "internal",          # unexpected server-side failure
    }
)


class ProtocolError(ValueError):
    """A malformed frame or request; carries a structured error code."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        self.code = code
        super().__init__(message)

    @property
    def message(self) -> str:
        return self.args[0]


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MultiplyRequest:
    """A batch of operand pairs against one registry design."""

    design: str
    a: tuple
    b: tuple
    bitwidth: int = 16
    id: object = None
    scalar: bool = False  # echo a bare int instead of a 1-element list


@dataclasses.dataclass(frozen=True)
class CharacterizeRequest:
    """A Monte-Carlo error-characterization run for one design."""

    design: str
    bitwidth: int = 16
    samples: int = 1 << 16
    seed: int = 2020
    id: object = None


@dataclasses.dataclass(frozen=True)
class DesignsRequest:
    """List the registry (optionally only ids starting with ``prefix``)."""

    prefix: str = ""
    id: object = None


@dataclasses.dataclass(frozen=True)
class PingRequest:
    """Liveness/version probe."""

    id: object = None


@dataclasses.dataclass(frozen=True)
class StatusRequest:
    """Readiness probe (``/healthz``-style): am I able to serve work?

    A plain :class:`~repro.serve.server.Service` reports its own
    drain/queue state; a :class:`~repro.serve.supervisor.Supervisor`
    reports the whole fleet (per-shard state, restart counts, breaker
    states).  Answerable while draining, like ``ping``.
    """

    id: object = None


Request = (
    MultiplyRequest
    | CharacterizeRequest
    | DesignsRequest
    | PingRequest
    | StatusRequest
)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode_frame(obj: dict) -> bytes:
    """One wire frame: compact JSON + newline (never contains raw newlines)."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_frame(line) -> dict:
    """Parse one frame into a dict, or raise :class:`ProtocolError`.

    Accepts ``bytes`` or ``str`` with or without the trailing newline.
    Anything that is not a JSON *object* within :data:`MAX_FRAME_BYTES`
    is a ``bad-frame``.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "bad-frame", f"frame exceeds {MAX_FRAME_BYTES} bytes"
            )
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-frame", f"frame is not UTF-8: {exc}") from None
    elif isinstance(line, str):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "bad-frame", f"frame exceeds {MAX_FRAME_BYTES} bytes"
            )
    else:
        raise ProtocolError(
            "bad-frame", f"frame must be bytes or str, got {type(line).__name__}"
        )
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-frame", f"frame is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-frame", f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------


_MISSING = object()


def _field(obj: dict, name: str, kind):
    value = obj.get(name, _MISSING)
    if value is _MISSING:
        raise ProtocolError("bad-request", f"missing required field {name!r}")
    if kind is not object and not isinstance(value, kind):
        raise ProtocolError(
            "bad-request",
            f"field {name!r} must be {kind.__name__}, got {type(value).__name__}",
        )
    return value


def _int_field(obj, name, default, *, minimum=None, maximum=None):
    value = obj.get(name, default)
    # bools are ints in Python; reject them, and reject floats even when
    # integral — protocol payloads must be exact
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            "bad-request", f"field {name!r} must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise ProtocolError(
            "bad-request", f"field {name!r} must be >= {minimum}, got {value}"
        )
    if maximum is not None and value > maximum:
        raise ProtocolError(
            "bad-request", f"field {name!r} must be <= {maximum}, got {value}"
        )
    return value


def _operand_vector(obj: dict, name: str) -> tuple[tuple, bool]:
    """An operand field: a bare int or a list of ints -> (tuple, was_scalar)."""
    value = _field(obj, name, object)
    scalar = False
    if isinstance(value, bool):
        raise ProtocolError(
            "bad-request", f"operand {name!r} must be an integer or list"
        )
    if isinstance(value, int):
        value = [value]
        scalar = True
    if not isinstance(value, list):
        raise ProtocolError(
            "bad-request",
            f"operand {name!r} must be an integer or list of integers",
        )
    if len(value) > MAX_PAIRS:
        raise ProtocolError(
            "bad-request",
            f"operand {name!r} carries {len(value)} values, max {MAX_PAIRS}",
        )
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ProtocolError(
                "bad-request",
                f"operand {name!r} must contain only integers, got {item!r}",
            )
    return tuple(value), scalar


def parse_request(obj: dict) -> Request:
    """Validate a decoded frame into a typed request.

    Raises :class:`ProtocolError` (``bad-request``) on any schema
    violation; design existence and operand ranges are checked later by
    the service, which owns the registry.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = obj.get("op")
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("bad-request", "field 'id' must be a string or integer")
    if op == "multiply":
        design = _field(obj, "design", str)
        a, scalar_a = _operand_vector(obj, "a")
        b, scalar_b = _operand_vector(obj, "b")
        if len(a) != len(b) and 1 not in (len(a), len(b)):
            raise ProtocolError(
                "bad-request",
                f"operand lengths differ: len(a)={len(a)}, len(b)={len(b)}",
            )
        if not a or not b:
            raise ProtocolError("bad-request", "operands must not be empty")
        bitwidth = _int_field(obj, "bitwidth", 16, minimum=2, maximum=31)
        return MultiplyRequest(
            design=design,
            a=a,
            b=b,
            bitwidth=bitwidth,
            id=request_id,
            scalar=scalar_a and scalar_b,
        )
    if op == "characterize":
        design = _field(obj, "design", str)
        return CharacterizeRequest(
            design=design,
            bitwidth=_int_field(obj, "bitwidth", 16, minimum=2, maximum=31),
            samples=_int_field(obj, "samples", 1 << 16, minimum=1),
            seed=_int_field(obj, "seed", 2020, minimum=0),
            id=request_id,
        )
    if op == "designs":
        prefix = obj.get("prefix", "")
        if not isinstance(prefix, str):
            raise ProtocolError("bad-request", "field 'prefix' must be a string")
        return DesignsRequest(prefix=prefix, id=request_id)
    if op == "ping":
        return PingRequest(id=request_id)
    if op == "status":
        return StatusRequest(id=request_id)
    if op is None:
        raise ProtocolError("bad-request", "missing required field 'op'")
    raise ProtocolError("bad-request", f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


def ok_response(request_id, result: dict) -> dict:
    """A success response frame body."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    """A structured error response frame body (``code`` must be closed)."""
    if code not in ERROR_CODES:
        code, message = "internal", f"unmapped error code {code!r}: {message}"
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}
