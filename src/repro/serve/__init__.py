"""Batched approximate-arithmetic serving layer.

Exposes the multiplier registry and the characterization engine as a
request/response service: ``multiply`` (micro-batched, bit-identical to
direct model calls), ``characterize`` (the cached/resilient Monte-Carlo
engine with shared-pool reuse) and ``designs`` over newline-delimited
JSON on TCP, plus an in-process transport for deterministic tests.  See
``DESIGN.md`` §10 for the batching and backpressure guarantees.
"""

from .batcher import BatchPolicy, MicroBatcher, ModelCache, ShedError
from .client import AsyncClient, InProcessClient, ServeError, request_once
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    MAX_PAIRS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from .server import DEFAULT_PORT, Service, TcpServer

__all__ = [
    "AsyncClient",
    "BatchPolicy",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "InProcessClient",
    "MAX_FRAME_BYTES",
    "MAX_PAIRS",
    "MicroBatcher",
    "ModelCache",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeError",
    "Service",
    "ShedError",
    "TcpServer",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "request_once",
]
