"""Batched approximate-arithmetic serving layer.

Exposes the multiplier registry and the characterization engine as a
request/response service: ``multiply`` (micro-batched, bit-identical to
direct model calls), ``characterize`` (the cached/resilient Monte-Carlo
engine with shared-pool reuse) and ``designs`` over newline-delimited
JSON on TCP, plus an in-process transport for deterministic tests.  See
``DESIGN.md`` §10 for the batching and backpressure guarantees.

Scaling past one process, :mod:`repro.serve.supervisor` fronts a fleet
of worker shards (:mod:`repro.serve.shard`) with consistent-hash
routing, heartbeat supervision, bounded restarts, circuit breakers and
structured degradation — ``DESIGN.md`` §13 has the failure matrix.
"""

from .batcher import BatchPolicy, MicroBatcher, ModelCache, ShedError
from .client import AsyncClient, InProcessClient, ServeError, request_once
from .shard import LocalShard, ProcessShard, ShardConfig, ShardService
from .supervisor import CircuitBreaker, HashRing, Supervisor, SupervisorPolicy
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    MAX_PAIRS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from .server import DEFAULT_PORT, Service, TcpServer

__all__ = [
    "AsyncClient",
    "BatchPolicy",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "HashRing",
    "InProcessClient",
    "LocalShard",
    "MAX_FRAME_BYTES",
    "MAX_PAIRS",
    "MicroBatcher",
    "ModelCache",
    "PROTOCOL_VERSION",
    "ProcessShard",
    "ProtocolError",
    "ServeError",
    "Service",
    "ShardConfig",
    "ShardService",
    "ShedError",
    "Supervisor",
    "SupervisorPolicy",
    "TcpServer",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_request",
    "request_once",
]
