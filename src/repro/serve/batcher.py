"""Micro-batching engine of the serving layer.

Multiply requests against the same ``(design, bitwidth)`` are fused: the
batcher accumulates submissions in a bounded queue, and on each flush
concatenates a group's operand vectors into single NumPy arrays,
evaluates them **once** through the vectorized multiplier model, and
scatters the products back to the per-request futures.  Because every
model in :mod:`repro.multipliers` is elementwise-vectorized, fusing
cannot change any element — each response is bit-identical to a direct
:meth:`~repro.multipliers.base.Multiplier.multiply` call no matter how
requests were co-batched (the equivalence suite in ``tests/test_serve.py``
asserts this for every registry family under randomized schedules).

Scheduling policy (:class:`BatchPolicy`):

* a request waits at most ``max_latency`` seconds for co-batching —
  the flusher arms a timer when the queue goes non-empty;
* one evaluation fuses at most ``max_batch`` operand pairs; a flush
  drains the whole queue in ``max_batch``-sized slices, and reaching
  ``max_batch`` pending pairs triggers an immediate flush;
* at most ``max_queue`` pairs may be queued — beyond that
  :meth:`MicroBatcher.submit` raises :class:`ShedError` (backpressure:
  the server maps it to a 503-style ``overloaded`` response; memory is
  bounded, requests are never silently dropped).

The wait primitive is injectable (``sleep=``), so the deterministic test
harness replaces the latency timer with a manual gate and controls
exactly which requests share a batch.  Telemetry: a ``serve.batch`` span
per fused evaluation, ``serve.requests``/``serve.shed`` counters and
``serve.queue_depth``/``serve.batch_occupancy`` gauges, all in the
standard :mod:`repro.analysis.telemetry` trace format.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses

import numpy as np

from ..analysis import telemetry
from ..analysis.cache import cache_key
from ..multipliers.base import Multiplier, as_operands
from ..multipliers.registry import build, fingerprint

__all__ = ["BatchPolicy", "MicroBatcher", "ModelCache", "ShedError"]


@dataclasses.dataclass(frozen=True)
class BatchPolicy:
    """Queue/latency/fusion knobs of the micro-batcher.

    ``max_batch`` — operand pairs fused into one model evaluation;
    ``max_latency`` — seconds a request may wait for co-batching;
    ``max_queue`` — pairs the bounded queue holds before shedding.
    """

    max_batch: int = 1 << 12
    max_latency: float = 0.002
    max_queue: int = 1 << 14

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_latency < 0:
            raise ValueError(
                f"max_latency must be >= 0, got {self.max_latency}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


class ShedError(RuntimeError):
    """The bounded queue is full; the request was shed, not enqueued."""

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"queue holds {depth} of {limit} operand pairs; request shed"
        )


class ModelCache:
    """Multiplier instances shared across requests, keyed on fingerprint.

    Two requests naming the same design and bitwidth resolve to one
    model object; the key is the content address of
    :func:`repro.multipliers.registry.fingerprint`, so any two registry
    ids that construct identical configurations also share an entry.
    Raises ``KeyError`` for unknown design ids (the registry's error).

    ``compiled`` selects the evaluation engine for every request served
    from this cache: ``True``/``False`` force the fused kernel or the
    interpreted datapath, ``None`` (default) follows ``REPRO_COMPILED``
    (see :meth:`repro.multipliers.base.Multiplier.multiply`).  Compiled
    kernels share the same fingerprint keying through
    :func:`repro.kernels.kernel_for`, so a long-lived server compiles
    each design once no matter how many requests name it.
    """

    def __init__(self, *, compiled: bool | None = None):
        self.compiled = compiled
        self._by_request: dict[tuple[str, int], Multiplier] = {}
        self._by_fingerprint: dict[str, Multiplier] = {}

    def get(self, design: str, bitwidth: int = 16) -> Multiplier:
        try:
            return self._by_request[(design, bitwidth)]
        except KeyError:
            pass
        model = build(design, bitwidth)
        key = cache_key(fingerprint(model))
        model = self._by_fingerprint.setdefault(key, model)
        self._by_request[(design, bitwidth)] = model
        return model

    def __len__(self) -> int:
        return len(self._by_fingerprint)


@dataclasses.dataclass
class _Item:
    """One queued multiply submission."""

    model: Multiplier
    a: np.ndarray
    b: np.ndarray
    future: asyncio.Future
    pairs: int


class MicroBatcher:
    """Accumulate multiply submissions; evaluate fused; scatter back.

    ``sleep`` is the injectable latency-window primitive (an async
    callable taking seconds; default :func:`asyncio.sleep`).  Start the
    flusher with :meth:`start`, stop with :meth:`drain` (flushes
    everything queued, then rejects new work with :class:`ShedError`
    — the server maps post-drain submissions to ``shutting-down``).
    """

    def __init__(
        self,
        policy: BatchPolicy | None = None,
        *,
        models: ModelCache | None = None,
        sleep=None,
    ):
        self.policy = policy if policy is not None else BatchPolicy()
        self.models = models if models is not None else ModelCache()
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._queue: collections.deque[_Item] = collections.deque()
        self._depth = 0  # operand pairs currently queued
        self._wakeup: asyncio.Event = asyncio.Event()
        self._flusher: asyncio.Task | None = None
        self._closing = False

    # -- queue state ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Operand pairs currently queued (the backpressure quantity)."""
        return self._depth

    @property
    def closing(self) -> bool:
        return self._closing

    # -- submission -----------------------------------------------------

    def submit(self, design: str, a, b, bitwidth: int = 16) -> asyncio.Future:
        """Enqueue one multiply; the future resolves to the product array.

        Validates the design (``KeyError`` for unknown ids) and the
        operand ranges (``ValueError``, via
        :func:`~repro.multipliers.base.as_operands`) *before* occupying
        queue space; raises :class:`ShedError` when the bounded queue
        cannot take the request.  Must be called on the event loop.
        """
        tele = telemetry.get()
        if self._closing:
            raise ShedError(self._depth, self.policy.max_queue)
        model = self.models.get(design, bitwidth)
        a, b = as_operands(a, b, model.bitwidth)
        a, b = np.atleast_1d(a), np.atleast_1d(b)
        pairs = int(a.shape[0])
        if self._depth + pairs > self.policy.max_queue:
            tele.counter("serve.shed")
            tele.gauge("serve.queue_depth", self._depth)
            raise ShedError(self._depth, self.policy.max_queue)
        future = asyncio.get_running_loop().create_future()
        self._queue.append(_Item(model, a, b, future, pairs))
        self._depth += pairs
        tele.counter("serve.requests")
        tele.gauge("serve.queue_depth", self._depth)
        self._wakeup.set()
        return future

    # -- flushing -------------------------------------------------------

    def start(self) -> None:
        """Start the background flusher (idempotent)."""
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-batcher"
            )

    async def drain(self) -> None:
        """Flush everything queued, then stop accepting submissions.

        Cancels the flusher (cancellation can only land at its await
        points, never mid-flush) and runs one final synchronous flush,
        so every admitted request resolves before ``drain`` returns —
        even when a test harness injected a ``sleep`` gate that never
        fires.
        """
        self._closing = True
        self._wakeup.set()
        task, self._flusher = self._flusher, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self.flush_pending()

    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if self._closing:
                self.flush_pending()
                return
            if not self._queue:
                continue
            # the latency window: give co-batchable requests a chance to
            # arrive, unless a full batch is already waiting
            if self._depth < self.policy.max_batch:
                await self._sleep(self.policy.max_latency)
            self.flush_pending()

    def flush_pending(self) -> None:
        """Evaluate everything queued, fused per design in arrival order.

        Synchronous and loop-safe: runs on the event loop thread, so
        futures resolve without cross-thread hand-off.  Each fused
        evaluation covers at most ``max_batch`` pairs.
        """
        while self._queue:
            batch, pairs = self._take_batch()
            self._evaluate(batch, pairs)

    def _take_batch(self) -> tuple[list[_Item], int]:
        """Pop up to ``max_batch`` pairs, preserving arrival order.

        A single submission larger than ``max_batch`` is still taken
        whole (it was admitted by the queue bound; splitting one request
        across evaluations would complicate scatter for no benefit —
        the model evaluates any array length).
        """
        batch: list[_Item] = []
        pairs = 0
        while self._queue:
            item = self._queue[0]
            if batch and pairs + item.pairs > self.policy.max_batch:
                break
            batch.append(self._queue.popleft())
            pairs += item.pairs
        self._depth -= pairs
        return batch, pairs

    def _evaluate(self, batch: list[_Item], pairs: int) -> None:
        tele = telemetry.get()
        tele.gauge("serve.queue_depth", self._depth)
        tele.gauge(
            "serve.batch_occupancy", min(1.0, pairs / self.policy.max_batch)
        )
        # group by model identity, preserving arrival order within a group
        groups: dict[int, list[_Item]] = {}
        for item in batch:
            groups.setdefault(id(item.model), []).append(item)
        for items in groups.values():
            model = items[0].model
            fused = len(items) > 1
            with tele.span(
                "serve.batch",
                design=model.name,
                pairs=sum(i.pairs for i in items),
                requests=len(items),
            ):
                try:
                    compiled = self.models.compiled
                    if fused:
                        a = np.concatenate([i.a for i in items])
                        b = np.concatenate([i.b for i in items])
                        products = model.multiply(a, b, compiled=compiled)
                        offsets = np.cumsum([i.pairs for i in items])[:-1]
                        slices = np.split(products, offsets)
                    else:
                        slices = [
                            model.multiply(
                                items[0].a, items[0].b, compiled=compiled
                            )
                        ]
                except Exception as exc:  # pragma: no cover - defensive
                    for item in items:
                        if not item.future.done():
                            item.future.set_exception(exc)
                    continue
            for item, product in zip(items, slices):
                if not item.future.done():
                    item.future.set_result(product)
