"""Clients for the serving layer: TCP, in-process, and a sync helper.

:class:`AsyncClient` speaks the newline-delimited JSON protocol over a
TCP connection, pipelining requests (auto-assigned ``id``s, responses
matched by ``id`` in completion order).  :class:`InProcessClient` drives
a :class:`~repro.serve.server.Service` directly through the same codec
— the deterministic test transport: no sockets, no timers, identical
frames on both paths.  :func:`request_once` is the synchronous one-shot
used by the ``repro-realm client`` CLI.

Error responses surface as :class:`ServeError` carrying the structured
``code``/``message`` pair, so callers can distinguish a shed
(``overloaded``) from a bad request.

**Reconnect-and-retry**: an :class:`AsyncClient` built via
:meth:`AsyncClient.connect` with ``retries > 0`` transparently redials
and resends when the transport drops — but only for requests whose op
is in :data:`IDEMPOTENT_OPS` (``multiply`` is a pure function of its
operands; ``characterize`` is excluded because resending restarts a
long computation).  The retried request keeps its original ``id`` and
the dead connection is torn down before the resend, so a retry can
never duplicate a response or cross-wire ids — the per-``id`` future
either resolves once or the final transport error surfaces.  Structured
error responses (:class:`ServeError`) are *never* retried: the server
answered; the answer stands.
"""

from __future__ import annotations

import asyncio

from .protocol import decode_frame, encode_frame

__all__ = [
    "IDEMPOTENT_OPS",
    "AsyncClient",
    "InProcessClient",
    "ServeError",
    "request_once",
]

#: ops safe to resend after a transport failure (pure reads or pure
#: functions of the request; a lost-then-reexecuted send is identical)
IDEMPOTENT_OPS = frozenset({"multiply", "ping", "designs", "status"})


class ServeError(RuntimeError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"[{code}] {message}")

    @property
    def message(self) -> str:
        return self.args[0]

    @classmethod
    def from_response(cls, response: dict) -> "ServeError":
        error = response.get("error") or {}
        return cls(
            str(error.get("code", "internal")),
            str(error.get("message", "unspecified server error")),
        )


class _RequestOps:
    """The op helpers shared by every client flavour.

    Subclasses implement ``request(obj) -> response dict``; these
    helpers build the request, unwrap ``result`` and raise
    :class:`ServeError` on error responses.
    """

    async def request(self, obj: dict) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    async def call(self, obj: dict) -> dict:
        """Send one request; return ``result`` or raise :class:`ServeError`."""
        response = await self.request(obj)
        if not isinstance(response, dict) or not response.get("ok"):
            raise ServeError.from_response(
                response if isinstance(response, dict) else {}
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    async def multiply(self, design: str, a, b, bitwidth: int = 16):
        """Products for one design; scalar in, scalar out."""
        scalar = isinstance(a, int) and isinstance(b, int)
        payload = {
            "op": "multiply",
            "design": design,
            "a": a if scalar else list(a),
            "b": b if scalar else list(b),
            "bitwidth": bitwidth,
        }
        result = await self.call(payload)
        return result["product"] if scalar else result["products"]

    async def characterize(
        self,
        design: str,
        *,
        bitwidth: int = 16,
        samples: int = 1 << 16,
        seed: int = 2020,
    ) -> dict:
        return await self.call(
            {
                "op": "characterize",
                "design": design,
                "bitwidth": bitwidth,
                "samples": samples,
                "seed": seed,
            }
        )

    async def designs(self, prefix: str = "") -> list[dict]:
        result = await self.call({"op": "designs", "prefix": prefix})
        return result["designs"]

    async def ping(self) -> dict:
        return await self.call({"op": "ping"})


class InProcessClient(_RequestOps):
    """Drives a :class:`~repro.serve.server.Service` without a socket.

    Every request still round-trips the wire codec
    (``encode_frame -> Service.handle_line -> decode_frame``), so tests
    exercise exactly the frames a TCP client would see.
    """

    def __init__(self, service):
        self.service = service
        self._next_id = 0

    async def request(self, obj: dict) -> dict:
        if "id" not in obj:
            self._next_id += 1
            obj = {**obj, "id": self._next_id}
        line = await self.service.handle_line(encode_frame(obj))
        return decode_frame(line)


class AsyncClient(_RequestOps):
    """A pipelined TCP client; one connection, concurrent requests.

    ``retries`` (only honoured when built via :meth:`connect`, which
    records the dial address) bounds how many reconnect-and-resend
    attempts a transport failure may trigger for idempotent ops; the
    injectable ``sleep`` paces them (``retry_backoff`` seconds between
    attempts).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        address: tuple[str, int] | None = None,
        retries: int = 0,
        retry_backoff: float = 0.05,
        sleep=None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._reader = reader
        self._writer = writer
        self._address = address
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._pending: dict[object, asyncio.Future] = {}
        self._next_id = 0
        self._lock = asyncio.Lock()
        self._reconnect_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="repro-serve-client"
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        retry_backoff: float = 0.05,
        sleep=None,
    ) -> "AsyncClient":
        from .protocol import MAX_FRAME_BYTES

        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 1024
        )
        return cls(
            reader,
            writer,
            address=(host, port),
            retries=retries,
            retry_backoff=retry_backoff,
            sleep=sleep,
        )

    async def request(self, obj: dict) -> dict:
        if "id" not in obj:
            self._next_id += 1
            obj = {**obj, "id": self._next_id}
        budget = (
            self._retries
            if self._address is not None and obj.get("op") in IDEMPOTENT_OPS
            else 0
        )
        for attempt in range(budget + 1):
            if attempt:
                await self._sleep(self._retry_backoff)
                try:
                    await self._reconnect()
                except OSError as exc:
                    if attempt == budget:
                        raise ConnectionError(
                            f"reconnect to {self._address} failed: {exc}"
                        ) from exc
                    continue
            try:
                return await self._send(obj)
            except ConnectionError:
                if attempt == budget or self._closed:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _send(self, obj: dict) -> dict:
        if self._reader_task.done():
            raise ConnectionError("client connection is closed")
        future = asyncio.get_running_loop().create_future()
        self._pending[obj["id"]] = future
        try:
            async with self._lock:
                self._writer.write(encode_frame(obj))
                await self._writer.drain()
            return await future
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ConnectionError(f"send failed: {exc}") from exc
        finally:
            self._pending.pop(obj["id"], None)

    async def _reconnect(self) -> None:
        """Replace the dead transport; the old one is fully torn down
        first so a late reply from it can never reach a retried id.
        Serialized: when several pending requests hit the same dropped
        connection, the first one redials and the rest reuse it."""
        from .protocol import MAX_FRAME_BYTES

        assert self._address is not None
        async with self._reconnect_lock:
            if not self._closed and not self._reader_task.done():
                return  # a concurrent retry already reconnected
            await self.close()
            self._closed = False
            host, port = self._address
            self._reader, self._writer = await asyncio.open_connection(
                host, port, limit=MAX_FRAME_BYTES + 1024
            )
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(), name="repro-serve-client"
            )

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_frame(line)
                key = response.get("id")
                future = self._pending.get(key)
                if future is None and key is None and len(self._pending) == 1:
                    # an un-id'd error (bad-frame) answers the only request
                    future = next(iter(self._pending.values()))
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


def request_once(
    host: str, port: int, obj: dict, timeout: float = 30.0, retries: int = 0
) -> dict:
    """Synchronous one-shot: connect, send one request, return the response.

    The CLI's transport.  Raises :class:`ServeError` on a structured
    error response, ``ConnectionError``/``TimeoutError`` on transport
    failures.  ``retries`` bounds reconnect-and-resend attempts for
    idempotent ops (see :data:`IDEMPOTENT_OPS`); the ``timeout`` covers
    the whole exchange including retries.
    """

    async def go() -> dict:
        client = await AsyncClient.connect(host, port, retries=retries)
        try:
            response = await client.request(obj)
        finally:
            await client.close()
        if not response.get("ok"):
            raise ServeError.from_response(response)
        return response

    return asyncio.run(asyncio.wait_for(go(), timeout))
