"""Supervised multi-shard serving: route, watch, restart, degrade.

The :class:`Supervisor` is a drop-in :class:`~repro.serve.server.Service`
replacement (same ``start`` / ``handle_line`` / ``drain`` / ``draining``
surface, so the existing :class:`~repro.serve.server.TcpServer` fronts it
unchanged) that owns a fleet of shards (:mod:`repro.serve.shard`) instead
of evaluating in-process.  The robustness contract, end to end:

* **Routing** — multiply and characterize requests are routed by the
  *content address* of the design they name: the key is
  ``cache_key(fingerprint(model))``, the same identity the
  :class:`~repro.serve.batcher.ModelCache` and the compiled-kernel cache
  use, placed on a consistent-hash ring (:class:`HashRing`) built from
  shard *labels* only.  Two registry ids constructing the same design
  land on the same shard (one compiled kernel, one model cache entry per
  fleet member that serves it), and the placement is computable before
  any shard exists — which is what lets chaos schedules target "the
  shard that owns design X" deterministically.
* **Detection** — every shard is pinged every ``heartbeat_interval``
  seconds with a ``heartbeat_timeout`` deadline; ``max_heartbeat_misses``
  consecutive misses classify the shard as hung and it is killed and
  restarted.  A crashed shard is seen both instantly (its connection
  drops mid-request) and on the next heartbeat (``alive`` is false).
* **Recovery** — restarts run under a bounded budget with
  decorrelated-jitter backoff (``min(cap, U(base, 3·previous))``, the
  :class:`~repro.analysis.runtime.ResiliencePolicy` formula); a shard
  that exhausts ``max_restarts`` stays down and the ring routes around
  it.  Per-shard circuit breakers trip after ``breaker_threshold``
  consecutive failures, shedding traffic away from a flapping shard
  until a ``breaker_reset`` half-open probe proves it healthy — because
  routing is per-design, a tripped breaker manifests to clients as the
  broken shard's designs being served by their next ring successor.
* **The client always gets an answer** — an admitted request is retried
  across ring successors (sub-ids are remapped so concurrent front
  connections can never cross-wire, replies are validated for shape
  before being trusted), and when every candidate is exhausted the
  reply is a structured error — ``shard-down`` or ``deadline-exceeded``
  — or, for multiply with ``allow_degraded``, a last-resort in-parent
  serial evaluation.  Bit-identicality is unaffected by where a request
  lands: every path evaluates the same fingerprinted model.
* **Zero-downtime reconfig** — :meth:`rolling_restart` drains and
  replaces one shard at a time while the rest of the ring absorbs its
  designs; :meth:`drain` answers everything admitted before stopping
  the fleet.

Telemetry (:mod:`repro.analysis.telemetry`): ``supervisor.restarts``,
``supervisor.breaker_trips``, ``supervisor.heartbeat_misses``,
``supervisor.redirects``, ``supervisor.degraded`` counters;
``supervisor.shards_up`` and per-shard ``supervisor.queue_depth.<label>``
gauges.  Readiness is a wire-level ``status`` request (``repro serve
--probe``) reporting the whole fleet.

Determinism hooks mirror the repo idiom: ``sleep``/``jitter``/``clock``
on the policy are injectable, and :meth:`check_fleet` is public so tests
drive heartbeat rounds manually instead of racing a background task.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import itertools
import random
import time

import numpy as np

from ..analysis import telemetry
from ..analysis.cache import cache_key
from ..multipliers.base import as_operands
from ..multipliers.registry import fingerprint, names
from .batcher import ModelCache
from .protocol import (
    PROTOCOL_VERSION,
    CharacterizeRequest,
    MultiplyRequest,
    PingRequest,
    ProtocolError,
    StatusRequest,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["CircuitBreaker", "HashRing", "Supervisor", "SupervisorPolicy"]

#: shard error codes worth retrying on another shard — everything else
#: (bad-request, bad-operands, unknown-design) is deterministic and
#: passed through to the client unchanged
REDIRECTABLE_CODES = frozenset({"overloaded", "shutting-down", "internal"})


def _default_jitter(low: float, high: float) -> float:
    return random.uniform(low, high)


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Fleet-supervision knobs (all durations in seconds).

    ``sleep`` (async callable), ``jitter`` (uniform draw) and ``clock``
    (monotonic seconds) are injectable for deterministic tests; the
    defaults are :func:`asyncio.sleep`, ``random.uniform`` and
    :func:`time.monotonic`.
    """

    replicas: int = 32           # virtual ring nodes per shard
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 1.0
    max_heartbeat_misses: int = 3
    request_deadline: float = 30.0       # per multiply forward attempt
    characterize_deadline: float | None = None  # None: unbounded
    request_retries: int = 3             # redirects beyond the first attempt
    max_restarts: int = 5                # per shard, over the fleet lifetime
    restart_base: float = 0.05
    restart_cap: float = 2.0
    breaker_threshold: int = 3           # consecutive failures to trip
    breaker_reset: float = 5.0           # open -> half-open probe delay
    allow_degraded: bool = True          # in-parent multiply as last resort
    sleep: object | None = None
    jitter: object | None = None
    clock: object | None = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        for field in (
            "heartbeat_interval",
            "heartbeat_timeout",
            "request_deadline",
            "restart_base",
            "restart_cap",
            "breaker_reset",
        ):
            if not getattr(self, field) > 0:
                raise ValueError(
                    f"{field} must be > 0, got {getattr(self, field)}"
                )
        for field in ("max_heartbeat_misses", "breaker_threshold"):
            if getattr(self, field) < 1:
                raise ValueError(
                    f"{field} must be >= 1, got {getattr(self, field)}"
                )
        for field in ("request_retries", "max_restarts"):
            if getattr(self, field) < 0:
                raise ValueError(
                    f"{field} must be >= 0, got {getattr(self, field)}"
                )

    def next_delay(self, previous: float) -> float:
        """Decorrelated-jitter restart backoff: ``min(cap, U(base, 3·prev))``."""
        uniform = self.jitter if self.jitter is not None else _default_jitter
        high = max(self.restart_base, 3.0 * previous)
        return min(self.restart_cap, uniform(self.restart_base, high))

    async def pause(self, seconds: float) -> None:
        if seconds > 0:
            sleep = self.sleep if self.sleep is not None else asyncio.sleep
            await sleep(seconds)

    def now(self) -> float:
        return (self.clock if self.clock is not None else time.monotonic)()


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    ``closed`` admits traffic; ``breaker_threshold`` consecutive
    failures trip it ``open`` (requests route around this shard);
    after ``breaker_reset`` seconds the next :meth:`allows` call moves
    it to ``half-open``, admitting probe traffic — one success closes
    it, one failure re-opens it.  :meth:`reset` (used after a restart)
    returns straight to ``closed``.
    """

    def __init__(self, policy: SupervisorPolicy):
        self.policy = policy
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.trips = 0

    def allows(self) -> bool:
        if self.state == "open":
            if self.policy.now() - self.opened_at >= self.policy.breaker_reset:
                self.state = "half-open"
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.policy.breaker_threshold:
            if self.state != "open":
                self.trips += 1
                telemetry.get().counter("supervisor.breaker_trips")
            self.state = "open"
            self.opened_at = self.policy.now()
            self.failures = 0

    def reset(self) -> None:
        self.state = "closed"
        self.failures = 0


class HashRing:
    """Consistent hashing over shard labels with virtual nodes.

    Built from labels alone (``sha256(f"{label}:{replica}")`` points on a
    256-bit ring), so the placement of any key is known before a single
    shard process exists — chaos schedules and capacity math can both be
    precomputed.  :meth:`order` returns the full preference order for a
    key: the owning shard first, then each distinct successor walking
    the ring, which is exactly the supervisor's redirect order.
    """

    def __init__(self, labels, replicas: int = 32):
        self.labels = tuple(labels)
        if len(set(self.labels)) != len(self.labels):
            raise ValueError(f"duplicate shard labels: {self.labels}")
        if not self.labels:
            raise ValueError("a ring needs at least one label")
        points = []
        for label in self.labels:
            for replica in range(replicas):
                points.append((self._point(f"{label}:{replica}"), label))
        points.sort()
        self._points = points

    @staticmethod
    def _point(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest(), "big"
        )

    def order(self, key: str) -> tuple[str, ...]:
        """Preference order of distinct labels for ``key`` (owner first)."""
        target = self._point(key)
        start = bisect.bisect_left(self._points, (target, ""))
        seen: list[str] = []
        for offset in range(len(self._points)):
            label = self._points[(start + offset) % len(self._points)][1]
            if label not in seen:
                seen.append(label)
                if len(seen) == len(self.labels):
                    break
        return tuple(seen)

    def owner(self, key: str) -> str:
        return self.order(key)[0]


class Supervisor:
    """Fleet front: a Service-shaped dispatcher over supervised shards.

    ``shards`` is a sequence of shard handles
    (:class:`~repro.serve.shard.LocalShard` or
    :class:`~repro.serve.shard.ProcessShard`) with distinct names.
    Lifecycle: ``await up()`` to spawn the fleet, then hand the
    supervisor to a :class:`~repro.serve.server.TcpServer` (whose
    ``start``/``close`` drive :meth:`start`/:meth:`drain`), or call them
    directly for in-process use.  ``models`` backs routing-key
    computation, the ``designs`` listing and degraded evaluation; it
    never serves a healthy multiply.
    """

    def __init__(
        self,
        shards,
        *,
        policy: SupervisorPolicy | None = None,
        models: ModelCache | None = None,
        compiled: bool | None = None,
    ):
        shards = list(shards)
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.shards = {shard.name: shard for shard in shards}
        if len(self.shards) != len(shards):
            raise ValueError("shard names must be distinct")
        self.ring = HashRing(self.shards, replicas=self.policy.replicas)
        self.models = models if models is not None else ModelCache(compiled=compiled)
        self.breakers = {
            name: CircuitBreaker(self.policy) for name in self.shards
        }
        self.restart_counts = dict.fromkeys(self.shards, 0)
        self.heartbeat_misses = dict.fromkeys(self.shards, 0)
        self._last_delay = dict.fromkeys(self.shards, 0.0)
        self._failed = dict.fromkeys(self.shards, False)  # budget exhausted
        self._seq = itertools.count(1)
        self._locks: dict[str, asyncio.Lock] = {}  # per-shard supervision
        self._draining = False
        self._heartbeat_task: asyncio.Task | None = None
        self._inflight = 0
        self._settled: asyncio.Event | None = None

    # -- lifecycle ------------------------------------------------------

    async def up(self) -> None:
        """Spawn/connect every shard (call before serving traffic)."""
        for shard in self.shards.values():
            await shard.start()
        telemetry.get().gauge("supervisor.shards_up", self._shards_up())

    def start(self) -> None:
        """Start the heartbeat monitor (Service-compatible; needs a loop)."""
        if self._heartbeat_task is None or self._heartbeat_task.done():
            self._heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name="repro-supervisor-heartbeat"
            )

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Graceful fleet shutdown: answer admitted work, then stop shards."""
        self._draining = True
        task, self._heartbeat_task = self._heartbeat_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        # let in-flight forwards settle (event-driven; bounded by the
        # per-attempt deadlines they already run under)
        if self._inflight and self._settled is not None:
            try:
                await asyncio.wait_for(
                    self._settled.wait(),
                    self.policy.request_deadline
                    * (self.policy.request_retries + 1),
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        for shard in self.shards.values():
            try:
                await shard.stop()
            except Exception:  # pragma: no cover - defensive
                pass
        telemetry.get().gauge("supervisor.shards_up", 0)

    async def rolling_restart(self) -> None:
        """Replace shards one at a time; the ring absorbs each in turn.

        Zero-downtime reconfig: while one shard drains and restarts, its
        designs are served by ring successors via the ordinary redirect
        path.  Does not count against the failure-restart budget (this
        is maintenance, not recovery), but does reset breakers and
        heartbeat state for the fresh process.
        """
        for name, shard in list(self.shards.items()):
            if self._draining:
                break
            async with self._lock_for(name):
                await shard.restart()
                self.breakers[name].reset()
                self.heartbeat_misses[name] = 0
                self._failed[name] = False
            telemetry.get().counter("supervisor.restarts")
            telemetry.get().gauge("supervisor.shards_up", self._shards_up())

    # -- routing --------------------------------------------------------

    def route_key(self, design: str, bitwidth: int = 16) -> str:
        """The ring key for a design: its fingerprint content address."""
        return cache_key(fingerprint(self.models.get(design, bitwidth)))

    def route(self, design: str, bitwidth: int = 16) -> tuple[str, ...]:
        """Shard preference order for a design (owner first)."""
        return self.ring.order(self.route_key(design, bitwidth))

    def _shards_up(self) -> int:
        return sum(1 for shard in self.shards.values() if shard.alive)

    # -- framing (Service-compatible) -----------------------------------

    async def handle_line(self, line) -> bytes:
        """One frame in, one frame out; no exception ever escapes."""
        try:
            obj = decode_frame(line)
        except ProtocolError as exc:
            return encode_frame(error_response(None, exc.code, exc.message))
        try:
            response = await self.handle(obj)
        except Exception as exc:  # pragma: no cover - defensive belt
            response = error_response(
                obj.get("id"), "internal", f"{type(exc).__name__}: {exc}"
            )
        return encode_frame(response)

    async def handle(self, obj: dict) -> dict:
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            request = parse_request(obj)
        except ProtocolError as exc:
            return error_response(request_id, exc.code, exc.message)
        if self._draining and not isinstance(request, (PingRequest, StatusRequest)):
            return error_response(
                request.id, "shutting-down", "fleet is draining; retry elsewhere"
            )
        try:
            if isinstance(request, MultiplyRequest):
                return await self._forward_multiply(obj, request)
            if isinstance(request, CharacterizeRequest):
                return await self._forward_characterize(obj, request)
            if isinstance(request, StatusRequest):
                return self._status(request)
            if isinstance(request, PingRequest):
                return self._ping(request)
            return self._designs(request)
        except ProtocolError as exc:
            return error_response(request.id, exc.code, exc.message)
        except Exception as exc:
            telemetry.get().counter("serve.internal_errors")
            return error_response(
                request.id, "internal", f"{type(exc).__name__}: {exc}"
            )

    # -- forwarding -----------------------------------------------------

    async def _forward_multiply(self, obj: dict, request: MultiplyRequest) -> dict:
        try:
            order = self.route(request.design, request.bitwidth)
        except KeyError as exc:
            return error_response(request.id, "unknown-design", str(exc.args[0]))
        pairs = max(len(request.a), len(request.b))
        response, reason = await self._forward(
            obj,
            order,
            deadline=self.policy.request_deadline,
            validate=lambda result: self._valid_products(result, pairs, request.scalar),
        )
        if response is not None:
            return response
        if self.policy.allow_degraded:
            return self._degraded_multiply(request)
        return self._exhausted(request.id, reason)

    async def _forward_characterize(
        self, obj: dict, request: CharacterizeRequest
    ) -> dict:
        try:
            order = self.route(request.design, request.bitwidth)
        except KeyError as exc:
            return error_response(request.id, "unknown-design", str(exc.args[0]))
        response, reason = await self._forward(
            obj,
            order,
            deadline=self.policy.characterize_deadline,
            validate=lambda result: isinstance(result.get("metrics"), dict),
        )
        if response is not None:
            return response
        return self._exhausted(request.id, reason)

    async def _forward(self, obj: dict, order, *, deadline, validate):
        """Try each candidate shard in ring order; first trusted reply wins.

        Returns ``(response, None)`` on success or pass-through error,
        ``(None, reason)`` when every candidate is exhausted — ``reason``
        is ``"deadline"`` if any attempt timed out, else ``"down"``.
        """
        original_id = obj.get("id")
        attempts = 0
        timed_out = False
        self._inflight += 1
        if self._settled is None:
            self._settled = asyncio.Event()
        self._settled.clear()
        try:
            for index, name in enumerate(order):
                if attempts > self.policy.request_retries:
                    break
                shard = self.shards[name]
                breaker = self.breakers[name]
                if not shard.alive or not breaker.allows():
                    continue
                attempts += 1
                if index > 0 or attempts > 1:
                    telemetry.get().counter("supervisor.redirects")
                sub = {**obj, "id": f"sup-{next(self._seq)}"}
                try:
                    call = shard.request(sub)
                    if deadline is not None:
                        call = asyncio.wait_for(call, deadline)
                    response = await call
                except asyncio.TimeoutError:
                    timed_out = True
                    breaker.record_failure()
                    continue
                except (ConnectionError, OSError, EOFError, asyncio.IncompleteReadError):
                    # crashed shard: the heartbeat loop will restart it;
                    # this request redirects immediately
                    breaker.record_failure()
                    continue
                if not isinstance(response, dict):
                    breaker.record_failure()
                    continue
                if response.get("ok"):
                    result = response.get("result")
                    if not isinstance(result, dict) or not validate(result):
                        # corrupt reply: never trusted, never surfaced
                        breaker.record_failure()
                        continue
                    breaker.record_success()
                    return {**response, "id": original_id}, None
                code = (response.get("error") or {}).get("code")
                if code in REDIRECTABLE_CODES:
                    if code == "internal":
                        breaker.record_failure()
                    continue
                # deterministic rejection (bad-operands, unknown-design,
                # bad-request): the shard is healthy, the request is not
                breaker.record_success()
                return {**response, "id": original_id}, None
            return None, ("deadline" if timed_out else "down")
        finally:
            self._inflight -= 1
            if self._inflight == 0 and self._settled is not None:
                self._settled.set()

    @staticmethod
    def _valid_products(result: dict, pairs: int, scalar: bool) -> bool:
        products = result.get("products")
        if not isinstance(products, list) or len(products) != pairs:
            return False
        if any(isinstance(p, bool) or not isinstance(p, int) for p in products):
            return False
        if scalar and result.get("product") != products[0]:
            return False
        return True

    def _exhausted(self, request_id, reason: str) -> dict:
        if reason == "deadline":
            return error_response(
                request_id,
                "deadline-exceeded",
                "no shard answered within the request deadline",
            )
        return error_response(
            request_id,
            "shard-down",
            "the shards owning this design are unavailable",
        )

    def _degraded_multiply(self, request: MultiplyRequest) -> dict:
        """Last resort: serial in-parent evaluation (bit-identical anyway)."""
        telemetry.get().counter("supervisor.degraded")
        try:
            model = self.models.get(request.design, request.bitwidth)
            a, b = as_operands(request.a, request.b, model.bitwidth)
        except KeyError as exc:
            return error_response(request.id, "unknown-design", str(exc.args[0]))
        except ValueError as exc:
            return error_response(request.id, "bad-operands", str(exc))
        products = model.multiply(
            np.atleast_1d(a), np.atleast_1d(b), compiled=self.models.compiled
        )
        result = {"products": [int(value) for value in products]}
        if request.scalar:
            result["product"] = result["products"][0]
        return ok_response(request.id, result)

    # -- local ops ------------------------------------------------------

    def _designs(self, request) -> dict:
        listing = []
        for name in names():
            if not name.startswith(request.prefix):
                continue
            model = self.models.get(name)
            listing.append(
                {"id": name, "name": model.name, "family": model.family}
            )
        return ok_response(request.id, {"designs": listing})

    def _ping(self, request: PingRequest) -> dict:
        return ok_response(
            request.id,
            {
                "protocol": PROTOCOL_VERSION,
                "role": "supervisor",
                "shards_up": self._shards_up(),
                "draining": self._draining,
            },
        )

    def _status(self, request: StatusRequest) -> dict:
        """Fleet readiness: per-shard state plus an overall verdict."""
        shards = {}
        for name, shard in self.shards.items():
            shards[name] = {
                "alive": shard.alive,
                "breaker": self.breakers[name].state,
                "restarts": self.restart_counts[name],
                "heartbeat_misses": self.heartbeat_misses[name],
                "failed": self._failed[name],
            }
        ready = not self._draining and (
            self._shards_up() > 0 or self.policy.allow_degraded
        )
        return ok_response(
            request.id,
            {
                "ready": ready,
                "role": "supervisor",
                "protocol": PROTOCOL_VERSION,
                "draining": self._draining,
                "shards": shards,
            },
        )

    # -- supervision ----------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while not self._draining:
            await self.policy.pause(self.policy.heartbeat_interval)
            if self._draining:
                return
            try:
                await self.check_fleet()
            except Exception:  # pragma: no cover - defensive belt
                pass

    async def check_fleet(self) -> None:
        """One heartbeat round: ping every shard, restart the sick ones.

        Public so deterministic tests drive supervision explicitly
        instead of racing the background loop.
        """
        tele = telemetry.get()
        for name, shard in list(self.shards.items()):
            if self._draining:
                return
            if self._failed[name]:
                continue
            # serialize probe-and-maybe-restart per shard, so the
            # background loop and explicit check_fleet calls can never
            # double-restart (or restart a just-replaced, healthy shard
            # on a stale miss count)
            async with self._lock_for(name):
                if not shard.alive:
                    await self._restart(name)
                    continue
                try:
                    response = await asyncio.wait_for(
                        shard.request(
                            {"op": "ping", "id": f"sup-{next(self._seq)}"}
                        ),
                        self.policy.heartbeat_timeout,
                    )
                except Exception:
                    self.heartbeat_misses[name] += 1
                    tele.counter("supervisor.heartbeat_misses")
                    if (
                        self.heartbeat_misses[name]
                        >= self.policy.max_heartbeat_misses
                    ):
                        # a hung worker: no drain possible, kill + replace
                        shard.kill()
                        await self._restart(name)
                else:
                    self.heartbeat_misses[name] = 0
                    result = response.get("result") or {}
                    depth = result.get("queue_depth")
                    if isinstance(depth, int):
                        tele.gauge(f"supervisor.queue_depth.{name}", depth)
        tele.gauge("supervisor.shards_up", self._shards_up())

    def _lock_for(self, name: str) -> asyncio.Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = asyncio.Lock()
        return lock

    async def _restart(self, name: str) -> bool:
        """Restart one shard under the bounded backoff budget.

        Callers hold the shard's supervision lock (:meth:`_lock_for`).
        """
        if self._draining:
            return False
        if self.restart_counts[name] >= self.policy.max_restarts:
            if not self._failed[name]:
                self._failed[name] = True
                telemetry.get().event("supervisor.shard_failed", shard=name)
            return False
        delay = self.policy.next_delay(self._last_delay[name])
        self._last_delay[name] = delay
        await self.policy.pause(delay)
        shard = self.shards[name]
        try:
            await shard.restart()
        except Exception:
            # spawn itself failed; burn one budget slot and let the next
            # heartbeat round try again with a larger backoff
            self.restart_counts[name] += 1
            return False
        self.restart_counts[name] += 1
        self.heartbeat_misses[name] = 0
        self.breakers[name].reset()
        telemetry.get().counter("supervisor.restarts")
        telemetry.get().gauge("supervisor.shards_up", self._shards_up())
        return True
