"""The serving layer: request dispatch, TCP transport, graceful drain.

:class:`Service` is the transport-independent core — it turns one
decoded request into one response dict, multiplying through the
micro-batcher (:mod:`repro.serve.batcher`), characterizing through the
cached/resilient Monte-Carlo engine (off the event loop, with a
:class:`~repro.analysis.runtime.SharedPool` reused across requests),
and answering ``designs``/``ping`` from the registry.
:meth:`Service.handle_line` adds the framing layer: any input line in,
exactly one well-formed response frame out, never an exception.

:class:`TcpServer` binds a ``Service`` to an asyncio TCP endpoint
(newline-delimited JSON, one frame per line, requests pipelined per
connection and answered in completion order, matched by ``id``).
Shutdown is a graceful drain: stop accepting, flush the batcher so
every admitted request gets its response, then close connections —
admitted work is never dropped, new work is refused with
``shutting-down``.

The in-process path for tests is simply a ``Service`` plus
:class:`repro.serve.client.InProcessClient` — same dispatch, same
codec, no sockets.
"""

from __future__ import annotations

import asyncio
import dataclasses

from ..analysis import telemetry
from ..analysis.montecarlo import characterize
from ..analysis.runtime import SharedPool
from ..multipliers.registry import names
from .batcher import BatchPolicy, MicroBatcher, ModelCache, ShedError
from .protocol import (
    PROTOCOL_VERSION,
    CharacterizeRequest,
    DesignsRequest,
    MultiplyRequest,
    PingRequest,
    ProtocolError,
    StatusRequest,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["DEFAULT_PORT", "Service", "TcpServer"]

#: default TCP port (no registered meaning; "REALM" on a phone keypad-ish)
DEFAULT_PORT = 7325


class Service:
    """Transport-independent request dispatch.

    ``policy``/``models``/``sleep`` configure the micro-batcher (the
    injectable ``sleep`` is what the deterministic test harness uses);
    ``compiled`` selects the evaluation engine for multiply requests
    (forwarded to the :class:`ModelCache`; ``None`` follows
    ``REPRO_COMPILED``);
    ``workers`` > 1 gives characterize requests a :class:`SharedPool`
    whose worker processes are reused across requests; ``engine`` is a
    dict of extra :func:`~repro.analysis.montecarlo.characterize`
    keyword arguments (``cache=``, ``max_retries=``, ...);
    ``characterize_slots`` bounds concurrent characterize runs (default
    1 — the engine parallelizes internally, and the shared pool is not
    thread-safe).
    """

    def __init__(
        self,
        *,
        policy: BatchPolicy | None = None,
        models: ModelCache | None = None,
        sleep=None,
        workers: int | None = None,
        engine: dict | None = None,
        characterize_slots: int = 1,
        compiled: bool | None = None,
    ):
        if characterize_slots < 1:
            raise ValueError(
                f"characterize_slots must be >= 1, got {characterize_slots}"
            )
        if models is None:
            models = ModelCache(compiled=compiled)
        elif compiled is not None:
            models.compiled = compiled
        self.batcher = MicroBatcher(policy, models=models, sleep=sleep)
        self.workers = workers
        self.pool = SharedPool(workers) if workers and workers > 1 else None
        self.engine = dict(engine) if engine else {}
        self._gate = asyncio.Semaphore(characterize_slots)
        self._draining = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the batcher's background flusher (needs a running loop)."""
        self.batcher.start()

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Graceful shutdown: answer everything admitted, refuse the rest.

        New requests are refused with ``shutting-down`` from the moment
        this is called; queued multiplies flush and resolve; the shared
        characterize pool shuts down after in-flight runs finish.
        """
        self._draining = True
        await self.batcher.drain()
        if self.pool is not None:
            await asyncio.to_thread(self.pool.close)

    # -- framing --------------------------------------------------------

    async def handle_line(self, line) -> bytes:
        """One frame in, one frame out; no exception ever escapes."""
        try:
            obj = decode_frame(line)
        except ProtocolError as exc:
            return encode_frame(error_response(None, exc.code, exc.message))
        try:
            response = await self.handle(obj)
        except Exception as exc:  # pragma: no cover - defensive belt
            response = error_response(
                obj.get("id"), "internal", f"{type(exc).__name__}: {exc}"
            )
        return encode_frame(response)

    async def handle(self, obj: dict) -> dict:
        """Dispatch one decoded request object to a response dict."""
        request_id = obj.get("id") if isinstance(obj, dict) else None
        try:
            request = parse_request(obj)
        except ProtocolError as exc:
            return error_response(request_id, exc.code, exc.message)
        if self._draining and not isinstance(request, (PingRequest, StatusRequest)):
            return error_response(
                request.id, "shutting-down", "server is draining; retry elsewhere"
            )
        try:
            if isinstance(request, MultiplyRequest):
                return await self._multiply(request)
            if isinstance(request, CharacterizeRequest):
                return await self._characterize(request)
            if isinstance(request, DesignsRequest):
                return self._designs(request)
            if isinstance(request, StatusRequest):
                return self._status(request)
            return self._ping(request)
        except ProtocolError as exc:
            return error_response(request.id, exc.code, exc.message)
        except Exception as exc:
            telemetry.get().counter("serve.internal_errors")
            return error_response(
                request.id, "internal", f"{type(exc).__name__}: {exc}"
            )

    # -- ops ------------------------------------------------------------

    async def _multiply(self, request: MultiplyRequest) -> dict:
        try:
            future = self.batcher.submit(
                request.design, request.a, request.b, request.bitwidth
            )
        except KeyError as exc:
            return error_response(request.id, "unknown-design", str(exc.args[0]))
        except ValueError as exc:
            return error_response(request.id, "bad-operands", str(exc))
        except ShedError as exc:
            code = "shutting-down" if self.batcher.closing else "overloaded"
            return error_response(request.id, code, str(exc))
        products = await future
        result = {"products": [int(value) for value in products]}
        if request.scalar:
            result["product"] = result["products"][0]
        return ok_response(request.id, result)

    async def _characterize(self, request: CharacterizeRequest) -> dict:
        if self.batcher.closing:
            return error_response(
                request.id, "shutting-down", "server is draining"
            )
        try:
            model = self.batcher.models.get(request.design, request.bitwidth)
        except KeyError as exc:
            return error_response(request.id, "unknown-design", str(exc.args[0]))
        async with self._gate:
            with telemetry.get().span(
                "serve.characterize", design=model.name, samples=request.samples
            ):
                metrics = await asyncio.to_thread(
                    characterize,
                    model,
                    samples=request.samples,
                    seed=request.seed,
                    workers=self.workers,
                    pool=self.pool,
                    **self.engine,
                )
        return ok_response(
            request.id,
            {
                "design": request.design,
                "bitwidth": request.bitwidth,
                "samples": request.samples,
                "seed": request.seed,
                "metrics": dataclasses.asdict(metrics),
            },
        )

    def _designs(self, request: DesignsRequest) -> dict:
        listing = []
        for name in names():
            if not name.startswith(request.prefix):
                continue
            model = self.batcher.models.get(name)
            listing.append(
                {"id": name, "name": model.name, "family": model.family}
            )
        return ok_response(request.id, {"designs": listing})

    def _ping(self, request: PingRequest) -> dict:
        return ok_response(
            request.id,
            {
                "protocol": PROTOCOL_VERSION,
                "queue_depth": self.batcher.depth,
                "draining": self._draining,
            },
        )

    def _status(self, request: StatusRequest) -> dict:
        """Readiness probe: one standalone service is ready unless draining."""
        return ok_response(
            request.id,
            {
                "ready": not self._draining,
                "role": "service",
                "protocol": PROTOCOL_VERSION,
                "draining": self._draining,
                "queue_depth": self.batcher.depth,
            },
        )


class TcpServer:
    """Newline-delimited JSON over TCP, one :class:`Service` behind it.

    Requests on one connection are handled concurrently (one task per
    frame) and responses are written in completion order — clients match
    them by ``id``.  ``port=0`` binds an ephemeral port; read the actual
    one from :attr:`address` after :meth:`start`.
    """

    def __init__(self, service: Service, host: str = "127.0.0.1", port: int = DEFAULT_PORT):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self.service.start()
        # readline needs headroom beyond the largest legal frame
        from .protocol import MAX_FRAME_BYTES

        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port, limit=MAX_FRAME_BYTES + 1024
        )
        telemetry.get().event(
            "serve.listening", host=self.address[0], port=self.address[1]
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful drain: stop accepting, answer everything, disconnect."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)
        for writer in tuple(self._writers):
            writer.close()
        # closing the transports EOFs the readers; wait for the handlers
        # to unwind so loop teardown never cancels them mid-read
        if self._conn_tasks:
            await asyncio.gather(
                *tuple(self._conn_tasks), return_exceptions=True
            )

    async def _on_connect(self, reader, writer) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # over-long line: answer once, then drop the connection
                    # (framing is lost beyond this point)
                    await self._write(
                        writer,
                        lock,
                        encode_frame(
                            error_response(None, "bad-frame", "frame too long")
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._respond(line, writer, lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, line, writer, lock) -> None:
        response = await self.service.handle_line(line)
        try:
            await self._write(writer, lock, response)
        except (ConnectionResetError, BrokenPipeError, RuntimeError, OSError):
            pass  # client went away; the work is already done

    @staticmethod
    async def _write(writer, lock, payload: bytes) -> None:
        async with lock:
            # a client that vanished mid-pipeline must not wedge the
            # writers of its surviving responses: writing to a closing
            # transport buffers forever (drain may never return), so the
            # response is simply discarded — the batcher's future already
            # resolved, no queue slot is held
            if writer.is_closing():
                return
            writer.write(payload)
            await writer.drain()
