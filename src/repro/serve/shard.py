"""Worker shards of the supervised serving fleet.

A **shard** is one unit of serving capacity behind the
:class:`~repro.serve.supervisor.Supervisor`: the full existing
:class:`~repro.serve.server.Service` / micro-batcher stack, wrapped in
the handle interface the supervisor routes through.  Two flavours share
that interface:

* :class:`ProcessShard` — the production unit: a child process (spawn
  context by default, so no event-loop or lock state leaks across the
  fork boundary) running :func:`shard_main`, which binds a
  :class:`~repro.serve.server.TcpServer` on an ephemeral loopback port,
  reports the port back through a pipe, and serves until SIGTERM
  triggers a graceful drain.  The parent talks to it over the ordinary
  NDJSON protocol through an :class:`~repro.serve.client.AsyncClient` —
  the shard link *is* the public wire format, so everything the protocol
  suite proves holds inside the fleet too.
* :class:`LocalShard` — the same handle over an in-process ``Service``:
  no sockets, no processes, deterministic.  This is what unit tests and
  the conformance oracle's supervised ``serve`` layer use; it exercises
  every supervisor code path (routing, validation, retry, degradation)
  except OS-level crash/kill.

**Chaos injection** rides the existing plans
(:mod:`repro.analysis.chaos`): :class:`ShardService` counts multiply
requests and consults :func:`~repro.analysis.chaos.serve_fault` with
``(label, ordinal)`` before dispatching.  A claimed ``crash`` exits the
process mid-request (the supervisor sees a dropped connection), ``hang``
blocks the event loop like a genuinely stuck worker (heartbeats go
unanswered, in-flight requests stall), ``corrupt`` truncates the product
vector (the supervisor's reply validation catches it), and ``raise``
surfaces as a structured ``internal`` error.  Firing counts are exact
across restarts — the claims go through the plan's cross-process lock
files.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import signal
import time

from .batcher import BatchPolicy
from .client import AsyncClient
from .protocol import MultiplyRequest, decode_frame, encode_frame
from .server import Service, TcpServer

__all__ = [
    "LocalShard",
    "ProcessShard",
    "ShardConfig",
    "ShardService",
    "shard_main",
]

#: exit code of a chaos-crashed shard (mirrors the batch-task harness)
CRASH_EXIT_CODE = 17


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """Everything a shard process needs to build its serving stack.

    Picklable (spawn-context safe): ``policy`` is the frozen
    :class:`~repro.serve.batcher.BatchPolicy`, ``engine`` the extra
    ``characterize`` keyword arguments, ``workers`` the per-shard
    characterize pool size.  ``host`` is the loopback interface the
    shard binds (ephemeral port; the bound port is reported back through
    the startup pipe).
    """

    name: str
    host: str = "127.0.0.1"
    policy: BatchPolicy | None = None
    compiled: bool | None = None
    workers: int | None = None
    engine: dict | None = None


class ShardService(Service):
    """A :class:`Service` that identifies its shard and obeys chaos plans.

    ``label`` tags ping/status replies (the supervisor asserts it talks
    to the shard it thinks it does) and keys fault injection: multiply
    requests are numbered per service lifetime, and a chaos spec
    matching ``(label, ordinal)`` fires exactly once per claim —
    see :func:`repro.analysis.chaos.serve_fault`.
    """

    def __init__(self, label: str, **kwargs):
        super().__init__(**kwargs)
        self.label = label
        self._multiply_seq = 0

    async def _multiply(self, request: MultiplyRequest) -> dict:
        from ..analysis import chaos

        ordinal = self._multiply_seq
        self._multiply_seq += 1
        spec = chaos.serve_fault(self.label, ordinal)
        if spec is not None:
            if spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if spec.kind == "hang":
                # block the event loop like a real stuck worker: the
                # heartbeat goes unanswered, in-flight requests stall
                time.sleep(spec.seconds)
            elif spec.kind == "raise":
                raise chaos.ChaosFault(
                    f"injected fault on {self.label} request {ordinal}"
                )
        response = await super()._multiply(request)
        if spec is not None and spec.kind == "corrupt" and response.get("ok"):
            # a poisoned reply: drop the last product so the supervisor's
            # length validation must catch it (never a silent wrong answer
            # reaching the client)
            response["result"]["products"] = response["result"]["products"][:-1]
            response["result"].pop("product", None)
        return response

    def _ping(self, request) -> dict:
        response = super()._ping(request)
        response["result"]["shard"] = self.label
        return response

    def _status(self, request) -> dict:
        response = super()._status(request)
        response["result"]["shard"] = self.label
        return response


def _build_service(config: ShardConfig) -> ShardService:
    return ShardService(
        config.name,
        policy=config.policy,
        compiled=config.compiled,
        workers=config.workers,
        engine=config.engine,
    )


async def _shard_amain(config: ShardConfig, conn) -> None:
    service = _build_service(config)
    server = TcpServer(service, config.host, 0)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(signum, lambda *_: stop.set())
    conn.send(("ready", server.address[1]))
    conn.close()
    try:
        await stop.wait()
    finally:
        await server.close()


def shard_main(config: ShardConfig, conn) -> None:
    """Child-process entry point: serve until SIGTERM, then drain."""
    try:
        asyncio.run(_shard_amain(config, conn))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C only
        pass


class LocalShard:
    """An in-process shard: the handle interface over a plain ``Service``.

    Deterministic (no processes, no sockets) and therefore the unit-test
    and conformance vehicle for every supervisor code path that does not
    require OS-level isolation.  ``sleep`` forwards to the service's
    micro-batcher gate, so harnesses that control flushing manually work
    unchanged.
    """

    def __init__(
        self,
        name: str,
        *,
        policy: BatchPolicy | None = None,
        compiled: bool | None = None,
        sleep=None,
    ):
        self.name = name
        self._policy = policy
        self._compiled = compiled
        self._sleep = sleep
        self.service: ShardService | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.service is not None and not self.service.draining

    async def start(self) -> None:
        self.service = ShardService(
            self.name,
            policy=self._policy,
            compiled=self._compiled,
            sleep=self._sleep,
        )
        self.service.start()

    async def request(self, obj: dict) -> dict:
        if self.service is None:
            raise ConnectionError(f"shard {self.name!r} is not running")
        line = await self.service.handle_line(encode_frame(obj))
        return decode_frame(line)

    async def stop(self) -> None:
        service, self.service = self.service, None
        if service is not None:
            await service.drain()

    async def restart(self) -> None:
        await self.stop()
        await self.start()
        self.restarts += 1

    def kill(self) -> None:
        # no process to kill; dropping the service models the hard stop
        self.service = None


class ProcessShard:
    """A shard running :func:`shard_main` in a child process.

    ``mp_context`` defaults to ``"spawn"``: the child starts from a
    fresh interpreter, so no event loop, socket, or lock state of the
    (possibly already-async) parent leaks across.  :meth:`start` blocks
    until the child reports its bound port (``startup_timeout`` guards a
    child that dies before binding), then connects the parent-side
    :class:`AsyncClient`.  :meth:`stop` is the graceful path (SIGTERM →
    drain → join, escalating to SIGKILL after ``grace``); :meth:`kill`
    is immediate — what the supervisor does to a hung shard.
    """

    def __init__(
        self,
        config: ShardConfig,
        *,
        mp_context: str = "spawn",
        startup_timeout: float = 60.0,
    ):
        self.config = config
        self.name = config.name
        self._ctx = multiprocessing.get_context(mp_context)
        self._timeout = startup_timeout
        self.process = None
        self.port: int | None = None
        self.client: AsyncClient | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    async def start(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        self.process = self._ctx.Process(
            target=shard_main,
            args=(self.config, child_conn),
            name=f"repro-{self.name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        try:
            message = await asyncio.to_thread(self._await_ready, parent_conn)
        finally:
            parent_conn.close()
        self.port = int(message[1])
        self.client = await AsyncClient.connect(self.config.host, self.port)

    def _await_ready(self, conn):
        if not conn.poll(self._timeout):
            self._reap()
            raise ConnectionError(
                f"shard {self.name!r} did not report ready within "
                f"{self._timeout}s"
            )
        try:
            message = conn.recv()
        except (EOFError, OSError) as exc:
            self._reap()
            raise ConnectionError(
                f"shard {self.name!r} died during startup"
            ) from exc
        if not (isinstance(message, tuple) and message[0] == "ready"):
            self._reap()
            raise ConnectionError(
                f"shard {self.name!r} sent a malformed ready message"
            )
        return message

    def _reap(self) -> None:
        if self.process is not None:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
            self.process = None

    async def request(self, obj: dict) -> dict:
        if self.client is None:
            raise ConnectionError(f"shard {self.name!r} is not connected")
        return await self.client.request(obj)

    async def stop(self, grace: float = 10.0) -> None:
        client, self.client = self.client, None
        if client is not None:
            await client.close()
        process, self.process = self.process, None
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        await asyncio.to_thread(process.join, grace)
        if process.is_alive():  # pragma: no cover - drain overran its grace
            process.kill()
            await asyncio.to_thread(process.join, 5.0)

    async def restart(self) -> None:
        """Replace the process (and connection) with a fresh one."""
        await self.stop(grace=1.0)
        await self.start()
        self.restarts += 1

    def kill(self) -> None:
        """Immediate SIGKILL — the hung-shard path (no drain possible)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            # reap promptly so ``alive`` flips without waiting for a
            # later join (SIGKILL lands before this returns)
            self.process.join(timeout=5.0)
