"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # output piped into a pager/head that closed early; not an error
    sys.exit(0)
