"""Netlist serialization (JSON) and equivalence checking.

``to_json``/``from_json`` round-trip a netlist through a plain JSON
document — the interchange format for saving explored designs, diffing
netlists across library versions, or feeding external tooling alongside
the Verilog export.

``check_equivalence`` is the library's one-stop miter: it compares a
netlist against either a Python reference function or another netlist,
exhaustively when the input space is small enough and with corner-loaded
random vectors otherwise, and reports the first counterexample on
mismatch.  The test suite's per-design equivalence checks are built on
the same procedure.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from .netlist import CONST0, CONST1, Gate, Netlist
from .cells import cell
from .sim import bus_to_int, int_to_bus, simulate

__all__ = ["to_json", "from_json", "check_equivalence", "EquivalenceResult"]

_FORMAT_VERSION = 1


def to_json(netlist: Netlist) -> str:
    """Serialize a netlist to a JSON string."""
    document = {
        "format": _FORMAT_VERSION,
        "name": netlist.name,
        "inputs": netlist.inputs,
        "outputs": netlist.outputs,
        "net_names": {str(k): v for k, v in netlist.net_names.items()},
        "gates": [
            {"cell": gate.cell.name, "inputs": list(gate.inputs), "output": gate.output}
            for gate in netlist.gates
        ],
    }
    return json.dumps(document)


def from_json(text: str) -> Netlist:
    """Rebuild a netlist from :func:`to_json` output.

    The reconstruction bypasses the builder's folding/sharing (the stored
    gates already reflect them) but re-validates topological order and
    cell arity, so a hand-edited document cannot produce an unsimulatable
    netlist.
    """
    document = json.loads(text)
    if document.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported netlist format {document.get('format')!r}"
        )
    netlist = Netlist(document["name"])
    driven = {CONST0, CONST1, *document["inputs"]}
    netlist.inputs = list(document["inputs"])
    netlist.net_names = {int(k): v for k, v in document["net_names"].items()}
    highest = max(netlist.net_names, default=1)
    for entry in document["gates"]:
        c = cell(entry["cell"])
        inputs = tuple(entry["inputs"])
        if len(inputs) != c.inputs:
            raise ValueError(
                f"gate {entry['cell']} arity mismatch in serialized netlist"
            )
        for net in inputs:
            if net not in driven:
                raise ValueError(f"serialized netlist uses undriven net {net}")
        netlist.gates.append(Gate(c, inputs, entry["output"]))
        driven.add(entry["output"])
        highest = max(highest, entry["output"])
    for net in document["outputs"]:
        if net not in driven:
            raise ValueError(f"serialized output {net} is undriven")
    netlist.outputs = list(document["outputs"])
    netlist._driven = driven
    netlist._next_net = highest + 1
    return netlist


@dataclasses.dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    vectors_checked: int
    counterexample: tuple[int, ...] | None = None
    got: int | None = None
    expected: int | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _evaluate(netlist: Netlist, buses: list[list[int]], values) -> np.ndarray:
    stimulus = {}
    for bus, vals in zip(buses, values):
        bits = int_to_bus(np.asarray(vals), len(bus))
        for position, net in enumerate(bus):
            stimulus[net] = bits[:, position]
    waves = simulate(netlist, stimulus)
    shape = np.asarray(values[0]).shape
    columns = []
    for net in netlist.outputs:
        if net == CONST0:
            columns.append(np.zeros(shape, dtype=bool))
        elif net == CONST1:
            columns.append(np.ones(shape, dtype=bool))
        else:
            columns.append(waves[net])
    return bus_to_int(np.stack(columns, axis=1))


def check_equivalence(
    netlist: Netlist,
    reference,
    input_buses: list[list[int]],
    exhaustive_limit: int = 1 << 16,
    random_vectors: int = 4096,
    seed: int = 0xE9,
) -> EquivalenceResult:
    """Compare a netlist against a reference on its input space.

    ``reference`` is either another :class:`Netlist` (with inputs laid out
    as the same consecutive bus widths) or a callable taking one integer
    array per bus and returning the expected output integers.  Input
    spaces up to ``exhaustive_limit`` total combinations are enumerated
    exhaustively; larger spaces get corner values (0, 1, all-ones, MSB)
    crossed with random vectors.
    """
    widths = [len(bus) for bus in input_buses]
    total_bits = sum(widths)

    if 1 << total_bits <= exhaustive_limit:
        flat = np.arange(1 << total_bits)
        values = []
        shift = 0
        for width in widths:
            values.append((flat >> shift) & ((1 << width) - 1))
            shift += width
    else:
        rng = np.random.default_rng(seed)
        values = []
        corner_sets = []
        for width in widths:
            corner_sets.append(
                np.array([0, 1, (1 << width) - 1, 1 << (width - 1)], dtype=np.int64)
            )
        grid = np.meshgrid(*corner_sets, indexing="ij")
        for axis, width in enumerate(widths):
            corner = grid[axis].ravel()
            random_part = rng.integers(0, 1 << width, random_vectors)
            values.append(np.concatenate([corner, random_part]))

    got = _evaluate(netlist, input_buses, values)
    if isinstance(reference, Netlist):
        if len(reference.inputs) != total_bits:
            raise ValueError(
                f"reference netlist has {len(reference.inputs)} input bits, "
                f"expected {total_bits}"
            )
        reference_buses = []
        position = 0
        for width in widths:
            reference_buses.append(reference.inputs[position : position + width])
            position += width
        expected = _evaluate(reference, reference_buses, values)
    else:
        expected = np.asarray(reference(*values), dtype=np.int64)

    mismatches = np.nonzero(got != expected)[0]
    if mismatches.size == 0:
        return EquivalenceResult(True, len(values[0]))
    first = int(mismatches[0])
    return EquivalenceResult(
        False,
        len(values[0]),
        counterexample=tuple(int(v[first]) for v in values),
        got=int(got[first]),
        expected=int(expected[first]),
    )
