"""Vectorized gate-level simulation.

Evaluates a :class:`~repro.logic.netlist.Netlist` on many stimulus vectors
at once: every net's waveform is a boolean NumPy array over the stimulus
axis, and gates are evaluated once each, in construction (= topological)
order.  This is both the functional cross-check against the NumPy
multiplier models and the waveform source for the simulation-based power
estimation (:mod:`repro.logic.activity`).
"""

from __future__ import annotations

import numpy as np

from .netlist import CONST0, CONST1, Netlist

__all__ = ["MAX_BUS_WIDTH", "simulate", "evaluate_words", "bus_to_int", "int_to_bus"]


#: widest bus the int64 word conversions can represent exactly: bit 63
#: is the sign bit, so position 62 is the highest usable weight.  This is
#: the true limiting invariant of the whole int64 substrate: an ``N``-bit
#: multiplier model needs up to ``2N + 1`` product bits (REALM's overflow
#: case), so :class:`repro.multipliers.base.Multiplier` caps ``N`` at 31
#: — exactly the widest operand whose product bus (62 bits) and overflow
#: bit (63rd) still fit these word conversions.  Keep the two limits in
#: sync: ``2 * 31 + 1 == MAX_BUS_WIDTH`` (pinned by
#: ``tests/test_logic.py::TestWidthInvariants``).
MAX_BUS_WIDTH = 63


def _check_width(width: int) -> None:
    if width > MAX_BUS_WIDTH:
        raise ValueError(
            f"bus width {width} exceeds {MAX_BUS_WIDTH}; int64 word "
            "conversion would silently overflow — simulate wider buses "
            "bit-wise (simulate()) instead of through int_to_bus/bus_to_int"
        )


def _check_values(values: np.ndarray, width: int) -> None:
    """Reject bus values outside ``[0, 2**width)`` (shared with the
    compiled engine in :mod:`repro.kernels.netlist`)."""
    if values.size:
        low = int(values.min())
        high = int(values.max())
        limit = 1 << width
        if low < 0 or high >= limit:
            offender = low if low < 0 else high
            raise ValueError(
                f"bus value {offender} outside [0, 2**{width}) for a "
                f"{width}-bit bus; high bits would be dropped silently"
            )


def int_to_bus(values: np.ndarray, width: int) -> np.ndarray:
    """Integers -> bit matrix of shape ``(len(values), width)``, LSB first.

    ``width`` must be <= :data:`MAX_BUS_WIDTH` (63): beyond that the
    int64 arithmetic cannot represent every bus value and would wrap
    silently, so a :class:`ValueError` is raised instead.  Values are
    validated the same way: every value must lie in ``[0, 2**width)`` —
    out-of-range operands used to truncate their high bits silently and
    negative operands wrapped to two's-complement bit patterns, both of
    which turned caller bugs into wrong-but-plausible waveforms.
    """
    _check_width(width)
    values = np.asarray(values, dtype=np.int64)
    _check_values(values, width)
    bits = (values[:, None] >> np.arange(width)) & 1
    return bits.astype(bool)


def bus_to_int(bits: np.ndarray) -> np.ndarray:
    """Bit matrix (LSB first) -> int64 values.

    The bus must be at most :data:`MAX_BUS_WIDTH` (63) bits wide —
    weight ``2**63`` does not fit an int64, and the old behaviour was a
    silent wrap into negative values.
    """
    bits = np.asarray(bits, dtype=np.int64)
    _check_width(bits.shape[1])
    return (bits << np.arange(bits.shape[1], dtype=np.int64)).sum(axis=1)


def simulate(netlist: Netlist, stimulus: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
    """Evaluate the netlist; returns the waveform of every net.

    ``stimulus`` maps each primary-input net handle to a boolean array;
    all arrays must share one shape.  The result maps every net handle
    (inputs, internal, constants) to its waveform.
    """
    missing = [net for net in netlist.inputs if net not in stimulus]
    if missing:
        names = ", ".join(netlist.net_names[n] for n in missing)
        raise ValueError(f"stimulus missing for inputs: {names}")
    shapes = {np.asarray(v).shape for v in stimulus.values()}
    if len(shapes) > 1:
        raise ValueError(f"stimulus arrays disagree on shape: {shapes}")
    shape = shapes.pop() if shapes else (1,)

    values: dict[int, np.ndarray] = {
        CONST0: np.zeros(shape, dtype=bool),
        CONST1: np.ones(shape, dtype=bool),
    }
    for net in netlist.inputs:
        values[net] = np.asarray(stimulus[net], dtype=bool)
    for gate in netlist.gates:
        values[gate.output] = gate.cell.evaluate(*(values[i] for i in gate.inputs))
    return values


def evaluate_words(
    netlist: Netlist, operand_buses: list[list[int]], operand_values: list[np.ndarray]
) -> np.ndarray:
    """Drive integer operands on input buses and read the output bus back.

    Convenience wrapper for equivalence checks: ``operand_buses`` are the
    netlist's input buses (LSB first), ``operand_values`` the integer
    vectors to apply.  Returns the output bus as integers.
    """
    if len(operand_buses) != len(operand_values):
        raise ValueError("one value vector per operand bus required")
    stimulus: dict[int, np.ndarray] = {}
    for bus, values in zip(operand_buses, operand_values):
        bits = int_to_bus(np.asarray(values), len(bus))
        for position, net in enumerate(bus):
            stimulus[net] = bits[:, position]
    waves = simulate(netlist, stimulus)
    out_bits = np.stack([waves[net] for net in netlist.outputs], axis=1)
    return bus_to_int(out_bits)
