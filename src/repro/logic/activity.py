"""Simulation-based switching-activity and power estimation.

The paper annotates the synthesized multipliers with a 25% input toggle
rate and 50% signal probability and reports the resulting combinational
power at 1 GHz.  This module reproduces that methodology: a Markov input
stream with exactly those statistics is simulated through the netlist
(:mod:`repro.logic.sim`), per-gate output toggle rates are counted, and
dynamic power is the activity-weighted sum of cell switching energies
(plus a small leakage term).  Simulation-based estimation keeps signal
correlations that probabilistic propagation loses — important for the
barrel-shifter-heavy log multipliers, where net activities are strongly
correlated through the shift controls.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .netlist import Netlist
from .sim import simulate

__all__ = ["ActivityReport", "markov_stream", "estimate_power"]

#: the paper's power-analysis conditions
TOGGLE_RATE = 0.25
SIGNAL_PROBABILITY = 0.5
CLOCK_HZ = 1e9


def markov_stream(
    length: int,
    toggle_rate: float = TOGGLE_RATE,
    probability: float = SIGNAL_PROBABILITY,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Random bit stream with given stationary probability and toggle rate.

    A two-state Markov chain with transition probabilities chosen so that
    ``P(bit=1) = probability`` and ``P(bit_t != bit_t-1) = toggle_rate``
    in steady state: ``P(0->1) = r/(2(1-p))`` and ``P(1->0) = r/(2p)``
    for toggle rate ``r``.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0,1), got {probability}")
    if not 0.0 <= toggle_rate <= 2 * min(probability, 1 - probability):
        raise ValueError(f"toggle rate {toggle_rate} unreachable at p={probability}")
    rng = rng or np.random.default_rng()
    p01 = toggle_rate / (2.0 * (1.0 - probability))
    p10 = toggle_rate / (2.0 * probability)
    uniform = rng.random(length)
    bits = np.empty(length, dtype=bool)
    state = rng.random() < probability
    for t in range(length):
        if state:
            state = uniform[t] >= p10
        else:
            state = uniform[t] < p01
        bits[t] = state
    return bits


@dataclasses.dataclass(frozen=True)
class ActivityReport:
    """Power breakdown of one netlist (uncalibrated units)."""

    dynamic_uw: float
    leakage_uw: float
    mean_toggle_rate: float
    vectors: int

    @property
    def total_uw(self) -> float:
        return self.dynamic_uw + self.leakage_uw


def estimate_power(
    netlist: Netlist,
    vectors: int = 4096,
    seed: int = 45,
    toggle_rate: float = TOGGLE_RATE,
    probability: float = SIGNAL_PROBABILITY,
    clock_hz: float = CLOCK_HZ,
) -> ActivityReport:
    """Activity-based power of a combinational netlist.

    Each primary input gets an independent Markov stream with the paper's
    statistics; every gate output's toggle count over the stream gives its
    activity; dynamic power is ``sum(energy_fj * toggles) / T * f_clk``.
    Zero-delay semantics (no glitch power) — a consistent convention
    across all designs, so the *relative* numbers Table I needs survive.
    """
    if vectors < 2:
        raise ValueError(f"need at least 2 vectors, got {vectors}")
    rng = np.random.default_rng(seed)
    stimulus = {
        net: markov_stream(vectors, toggle_rate, probability, rng)
        for net in netlist.inputs
    }
    waves = simulate(netlist, stimulus)

    dynamic_fj_per_cycle = 0.0
    leakage_nw = 0.0
    toggle_sum = 0.0
    for gate in netlist.gates:
        wave = waves[gate.output]
        toggles = int(np.count_nonzero(wave[1:] != wave[:-1]))
        rate = toggles / (vectors - 1)
        dynamic_fj_per_cycle += gate.cell.energy * rate
        leakage_nw += gate.cell.leakage
        toggle_sum += rate
    gate_count = max(netlist.gate_count, 1)
    # fJ/cycle * cycles/s = fW -> uW needs 1e-9
    dynamic_uw = dynamic_fj_per_cycle * clock_hz * 1e-9
    return ActivityReport(
        dynamic_uw=dynamic_uw,
        leakage_uw=leakage_nw * 1e-3,
        mean_toggle_rate=toggle_sum / gate_count,
        vectors=vectors,
    )
