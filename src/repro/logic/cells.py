"""Standard-cell library for the synthesis cost model.

The paper synthesizes every multiplier with Cadence RTL Compiler against
the TSMC 45 nm standard-cell library.  That flow is proprietary; this
module provides a 45 nm-class cell set whose areas follow the public
FreePDK45/Nangate open cell library and whose switching energies scale
with area (a standard first-order model: both track transistor count and
capacitance).  Absolute accuracy is not required — Table I reports area
and power *relative* to the accurate multiplier built from the same cells,
and :mod:`repro.synth.calibration` pins the absolute anchor to the paper's
reference point.

Every cell is a single-output boolean function evaluated bitwise on NumPy
arrays, so one simulator pass evaluates thousands of stimulus vectors at
once.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

__all__ = ["Cell", "CELLS", "cell"]

# boolean-function signature: tuple of input arrays -> output array
CellFn = Callable[..., np.ndarray]


@dataclasses.dataclass(frozen=True)
class Cell:
    """One library cell.

    ``area`` is in um^2 (FreePDK45-class X1 drive values); ``energy`` is
    the switching energy per output transition in fJ, modeled as
    proportional to area; ``leakage`` in nW, likewise.
    """

    name: str
    inputs: int
    function: CellFn
    area: float

    @property
    def energy(self) -> float:
        # ~1.9 fJ/um^2 switching-energy density for a 45nm-class node
        return 1.9 * self.area

    @property
    def leakage(self) -> float:
        # ~18 nW/um^2 X1 leakage density
        return 18.0 * self.area

    def evaluate(self, *operands: np.ndarray) -> np.ndarray:
        if len(operands) != self.inputs:
            raise ValueError(
                f"cell {self.name} takes {self.inputs} inputs, got {len(operands)}"
            )
        return self.function(*operands)


def _mux2(d0: np.ndarray, d1: np.ndarray, sel: np.ndarray) -> np.ndarray:
    return (d0 & ~sel) | (d1 & sel)


CELLS: dict[str, Cell] = {
    c.name: c
    for c in (
        Cell("INV", 1, lambda a: ~a, 0.532),
        Cell("BUF", 1, lambda a: a, 0.798),
        Cell("AND2", 2, lambda a, b: a & b, 1.064),
        Cell("OR2", 2, lambda a, b: a | b, 1.064),
        Cell("NAND2", 2, lambda a, b: ~(a & b), 0.798),
        Cell("NOR2", 2, lambda a, b: ~(a | b), 0.798),
        Cell("XOR2", 2, lambda a, b: a ^ b, 1.596),
        Cell("XNOR2", 2, lambda a, b: ~(a ^ b), 1.596),
        Cell("ANDN2", 2, lambda a, b: a & ~b, 1.064),  # a AND NOT b
        Cell("ORN2", 2, lambda a, b: a | ~b, 1.064),  # a OR NOT b
        Cell("MUX2", 3, _mux2, 1.862),  # out = sel ? d1 : d0
        Cell("MAJ3", 3, lambda a, b, c: (a & b) | (a & c) | (b & c), 2.128),
        Cell("XOR3", 3, lambda a, b, c: a ^ b ^ c, 2.926),
    )
}


def cell(name: str) -> Cell:
    """Look up a library cell by name."""
    try:
        return CELLS[name]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; known: {', '.join(CELLS)}"
        ) from None
