"""Stuck-at fault injection, impact analysis, and test coverage.

Two reasons this lives in an approximate-arithmetic library:

* **test coverage** — the classic single-stuck-at metric: what fraction
  of faults does a vector set detect?  Used to sanity-check that the
  equivalence-test vectors actually exercise the datapaths.
* **graceful degradation** — approximate-computing folklore says that
  error-tolerant datapaths also tolerate hardware faults better than
  exact ones; the fault-impact histogram (how much does a random stuck-at
  move the output?) makes that measurable per design
  (``bench_ablation_faults``).

Faults are expressed as ``(net, stuck_value)`` pairs and injected at
simulation time — the netlist itself is never modified.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .netlist import CONST0, CONST1, Netlist
from .sim import bus_to_int, int_to_bus

__all__ = [
    "Fault",
    "fault_sites",
    "simulate_with_faults",
    "fault_impact",
    "fault_coverage",
]


@dataclasses.dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a net."""

    net: int
    stuck_value: bool

    def __str__(self) -> str:
        return f"net{self.net}/SA{int(self.stuck_value)}"


def fault_sites(netlist: Netlist) -> list[Fault]:
    """Both polarities on every signal net (inputs + gate outputs)."""
    nets = list(netlist.inputs) + [gate.output for gate in netlist.gates]
    return [Fault(net, value) for net in nets for value in (False, True)]


def simulate_with_faults(
    netlist: Netlist,
    stimulus: dict[int, np.ndarray],
    faults: tuple[Fault, ...] | list[Fault] = (),
) -> dict[int, np.ndarray]:
    """Like :func:`repro.logic.sim.simulate` with nets forced."""
    forced = {fault.net: fault.stuck_value for fault in faults}
    shapes = {np.asarray(v).shape for v in stimulus.values()}
    shape = shapes.pop() if shapes else (1,)
    values: dict[int, np.ndarray] = {
        CONST0: np.zeros(shape, dtype=bool),
        CONST1: np.ones(shape, dtype=bool),
    }
    for net in netlist.inputs:
        wave = np.asarray(stimulus[net], dtype=bool)
        if net in forced:
            wave = np.full(shape, forced[net], dtype=bool)
        values[net] = wave
    for gate in netlist.gates:
        if gate.output in forced:
            values[gate.output] = np.full(shape, forced[gate.output], dtype=bool)
            continue
        values[gate.output] = gate.cell.evaluate(
            *(values[i] for i in gate.inputs)
        )
    return values


def _outputs_as_ints(netlist: Netlist, values) -> np.ndarray:
    shape = next(iter(values.values())).shape
    columns = []
    for net in netlist.outputs:
        if net == CONST0:
            columns.append(np.zeros(shape, dtype=bool))
        elif net == CONST1:
            columns.append(np.ones(shape, dtype=bool))
        else:
            columns.append(values[net])
    return bus_to_int(np.stack(columns, axis=1))


def _stimulus_for(netlist: Netlist, operand_buses, operand_values):
    stimulus = {}
    for bus, vals in zip(operand_buses, operand_values):
        bits = int_to_bus(np.asarray(vals), len(bus))
        for position, net in enumerate(bus):
            stimulus[net] = bits[:, position]
    return stimulus


@dataclasses.dataclass(frozen=True)
class FaultImpact:
    """Output damage of one fault over a vector set."""

    fault: Fault
    detection_rate: float  # fraction of vectors with any output change
    mean_relative_error: float  # vs golden outputs, zero-golden skipped


def fault_impact(
    netlist: Netlist,
    operand_buses,
    operand_values,
    fault: Fault,
) -> FaultImpact:
    """How one stuck-at fault moves the outputs over a vector set."""
    stimulus = _stimulus_for(netlist, operand_buses, operand_values)
    golden = _outputs_as_ints(netlist, simulate_with_faults(netlist, stimulus))
    faulty = _outputs_as_ints(
        netlist, simulate_with_faults(netlist, stimulus, (fault,))
    )
    changed = faulty != golden
    nonzero = golden != 0
    if np.any(nonzero):
        relative = np.abs(faulty[nonzero] - golden[nonzero]) / golden[nonzero]
        mean_relative = float(relative.mean())
    else:
        mean_relative = 0.0
    return FaultImpact(
        fault=fault,
        detection_rate=float(changed.mean()),
        mean_relative_error=mean_relative,
    )


def fault_coverage(
    netlist: Netlist,
    operand_buses,
    operand_values,
    faults: list[Fault] | None = None,
) -> float:
    """Single-stuck-at coverage of a vector set (detected / total).

    A fault is detected when at least one vector makes any output differ
    from the golden response — the standard ATPG metric.
    """
    faults = faults if faults is not None else fault_sites(netlist)
    if not faults:
        return 1.0
    stimulus = _stimulus_for(netlist, operand_buses, operand_values)
    golden = _outputs_as_ints(netlist, simulate_with_faults(netlist, stimulus))
    detected = 0
    for fault in faults:
        faulty = _outputs_as_ints(
            netlist, simulate_with_faults(netlist, stimulus, (fault,))
        )
        if np.any(faulty != golden):
            detected += 1
    return detected / len(faults)
