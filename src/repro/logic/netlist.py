"""Gate-level netlist IR with a feed-forward builder API.

A :class:`Netlist` is a directed acyclic graph of library cells over
single-bit nets.  The builder enforces construction in topological order —
every gate's inputs must already be driven when the gate is added — so
simulation and activity propagation are a single linear pass, no event
queue needed (all circuits in this library are combinational, matching the
paper's single-cycle designs).

Nets are plain integer handles; buses are Python lists of handles with the
LSB at index 0, the convention every generator in :mod:`repro.circuits`
follows.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from .cells import Cell, cell

__all__ = ["Gate", "Netlist"]

Net = int

#: reserved net handles for constant 0 / constant 1
CONST0: Net = 0
CONST1: Net = 1


@dataclasses.dataclass(frozen=True)
class Gate:
    """One cell instance: ``output = cell(*inputs)``."""

    cell: Cell
    inputs: tuple[Net, ...]
    output: Net


class Netlist:
    """A combinational netlist under construction or analysis."""

    def __init__(self, name: str):
        self.name = name
        self.gates: list[Gate] = []
        self.inputs: list[Net] = []
        self.outputs: list[Net] = []
        self.net_names: dict[Net, str] = {CONST0: "const0", CONST1: "const1"}
        self._driven: set[Net] = {CONST0, CONST1}
        self._next_net: Net = 2
        # structural cache: (cell name, inputs) -> existing output net.
        # Gives automatic common-subexpression sharing, like a synthesis
        # tool's structural hashing.
        self._cse: dict[tuple[str, tuple[Net, ...]], Net] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_input(self, name: str) -> Net:
        """Declare a primary input bit."""
        net = self._alloc(name)
        self.inputs.append(net)
        self._driven.add(net)
        return net

    def input_bus(self, name: str, width: int) -> list[Net]:
        """Declare a primary input bus (LSB first)."""
        return [self.new_input(f"{name}[{i}]") for i in range(width)]

    def add(self, cell_name: str, *inputs: Net, name: str | None = None) -> Net:
        """Instantiate a cell; returns its output net.

        Structurally identical instances are shared (returning the
        existing output), and a few constant-input cases are folded — the
        cheap subset of what a synthesis tool's optimizer does, enough to
        make hardwired-constant LUTs cost what the paper says they cost.
        """
        c = cell(cell_name)
        if len(inputs) != c.inputs:
            raise ValueError(
                f"cell {cell_name} takes {c.inputs} inputs, got {len(inputs)}"
            )
        for net in inputs:
            if net not in self._driven:
                raise ValueError(
                    f"net {net} used before being driven (gate {cell_name})"
                )
        folded = _fold_constants(cell_name, inputs)
        if folded is not None:
            kind, value = folded
            if kind == "const":
                return CONST1 if value else CONST0
            if kind == "net":
                return value
            cell_name, inputs = value  # rewritten gate
            c = cell(cell_name)

        key = (cell_name, tuple(inputs))
        cached = self._cse.get(key)
        if cached is not None:
            return cached

        out = self._alloc(name or f"n{self._next_net}")
        self.gates.append(Gate(c, tuple(inputs), out))
        self._driven.add(out)
        self._cse[key] = out
        return out

    def set_outputs(self, nets: list[Net]) -> None:
        """Declare the primary output bus (LSB first)."""
        for net in nets:
            if net not in self._driven:
                raise ValueError(f"undriven output net {net}")
        self.outputs = list(nets)

    def _alloc(self, name: str) -> Net:
        net = self._next_net
        self._next_net += 1
        self.net_names[net] = name
        return net

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    @property
    def net_count(self) -> int:
        return self._next_net

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def area(self) -> float:
        """Total cell area in um^2 (uncalibrated)."""
        return sum(gate.cell.area for gate in self.gates)

    def cell_histogram(self) -> Counter:
        """Cell-name usage counts, for reports and regression tests."""
        return Counter(gate.cell.name for gate in self.gates)

    def prune(self) -> int:
        """Remove gates outside the output cone (dead-code elimination).

        Mirrors what any synthesis tool does; generators may build signals
        (e.g. an LOD's one-hot bus) that a particular datapath never uses.
        Returns the number of gates removed.  Requires outputs to be set.
        """
        if not self.outputs:
            raise ValueError("set_outputs must be called before prune")
        live: set[Net] = set(self.outputs)
        kept: list[Gate] = []
        for gate in reversed(self.gates):
            if gate.output in live:
                kept.append(gate)
                live.update(gate.inputs)
        removed = len(self.gates) - len(kept)
        self.gates = kept[::-1]
        # forget removed nets entirely so later construction cannot
        # reference them and the cache cannot resurrect them
        surviving = {gate.output for gate in self.gates}
        self._cse = {
            key: out for key, out in self._cse.items() if out in surviving
        }
        self._driven = {CONST0, CONST1, *self.inputs, *surviving}
        return removed

    def depth(self) -> int:
        """Longest cell path from any input to any output (logic depth)."""
        level = {net: 0 for net in self._driven if net < 2}
        for net in self.inputs:
            level[net] = 0
        for gate in self.gates:
            level[gate.output] = 1 + max(level[i] for i in gate.inputs)
        if not self.outputs:
            return max(level.values(), default=0)
        return max(level[net] for net in self.outputs)

    def __repr__(self) -> str:
        return (
            f"<Netlist {self.name!r}: {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {self.gate_count} gates>"
        )


def _fold_constants(cell_name: str, inputs: tuple[Net, ...]):
    """Constant folding for the cases constant-LUT muxes generate.

    Returns ``None`` (no folding), ``("const", 0/1)``, ``("net", net)`` or
    ``("rewrite", (cell, inputs))``.
    """
    c0, c1 = CONST0, CONST1
    consts = {c0: 0, c1: 1}
    if cell_name == "INV" and inputs[0] in consts:
        return ("const", 1 - consts[inputs[0]])
    if cell_name == "BUF":
        return ("net", inputs[0])
    if cell_name in ("AND2", "NAND2", "OR2", "NOR2", "XOR2", "XNOR2"):
        a, b = inputs
        known = [consts.get(a), consts.get(b)]
        if known[0] is None and known[1] is None:
            if a == b:
                same = {
                    "AND2": ("net", a),
                    "OR2": ("net", a),
                    "XOR2": ("const", 0),
                    "XNOR2": ("const", 1),
                }
                if cell_name in same:
                    return same[cell_name]
            return None
        # normalize the constant into position b
        if known[0] is not None:
            a, b = b, a
            known = [known[1], known[0]]
        kb = known[1]
        if cell_name == "AND2":
            return ("net", a) if kb == 1 else ("const", 0)
        if cell_name == "NAND2":
            return ("rewrite", ("INV", (a,))) if kb == 1 else ("const", 1)
        if cell_name == "OR2":
            return ("const", 1) if kb == 1 else ("net", a)
        if cell_name == "NOR2":
            return ("const", 0) if kb == 1 else ("rewrite", ("INV", (a,)))
        if cell_name == "XOR2":
            return ("rewrite", ("INV", (a,))) if kb == 1 else ("net", a)
        if cell_name == "XNOR2":
            return ("net", a) if kb == 1 else ("rewrite", ("INV", (a,)))
    if cell_name == "ANDN2":  # a AND NOT b
        a, b = inputs
        if a == b:
            return ("const", 0)
        if b in consts:
            return ("const", 0) if consts[b] else ("net", a)
        if a in consts:
            return ("rewrite", ("INV", (b,))) if consts[a] else ("const", 0)
    if cell_name == "ORN2":  # a OR NOT b
        a, b = inputs
        if a == b:
            return ("const", 1)
        if b in consts:
            return ("net", a) if consts[b] else ("const", 1)
        if a in consts:
            return ("const", 1) if consts[a] else ("rewrite", ("INV", (b,)))
    if cell_name == "XOR3":
        known = [consts.get(i) for i in inputs]
        live = [i for i, k in zip(inputs, known) if k is None]
        ones = sum(k for k in known if k is not None)
        if len(live) == 3:
            return None
        if len(live) == 2:
            return ("rewrite", (("XNOR2" if ones % 2 else "XOR2"), tuple(live)))
        if len(live) == 1:
            return ("rewrite", ("INV", tuple(live))) if ones % 2 else ("net", live[0])
        return ("const", ones % 2)
    if cell_name == "MAJ3":
        known = [consts.get(i) for i in inputs]
        live = [i for i, k in zip(inputs, known) if k is None]
        ones = sum(k for k in known if k is not None)
        if len(live) == 3:
            return None
        if len(live) == 2:
            # majority(a, b, 1) = OR; majority(a, b, 0) = AND
            return ("rewrite", (("OR2" if ones else "AND2"), tuple(live)))
        if len(live) == 1:
            if ones == 2:
                return ("const", 1)
            if ones == 0:
                return ("const", 0)
            return ("net", live[0])
        return ("const", 1 if ones >= 2 else 0)
    if cell_name == "MUX2":
        d0, d1, sel = inputs
        if sel in consts:
            return ("net", d1 if consts[sel] else d0)
        if d0 == d1:
            return ("net", d0)
        if d0 in consts and d1 in consts:
            if consts[d0] == 0 and consts[d1] == 1:
                return ("net", sel)
            if consts[d0] == 1 and consts[d1] == 0:
                return ("rewrite", ("INV", (sel,)))
        if d0 in consts:
            # sel ? d1 : 0  ->  AND ; sel ? d1 : 1 -> OR with inverted sel
            if consts[d0] == 0:
                return ("rewrite", ("AND2", (d1, sel)))
            return ("rewrite", ("ORN2", (d1, sel)))
        if d1 in consts:
            if consts[d1] == 1:
                return ("rewrite", ("OR2", (d0, sel)))
            return ("rewrite", ("ANDN2", (d0, sel)))
    return None
