"""Gate-level substrate: cells, netlists, simulation, activity/power."""

from .activity import ActivityReport, estimate_power, markov_stream
from .cells import CELLS, Cell, cell
from .netlist import CONST0, CONST1, Gate, Netlist
from .sim import bus_to_int, evaluate_words, int_to_bus, simulate
from .faults import (
    Fault,
    fault_coverage,
    fault_impact,
    fault_sites,
    simulate_with_faults,
)
from .pipeline import (
    PipelinedNetlist,
    pipeline_cuts,
    pipeline_netlist,
    simulate_pipeline,
)
from .serialize import check_equivalence, from_json, to_json
from .verilog import testbench, to_verilog

__all__ = [
    "ActivityReport",
    "CELLS",
    "CONST0",
    "CONST1",
    "Fault",
    "Cell",
    "Gate",
    "Netlist",
    "PipelinedNetlist",
    "bus_to_int",
    "cell",
    "estimate_power",
    "evaluate_words",
    "fault_coverage",
    "fault_impact",
    "fault_sites",
    "int_to_bus",
    "markov_stream",
    "check_equivalence",
    "from_json",
    "pipeline_cuts",
    "pipeline_netlist",
    "simulate",
    "simulate_pipeline",
    "simulate_with_faults",
    "testbench",
    "to_json",
    "to_verilog",
]
