"""Pipelining: register insertion, cycle-accurate simulation, throughput.

The paper's multipliers are single-cycle combinational blocks behind I/O
registers; at 1 GHz the deep ones only close timing after heavy sizing.
The other classical answer is pipelining, and this module provides it:

* :func:`pipeline_cuts` slices a combinational netlist into ``stages``
  delay-balanced stages (cuts chosen on the static-timing arrival times);
* :class:`PipelinedNetlist` holds the stage structure plus the pipeline
  registers on every cut net, knows its own cost (register area/power
  overhead) and timing (clock = slowest stage + register overhead);
* :func:`simulate_pipeline` runs it cycle-accurately: results appear
  ``stages - 1`` cycles after their operands, one result per cycle —
  verified bit-exact against the combinational netlist by the tests.

Register cost uses a 45 nm-class DFF (area/energy in
:data:`REGISTER_AREA`/``REGISTER_ENERGY``); timing adds the usual
clk-to-q + setup margin per stage.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .netlist import CONST0, CONST1, Netlist
from .sim import bus_to_int, int_to_bus
from ..synth.timing import CELL_DELAY_PS

__all__ = [
    "PipelinedNetlist",
    "pipeline_cuts",
    "pipeline_netlist",
    "simulate_pipeline",
    "REGISTER_AREA",
    "REGISTER_ENERGY",
    "REGISTER_OVERHEAD_PS",
]

#: 45 nm-class DFF cell: area in um^2, switching energy in fJ
REGISTER_AREA = 4.522
REGISTER_ENERGY = 8.6
#: clk-to-q plus setup margin charged per pipeline stage, in ps
REGISTER_OVERHEAD_PS = 95.0


def _arrival_times(netlist: Netlist) -> dict[int, float]:
    arrival: dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
    for net in netlist.inputs:
        arrival[net] = 0.0
    for gate in netlist.gates:
        delay = CELL_DELAY_PS[gate.cell.name]
        arrival[gate.output] = delay + max(arrival[i] for i in gate.inputs)
    return arrival


def pipeline_cuts(netlist: Netlist, stages: int) -> list[int]:
    """Assign every gate to a stage (0-based), balancing stage delay.

    Gates are placed by their arrival time into equal slices of the
    critical path; a gate never lands in an earlier stage than any of its
    fan-in gates, so every cut is a legal retiming boundary.
    """
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    arrival = _arrival_times(netlist)
    critical = max(
        (arrival[gate.output] for gate in netlist.gates), default=0.0
    )
    if critical == 0.0:
        return [0] * netlist.gate_count
    slice_width = critical / stages
    assignment: list[int] = []
    stage_of_net: dict[int, int] = {}
    for gate in netlist.gates:
        by_time = min(int((arrival[gate.output] - 1e-9) / slice_width), stages - 1)
        by_deps = max(
            (stage_of_net.get(i, 0) for i in gate.inputs), default=0
        )
        stage = max(by_time, by_deps)
        assignment.append(stage)
        stage_of_net[gate.output] = stage
    return assignment


@dataclasses.dataclass
class PipelinedNetlist:
    """A combinational netlist cut into register-separated stages."""

    netlist: Netlist
    stages: int
    assignment: list[int]  # gate index -> stage
    registered_nets: list[set[int]]  # per cut: nets registered at that cut

    @property
    def register_count(self) -> int:
        return sum(len(nets) for nets in self.registered_nets)

    @property
    def register_area(self) -> float:
        return self.register_count * REGISTER_AREA

    def stage_delays(self) -> list[float]:
        """Pure combinational delay of each stage in ps."""
        starts: dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
        for net in self.netlist.inputs:
            starts[net] = 0.0
        delays = [0.0] * self.stages
        local: dict[int, float] = dict(starts)
        stage_of_net: dict[int, int] = {}
        for gate, stage in zip(self.netlist.gates, self.assignment):
            arrivals = []
            for i in gate.inputs:
                if stage_of_net.get(i, 0) < stage or i in starts:
                    arrivals.append(0.0)  # comes from a register or input
                else:
                    arrivals.append(local[i])
            t = CELL_DELAY_PS[gate.cell.name] + max(arrivals, default=0.0)
            local[gate.output] = t
            stage_of_net[gate.output] = stage
            delays[stage] = max(delays[stage], t)
        return delays

    @property
    def clock_ps(self) -> float:
        """Minimum clock period: slowest stage plus register overhead."""
        return max(self.stage_delays(), default=0.0) + REGISTER_OVERHEAD_PS

    @property
    def throughput_ghz(self) -> float:
        return 1000.0 / self.clock_ps

    @property
    def latency_cycles(self) -> int:
        return self.stages - 1

    def estimate_power(
        self, vectors: int = 4096, seed: int = 45, clock_hz: float = 1e9
    ):
        """Total power including the pipeline registers.

        Combinational power comes from the usual activity estimate of the
        underlying netlist; each register adds clock-pin switching every
        cycle plus data-dependent output switching at the registered
        net's own toggle rate.  Returns an
        :class:`~repro.logic.activity.ActivityReport`.
        """
        from .activity import ActivityReport, estimate_power, markov_stream

        base = estimate_power(
            self.netlist, vectors=vectors, seed=seed, clock_hz=clock_hz
        )
        if self.register_count == 0:
            return base
        # data toggle rates of the registered nets under the same stimulus
        from .sim import simulate

        rng = np.random.default_rng(seed)
        stimulus = {
            net: markov_stream(vectors, rng=rng) for net in self.netlist.inputs
        }
        waves = simulate(self.netlist, stimulus)
        register_fj = 0.0
        for nets in self.registered_nets:
            for net in nets:
                wave = waves.get(net)
                if wave is None:  # registered primary input
                    wave = stimulus[net]
                rate = float(np.count_nonzero(wave[1:] != wave[:-1])) / (
                    vectors - 1
                )
                # clock pin toggles every cycle (~40% of DFF energy) plus
                # data-dependent Q switching
                register_fj += REGISTER_ENERGY * (0.4 + 0.6 * rate)
        register_uw = register_fj * clock_hz * 1e-9
        return ActivityReport(
            dynamic_uw=base.dynamic_uw + register_uw,
            leakage_uw=base.leakage_uw + self.register_count * 0.08,
            mean_toggle_rate=base.mean_toggle_rate,
            vectors=vectors,
        )

    def __repr__(self) -> str:
        return (
            f"<PipelinedNetlist {self.netlist.name!r} x{self.stages} stages, "
            f"{self.register_count} regs, clock {self.clock_ps:.0f} ps>"
        )


def pipeline_netlist(netlist: Netlist, stages: int) -> PipelinedNetlist:
    """Cut a combinational netlist into a pipeline.

    A net is registered at cut ``k`` (between stage ``k`` and ``k+1``)
    when it is produced in a stage ``<= k`` (or is a primary input) and
    consumed in a stage ``> k`` — every crossing gets exactly one
    register per cut, matching how a retiming tool charges registers.
    """
    assignment = pipeline_cuts(netlist, stages)
    stage_of_net: dict[int, int] = {}
    for gate, stage in zip(netlist.gates, assignment):
        stage_of_net[gate.output] = stage

    consumers: dict[int, int] = {}
    for gate, stage in zip(netlist.gates, assignment):
        for i in gate.inputs:
            consumers[i] = max(consumers.get(i, 0), stage)
    for net in netlist.outputs:
        consumers[net] = stages - 1

    registered: list[set[int]] = [set() for _ in range(max(stages - 1, 0))]
    for net, last_use in consumers.items():
        if net in (CONST0, CONST1):
            continue
        born = stage_of_net.get(net, 0)  # inputs are born in stage 0
        for cut in range(born, last_use):
            registered[cut].add(net)
    return PipelinedNetlist(netlist, stages, assignment, registered)


def simulate_pipeline(
    pipe: PipelinedNetlist, operand_buses: list[list[int]], operand_values
) -> np.ndarray:
    """Cycle-accurate simulation of the pipelined design.

    ``operand_values`` are per-bus integer arrays of T cycles; the return
    value is the output bus per cycle, with the first
    ``latency_cycles`` entries produced from pipeline bubbles (zeros fed
    in before cycle 0).  The tests check that entry ``t + latency`` equals
    the combinational result of the cycle-``t`` operands.
    """
    netlist = pipe.netlist
    values = [np.asarray(v, dtype=np.int64) for v in operand_values]
    cycles = len(values[0])
    last = pipe.stages - 1

    stage_of_net: dict[int, int] = {}
    for gate, stage in zip(netlist.gates, pipe.assignment):
        stage_of_net[gate.output] = stage

    # pipeline registers: one boolean vector per cut, batch dimension = 1
    register_state: list[dict[int, bool]] = [
        {net: False for net in nets} for nets in pipe.registered_nets
    ]
    outputs = np.zeros(cycles, dtype=np.int64)

    for cycle in range(cycles):
        stimulus: dict[int, bool] = {}
        for bus, vals in zip(operand_buses, values):
            bits = int_to_bus(np.array([vals[cycle]]), len(bus))[0]
            for position, net in enumerate(bus):
                stimulus[net] = bool(bits[position])

        wire: dict[int, bool] = dict(stimulus)

        def read(net: int, consumer_stage: int) -> bool:
            """Value of ``net`` as seen by logic in ``consumer_stage``."""
            if net == CONST0:
                return False
            if net == CONST1:
                return True
            born = stage_of_net.get(net, 0)  # primary inputs are born at 0
            if consumer_stage == 0 or (
                born == consumer_stage and net in stage_of_net
            ):
                return wire[net]  # same-stage wire (or stage-0 stimulus)
            # crossing nets are registered at every cut they span; the
            # consumer reads the register immediately before its stage
            return register_state[consumer_stage - 1][net]

        for gate, stage in zip(netlist.gates, pipe.assignment):
            operands = tuple(
                np.array([read(i, stage)]) for i in gate.inputs
            )
            wire[gate.output] = bool(gate.cell.evaluate(*operands)[0])

        # outputs are sampled before the clock edge, i.e. from the last
        # stage's combinational logic fed by the pre-edge registers
        bits = [read(net, last) for net in netlist.outputs]
        outputs[cycle] = int(bus_to_int(np.array([bits], dtype=bool))[0])

        # clock edge: cut c captures from cut c-1's register (shift chain)
        # when the net also crosses that cut, else from this cycle's wire
        new_state = [dict(state) for state in register_state]
        for cut in range(len(pipe.registered_nets) - 1, -1, -1):
            for net in pipe.registered_nets[cut]:
                if cut > 0 and net in pipe.registered_nets[cut - 1]:
                    new_state[cut][net] = register_state[cut - 1][net]
                else:
                    new_state[cut][net] = wire.get(net, False)
        register_state = new_state
    return outputs
