"""Structural similarity (SSIM) — the perceptual complement to PSNR.

Table II reports PSNR; SSIM is the other standard image-quality metric
and reacts differently to the multiplicative, structured error the
approximate multipliers inject into the DCT (a uniform gain error barely
moves SSIM but costs PSNR, while blocking artifacts do the reverse).
Implemented per Wang et al. 2004 with the standard 8x8 uniform window and
K1/K2 constants, no dependencies beyond NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ssim"]

_K1 = 0.01
_K2 = 0.03


def _uniform_filter(image: np.ndarray, window: int) -> np.ndarray:
    """Mean over a ``window x window`` neighborhood ('valid' region)."""
    cumulative = np.cumsum(np.cumsum(image, axis=0), axis=1)
    padded = np.zeros(
        (cumulative.shape[0] + 1, cumulative.shape[1] + 1), dtype=np.float64
    )
    padded[1:, 1:] = cumulative
    total = (
        padded[window:, window:]
        - padded[:-window, window:]
        - padded[window:, :-window]
        + padded[:-window, :-window]
    )
    return total / (window * window)


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    peak: float = 255.0,
    window: int = 8,
) -> float:
    """Mean SSIM between two grayscale images.

    Uses the uniform-window formulation; values in ``(-1, 1]`` with 1 for
    identical images.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if min(reference.shape) < window:
        raise ValueError(
            f"images smaller than the {window}x{window} SSIM window"
        )

    c1 = (_K1 * peak) ** 2
    c2 = (_K2 * peak) ** 2

    mu_x = _uniform_filter(reference, window)
    mu_y = _uniform_filter(test, window)
    xx = _uniform_filter(reference * reference, window)
    yy = _uniform_filter(test * test, window)
    xy = _uniform_filter(reference * test, window)

    var_x = xx - mu_x**2
    var_y = yy - mu_y**2
    cov = xy - mu_x * mu_y

    numerator = (2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2)
    denominator = (mu_x**2 + mu_y**2 + c1) * (var_x + var_y + c2)
    return float(np.mean(numerator / denominator))
