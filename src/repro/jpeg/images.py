"""Procedural stand-ins for the paper's JPEG test images.

The paper compresses three standard image-processing photographs:
``cameraman``, ``lena`` and ``livingroom``.  Those images cannot be
redistributed here, so this module synthesizes deterministic 256x256
grayscale scenes with matching structure — large smooth regions, strong
edges, and textured areas — because those are the features that exercise a
DCT codec's arithmetic (see DESIGN.md, Substitutions).  PSNR *differences*
between multipliers, which is what Table II measures, depend on the DCT
arithmetic error rather than on the specific photograph.

All generators are seeded and pure, so every run of the Table II bench
sees identical pixels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["test_image", "IMAGE_NAMES", "ALL_IMAGE_NAMES"]

#: the three images of the paper's Table II
IMAGE_NAMES = ("cameraman", "lena", "livingroom")
#: every available stand-in (the extras widen the application studies)
ALL_IMAGE_NAMES = ("cameraman", "lena", "livingroom", "peppers", "bridge")

_SIZE = 256


def _coords() -> tuple[np.ndarray, np.ndarray]:
    axis = np.linspace(0.0, 1.0, _SIZE)
    return np.meshgrid(axis, axis, indexing="ij")


def _smooth_noise(rng: np.random.Generator, octaves: int = 4) -> np.ndarray:
    """Multi-octave value noise (cheap Perlin-like texture)."""
    total = np.zeros((_SIZE, _SIZE))
    for octave in range(octaves):
        cells = 4 * (2**octave)
        coarse = rng.standard_normal((cells + 1, cells + 1))
        scale = _SIZE // cells
        fine = np.kron(coarse[:cells, :cells], np.ones((scale, scale)))
        # bilinear-ish smoothing via box filters
        for axis in (0, 1):
            fine = (
                fine
                + np.roll(fine, scale // 2 or 1, axis=axis)
                + np.roll(fine, -(scale // 2 or 1), axis=axis)
            ) / 3.0
        total += fine / (2**octave)
    total -= total.min()
    total /= total.max()
    return total


def _cameraman_like(rng: np.random.Generator) -> np.ndarray:
    """Dark foreground figure against a bright smooth sky, tripod-like
    thin structures: large flat areas + hard edges."""
    y, x = _coords()
    sky = 200.0 - 60.0 * y + 10.0 * _smooth_noise(rng, 3)
    figure = ((x - 0.42) ** 2 / 0.018 + (y - 0.55) ** 2 / 0.12) < 1.0
    head = ((x - 0.42) ** 2 + (y - 0.30) ** 2) < 0.006
    tripod = (np.abs(x - 0.67 - 0.18 * (y - 0.6)) < 0.006) & (y > 0.55)
    ground = y > 0.82
    image = sky
    image = np.where(ground, 95.0 + 25.0 * _smooth_noise(rng, 4), image)
    image = np.where(figure | head, 25.0 + 12.0 * _smooth_noise(rng, 2), image)
    image = np.where(tripod, 15.0, image)
    return image


def _lena_like(rng: np.random.Generator) -> np.ndarray:
    """Soft portrait-like gradients with a feathered-texture band."""
    y, x = _coords()
    base = 120.0 + 70.0 * np.sin(2.3 * x + 0.8) * np.cos(1.7 * y - 0.4)
    face = ((x - 0.55) ** 2 / 0.05 + (y - 0.45) ** 2 / 0.08) < 1.0
    image = np.where(face, 165.0 + 30.0 * (x - 0.55) - 40.0 * (y - 0.45), base)
    feathers = (x < 0.3) & (y > 0.2)
    texture = 18.0 * np.sin(40.0 * x + 25.0 * y) * _smooth_noise(rng, 3)
    image = np.where(feathers, 110.0 + texture * 2.2, image + texture * 0.4)
    return image


def _livingroom_like(rng: np.random.Generator) -> np.ndarray:
    """Rectilinear interior: furniture blocks, window, patterned rug."""
    y, x = _coords()
    wall = 150.0 - 25.0 * y + 8.0 * _smooth_noise(rng, 3)
    window = (x > 0.62) & (x < 0.9) & (y > 0.12) & (y < 0.45)
    sofa = (x > 0.08) & (x < 0.52) & (y > 0.55) & (y < 0.8)
    table = (x > 0.58) & (x < 0.8) & (y > 0.68) & (y < 0.82)
    rug = y > 0.84
    image = wall
    image = np.where(window, 225.0 - 35.0 * (y - 0.12) / 0.33, image)
    image = np.where(sofa, 85.0 + 18.0 * _smooth_noise(rng, 4), image)
    image = np.where(table, 55.0 + 10.0 * _smooth_noise(rng, 2), image)
    image = np.where(
        rug, 100.0 + 30.0 * np.sin(60.0 * x) * np.sin(45.0 * y), image
    )
    return image


def _peppers_like(rng: np.random.Generator) -> np.ndarray:
    """Overlapping rounded blobs with specular-ish highlights."""
    y, x = _coords()
    image = 70.0 + 12.0 * _smooth_noise(rng, 3)
    centers = rng.uniform(0.1, 0.9, (7, 2))
    radii = rng.uniform(0.12, 0.28, 7)
    shades = rng.uniform(90.0, 210.0, 7)
    for (cy, cx), radius, shade in zip(centers, radii, shades):
        distance = np.sqrt((y - cy) ** 2 + (x - cx) ** 2)
        inside = distance < radius
        shading = shade * (1.0 - 0.55 * (distance / radius) ** 2)
        image = np.where(inside, shading, image)
        highlight = distance < radius * 0.2
        image = np.where(highlight, np.minimum(shade + 60.0, 250.0), image)
    return image


def _bridge_like(rng: np.random.Generator) -> np.ndarray:
    """High-frequency natural texture: water, truss lattice, treeline."""
    y, x = _coords()
    water = 95.0 + 22.0 * np.sin(55.0 * y + 8.0 * np.sin(9.0 * x)) * _smooth_noise(rng, 4)
    sky = 190.0 - 40.0 * y + 8.0 * _smooth_noise(rng, 2)
    image = np.where(y > 0.55, water, sky)
    deck = (y > 0.42) & (y < 0.47)
    truss = deck | (
        (y > 0.3)
        & (y < 0.42)
        & (np.abs(((x * 12.0) % 2.0) - 1.0) < 0.12)
    )
    image = np.where(truss, 45.0, image)
    trees = (y > 0.47) & (y < 0.56) & (x < 0.25)
    image = np.where(trees, 60.0 + 25.0 * _smooth_noise(rng, 4), image)
    return image


_GENERATORS = {
    "cameraman": _cameraman_like,
    "lena": _lena_like,
    "livingroom": _livingroom_like,
    # extras beyond Table II's three, for wider application studies
    "peppers": _peppers_like,
    "bridge": _bridge_like,
}


def test_image(name: str, seed: int = 2020) -> np.ndarray:
    """256x256 uint8 grayscale stand-in for the named standard image."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown image {name!r}; known: {', '.join(IMAGE_NAMES)}"
        ) from None
    # zlib.crc32 is stable across processes (Python's hash() is salted)
    import zlib

    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 1000)
    image = generator(rng)
    return np.clip(np.round(image), 0, 255).astype(np.uint8)
