"""JPEG quantization (Annex K luminance table, quality scaling).

Quality scaling follows the Independent JPEG Group convention: quality 50
uses the Annex K table verbatim, higher qualities scale it down, lower
qualities up.  The paper evaluates quality level 50.

Quantization divides (round-to-nearest) and dequantization multiplies by
small table constants; both are exact integer operations here — the
approximate multiplier under test lives in the DCT/IDCT datapath, whose
multiplications dominate JPEG arithmetic (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BASE_LUMINANCE", "quant_table", "quantize", "dequantize"]

#: ITU-T T.81 Annex K.1 luminance quantization table
BASE_LUMINANCE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int64,
)


def quant_table(quality: int = 50) -> np.ndarray:
    """Quality-scaled luminance table (IJG convention), entries in [1, 255]."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    table = (BASE_LUMINANCE * scale + 50) // 100
    return np.clip(table, 1, 255)


def quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Round-to-nearest division by the quantization table (stacked blocks)."""
    coefficients = np.asarray(coefficients, dtype=np.int64)
    half = table // 2
    signs = np.sign(coefficients)
    return signs * ((np.abs(coefficients) + half) // table)


def dequantize(levels: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reconstruction: multiply quantized levels back by the table."""
    return np.asarray(levels, dtype=np.int64) * table
