"""The JPEG pipeline of Section IV-D, end to end.

``compress`` runs level shift -> blocked fixed-point DCT (through the
supplied multiplier) -> quality-scaled quantization -> zig-zag -> baseline
Huffman coding, and returns the bitstream with its metadata;
``decompress`` inverts the lossless stages and runs the IDCT (through the
same multiplier) back to pixels.  ``roundtrip_psnr`` is the Table II
measurement: PSNR of compressed-then-decompressed output against the
original, at quality 50.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..multipliers.base import Multiplier
from .dct import forward_dct, inverse_dct
from .huffman import decode_blocks, encode_blocks
from .psnr import psnr
from .quant import dequantize, quant_table, quantize
from .zigzag import from_zigzag, to_zigzag

__all__ = ["CompressedImage", "compress", "decompress", "roundtrip_psnr"]

BLOCK = 8


@dataclasses.dataclass(frozen=True)
class CompressedImage:
    """A compressed grayscale image."""

    data: bytes
    height: int
    width: int
    quality: int

    @property
    def bits(self) -> int:
        return len(self.data) * 8

    @property
    def bits_per_pixel(self) -> float:
        return self.bits / (self.height * self.width)


def _to_blocks(image: np.ndarray) -> np.ndarray:
    height, width = image.shape
    blocks = image.reshape(height // BLOCK, BLOCK, width // BLOCK, BLOCK)
    return blocks.transpose(0, 2, 1, 3).reshape(-1, BLOCK, BLOCK)


def _from_blocks(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    grid = blocks.reshape(height // BLOCK, width // BLOCK, BLOCK, BLOCK)
    return grid.transpose(0, 2, 1, 3).reshape(height, width)


def compress(
    multiplier: Multiplier, image: np.ndarray, quality: int = 50
) -> CompressedImage:
    """JPEG-compress a grayscale image using the given multiplier."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D grayscale image, got shape {image.shape}")
    height, width = image.shape
    if height % BLOCK or width % BLOCK:
        raise ValueError(f"image dimensions must be multiples of 8, got {image.shape}")

    shifted = image.astype(np.int64) - 128
    blocks = _to_blocks(shifted)
    coefficients = forward_dct(multiplier, blocks)
    levels = quantize(coefficients, quant_table(quality))
    data = encode_blocks(to_zigzag(levels))
    return CompressedImage(data=data, height=height, width=width, quality=quality)


def decompress(multiplier: Multiplier, compressed: CompressedImage) -> np.ndarray:
    """Decode back to uint8 pixels using the given multiplier's IDCT."""
    count = (compressed.height // BLOCK) * (compressed.width // BLOCK)
    levels = from_zigzag(decode_blocks(compressed.data, count))
    coefficients = dequantize(levels, quant_table(compressed.quality))
    blocks = inverse_dct(multiplier, coefficients)
    pixels = _from_blocks(blocks, compressed.height, compressed.width) + 128
    return np.clip(pixels, 0, 255).astype(np.uint8)


def roundtrip_psnr(
    multiplier: Multiplier, image: np.ndarray, quality: int = 50
) -> tuple[float, CompressedImage]:
    """Table II measurement: PSNR of the compressed image vs. the original."""
    compressed = compress(multiplier, image, quality)
    reconstructed = decompress(multiplier, compressed)
    return psnr(image, reconstructed), compressed
