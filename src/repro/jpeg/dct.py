"""Fixed-point 8x8 DCT/IDCT with a pluggable multiplier (Section IV-D).

The paper implements JPEG "in 16-bit fixed-point arithmetic, using
accurate and approximate multipliers".  This module is that arithmetic
core: the 2-D type-II DCT computed as ``C @ X @ C.T`` (and its inverse
``C.T @ Z @ C``) where the orthonormal basis ``C`` is quantized to Q7
fixed point and **every multiplication is routed through the supplied
unsigned multiplier** via sign-magnitude wrapping (the paper's signed
extension, Section III-C).  Accumulation is exact, as in a hardware MAC
whose multiplier is the approximate unit.

Ranges (proof the datapath stays within 16-bit magnitudes):

* level-shifted pixels are in ``[-128, 127]``; Q7 coefficients in
  ``[-64, 64]`` -> first-pass products ``<= 8192``, rescaled rows
  ``<= ~502``;
* second-pass products ``<= 64 * 502 = 32128 < 2**15``; final DCT
  coefficients ``<= ~1024``, and the IDCT mirrors the same bounds.
"""

from __future__ import annotations

import numpy as np

from ..multipliers.base import Multiplier

__all__ = ["dct_matrix_q7", "signed_multiply", "forward_dct", "inverse_dct"]

#: fixed-point fraction bits of the DCT basis
COEFF_BITS = 7


def dct_matrix_q7() -> np.ndarray:
    """Orthonormal 8x8 DCT-II basis, rounded to Q7 integers."""
    k = np.arange(8)
    basis = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / 16.0)
    basis[0, :] *= 1.0 / np.sqrt(2.0)
    basis *= 0.5  # orthonormal scale for N=8
    return np.rint(basis * (1 << COEFF_BITS)).astype(np.int64)


def signed_multiply(multiplier: Multiplier, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sign-magnitude product through an unsigned multiplier.

    Magnitudes must fit the multiplier's bitwidth — the DCT datapath
    guarantees that (see module docstring), and the operand validation in
    the multiplier raises otherwise rather than silently wrapping.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    magnitude = multiplier.multiply(np.abs(a), np.abs(b))
    return np.where((a < 0) ^ (b < 0), -magnitude, magnitude)


def _fixed_point_matmul(
    multiplier: Multiplier, left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """``(left @ right) >> COEFF_BITS`` with approximate products.

    Works on stacks: ``left`` is ``(..., 8, 8)``, ``right`` ``(8, 8)`` or
    ``(..., 8, 8)``.  Products go through the multiplier; the accumulation
    and the rounding shift are exact.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    lhs = left[..., :, :, None]  # (..., i, k, 1)
    rhs = right[..., None, :, :]  # (..., 1, k, j)
    products = signed_multiply(multiplier, *np.broadcast_arrays(lhs, rhs))
    total = products.sum(axis=-2)  # contract over k
    half = 1 << (COEFF_BITS - 1)
    return (total + half) >> COEFF_BITS


def forward_dct(multiplier: Multiplier, blocks: np.ndarray) -> np.ndarray:
    """2-D DCT of level-shifted 8x8 blocks (stack-shaped ``(..., 8, 8)``)."""
    basis = dct_matrix_q7()
    rows = _fixed_point_matmul(multiplier, basis, blocks)
    return _fixed_point_matmul(multiplier, rows, basis.T)


def inverse_dct(multiplier: Multiplier, coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT back to level-shifted pixels."""
    basis = dct_matrix_q7()
    rows = _fixed_point_matmul(multiplier, basis.T, coefficients)
    return _fixed_point_matmul(multiplier, rows, basis)
