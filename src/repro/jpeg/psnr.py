"""Image quality metrics for the Table II study."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["psnr", "mse"]


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two images of equal shape."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    return float(np.mean((reference - test) ** 2))


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better).

    Returns ``inf`` for identical images.
    """
    error = mse(reference, test)
    if error == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / error)
