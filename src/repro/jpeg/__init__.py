"""Fixed-point JPEG substrate for the Table II application study."""

from .codec import CompressedImage, compress, decompress, roundtrip_psnr
from .dct import dct_matrix_q7, forward_dct, inverse_dct, signed_multiply
from .huffman import decode_blocks, encode_blocks
from .images import IMAGE_NAMES, test_image
from .psnr import mse, psnr
from .quant import BASE_LUMINANCE, dequantize, quant_table, quantize
from .ssim import ssim
from .zigzag import from_zigzag, to_zigzag, zigzag_order

__all__ = [
    "BASE_LUMINANCE",
    "CompressedImage",
    "IMAGE_NAMES",
    "compress",
    "dct_matrix_q7",
    "decode_blocks",
    "decompress",
    "dequantize",
    "encode_blocks",
    "forward_dct",
    "from_zigzag",
    "inverse_dct",
    "mse",
    "psnr",
    "quant_table",
    "quantize",
    "roundtrip_psnr",
    "ssim",
    "signed_multiply",
    "test_image",
    "to_zigzag",
    "zigzag_order",
]
