"""Baseline JPEG entropy coding (ITU-T T.81 Annex K Huffman tables).

Implements the lossless back half of the codec: DC difference coding with
size categories, AC run-length coding with (run, size) symbols, ZRL and
EOB, using the standard luminance Huffman tables.  PSNR does not depend on
this stage (it is lossless), but the bitstream size does — the codec
reports real compressed sizes, and the round-trip decoder doubles as a
correctness check on the whole pipeline.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BitWriter",
    "BitReader",
    "encode_blocks",
    "decode_blocks",
]

# ----------------------------------------------------------------------
# standard luminance Huffman tables (T.81 Annex K.3)
# ----------------------------------------------------------------------

_DC_BITS = [0, 0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
_DC_VALUES = list(range(12))

_AC_BITS = [0, 0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125]
_AC_VALUES = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3,
    0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9,
    0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4,
    0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
]


def _build_table(bits: list[int], values: list[int]) -> dict[int, tuple[int, int]]:
    """Annex C code construction: symbol -> (code, length)."""
    table: dict[int, tuple[int, int]] = {}
    code = 0
    index = 0
    for length in range(1, 17):
        for _ in range(bits[length]):
            table[values[index]] = (code, length)
            code += 1
            index += 1
        code <<= 1
    return table


_DC_TABLE = _build_table(_DC_BITS, _DC_VALUES)
_AC_TABLE = _build_table(_AC_BITS, _AC_VALUES)
_DC_DECODE = {v: k for k, v in _DC_TABLE.items()}
_AC_DECODE = {v: k for k, v in _AC_TABLE.items()}


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, length: int) -> None:
        if length < 0 or (length == 0 and value != 0):
            raise ValueError(f"cannot write value {value} in {length} bits")
        for position in range(length - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    def __len__(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        padded = self._bits + [1] * (-len(self._bits) % 8)  # pad with 1s (T.81)
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class BitReader:
    """MSB-first bit consumer over bytes."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._position, 8)
        if byte_index >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read(self, length: int) -> int:
        value = 0
        for _ in range(length):
            value = (value << 1) | self.read_bit()
        return value


def _category(value: int) -> int:
    """JPEG size category: bits needed for |value|."""
    return int(abs(value)).bit_length()


def _amplitude_bits(value: int, size: int) -> int:
    """One's-complement style amplitude encoding of T.81 F.1.2.1."""
    return value if value >= 0 else value + (1 << size) - 1


def _decode_amplitude(raw: int, size: int) -> int:
    if size == 0:
        return 0
    if raw >> (size - 1):
        return raw
    return raw - (1 << size) + 1


def _decode_symbol(reader: BitReader, table: dict[tuple[int, int], int]) -> int:
    code = 0
    for length in range(1, 17):
        code = (code << 1) | reader.read_bit()
        symbol = table.get((code, length))
        if symbol is not None:
            return symbol
    raise ValueError("invalid Huffman code in bitstream")


def encode_blocks(zigzag_blocks: np.ndarray) -> bytes:
    """Entropy-encode ``(n, 64)`` zig-zag quantized blocks."""
    blocks = np.asarray(zigzag_blocks, dtype=np.int64)
    if blocks.ndim != 2 or blocks.shape[1] != 64:
        raise ValueError(f"expected (n, 64) zig-zag blocks, got {blocks.shape}")
    writer = BitWriter()
    previous_dc = 0
    for block in blocks:
        diff = int(block[0]) - previous_dc
        previous_dc = int(block[0])
        size = _category(diff)
        code, length = _DC_TABLE[size]
        writer.write(code, length)
        writer.write(_amplitude_bits(diff, size), size)

        run = 0
        for value in block[1:]:
            value = int(value)
            if value == 0:
                run += 1
                continue
            while run > 15:
                zrl_code, zrl_length = _AC_TABLE[0xF0]
                writer.write(zrl_code, zrl_length)
                run -= 16
            size = _category(value)
            code, length = _AC_TABLE[(run << 4) | size]
            writer.write(code, length)
            writer.write(_amplitude_bits(value, size), size)
            run = 0
        if run > 0:
            eob_code, eob_length = _AC_TABLE[0x00]
            writer.write(eob_code, eob_length)
    return writer.to_bytes()


def decode_blocks(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_blocks`; returns ``(count, 64)`` levels."""
    reader = BitReader(data)
    blocks = np.zeros((count, 64), dtype=np.int64)
    previous_dc = 0
    for index in range(count):
        size = _decode_symbol(reader, _DC_DECODE)
        diff = _decode_amplitude(reader.read(size), size)
        previous_dc += diff
        blocks[index, 0] = previous_dc

        position = 1
        while position < 64:
            symbol = _decode_symbol(reader, _AC_DECODE)
            if symbol == 0x00:  # EOB
                break
            if symbol == 0xF0:  # ZRL
                position += 16
                continue
            run, size = symbol >> 4, symbol & 0xF
            position += run
            if position >= 64:
                raise ValueError("AC run past end of block")
            blocks[index, position] = _decode_amplitude(reader.read(size), size)
            position += 1
    return blocks
