"""Zig-zag scan order of JPEG 8x8 blocks."""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["zigzag_order", "to_zigzag", "from_zigzag"]


@functools.lru_cache(maxsize=1)
def zigzag_order() -> tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the 64 coefficients in zig-zag order."""
    coordinates = sorted(
        ((r, c) for r in range(8) for c in range(8)),
        key=lambda rc: (
            rc[0] + rc[1],
            rc[1] if (rc[0] + rc[1]) % 2 == 0 else rc[0],
        ),
    )
    rows = np.array([r for r, _ in coordinates])
    cols = np.array([c for _, c in coordinates])
    return rows, cols


def to_zigzag(blocks: np.ndarray) -> np.ndarray:
    """``(..., 8, 8)`` blocks -> ``(..., 64)`` zig-zag vectors."""
    rows, cols = zigzag_order()
    return np.asarray(blocks)[..., rows, cols]


def from_zigzag(vectors: np.ndarray) -> np.ndarray:
    """``(..., 64)`` zig-zag vectors -> ``(..., 8, 8)`` blocks."""
    vectors = np.asarray(vectors)
    rows, cols = zigzag_order()
    blocks = np.zeros(vectors.shape[:-1] + (8, 8), dtype=vectors.dtype)
    blocks[..., rows, cols] = vectors
    return blocks
