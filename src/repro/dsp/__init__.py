"""DSP application substrate: fixed-point FIR filtering."""

from .fir import (
    fir_filter,
    lowpass_taps,
    multitone_signal,
    output_snr_db,
    quantize_q15,
)

__all__ = [
    "fir_filter",
    "lowpass_taps",
    "multitone_signal",
    "output_snr_db",
    "quantize_q15",
]
