"""Fixed-point FIR filtering through approximate multipliers.

Digital signal processing is the other workload class the approximate-
multiplier literature targets (SSM/ESSM [14] are "for digital signal
processing and classification applications").  This module provides the
standard study: a windowed-sinc low-pass FIR filter in 16-bit fixed
point, every tap multiplication routed through a pluggable multiplier,
and the output SNR measured against the double-precision reference.

Fixed-point layout (mirrors a DSP MAC slice):

* samples are signed Q15-scaled integers in ``[-2**15, 2**15 - 1]``;
* coefficients are Q15 too (a unity-gain low-pass has taps well inside
  ±0.5 so the magnitudes stay far below ``2**15``);
* products go through the unsigned multiplier with sign-magnitude
  wrapping; the accumulator is exact; the final ``>> 15`` rescales.
"""

from __future__ import annotations

import numpy as np

from ..multipliers.base import Multiplier

__all__ = [
    "lowpass_taps",
    "quantize_q15",
    "fir_filter",
    "multitone_signal",
    "output_snr_db",
]

Q = 15  # fraction bits of samples and coefficients


def lowpass_taps(num_taps: int = 63, cutoff: float = 0.2) -> np.ndarray:
    """Hamming-windowed-sinc low-pass prototype (float, unity DC gain).

    ``cutoff`` is the -6 dB frequency as a fraction of the sample rate.
    """
    if num_taps < 3 or num_taps % 2 == 0:
        raise ValueError(f"num_taps must be odd and >= 3, got {num_taps}")
    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5), got {cutoff}")
    n = np.arange(num_taps) - (num_taps - 1) / 2
    sinc = np.sinc(2.0 * cutoff * n)
    window = 0.54 - 0.46 * np.cos(2.0 * np.pi * np.arange(num_taps) / (num_taps - 1))
    taps = sinc * window
    return taps / taps.sum()


def quantize_q15(values: np.ndarray) -> np.ndarray:
    """Round to Q15 integers, clipped to the signed 16-bit range."""
    scaled = np.rint(np.asarray(values, dtype=np.float64) * (1 << Q))
    return np.clip(scaled, -(1 << Q), (1 << Q) - 1).astype(np.int64)


def fir_filter(
    multiplier: Multiplier, samples_q: np.ndarray, taps_q: np.ndarray
) -> np.ndarray:
    """'Valid'-mode FIR convolution with approximate products.

    ``samples_q`` and ``taps_q`` are Q15 integers; the result is Q15 with
    exact accumulation and a rounding right-shift, like a hardware MAC.
    """
    samples_q = np.asarray(samples_q, dtype=np.int64)
    taps_q = np.asarray(taps_q, dtype=np.int64)
    length = len(samples_q) - len(taps_q) + 1
    if length <= 0:
        raise ValueError(
            f"signal of {len(samples_q)} samples too short for "
            f"{len(taps_q)} taps"
        )
    accumulator = np.zeros(length, dtype=np.int64)
    for index, tap in enumerate(taps_q):
        window = samples_q[index : index + length]
        magnitude = multiplier.multiply(
            np.abs(window), np.full(length, abs(int(tap)), dtype=np.int64)
        )
        signed = np.where((window < 0) ^ (tap < 0), -magnitude, magnitude)
        accumulator += signed
    half = np.int64(1) << (Q - 1)
    return (accumulator + half) >> Q


def multitone_signal(
    length: int = 4096,
    passband: tuple[float, ...] = (0.02, 0.05, 0.11),
    stopband: tuple[float, ...] = (0.31, 0.43),
    seed: int = 2020,
) -> np.ndarray:
    """Test signal: in-band tones + out-of-band tones + mild noise (float)."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    signal = np.zeros(length)
    for frequency in passband:
        signal += 0.22 * np.sin(2.0 * np.pi * frequency * t + rng.uniform(0, np.pi))
    for frequency in stopband:
        signal += 0.12 * np.sin(2.0 * np.pi * frequency * t + rng.uniform(0, np.pi))
    signal += rng.normal(0.0, 0.01, length)
    return np.clip(signal, -0.999, 0.999)


def output_snr_db(reference: np.ndarray, test: np.ndarray) -> float:
    """SNR of ``test`` against ``reference`` in dB (both same scale)."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    noise_power = np.mean((test - reference) ** 2)
    if noise_power == 0.0:
        return float("inf")
    return float(10.0 * np.log10(np.mean(reference**2) / noise_power))
