"""Experiment drivers: one function per table/figure of the paper.

Both the CLI (``python -m repro``) and the benchmark harness
(``benchmarks/``) call these, so every reproduction artifact comes from a
single code path.  Each driver returns plain data (lists of row dicts or
analysis objects) plus there are small text-table formatting helpers; the
benches add timing, the CLI adds argument handling.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from . import paper
from .analysis import telemetry
from .analysis.designspace import DesignPoint, fig4_front, fig4_points, sweep
from .analysis.distribution import Histogram, error_histogram
from .analysis.montecarlo import characterize, characterize_many
from .analysis.profiles import (
    FIG1_RANGE,
    FIG2_RANGE,
    ProfileSummary,
    profile,
    segment_mean_errors,
)
from .core.factors import compute_factors, quantize_factors
from .core.realm import RealmMultiplier
from .multipliers.registry import TABLE1_IDS, build

__all__ = [
    "DEFAULT_SAMPLES",
    "FIG1_DESIGNS",
    "FIG5_CONFIGS",
    "cnn_study",
    "cnn_text",
    "table1_errors",
    "table1_synthesis",
    "table2_jpeg",
    "fig1_profiles",
    "fig2_segments",
    "fig3_hardware",
    "fig4_designspace",
    "fig5_histograms",
    "format_table",
]

#: default Monte-Carlo depth for the reproduction runs; the paper uses
#: 2^24 — pass that for the final numbers, this for quick iterations
DEFAULT_SAMPLES = 1 << 22

#: the six panels of Fig. 1, in the paper's order
FIG1_DESIGNS = ("calm", "alm-soa-m9", "mbm-t0", "implm-ea", "intalp-l2", "realm16-t0")

#: the nine panels of Fig. 5: (M, t) pairs
FIG5_CONFIGS = tuple(
    (m, t) for t in (0, 6, 9) for m in (16, 8, 4)
)


def _fmt(value, precision=2, width=8):
    if value is None:
        return " " * (width - 2) + "--"
    return f"{value:{width}.{precision}f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Monospace table with right-aligned numeric columns."""
    columns = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        text_row = [str(cell) for cell in row]
        columns = [max(w, len(c)) for w, c in zip(columns, text_row)]
        text_rows.append(text_row)
    line = "  ".join(h.rjust(w) for h, w in zip(headers, columns))
    rule = "-" * len(line)
    body = [
        "  ".join(c.rjust(w) for c, w in zip(row, columns)) for row in text_rows
    ]
    return "\n".join([line, rule, *body])


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------


def table1_errors(
    samples: int = DEFAULT_SAMPLES,
    ids: Sequence[str] = TABLE1_IDS,
    seed: int = 2020,
    *,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    with_telemetry: bool = False,
    warehouse=None,
) -> list[dict]:
    """Error columns of Table I: measured next to the published values.

    ``workers`` fans the designs out over a process pool and ``cache``
    memoizes per-design metrics on disk (see ``repro.analysis.cache``);
    ``progress`` receives one event dict per completed design.  The
    resilience knobs (``max_retries``/``batch_timeout``/``checkpoint``/
    ``resume``) forward to the engine, so a long campaign survives
    worker faults and can resume after an interruption.
    ``with_telemetry=True`` returns ``(rows, TelemetrySnapshot)`` with
    the campaign's per-phase timings and counters.  ``warehouse`` opts
    into the experiment warehouse (see :mod:`repro.warehouse`): designs
    whose fingerprint is already recorded are served from the store,
    and the campaign is recorded as one ``table1`` run.
    """
    if with_telemetry:
        with telemetry.recording() as rec:
            rows = table1_errors(
                samples, ids, seed, workers=workers, cache=cache,
                progress=progress, max_retries=max_retries,
                batch_timeout=batch_timeout, checkpoint=checkpoint,
                resume=resume, warehouse=warehouse,
            )
        return rows, rec.snapshot
    designs = [(name, build(name)) for name in ids]
    measured = characterize_many(
        designs,
        samples=samples,
        seed=seed,
        workers=workers,
        cache=cache,
        progress=progress,
        max_retries=max_retries,
        batch_timeout=batch_timeout,
        checkpoint=checkpoint,
        resume=resume,
        warehouse=warehouse,
        _warehouse_kind="table1",
    )
    rows = []
    for name, multiplier in designs:
        metrics = measured[name]
        reference = paper.TABLE1.get(name)
        certified = _certified_peaks(name, multiplier, metrics, cache)
        rows.append(
            {
                "name": name,
                "display": multiplier.name,
                "bias": metrics.bias,
                "mean_error": metrics.mean_error,
                "peak_min": certified[0] if certified else metrics.peak_min,
                "peak_max": certified[1] if certified else metrics.peak_max,
                "peak_certified": certified is not None,
                "variance": metrics.variance,
                "paper": reference,
            }
        )
    return rows


def _certified_peaks(name, multiplier, metrics, cache):
    """Certified ``(min%, max%)`` peaks for a Table I row, else ``None``.

    Prefers a certificate attached to the metrics themselves (exhaustive
    sweeps), then a stored ``repro formal`` worst-case certificate that is
    both exact and replayed.
    """
    if metrics.peak_certified is not None:
        return metrics.peak_certified
    from .formal.certificates import load_certificate

    payload = load_certificate(
        name, multiplier.bitwidth, "worst-case-error", cache
    )
    if not payload or not payload.get("exact") or not payload.get("replayed"):
        return None
    try:
        return tuple(
            100.0 * payload[side]["error_num"] / payload[side]["error_den"]
            for side in ("peak_min", "peak_max")
        )
    except (KeyError, TypeError, ZeroDivisionError):
        return None


def table1_synthesis(ids: Sequence[str] = TABLE1_IDS) -> list[dict]:
    """Design-metric columns of Table I from the calibrated cost model."""
    from .synth.cost import reductions, synthesize_design

    rows = []
    for name in ids:
        area_reduction, power_reduction = reductions(name)
        result = synthesize_design(name)
        reference = paper.TABLE1.get(name)
        rows.append(
            {
                "name": name,
                "display": build(name).name,
                "area_um2": result.area_um2,
                "power_uw": result.power_uw,
                "area_reduction": area_reduction,
                "power_reduction": power_reduction,
                "gate_count": result.gate_count,
                "paper": reference,
            }
        )
    return rows


def table1_text(
    samples: int = DEFAULT_SAMPLES,
    ids=TABLE1_IDS,
    *,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    warehouse=None,
) -> str:
    """Rendered Table I: measured vs. paper for every column."""
    errors = {
        r["name"]: r
        for r in table1_errors(
            samples, ids, workers=workers, cache=cache, progress=progress,
            max_retries=max_retries, batch_timeout=batch_timeout,
            checkpoint=checkpoint, resume=resume, warehouse=warehouse,
        )
    }
    synthesis = {r["name"]: r for r in table1_synthesis(ids)}
    headers = [
        "design", "areaR%", "(paper)", "powR%", "(paper)",
        "bias", "(paper)", "ME", "(paper)", "min", "max", "var",
    ]
    rows = []
    for name in ids:
        err = errors[name]
        syn = synthesis[name]
        ref = err["paper"]
        rows.append(
            [
                err["display"],
                _fmt(syn["area_reduction"], 1, 6),
                _fmt(ref.area_reduction if ref else None, 1, 6),
                _fmt(syn["power_reduction"], 1, 6),
                _fmt(ref.power_reduction if ref else None, 1, 6),
                _fmt(err["bias"]),
                _fmt(ref.bias if ref else None),
                _fmt(err["mean_error"]),
                _fmt(ref.mean_error if ref else None),
                _fmt(err["peak_min"]) + ("*" if err["peak_certified"] else ""),
                _fmt(err["peak_max"]) + ("*" if err["peak_certified"] else ""),
                _fmt(err["variance"]),
            ]
        )
    table = format_table(headers, rows)
    if any(err["peak_certified"] for err in errors.values()):
        table += "\n* formally certified worst-case peak (repro formal)"
    return table


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------


def table2_jpeg(quality: int = 50, seed: int = 2020) -> list[dict]:
    """JPEG PSNR per image per multiplier (Table II)."""
    from .jpeg.codec import roundtrip_psnr
    from .jpeg.images import test_image

    multipliers = {name: build(name) for name in paper.TABLE2_MULTIPLIERS}
    rows = []
    for image_name in paper.TABLE2_IMAGES:
        image = test_image(image_name, seed=seed)
        row = {"image": image_name}
        for name, multiplier in multipliers.items():
            measured, compressed = roundtrip_psnr(multiplier, image, quality)
            row[name] = measured
            row[f"{name}_bpp"] = compressed.bits_per_pixel
            row[f"{name}_paper"] = paper.TABLE2_PSNR[image_name][name]
        rows.append(row)
    return rows


def table2_text(quality: int = 50) -> str:
    rows = table2_jpeg(quality)
    headers = ["image"] + [f"{n}" for n in paper.TABLE2_MULTIPLIERS]
    body = []
    for row in rows:
        body.append(
            [row["image"]]
            + [
                f"{row[n]:.1f} (p{row[f'{n}_paper']:.1f})"
                for n in paper.TABLE2_MULTIPLIERS
            ]
        )
    return format_table(headers, body)


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------


def fig1_profiles(
    designs: Sequence[str] = FIG1_DESIGNS,
) -> dict[str, ProfileSummary]:
    """Exhaustive error surfaces over the Fig. 1 operand range."""
    return {name: profile(build(name), *FIG1_RANGE) for name in designs}


def fig2_segments(m: int = 4) -> dict[str, np.ndarray]:
    """Fig. 2: per-segment mean error before/after error reduction."""
    calm = segment_mean_errors(build("calm"), m, *FIG2_RANGE)
    realm = segment_mean_errors(
        RealmMultiplier(m=m, t=0), m, *FIG2_RANGE
    )
    return {
        "calm_segment_means": calm,
        "realm_segment_means": realm,
        "factors": compute_factors(m),
        "lut_codes": quantize_factors(compute_factors(m), 6),
    }


def fig3_hardware(m: int = 16, t: int = 0) -> dict:
    """Fig. 3 as structure: block inventory of the REALM datapath."""
    from .circuits.realm_rtl import realm_netlist
    from .synth.cost import synthesize

    netlist = realm_netlist(16, m=m, t=t)
    result = synthesize(netlist)
    return {
        "name": netlist.name,
        "gate_count": netlist.gate_count,
        "depth": netlist.depth(),
        "area_um2": result.area_um2,
        "power_uw": result.power_uw,
        "cells": dict(netlist.cell_histogram()),
        "lut_entries": m * m,
        "lut_width_bits": 4,  # q - 2
        "output_bits": len(netlist.outputs),
    }


def fig4_designspace(
    source: str = "paper",
    samples: int = DEFAULT_SAMPLES,
    *,
    workers: int | None = None,
    cache=None,
    progress=None,
    max_retries: int | None = None,
    batch_timeout: float | None = None,
    checkpoint: bool = False,
    resume: bool = False,
    with_telemetry: bool = False,
    warehouse=None,
) -> dict:
    """Fig. 4: the four panels' points and Pareto fronts.

    ``with_telemetry=True`` adds a ``"telemetry"`` key holding the
    sweep's :class:`~repro.analysis.telemetry.TelemetrySnapshot`.
    """
    if with_telemetry:
        with telemetry.recording() as rec:
            result = fig4_designspace(
                source, samples, workers=workers, cache=cache,
                progress=progress, max_retries=max_retries,
                batch_timeout=batch_timeout, checkpoint=checkpoint,
                resume=resume, warehouse=warehouse,
            )
        result["telemetry"] = rec.snapshot
        return result
    points = sweep(
        samples=samples,
        source=source,
        workers=workers,
        cache=cache,
        progress=progress,
        max_retries=max_retries,
        batch_timeout=batch_timeout,
        checkpoint=checkpoint,
        resume=resume,
        warehouse=warehouse,
    )
    kept = fig4_points(points)
    fronts = {
        f"{efficiency}-{error}": fig4_front(points, efficiency, error)
        for efficiency in ("area", "power")
        for error in ("mean", "peak")
    }
    return {"points": points, "plotted": kept, "fronts": fronts}


def fig5_histograms(
    samples: int = DEFAULT_SAMPLES, configs=FIG5_CONFIGS
) -> list[Histogram]:
    """Fig. 5: REALM error distributions across (M, t)."""
    return [
        error_histogram(RealmMultiplier(m=m, t=t), samples=samples)
        for m, t in configs
    ]


# ----------------------------------------------------------------------
# CNN accuracy-vs-area study (application extension)
# ----------------------------------------------------------------------


def _pareto_accuracy_area(rows: list[dict]) -> None:
    """Mark the accuracy/area Pareto front in-place (``row["pareto"]``).

    A design is on the front when no other design offers at least its
    accuracy AND at least its area reduction with one of the two strict.
    """
    for row in rows:
        dominated = any(
            other is not row
            and other["accuracy"] >= row["accuracy"]
            and other["area_reduction"] >= row["area_reduction"]
            and (
                other["accuracy"] > row["accuracy"]
                or other["area_reduction"] > row["area_reduction"]
            )
            for other in rows
        )
        row["pareto"] = not dominated


def cnn_study(
    ids: Sequence[str] | None = None,
    seed: int = 2020,
    *,
    warehouse=None,
) -> list[dict]:
    """Accuracy-vs-area of the fixed-point CNN across the registry.

    Every design runs the quantized conv+pool+FC glyph classifier (see
    :mod:`repro.nn.cnn`); the area/power columns come from the calibrated
    synthesis cost model, so the rows plot directly as an accuracy-vs-area
    Pareto study.  ``warehouse`` opts into the experiment warehouse: rows
    whose content-addressed payload (design fingerprint + dataset seed)
    is already stored are reused, and the campaign is recorded as one
    ``cnn`` run — which is what feeds the ``repro report`` accuracy
    trajectories.
    """
    import time as _time

    from .analysis.cache import cache_key
    from .multipliers.registry import fingerprint
    from .nn import (
        cnn_logit_distortion,
        evaluate_cnn_multipliers,
        float_cnn_accuracy,
        trained_cnn_setup,
    )
    from .synth.cost import reductions

    if ids is None:
        from .multipliers.registry import REGISTRY

        ids = [name for name in sorted(REGISTRY) if _buildable(name)]
    else:
        ids = list(ids)

    data, params = trained_cnn_setup(seed)
    reference = float_cnn_accuracy(data, params)

    wh = None
    if warehouse is not False:
        from .warehouse.store import open_warehouse

        wh = open_warehouse(warehouse)

    start = _time.perf_counter()
    payloads = {
        name: {
            "experiment": "cnn-study",
            "design": fingerprint(build(name)),
            "dataset_seed": seed,
            "test_samples": int(len(data.test_y)),
        }
        for name in ids
    }
    reused: dict[str, dict] = {}
    if wh is not None:
        for name in ids:
            row = wh.latest(cache_key(payloads[name]))
            if row is not None and isinstance(row.data, dict):
                reused[name] = row.data
    fresh_ids = [name for name in ids if name not in reused]
    accuracy = evaluate_cnn_multipliers(fresh_ids, seed)
    distortion = cnn_logit_distortion(fresh_ids, seed)

    rows = []
    for name in ids:
        if name in reused:
            data_row = dict(reused[name])
        else:
            area_reduction, power_reduction = reductions(name)
            data_row = {
                "accuracy": accuracy[name],
                "accuracy_drop": reference - accuracy[name],
                "logit_distortion": distortion[name],
                "area_reduction": area_reduction,
                "power_reduction": power_reduction,
                "float_reference": reference,
            }
        rows.append({"name": name, "display": build(name).name, **data_row})
    _pareto_accuracy_area(rows)

    if wh is not None:
        from .warehouse.store import WarehouseError

        results = [
            (
                name,
                payloads[name],
                {k: row[k] for k in row if k not in ("name", "display")},
                name in reused,
            )
            for name, row in zip(ids, rows)
        ]
        try:
            wh.record_run(
                "cnn",
                results,
                seed=seed,
                samples=int(len(data.test_y)),
                wall_seconds=_time.perf_counter() - start,
            )
        except WarehouseError:
            pass  # provenance must never take the study down with it
        finally:
            wh.close()
    return rows


def _buildable(name: str, bitwidth: int = 16) -> bool:
    try:
        build(name, bitwidth)
    except ValueError:
        return False
    return True


def cnn_text(ids: Sequence[str] | None = None, *, warehouse=None) -> str:
    """Rendered CNN accuracy-vs-area table, Pareto designs starred."""
    rows = cnn_study(ids, warehouse=warehouse)
    headers = ["design", "accuracy", "drop", "logitD%", "areaR%", "powR%"]
    table_rows = [
        [
            row["display"] + (" *" if row["pareto"] else ""),
            _fmt(row["accuracy"], 3, 8),
            _fmt(row["accuracy_drop"], 3, 7),
            _fmt(row["logit_distortion"], 2, 7),
            _fmt(row["area_reduction"], 1, 6),
            _fmt(row["power_reduction"], 1, 6),
        ]
        for row in sorted(rows, key=lambda r: -r["area_reduction"])
    ]
    if rows:
        reference = rows[0]["float_reference"]
        header_line = f"float CNN reference accuracy: {reference:.3f}\n"
    else:
        header_line = ""
    return (
        header_line
        + format_table(headers, table_rows)
        + "\n* accuracy/area Pareto front"
    )
