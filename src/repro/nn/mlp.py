"""A small MLP: float training, fixed-point inference through any multiplier.

The standard approximate-computing deployment: train in floating point,
quantize, and run inference on fixed-point hardware whose multipliers are
approximate.  The fixed-point datapath here mirrors a 16-bit MAC array:

* inputs are uint8 pixels (scale 1);
* weights are quantized to signed Q8 fixed point (``w_q = round(w * 256)``,
  magnitudes < 2 after training, so ``|w_q| < 512``);
* every product routes through the supplied unsigned multiplier with
  sign-magnitude wrapping (both operand magnitudes stay far below
  ``2**16``); accumulation and the ``>> 8`` rescale are exact, like a
  hardware accumulator following the approximate multiplier;
* the hidden ReLU output keeps the input's integer scale, so the second
  layer sees the same operand ranges as the first.

``float_logits`` and ``fixed_logits`` expose both datapaths; classification
uses argmax, so the softmax never needs computing at inference time.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..multipliers.base import Multiplier

__all__ = ["MlpParams", "train_mlp", "FixedPointMlp", "WEIGHT_FRACTION_BITS"]

#: Q-format fraction bits of the quantized weights
WEIGHT_FRACTION_BITS = 8


@dataclasses.dataclass
class MlpParams:
    """Float parameters of the two-layer MLP."""

    w1: np.ndarray  # (features, hidden)
    b1: np.ndarray  # (hidden,)
    w2: np.ndarray  # (hidden, classes)
    b2: np.ndarray  # (classes,)

    @property
    def hidden(self) -> int:
        return self.w1.shape[1]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def train_mlp(
    train_x: np.ndarray,
    train_y: np.ndarray,
    hidden: int = 32,
    classes: int = 10,
    epochs: int = 30,
    batch: int = 64,
    learning_rate: float = 0.15,
    seed: int = 7,
) -> MlpParams:
    """Plain SGD training of ``relu(x W1 + b1) W2 + b2`` with CE loss.

    Inputs are rescaled to [0, 1] internally; weights come out with
    magnitudes well inside the Q8 quantization range.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(train_x, dtype=np.float64) / 255.0
    y = np.asarray(train_y)
    features = x.shape[1]
    params = MlpParams(
        w1=rng.normal(0.0, np.sqrt(2.0 / features), (features, hidden)),
        b1=np.zeros(hidden),
        w2=rng.normal(0.0, np.sqrt(2.0 / hidden), (hidden, classes)),
        b2=np.zeros(classes),
    )
    one_hot = np.eye(classes)[y]
    for _ in range(epochs):
        order = rng.permutation(len(x))
        for start in range(0, len(x), batch):
            rows = order[start : start + batch]
            xb, yb = x[rows], one_hot[rows]
            pre = xb @ params.w1 + params.b1
            hidden_act = np.maximum(pre, 0.0)
            logits = hidden_act @ params.w2 + params.b2
            probs = _softmax(logits)

            grad_logits = (probs - yb) / len(rows)
            grad_w2 = hidden_act.T @ grad_logits
            grad_b2 = grad_logits.sum(axis=0)
            grad_hidden = grad_logits @ params.w2.T
            grad_hidden[pre <= 0.0] = 0.0
            grad_w1 = xb.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)

            params.w1 -= learning_rate * grad_w1
            params.b1 -= learning_rate * grad_b1
            params.w2 -= learning_rate * grad_w2
            params.b2 -= learning_rate * grad_b2
    return params


def float_logits(params: MlpParams, x: np.ndarray) -> np.ndarray:
    """Reference float forward pass (inputs uint8)."""
    scaled = np.asarray(x, dtype=np.float64) / 255.0
    hidden = np.maximum(scaled @ params.w1 + params.b1, 0.0)
    return hidden @ params.w2 + params.b2


class FixedPointMlp:
    """Quantized MLP whose multiplications go through ``multiplier``."""

    def __init__(self, params: MlpParams, multiplier: Multiplier):
        if multiplier.bitwidth < 16:
            raise ValueError(
                "the fixed-point datapath needs a >=16-bit multiplier, got "
                f"{multiplier.bitwidth}"
            )
        scale = 1 << WEIGHT_FRACTION_BITS
        self.multiplier = multiplier
        self.w1_q = np.rint(params.w1 * scale).astype(np.int64)
        self.w2_q = np.rint(params.w2 * scale).astype(np.int64)
        # biases live at the accumulator scale: 255 (input) * 2^8 (weights)
        self.b1_q = np.rint(params.b1 * 255.0 * scale).astype(np.int64)
        self.b2_q = np.rint(params.b2 * 255.0 * scale).astype(np.int64)
        limit = (1 << 16) - 1
        if max(np.abs(self.w1_q).max(), np.abs(self.w2_q).max()) > limit:
            raise ValueError("quantized weights exceed the 16-bit operand range")

    def _matmul(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """``x @ weights`` with approximate products, exact accumulation.

        ``x``: (n, in) non-negative ints; ``weights``: (in, out) signed.
        """
        magnitude = self.multiplier.multiply(
            x[:, :, None], np.abs(weights)[None, :, :]
        )
        signed = np.where(weights[None] < 0, -magnitude, magnitude)
        return signed.sum(axis=1)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point forward pass; returns integer logits."""
        x = np.asarray(x, dtype=np.int64)
        if x.ndim == 1:
            x = x[None]
        acc1 = self._matmul(x, self.w1_q) + self.b1_q
        hidden = np.maximum(acc1, 0) >> WEIGHT_FRACTION_BITS  # back to x's scale
        acc2 = self._matmul(hidden, self.w2_q) + self.b2_q
        return acc2

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))
