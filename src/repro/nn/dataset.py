"""Synthetic glyph-classification dataset for the neural-network study.

The paper's introduction motivates approximate multipliers with
machine-learning workloads; this module provides the deterministic,
dependency-free classification task the library's NN experiments run on:
ten 8x8 grayscale "glyph" classes, each a smoothed random template, with
per-sample pixel noise, brightness jitter and one-pixel translations.
A linear model reaches ~80% on it and a small MLP >95%, so approximate-
multiplier damage is measurable in either direction.

Everything is seeded: the same call always returns the same arrays.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["GlyphData", "make_dataset", "NUM_CLASSES", "IMAGE_SIZE"]

NUM_CLASSES = 10
IMAGE_SIZE = 8


@dataclasses.dataclass(frozen=True)
class GlyphData:
    """Train/test split of the glyph task; pixels are uint8 0..255."""

    train_x: np.ndarray  # (n_train, 64)
    train_y: np.ndarray  # (n_train,)
    test_x: np.ndarray  # (n_test, 64)
    test_y: np.ndarray  # (n_test,)

    @property
    def features(self) -> int:
        return self.train_x.shape[1]


def _templates(rng: np.random.Generator) -> np.ndarray:
    """One smoothed random template per class, shape (10, 8, 8) in [0, 1]."""
    raw = rng.random((NUM_CLASSES, IMAGE_SIZE, IMAGE_SIZE))
    smoothed = raw.copy()
    for _ in range(2):
        smoothed = (
            smoothed
            + np.roll(smoothed, 1, axis=1)
            + np.roll(smoothed, -1, axis=1)
            + np.roll(smoothed, 1, axis=2)
            + np.roll(smoothed, -1, axis=2)
        ) / 5.0
    # stretch contrast so classes are visually distinct glyphs
    smoothed -= smoothed.min(axis=(1, 2), keepdims=True)
    smoothed /= smoothed.max(axis=(1, 2), keepdims=True)
    return smoothed**1.5


def _sample(
    rng: np.random.Generator, template: np.ndarray, count: int
) -> np.ndarray:
    """Noisy, jittered, shifted instances of one template."""
    images = np.repeat(template[None], count, axis=0)
    # one-pixel random translation (circular — keeps statistics simple)
    for index in range(count):
        dy, dx = rng.integers(-1, 2, 2)
        images[index] = np.roll(images[index], (dy, dx), axis=(0, 1))
    brightness = rng.uniform(0.8, 1.2, (count, 1, 1))
    noise = rng.normal(0.0, 0.08, images.shape)
    pixels = np.clip(images * brightness + noise, 0.0, 1.0)
    return (pixels * 255.0).round().astype(np.uint8)


def make_dataset(
    train_per_class: int = 200, test_per_class: int = 50, seed: int = 2020
) -> GlyphData:
    """Build the full dataset (deterministic for a given seed)."""
    if train_per_class < 1 or test_per_class < 1:
        raise ValueError("per-class sample counts must be >= 1")
    rng = np.random.default_rng(seed)
    templates = _templates(rng)

    def build(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for label in range(NUM_CLASSES):
            xs.append(_sample(rng, templates[label], per_class).reshape(per_class, -1))
            ys.append(np.full(per_class, label))
        x = np.concatenate(xs)
        y = np.concatenate(ys)
        order = rng.permutation(len(y))
        return x[order], y[order]

    train_x, train_y = build(train_per_class)
    test_x, test_y = build(test_per_class)
    return GlyphData(train_x, train_y, test_x, test_y)
