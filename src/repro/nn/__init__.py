"""Neural-network application substrate (the paper's motivating workload)."""

from .cnn import CnnParams, FixedPointCnn, train_cnn
from .dataset import IMAGE_SIZE, NUM_CLASSES, GlyphData, make_dataset
from .evaluate import (
    cnn_logit_distortion,
    evaluate_cnn_multipliers,
    evaluate_multipliers,
    float_accuracy,
    float_cnn_accuracy,
    logit_distortion,
    trained_cnn_setup,
    trained_setup,
)
from .mlp import FixedPointMlp, MlpParams, train_mlp

__all__ = [
    "CnnParams",
    "FixedPointCnn",
    "FixedPointMlp",
    "GlyphData",
    "IMAGE_SIZE",
    "MlpParams",
    "NUM_CLASSES",
    "cnn_logit_distortion",
    "evaluate_cnn_multipliers",
    "evaluate_multipliers",
    "float_accuracy",
    "float_cnn_accuracy",
    "logit_distortion",
    "make_dataset",
    "train_cnn",
    "train_mlp",
    "trained_cnn_setup",
    "trained_setup",
]
