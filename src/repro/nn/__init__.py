"""Neural-network application substrate (the paper's motivating workload)."""

from .dataset import IMAGE_SIZE, NUM_CLASSES, GlyphData, make_dataset
from .evaluate import (
    evaluate_multipliers,
    float_accuracy,
    logit_distortion,
    trained_setup,
)
from .mlp import FixedPointMlp, MlpParams, train_mlp

__all__ = [
    "FixedPointMlp",
    "GlyphData",
    "IMAGE_SIZE",
    "MlpParams",
    "NUM_CLASSES",
    "evaluate_multipliers",
    "float_accuracy",
    "logit_distortion",
    "make_dataset",
    "train_mlp",
    "trained_setup",
]
