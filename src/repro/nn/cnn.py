"""A small fixed-point CNN: conv + pool + FC through any multiplier.

The convolutional sibling of :mod:`repro.nn.mlp`, covering the workload
class the paper's DNN-oriented related work (scaleTRIM, the DNN
co-optimized truncation multiplier) actually targets: multiply-heavy
convolution layers.  Architecture on the 8x8 glyph images:

* **conv**: 8 filters of 3x3, valid padding -> 6x6 feature maps, ReLU;
* **pool**: exact 2x2 max-pool -> 3x3 maps (comparisons only — pooling
  needs no multiplier);
* **fc**: flattened 72 features -> 10 class logits.

The fixed-point datapath mirrors the MLP's 16-bit MAC-array contract:
uint8 inputs (scale 1), weights quantized to signed Q8, every product
routed through the supplied unsigned multiplier with sign-magnitude
wrapping, exact accumulation, and a ``>> 8`` rescale after the conv
ReLU so the FC layer sees operands on the input's integer scale.  Conv
activations are sums of nine products, so FC operands stay well below
``2**16`` for Q8 weights.

Training is plain float SGD over the im2col form; everything is seeded.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..multipliers.base import Multiplier
from .dataset import IMAGE_SIZE, NUM_CLASSES
from .mlp import WEIGHT_FRACTION_BITS

__all__ = ["CnnParams", "train_cnn", "float_cnn_logits", "FixedPointCnn"]

KERNEL_SIZE = 3
CONV_CHANNELS = 8
CONV_SIZE = IMAGE_SIZE - KERNEL_SIZE + 1  # 6x6 valid convolution
POOL_SIZE = CONV_SIZE // 2  # 3x3 after 2x2 max-pool
FLAT_FEATURES = POOL_SIZE * POOL_SIZE * CONV_CHANNELS


@dataclasses.dataclass
class CnnParams:
    """Float parameters of the conv + pool + FC network."""

    conv_w: np.ndarray  # (9, channels) — flattened 3x3 taps per filter
    conv_b: np.ndarray  # (channels,)
    fc_w: np.ndarray  # (FLAT_FEATURES, classes)
    fc_b: np.ndarray  # (classes,)

    @property
    def channels(self) -> int:
        return self.conv_w.shape[1]


def _patches(x: np.ndarray) -> np.ndarray:
    """im2col: (n, 64) images -> (n, 36, 9) sliding 3x3 patches."""
    images = x.reshape(-1, IMAGE_SIZE, IMAGE_SIZE)
    windows = np.lib.stride_tricks.sliding_window_view(
        images, (KERNEL_SIZE, KERNEL_SIZE), axis=(1, 2)
    )
    return windows.reshape(len(images), CONV_SIZE * CONV_SIZE, KERNEL_SIZE**2)


def _pool_forward(conv: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """2x2 max-pool of (n, 36, c) maps -> ((n, 9, c) pooled, argmax mask)."""
    n, _, channels = conv.shape
    grid = conv.reshape(n, CONV_SIZE, CONV_SIZE, channels)
    blocks = grid.reshape(n, POOL_SIZE, 2, POOL_SIZE, 2, channels)
    flat = blocks.transpose(0, 1, 3, 5, 2, 4).reshape(
        n, POOL_SIZE, POOL_SIZE, channels, 4
    )
    winners = flat.argmax(axis=-1)
    pooled = np.take_along_axis(flat, winners[..., None], axis=-1)[..., 0]
    return pooled.reshape(n, POOL_SIZE * POOL_SIZE, channels), winners


def train_cnn(
    train_x: np.ndarray,
    train_y: np.ndarray,
    channels: int = CONV_CHANNELS,
    classes: int = NUM_CLASSES,
    epochs: int = 25,
    batch: int = 64,
    learning_rate: float = 0.1,
    seed: int = 11,
) -> CnnParams:
    """SGD training of the float CNN with cross-entropy loss."""
    rng = np.random.default_rng(seed)
    x = np.asarray(train_x, dtype=np.float64) / 255.0
    y = np.asarray(train_y)
    taps = KERNEL_SIZE**2
    flat = POOL_SIZE * POOL_SIZE * channels
    params = CnnParams(
        conv_w=rng.normal(0.0, np.sqrt(2.0 / taps), (taps, channels)),
        conv_b=np.zeros(channels),
        fc_w=rng.normal(0.0, np.sqrt(2.0 / flat), (flat, classes)),
        fc_b=np.zeros(classes),
    )
    one_hot = np.eye(classes)[y]
    patches_all = _patches(x)
    for _ in range(epochs):
        order = rng.permutation(len(x))
        for start in range(0, len(x), batch):
            rows = order[start : start + batch]
            patches = patches_all[rows]  # (b, 36, 9)
            pre = patches @ params.conv_w + params.conv_b  # (b, 36, c)
            act = np.maximum(pre, 0.0)
            pooled, winners = _pool_forward(act)  # (b, 9, c)
            hidden = pooled.reshape(len(rows), -1)
            logits = hidden @ params.fc_w + params.fc_b
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            probs = exp / exp.sum(axis=1, keepdims=True)

            grad_logits = (probs - one_hot[rows]) / len(rows)
            grad_fc_w = hidden.T @ grad_logits
            grad_fc_b = grad_logits.sum(axis=0)
            grad_hidden = (grad_logits @ params.fc_w.T).reshape(
                len(rows), POOL_SIZE * POOL_SIZE, channels
            )
            # route pooled gradients back to the winning conv cells
            grad_flat = np.zeros(
                (len(rows), POOL_SIZE, POOL_SIZE, channels, 4)
            )
            np.put_along_axis(
                grad_flat,
                winners[..., None],
                grad_hidden.reshape(len(rows), POOL_SIZE, POOL_SIZE, channels, 1),
                axis=-1,
            )
            grad_act = (
                grad_flat.reshape(len(rows), POOL_SIZE, POOL_SIZE, channels, 2, 2)
                .transpose(0, 1, 4, 2, 5, 3)
                .reshape(len(rows), CONV_SIZE * CONV_SIZE, channels)
            )
            grad_act[pre <= 0.0] = 0.0
            grad_conv_w = np.einsum("bpt,bpc->tc", patches, grad_act)
            grad_conv_b = grad_act.sum(axis=(0, 1))

            params.conv_w -= learning_rate * grad_conv_w
            params.conv_b -= learning_rate * grad_conv_b
            params.fc_w -= learning_rate * grad_fc_w
            params.fc_b -= learning_rate * grad_fc_b
    return params


def float_cnn_logits(params: CnnParams, x: np.ndarray) -> np.ndarray:
    """Reference float forward pass (inputs uint8)."""
    scaled = np.asarray(x, dtype=np.float64) / 255.0
    act = np.maximum(_patches(scaled) @ params.conv_w + params.conv_b, 0.0)
    pooled, _ = _pool_forward(act)
    return pooled.reshape(len(pooled), -1) @ params.fc_w + params.fc_b


class FixedPointCnn:
    """Quantized CNN whose multiplications go through ``multiplier``."""

    def __init__(self, params: CnnParams, multiplier: Multiplier):
        if multiplier.bitwidth < 16:
            raise ValueError(
                "the fixed-point datapath needs a >=16-bit multiplier, got "
                f"{multiplier.bitwidth}"
            )
        scale = 1 << WEIGHT_FRACTION_BITS
        self.multiplier = multiplier
        self.channels = params.channels
        self.conv_w_q = np.rint(params.conv_w * scale).astype(np.int64)
        self.fc_w_q = np.rint(params.fc_w * scale).astype(np.int64)
        # biases live at the accumulator scale: 255 (input) * 2^8 (weights)
        self.conv_b_q = np.rint(params.conv_b * 255.0 * scale).astype(np.int64)
        self.fc_b_q = np.rint(params.fc_b * 255.0 * scale).astype(np.int64)
        limit = (1 << 16) - 1
        if max(np.abs(self.conv_w_q).max(), np.abs(self.fc_w_q).max()) > limit:
            raise ValueError("quantized weights exceed the 16-bit operand range")

    def _matmul(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Batched ``x @ weights`` with approximate products, exact sums.

        ``x``: (..., in) non-negative ints; ``weights``: (in, out) signed.
        """
        magnitude = self.multiplier.multiply(
            x[..., :, None], np.abs(weights)[None, :, :]
        )
        signed = np.where(weights < 0, -magnitude, magnitude)
        return signed.sum(axis=-2)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Fixed-point forward pass; returns integer logits."""
        x = np.asarray(x, dtype=np.int64)
        if x.ndim == 1:
            x = x[None]
        patches = _patches(x)  # (n, 36, 9)
        acc = self._matmul(patches, self.conv_w_q) + self.conv_b_q
        act = np.maximum(acc, 0) >> WEIGHT_FRACTION_BITS  # back to x's scale
        pooled, _ = _pool_forward(act)
        hidden = pooled.reshape(len(pooled), -1)
        return self._matmul(hidden, self.fc_w_q) + self.fc_b_q

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))
