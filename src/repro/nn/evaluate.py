"""Accuracy evaluation of approximate multipliers on the glyph networks."""

from __future__ import annotations

import functools

import numpy as np

from ..multipliers.registry import build
from .cnn import CnnParams, FixedPointCnn, float_cnn_logits, train_cnn
from .dataset import GlyphData, make_dataset
from .mlp import FixedPointMlp, MlpParams, float_logits, train_mlp

__all__ = [
    "trained_setup",
    "trained_cnn_setup",
    "evaluate_multipliers",
    "evaluate_cnn_multipliers",
    "float_accuracy",
    "float_cnn_accuracy",
]


@functools.lru_cache(maxsize=1)
def trained_setup(seed: int = 2020) -> tuple[GlyphData, MlpParams]:
    """Dataset + trained float parameters (cached; both deterministic)."""
    data = make_dataset(seed=seed)
    params = train_mlp(data.train_x, data.train_y)
    return data, params


def float_accuracy(data: GlyphData, params: MlpParams) -> float:
    """Test accuracy of the float reference model."""
    predictions = np.argmax(float_logits(params, data.test_x), axis=1)
    return float(np.mean(predictions == data.test_y))


def evaluate_multipliers(names, seed: int = 2020) -> dict[str, float]:
    """Test accuracy of the quantized MLP per multiplier configuration."""
    data, params = trained_setup(seed)
    results = {}
    for name in names:
        model = FixedPointMlp(params, build(name))
        results[name] = model.accuracy(data.test_x, data.test_y)
    return results


@functools.lru_cache(maxsize=1)
def trained_cnn_setup(seed: int = 2020) -> tuple[GlyphData, CnnParams]:
    """Dataset + trained float CNN parameters (cached; deterministic)."""
    data = make_dataset(seed=seed)
    params = train_cnn(data.train_x, data.train_y)
    return data, params


def float_cnn_accuracy(data: GlyphData, params: CnnParams) -> float:
    """Test accuracy of the float CNN reference."""
    predictions = np.argmax(float_cnn_logits(params, data.test_x), axis=1)
    return float(np.mean(predictions == data.test_y))


def evaluate_cnn_multipliers(names, seed: int = 2020) -> dict[str, float]:
    """Test accuracy of the quantized CNN per multiplier configuration."""
    data, params = trained_cnn_setup(seed)
    results = {}
    for name in names:
        model = FixedPointCnn(params, build(name))
        results[name] = model.accuracy(data.test_x, data.test_y)
    return results


def cnn_logit_distortion(names, seed: int = 2020) -> dict[str, float]:
    """Mean relative CNN logit error vs. the accurate fixed-point path,
    in percent of the accurate logits' RMS magnitude (the sensitive
    metric once classification accuracy saturates)."""
    data, params = trained_cnn_setup(seed)
    reference = FixedPointCnn(params, build("accurate")).logits(data.test_x)
    rms = float(np.sqrt(np.mean(reference.astype(np.float64) ** 2)))
    results = {}
    for name in names:
        logits = FixedPointCnn(params, build(name)).logits(data.test_x)
        results[name] = float(np.abs(logits - reference).mean() / rms * 100.0)
    return results


def logit_distortion(names, seed: int = 2020) -> dict[str, float]:
    """Mean relative logit error vs. the accurate fixed-point datapath.

    Classification accuracy saturates quickly (argmax shrugs off even
    large multiplicative error — which is the error-resilience the paper
    banks on), so this is the sensitive metric: how far each multiplier
    bends the network's outputs.  Expressed in percent of the accurate
    logits' RMS magnitude.
    """
    data, params = trained_setup(seed)
    reference = FixedPointMlp(params, build("accurate")).logits(data.test_x)
    rms = float(np.sqrt(np.mean(reference.astype(np.float64) ** 2)))
    results = {}
    for name in names:
        logits = FixedPointMlp(params, build(name)).logits(data.test_x)
        deviation = np.abs(logits - reference).mean()
        results[name] = float(deviation / rms * 100.0)
    return results
