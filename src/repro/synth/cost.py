"""Synthesis cost model: calibrated area and power per design.

Stands in for the paper's Cadence RTL Compiler + TSMC 45 nm flow.  Area is
the sum of mapped cell areas; power is the activity-based estimate of
:mod:`repro.logic.activity` under the paper's conditions (1 GHz, 25%
toggle, 50% probability).  Both are multiplied by a calibration scale that
pins the accurate 16-bit Wallace multiplier to the paper's reference
(1898.1 um^2 / 821.9 uW) — the same normalization point Table I uses for
its percentage reductions.

Fidelity note (see DESIGN.md): a real timing-driven flow at 1 GHz inflates
the accurate multiplier's deep arithmetic more than the shallow mux
datapaths, so this model compresses the *absolute* reduction percentages
of the log-based designs by roughly 10-15 points while preserving their
ordering.  EXPERIMENTS.md quantifies the deltas per design.
"""

from __future__ import annotations

import dataclasses
import functools

from ..logic.activity import estimate_power
from ..logic.netlist import Netlist
from ..paper import ACCURATE_AREA_UM2, ACCURATE_POWER_UW

__all__ = ["SynthesisResult", "synthesize", "synthesize_design", "reductions"]

_POWER_VECTORS = 4096
_POWER_SEED = 45


@dataclasses.dataclass(frozen=True)
class SynthesisResult:
    """Calibrated synthesis metrics of one design."""

    name: str
    area_um2: float
    power_uw: float
    gate_count: int
    depth: int

    def reductions(self, reference: "SynthesisResult") -> tuple[float, float]:
        """Percentage area/power reduction vs. a reference design."""
        return (
            (reference.area_um2 - self.area_um2) / reference.area_um2 * 100.0,
            (reference.power_uw - self.power_uw) / reference.power_uw * 100.0,
        )

    @property
    def energy_per_op_pj(self) -> float:
        """Energy per operation in pJ at the paper's 1 GHz (P / f)."""
        return self.power_uw * 1e-6 / 1e9 * 1e12

    def energy_delay_product(self, critical_path_ps: float) -> float:
        """EDP in pJ*ns — the standard efficiency figure of merit.

        Callers obtain the delay from :func:`repro.synth.timing.analyze_timing`;
        it is a separate input because the cost model's power is reported
        at the paper's fixed 1 GHz, not at the design's own max frequency.
        """
        if critical_path_ps <= 0:
            raise ValueError(f"delay must be positive, got {critical_path_ps}")
        return self.energy_per_op_pj * critical_path_ps * 1e-3


@functools.lru_cache(maxsize=1)
def _calibration(bitwidth: int = 16) -> tuple[float, float]:
    """(area_scale, power_scale) pinning the accurate multiplier."""
    from ..circuits.catalog import netlist_for

    reference = netlist_for("accurate", bitwidth)
    raw_area = reference.area()
    raw_power = estimate_power(
        reference, vectors=_POWER_VECTORS, seed=_POWER_SEED
    ).total_uw
    return ACCURATE_AREA_UM2 / raw_area, ACCURATE_POWER_UW / raw_power


def synthesize(
    netlist: Netlist,
    vectors: int = _POWER_VECTORS,
    seed: int = _POWER_SEED,
    bitwidth: int = 16,
) -> SynthesisResult:
    """Calibrated area/power of an already-built netlist."""
    area_scale, power_scale = _calibration(bitwidth)
    report = estimate_power(netlist, vectors=vectors, seed=seed)
    return SynthesisResult(
        name=netlist.name,
        area_um2=netlist.area() * area_scale,
        power_uw=report.total_uw * power_scale,
        gate_count=netlist.gate_count,
        depth=netlist.depth(),
    )


@functools.lru_cache(maxsize=None)
def synthesize_design(name: str, bitwidth: int = 16) -> SynthesisResult:
    """Build, estimate and cache the named registry configuration."""
    from ..circuits.catalog import netlist_for

    return synthesize(netlist_for(name, bitwidth), bitwidth=bitwidth)


def reductions(name: str, bitwidth: int = 16) -> tuple[float, float]:
    """Table I columns: (area reduction %, power reduction %) for a design."""
    design = synthesize_design(name, bitwidth)
    reference = synthesize_design("accurate", bitwidth)
    return design.reductions(reference)
