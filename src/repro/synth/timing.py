"""Static timing analysis over the netlists.

A unit-delay-class model: every cell has a propagation delay in
picoseconds (45 nm-class X1 values, scaling with the cell's logic
complexity like its area does), arrival times propagate through the DAG in
one topological pass, and the report gives the critical path — the number
the paper's 1 GHz constraint is about.

This model deliberately has no wire delays and no sizing: it is used for
*relative* statements (which design is deeper, how the ``t`` knob shortens
REALM's adder/shifter chain) and for the DESIGN.md discussion of why a
timing-driven flow inflates the accurate multiplier's area more than the
log datapaths'.
"""

from __future__ import annotations

import dataclasses

from ..logic.netlist import CONST0, CONST1, Netlist

__all__ = ["CELL_DELAY_PS", "TimingReport", "analyze_timing"]

#: propagation delay per cell in ps (45 nm-class X1, FO4-ish loads)
CELL_DELAY_PS: dict[str, float] = {
    "INV": 14.0,
    "BUF": 22.0,
    "AND2": 26.0,
    "OR2": 26.0,
    "NAND2": 18.0,
    "NOR2": 20.0,
    "XOR2": 38.0,
    "XNOR2": 38.0,
    "ANDN2": 26.0,
    "ORN2": 26.0,
    "MUX2": 34.0,
    "MAJ3": 42.0,
    "XOR3": 56.0,
}


@dataclasses.dataclass(frozen=True)
class TimingReport:
    """Critical-path summary of a combinational netlist."""

    critical_path_ps: float
    critical_path_cells: tuple[str, ...]
    levels: int
    slack_ps: float  # vs. the clock period used for the analysis
    clock_ps: float

    @property
    def meets_timing(self) -> bool:
        return self.slack_ps >= 0.0

    @property
    def max_frequency_ghz(self) -> float:
        if self.critical_path_ps == 0.0:
            return float("inf")
        return 1000.0 / self.critical_path_ps


def analyze_timing(netlist: Netlist, clock_ps: float = 1000.0) -> TimingReport:
    """One-pass arrival-time propagation; returns the critical path.

    ``clock_ps`` defaults to the paper's 1 GHz period.  Inputs arrive at
    t=0 (registered inputs, as the paper's setup places sequential
    elements at the boundary).
    """
    if clock_ps <= 0:
        raise ValueError(f"clock period must be positive, got {clock_ps}")
    arrival: dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
    levels: dict[int, int] = {CONST0: 0, CONST1: 0}
    through: dict[int, tuple[int | None, str]] = {}
    for net in netlist.inputs:
        arrival[net] = 0.0
        levels[net] = 0

    for gate in netlist.gates:
        delay = CELL_DELAY_PS[gate.cell.name]
        worst_input = max(gate.inputs, key=lambda n: arrival[n])
        arrival[gate.output] = arrival[worst_input] + delay
        levels[gate.output] = levels[worst_input] + 1
        through[gate.output] = (worst_input, gate.cell.name)

    if netlist.outputs:
        end = max(netlist.outputs, key=lambda n: arrival.get(n, 0.0))
    elif netlist.gates:
        end = max((g.output for g in netlist.gates), key=lambda n: arrival[n])
    else:
        end = CONST0

    # walk the critical path backwards for the cell trace
    cells: list[str] = []
    cursor: int | None = end
    while cursor in through:
        previous, cell_name = through[cursor]
        cells.append(cell_name)
        cursor = previous
    cells.reverse()

    critical = arrival.get(end, 0.0)
    return TimingReport(
        critical_path_ps=critical,
        critical_path_cells=tuple(cells),
        levels=levels.get(end, 0),
        slack_ps=clock_ps - critical,
        clock_ps=clock_ps,
    )
