"""Synthesis cost model calibrated to the paper's reference point."""

from .cost import SynthesisResult, reductions, synthesize, synthesize_design
from .report import design_report
from .timing import TimingReport, analyze_timing

__all__ = [
    "SynthesisResult",
    "TimingReport",
    "analyze_timing",
    "design_report",
    "reductions",
    "synthesize",
    "synthesize_design",
]
