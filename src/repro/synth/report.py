"""Human-readable synthesis reports, RTL-compiler style.

``design_report`` collects everything the flow knows about one design —
area by cell type, power split, timing, I/O widths — into a text block
shaped like the reports a commercial tool prints after synthesis.  Used by
the CLI's ``fig3`` command, the hardware example, and anyone evaluating a
configuration.
"""

from __future__ import annotations

from ..logic.activity import estimate_power
from ..logic.netlist import Netlist
from .cost import synthesize
from .timing import analyze_timing

__all__ = ["design_report"]


def design_report(netlist: Netlist, clock_ps: float = 1000.0) -> str:
    """Area / power / timing report for one netlist."""
    result = synthesize(netlist)
    activity = estimate_power(netlist)
    timing = analyze_timing(netlist, clock_ps)
    histogram = netlist.cell_histogram()

    lines = [
        f"Design: {netlist.name}",
        f"  ports:    {len(netlist.inputs)} in / {len(netlist.outputs)} out",
        f"  gates:    {netlist.gate_count}  (logic depth {netlist.depth()})",
        "",
        "Area (calibrated):",
        f"  total:    {result.area_um2:10.1f} um^2",
    ]
    total_raw = netlist.area() or 1.0
    for cell_name, count in histogram.most_common():
        from ..logic.cells import cell

        share = cell(cell_name).area * count / total_raw * 100.0
        lines.append(f"  {cell_name:8s} x{count:<5d} {share:5.1f}% of cell area")
    lines += [
        "",
        "Power (1 GHz, 25% toggle / 50% probability):",
        f"  total:    {result.power_uw:10.1f} uW",
        f"  mean gate toggle rate: {activity.mean_toggle_rate:.3f} /cycle",
        "",
        f"Timing (clock {timing.clock_ps:.0f} ps):",
        f"  critical path: {timing.critical_path_ps:7.1f} ps over "
        f"{timing.levels} levels",
        f"  slack:         {timing.slack_ps:+7.1f} ps "
        f"({'MET' if timing.meets_timing else 'VIOLATED — needs sizing'})",
        f"  max frequency: {timing.max_frequency_ghz:.2f} GHz (unit-sized cells)",
    ]
    return "\n".join(lines)
