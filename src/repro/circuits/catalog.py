"""Netlist builders for every registry configuration.

Mirror of :mod:`repro.multipliers.registry` on the structural side: the
same identifier (e.g. ``"realm16-t3"``) resolves to the gate-level netlist
of that design.  The test suite checks functional-vs-structural
equivalence through this mapping, and the synthesis benches derive the
Table I area/power columns from it.
"""

from __future__ import annotations

from collections.abc import Callable

from ..logic.netlist import Netlist
from .am_rtl import am_netlist
from .dnnco_rtl import dnnco_netlist
from .drum_rtl import drum_netlist
from .implm_rtl import implm_netlist
from .intalp_rtl import intalp_netlist
from .mitchell_rtl import alm_netlist, mitchell_netlist
from .realm_rtl import mbm_netlist, realm_netlist
from .scaletrim_rtl import scaletrim_netlist
from .ssm_rtl import essm_netlist, ssm_netlist
from .wallace import wallace_netlist

__all__ = ["NETLISTS", "netlist_for"]

NetlistFactory = Callable[[int], Netlist]


def _build_catalog() -> dict[str, NetlistFactory]:
    catalog: dict[str, NetlistFactory] = {"accurate": wallace_netlist}
    for m in (16, 8, 4):
        for t in range(10):
            catalog[f"realm{m}-t{t}"] = (
                lambda n, m=m, t=t: realm_netlist(n, m=m, t=t)
            )
    catalog["calm"] = mitchell_netlist
    catalog["implm-ea"] = implm_netlist
    for t in (0, 2, 4, 6, 8, 9):
        catalog[f"mbm-t{t}"] = lambda n, t=t: mbm_netlist(n, t=t)
    for m in (3, 6, 9, 11, 12):
        catalog[f"alm-maa-m{m}"] = lambda n, m=m: alm_netlist(n, m=m, adder="MAA")
        catalog[f"alm-soa-m{m}"] = lambda n, m=m: alm_netlist(n, m=m, adder="SOA")
    for level in (2, 1):
        catalog[f"intalp-l{level}"] = (
            lambda n, level=level: intalp_netlist(n, level=level)
        )
    for nb in (13, 9, 5):
        catalog[f"am1-nb{nb}"] = lambda n, nb=nb: am_netlist(n, nb=nb, variant="AM1")
        catalog[f"am2-nb{nb}"] = lambda n, nb=nb: am_netlist(n, nb=nb, variant="AM2")
    for k in (8, 7, 6, 5, 4):
        catalog[f"drum-k{k}"] = lambda n, k=k: drum_netlist(n, k=k)
    for m in (10, 9, 8):
        catalog[f"ssm-m{m}"] = lambda n, m=m: ssm_netlist(n, m=m)
    catalog["essm8"] = lambda n: essm_netlist(n, m=8)
    for t, c in ((3, 2), (4, 0), (4, 2), (6, 3)):
        catalog[f"scaletrim-t{t}-c{c}"] = (
            lambda n, t=t, c=c: scaletrim_netlist(n, t=t, c=c)
        )
    for level in (4, 6, 8):
        catalog[f"dnnco-l{level}"] = lambda n, level=level: dnnco_netlist(
            n, l=level
        )
    return catalog


#: identifier -> netlist factory(bitwidth), aligned with the registry
NETLISTS: dict[str, NetlistFactory] = _build_catalog()


def netlist_for(name: str, bitwidth: int = 16) -> Netlist:
    """Build (and prune) the structural netlist of a named configuration."""
    try:
        factory = NETLISTS[name]
    except KeyError:
        raise KeyError(
            f"no netlist for {name!r}; known: {', '.join(NETLISTS)}"
        ) from None
    netlist = factory(bitwidth)
    if netlist.outputs and netlist.gate_count:
        netlist.prune()
    return netlist
