"""Structural SSM and ESSM [14]: static segment selection around a small
exact multiplier.

SSM needs only a zero-detect on the upper bits and a 2:1 segment mux per
operand; ESSM adds a third (middle) segment and a 3-way priority select.
Because the segment positions are static, the output scaler is a mux over
a handful of fixed placements rather than a general barrel shifter —
which is why these designs are cheap, matching their strong area numbers
in Table I.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist
from .lod import or_tree
from .shifter import barrel_left
from .wallace import wallace_multiplier

__all__ = ["ssm_netlist", "essm_netlist"]

Net = int
Bus = list[Net]


def ssm_netlist(bitwidth: int = 16, m: int = 8) -> Netlist:
    """SSM(m): high/low static segments, exact ``m x m`` core."""
    if not 2 <= m < bitwidth:
        raise ValueError(f"segment width m must be in [2, {bitwidth - 1}], got {m}")
    nl = Netlist(f"ssm{bitwidth}-m{m}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)

    def segment(operand: Bus) -> tuple[Bus, Net]:
        """Returns ``(segment_bits, use_high)``."""
        use_high = or_tree(nl, operand[m:])
        low = operand[:m]
        high = operand[bitwidth - m :]
        seg = [nl.add("MUX2", lo, hi, use_high) for lo, hi in zip(low, high)]
        return seg, use_high

    seg_a, high_a = segment(a)
    seg_b, high_b = segment(b)
    core = wallace_multiplier(nl, seg_a, seg_b)

    # output placement: core << (N-m) per high segment -> three fixed
    # placements selected by (high_a, high_b)
    shift = bitwidth - m
    placed_0 = core
    placed_1 = [CONST0] * shift + core
    placed_2 = [CONST0] * (2 * shift) + core
    width = 2 * bitwidth

    def pad(bus: Bus) -> Bus:
        return (bus + [CONST0] * width)[:width]

    one_high = [
        nl.add("MUX2", p0, p1, high_a)
        for p0, p1 in zip(pad(placed_0), pad(placed_1))
    ]
    both = [
        nl.add("MUX2", p1, p2, high_a)
        for p1, p2 in zip(pad(placed_1), pad(placed_2))
    ]
    product = [nl.add("MUX2", lo, hi, high_b) for lo, hi in zip(one_high, both)]
    nl.set_outputs(product)
    nl.prune()
    return nl


def essm_netlist(bitwidth: int = 16, m: int = 8) -> Netlist:
    """ESSM(m): three static segments selected by the leading-one region."""
    if not 2 <= m < bitwidth:
        raise ValueError(f"segment width m must be in [2, {bitwidth - 1}], got {m}")
    if (bitwidth - m) % 2 != 0:
        raise ValueError(f"ESSM needs even N-m, got N={bitwidth}, m={m}")
    nl = Netlist(f"essm{bitwidth}-m{m}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    high_offset = bitwidth - m
    mid_offset = high_offset // 2

    def segment(operand: Bus) -> tuple[Bus, Bus]:
        """Returns ``(segment_bits, shift_amount_bus)``."""
        use_high = or_tree(nl, operand[m + mid_offset :])
        use_mid_or_high = or_tree(nl, operand[m:])
        low = operand[:m]
        mid = operand[mid_offset : mid_offset + m]
        high = operand[high_offset:]
        low_or_mid = [
            nl.add("MUX2", lo, mi, use_mid_or_high) for lo, mi in zip(low, mid)
        ]
        seg = [nl.add("MUX2", lm, hi, use_high) for lm, hi in zip(low_or_mid, high)]
        # shift amount in {0, mid_offset, high_offset}: encode directly as
        # a binary bus for the output barrel shifter
        shift_bits: Bus = []
        for bit in range(high_offset.bit_length()):
            mid_bit = (mid_offset >> bit) & 1
            high_bit = (high_offset >> bit) & 1
            options = {
                (0, 0): CONST0,
                (0, 1): nl.add("ANDN2", use_high, CONST0),
                (1, 0): nl.add("ANDN2", use_mid_or_high, use_high),
                (1, 1): use_mid_or_high,
            }
            shift_bits.append(options[(mid_bit, high_bit)])
        return seg, shift_bits

    seg_a, shift_a = segment(a)
    seg_b, shift_b = segment(b)
    core = wallace_multiplier(nl, seg_a, seg_b)

    from .adders import ripple_adder

    total_shift, carry = ripple_adder(nl, shift_a, shift_b)
    product = barrel_left(nl, core, total_shift + [carry], 2 * bitwidth)
    nl.set_outputs(product)
    nl.prune()
    return nl
