"""Radix-4 Booth recoding and a Dadda reduction — the other accurate
multiplier microarchitectures.

The paper's accurate reference is a Wallace tree; real libraries ship
several accurate microarchitectures, and which one anchors the Table I
percentages matters for the cost model.  This module provides:

* :func:`booth_multiplier` — unsigned radix-4 Booth: operand ``b`` is
  recoded into ``N/2 + 1`` signed digits in ``{-2..+2}``, partial products
  become shift/negate selections of ``a``, and the (two's complement)
  rows are reduced carry-save.  Roughly half the partial products of the
  AND-array at the price of recode/negate logic.
* :func:`dadda_multiplier` — Dadda's reduction discipline over the plain
  AND array: compress each column only as much as the next stage's bound
  requires, giving fewer compressors than Wallace with equal depth.

Both are bit-exact (exhaustive tests at small widths) and can serve as
the ``accurate`` anchor in ablations (``bench_ablation_adders``).
"""

from __future__ import annotations

from ..logic.netlist import CONST0, CONST1, Netlist
from .adders import full_adder, half_adder, ripple_adder
from .wallace import partial_products

__all__ = ["booth_multiplier", "dadda_multiplier", "booth_netlist", "dadda_netlist"]

Net = int
Bus = list[Net]


def _booth_digit(nl: Netlist, bits: tuple[Net, Net, Net]) -> dict[str, Net]:
    """Decode one radix-4 Booth digit from ``(b_{2i+1}, b_2i, b_{2i-1})``.

    Returns selection lines: ``one`` (|digit| == 1), ``two`` (|digit| == 2)
    and ``neg`` (digit < 0).  Encoding: digit = -2*b_{2i+1} + b_2i + b_{2i-1}.
    """
    high, mid, low = bits
    one = nl.add("XOR2", mid, low)
    # |digit| == 2 when bits are 100 (=-2) or 011 (=+2)
    two_neg = nl.add(
        "AND2", nl.add("NOR2", mid, low), high
    )
    two_pos = nl.add("ANDN2", nl.add("AND2", mid, low), high)
    two = nl.add("OR2", two_neg, two_pos)
    # neg=high also fires on 111 (digit 0): the all-ones magnitude plus the
    # +1 and sign extension then sum to exactly 2**out_width == 0, so the
    # simplification is value-safe (checked exhaustively by the tests)
    return {"one": one, "two": two, "neg": high}


def booth_multiplier(nl: Netlist, a: Bus, b: Bus) -> Bus:
    """Exact unsigned product via radix-4 Booth recoding of ``b``."""
    n = len(a)
    m = len(b)
    out_width = n + m
    digits = (m + 2) // 2  # unsigned needs one extra digit for the top carry

    # rows are two's complement over out_width bits; negation is handled
    # as (~selected + 1) with the +1 injected as a separate column bit
    columns: list[list[Net]] = [[] for _ in range(out_width)]
    padded_b = [CONST0] + list(b) + [CONST0, CONST0]
    for index in range(digits):
        bits = (
            padded_b[2 * index + 2],
            padded_b[2 * index + 1],
            padded_b[2 * index],
        )
        select = _booth_digit(nl, bits)
        shift = 2 * index

        # selected magnitude per bit position: one ? a_j : (two ? a_{j-1} : 0)
        row: Bus = []
        for position in range(n + 1):
            take_one = (
                nl.add("AND2", a[position], select["one"]) if position < n else CONST0
            )
            take_two = (
                nl.add("AND2", a[position - 1], select["two"]) if position >= 1 else CONST0
            )
            row.append(nl.add("OR2", take_one, take_two))

        # conditional negation: XOR with neg, sign-extend, +neg at the LSB
        negated = [nl.add("XOR2", bit, select["neg"]) for bit in row]
        for position, bit in enumerate(negated):
            column = shift + position
            if column < out_width:
                columns[column].append(bit)
        # sign extension: the row's sign bit (neg when active) repeats
        for column in range(shift + n + 1, out_width):
            columns[column].append(select["neg"])
        if shift < out_width:
            columns[shift].append(select["neg"])  # the +1 of two's complement

    row_a, row_b = _dadda_reduce(nl, columns)
    total, _ = ripple_adder(nl, row_a, row_b)
    return total[:out_width]


def _dadda_reduce(nl: Netlist, columns: list[list[Net]]) -> tuple[Bus, Bus]:
    """Dadda column reduction to two rows.

    Stage bounds are the Dadda sequence 2, 3, 4, 6, 9, 13, ...; each stage
    compresses every column only down to the bound, placing carries into
    the next column of the *same* stage output (standard Dadda bookkeeping).
    """
    columns = [[bit for bit in col if bit is not CONST0] for col in columns]
    tallest = max((len(c) for c in columns), default=2)
    heights = [2]
    while heights[-1] < tallest:
        heights.append(heights[-1] * 3 // 2)
    # apply every bound strictly below the tallest column, largest first
    for bound in reversed(heights[:-1] or heights):
        next_columns: list[list[Net]] = [[] for _ in range(len(columns) + 1)]
        for weight, col in enumerate(columns):
            pending = list(col)
            # account for carries already placed into this column
            pending = next_columns[weight] + pending
            next_columns[weight] = []
            while len(pending) > bound:
                if len(pending) == bound + 1:
                    s, c = half_adder(nl, pending.pop(), pending.pop())
                else:
                    s, c = full_adder(
                        nl, pending.pop(), pending.pop(), pending.pop()
                    )
                pending.append(s)
                next_columns[weight + 1].append(c)
            next_columns[weight].extend(pending)
        while next_columns and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns

    row_a: Bus = []
    row_b: Bus = []
    for col in columns:
        row_a.append(col[0] if len(col) > 0 else CONST0)
        row_b.append(col[1] if len(col) > 1 else CONST0)
        if len(col) > 2:
            raise AssertionError("Dadda reduction left a column above 2")
    return row_a, row_b


def dadda_multiplier(nl: Netlist, a: Bus, b: Bus) -> Bus:
    """Exact product with an AND array and Dadda column reduction."""
    columns = partial_products(nl, a, b)
    row_a, row_b = _dadda_reduce(nl, columns)
    total, carry = ripple_adder(nl, row_a, row_b)
    return (total + [carry])[: len(a) + len(b)]


def booth_netlist(bitwidth: int = 16) -> Netlist:
    """Standalone radix-4 Booth multiplier netlist."""
    nl = Netlist(f"booth{bitwidth}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    nl.set_outputs(booth_multiplier(nl, a, b))
    nl.prune()
    return nl


def dadda_netlist(bitwidth: int = 16) -> Netlist:
    """Standalone Dadda multiplier netlist."""
    nl = Netlist(f"dadda{bitwidth}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    nl.set_outputs(dadda_multiplier(nl, a, b))
    nl.prune()
    return nl
