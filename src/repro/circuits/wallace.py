"""Wallace-tree unsigned multiplier (the paper's accurate reference).

Partial products are generated with an AND grid and reduced column-wise
with 3:2 (full adder) and 2:2 (half adder) compressors until every column
holds at most two bits; a final ripple adder produces the ``2N``-bit
product.  This is the structure the paper synthesizes as the accurate
16-bit multiplier (1898.1 um^2 / 821.9 uW reference point), and it is also
instantiated at small widths inside DRUM/SSM/ESSM.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist
from .adders import full_adder, half_adder, ripple_adder

__all__ = ["partial_products", "reduce_columns", "wallace_multiplier", "wallace_netlist"]

Net = int
Bus = list[Net]


def partial_products(nl: Netlist, a: Bus, b: Bus) -> list[list[Net]]:
    """AND-grid partial products, bucketed by output column weight."""
    columns: list[list[Net]] = [[] for _ in range(len(a) + len(b))]
    for j, bit_b in enumerate(b):
        for i, bit_a in enumerate(a):
            columns[i + j].append(nl.add("AND2", bit_a, bit_b))
    return columns


def reduce_columns(nl: Netlist, columns: list[list[Net]]) -> tuple[Bus, Bus]:
    """Carry-save reduction to two rows (Wallace scheme).

    Repeatedly compresses every column with full/half adders, pushing
    carries into the next column, until no column holds more than two
    bits.  Returns the two addend rows for the final carry-propagate add.
    """
    columns = [list(col) for col in columns]
    while any(len(col) > 2 for col in columns):
        next_columns: list[list[Net]] = [[] for _ in range(len(columns) + 1)]
        for weight, col in enumerate(columns):
            index = 0
            while len(col) - index >= 3:
                s, c = full_adder(nl, col[index], col[index + 1], col[index + 2])
                next_columns[weight].append(s)
                next_columns[weight + 1].append(c)
                index += 3
            remaining = len(col) - index
            if remaining == 2 and len(col) > 2:
                s, c = half_adder(nl, col[index], col[index + 1])
                next_columns[weight].append(s)
                next_columns[weight + 1].append(c)
            else:
                next_columns[weight].extend(col[index:])
        while next_columns and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns

    row_a: Bus = []
    row_b: Bus = []
    for col in columns:
        row_a.append(col[0] if len(col) > 0 else CONST0)
        row_b.append(col[1] if len(col) > 1 else CONST0)
    return row_a, row_b


def wallace_multiplier(
    nl: Netlist, a: Bus, b: Bus, final_adder: str = "ripple"
) -> Bus:
    """Exact product bus of width ``len(a) + len(b)``.

    ``final_adder`` selects the carry-propagate structure that merges the
    two carry-save rows: ``"ripple"`` (minimum area, the paper's
    area-reference flavor) or any parallel-prefix style from
    :data:`repro.circuits.prefix_adders.ADDER_STYLES` — what a
    timing-driven flow would pick at 1 GHz.
    """
    from .prefix_adders import ADDER_STYLES

    if final_adder not in ADDER_STYLES:
        raise ValueError(
            f"final_adder must be one of {sorted(ADDER_STYLES)}, got "
            f"{final_adder!r}"
        )
    columns = partial_products(nl, a, b)
    row_a, row_b = reduce_columns(nl, columns)
    total, carry = ADDER_STYLES[final_adder](nl, row_a, row_b)
    product = (total + [carry])[: len(a) + len(b)]
    return product


def wallace_netlist(bitwidth: int = 16, final_adder: str = "ripple") -> Netlist:
    """Standalone accurate ``N x N`` multiplier netlist."""
    suffix = "" if final_adder == "ripple" else f"-{final_adder}"
    nl = Netlist(f"wallace{bitwidth}{suffix}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    nl.set_outputs(wallace_multiplier(nl, a, b, final_adder))
    return nl
