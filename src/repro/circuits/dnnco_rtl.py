"""Structural DNN co-optimized multiplier (arXiv 2210.03916).

An ``N x N`` AND-grid array whose low ``l`` result columns use a single
OR gate in place of the exact column compressors — the cheapest possible
compressor, wrong only when a column holds two or more set partial
products.  Columns at and above ``l`` keep the Wallace carry-save
reduction and the final ripple adder of the accurate reference, so the
area saving scales with ``l`` while the high product bits stay exact.

Bit-exact against :class:`repro.multipliers.dnnco.DnnCoMultiplier`
(enforced by ``tests/test_rtl_equivalence.py``).
"""

from __future__ import annotations

from ..logic.netlist import Netlist
from .lod import or_tree
from .wallace import partial_products, reduce_columns
from .adders import ripple_adder

__all__ = ["dnnco_netlist"]


def dnnco_netlist(bitwidth: int = 16, l: int = 6) -> Netlist:
    """DNN co-opt multiplier with ``l`` OR-approximated low columns."""
    if not 1 <= l <= bitwidth:
        raise ValueError(
            f"approximated column count l must be in [1, {bitwidth}], got {l}"
        )

    nl = Netlist(f"dnnco{bitwidth}-l{l}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    columns = partial_products(nl, a, b)

    # the approximate low columns produce their result bit directly and
    # feed no carries upward — the OR replaces the whole compressor tree
    low = [or_tree(nl, columns[j]) for j in range(l)]

    row_a, row_b = reduce_columns(nl, columns[l:])
    total, carry = ripple_adder(nl, row_a, row_b)
    high = (total + [carry])[: 2 * bitwidth - l]

    nl.set_outputs(low + high)
    nl.prune()
    return nl
