"""Structural DRUM [3]: dynamic-range fragment extraction around a small
exact multiplier.

Per operand: an LOD finds the leading one; a right barrel shifter aligns
the top ``k`` bits down to the LSBs (shift amount ``pos - (k-1)``,
saturated at 0); the fragment LSB is forced to 1 whenever truncation
happened.  The two ``k``-bit fragments feed an exact Wallace multiplier
and a left barrel shifter restores the magnitude using the sum of the two
shift amounts.
"""

from __future__ import annotations

from ..logic.netlist import Netlist
from .adders import ripple_adder, ripple_subtractor
from .lod import leading_one
from .logdatapath import gate_output
from .shifter import barrel_left, barrel_right
from .wallace import wallace_multiplier

__all__ = ["drum_netlist"]

Net = int
Bus = list[Net]


def _fragment(nl: Netlist, operand: Bus, k: int) -> tuple[Bus, Bus]:
    """Returns ``(fragment, shift_amount)`` for one operand."""
    _, position, _ = leading_one(nl, operand)
    # shift = max(position - (k-1), 0); no_borrow = (position >= k-1)
    difference, no_borrow = ripple_subtractor(nl, position, _const_bus(nl, k - 1, len(position)))
    shift = [nl.add("AND2", bit, no_borrow) for bit in difference[: len(position)]]
    fragment = barrel_right(nl, operand, shift, width=k)
    # force the fragment LSB to 1 whenever bits were shifted out (shift>0),
    # i.e. when position > k-1: no_borrow AND (difference != 0)
    from .lod import or_tree

    truncated = nl.add("AND2", no_borrow, or_tree(nl, shift))
    fragment[0] = nl.add("OR2", fragment[0], truncated)
    return fragment, shift


def _const_bus(nl: Netlist, value: int, width: int) -> Bus:
    from ..logic.netlist import CONST0, CONST1

    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def drum_netlist(bitwidth: int = 16, k: int = 6) -> Netlist:
    """DRUM with fragment width ``k``; bit-exact vs. the functional model."""
    if not 3 <= k <= bitwidth:
        raise ValueError(f"fragment width k must be in [3, {bitwidth}], got {k}")
    nl = Netlist(f"drum{bitwidth}-k{k}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)

    frag_a, shift_a = _fragment(nl, a, k)
    frag_b, shift_b = _fragment(nl, b, k)
    core = wallace_multiplier(nl, frag_a, frag_b)

    total_shift, carry = ripple_adder(nl, shift_a, shift_b)
    product = barrel_left(nl, core, total_shift + [carry], 2 * bitwidth)

    from .lod import or_tree

    nonzero_a = or_tree(nl, a)
    nonzero_b = or_tree(nl, b)
    nl.set_outputs(gate_output(nl, product, nonzero_a, nonzero_b))
    nl.prune()
    return nl
