"""Structural scaleTRIM datapath (arXiv 2303.02495).

The hardware mirrors the functional model block for block:

* two LOD + priority-encoder + normalizing-shifter front ends (shared
  with every log design, :func:`~repro.circuits.logdatapath.log_front_end`);
* pure-rewiring fraction scaling — only the top ``t`` fraction bits ever
  exist downstream, which is where scaleTRIM's area saving comes from;
* a ``t``-bit fraction adder whose carry selects the linearization
  overflow term (the gated sum re-entering one weight up);
* the ``2^c x 2^c`` hardwired compensation LUT addressed by the top
  ``c`` bits of each scaled fraction (a constant mux tree, like REALM's
  factor LUT);
* mantissa assembly on the ``2^-2t`` grid, exponent adder, output
  scaling shifter and zero gating.

Bit-exact against :class:`repro.multipliers.scaletrim.ScaleTrimMultiplier`
(enforced by ``tests/test_rtl_equivalence.py``).
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist
from ..multipliers.scaletrim import compensation_lut
from .adders import ripple_adder
from .logdatapath import gate_output, log_front_end, mantissa_with_lead
from .mux import constant_lut
from .shifter import scaling_shifter

__all__ = ["scaletrim_netlist"]

Net = int
Bus = list[Net]


def scaletrim_netlist(bitwidth: int = 16, t: int = 4, c: int = 2) -> Netlist:
    """scaleTRIM with ``t`` scaled-fraction bits, ``c`` LUT index bits."""
    if not 1 <= t <= bitwidth - 1:
        raise ValueError(
            f"truncated fraction width t must be in [1, {bitwidth - 1}], got {t}"
        )
    if not 0 <= c <= t:
        raise ValueError(f"compensation bits c must be in [0, t={t}], got {c}")

    nl = Netlist(f"scaletrim{bitwidth}-t{t}-c{c}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    op_a = log_front_end(nl, a)
    op_b = log_front_end(nl, b)

    # scaled fractions: the top t bits of the left-aligned fraction
    # (truncation for k >= t, exact scaling below — one rewiring)
    xs_a = op_a.fraction[bitwidth - 1 - t :]
    xs_b = op_b.fraction[bitwidth - 1 - t :]

    # S = xs_a + xs_b; the carry says S >= 2^t, so the linearization
    # term max(0, S - 2^t) is the carry-gated sum
    fraction_sum, c_of = ripple_adder(nl, xs_a, xs_b)
    overflow = [nl.add("AND2", bit, c_of) for bit in fraction_sum]

    # mantissa head 2^t + S as [sum, NOT carry, carry], plus the gated
    # overflow term: value (2^t + S + max(0, S - 2^t)) on the 2^-t grid
    head = mantissa_with_lead(nl, fraction_sum, c_of)
    high, high_carry = ripple_adder(nl, head, overflow)
    high.append(high_carry)

    # compensation LUT on the 2^-2t grid, indexed by the top c bits of
    # each scaled fraction (select value = ia * 2^c + ib, row-major)
    mantissa = [CONST0] * t + high
    lut_values = [int(v) for v in compensation_lut(t, c)]
    code_width = max(v for v in lut_values).bit_length()
    if code_width:
        select = xs_b[t - c :] + xs_a[t - c :]
        code = constant_lut(nl, lut_values, code_width, select)
        mantissa, comp_carry = ripple_adder(nl, mantissa, code)
        mantissa.append(comp_carry)

    exponent_base, exp_carry = ripple_adder(
        nl, op_a.characteristic, op_b.characteristic
    )
    exponent = exponent_base + [exp_carry]

    product = scaling_shifter(nl, mantissa, exponent, 2 * t, 2 * bitwidth + 1)
    nl.set_outputs(gate_output(nl, product, op_a.nonzero, op_b.nonzero))
    nl.prune()
    return nl
