"""Structural AM1/AM2 [15]: OR-tree accumulation with error recovery.

The partial products are accumulated by a binary tree of OR "adders"; each
node also produces its error vector (the AND of its inputs — the amount
the OR dropped).  AM1 recovers by ORing all error vectors, masking to the
``nb`` MSBs and adding once; AM2 sums the error vectors exactly (a
carry-save compressor tree) before masking and adding, which is why AM2's
area reduction in Table I is much smaller than AM1's at equal ``nb``.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist
from .adders import ripple_adder
from .wallace import reduce_columns

__all__ = ["am_netlist"]

Net = int
Bus = list[Net]


def _or_bus(nl: Netlist, a: Bus, b: Bus) -> Bus:
    return [nl.add("OR2", x, y) for x, y in zip(a, b)]


def _and_bus(nl: Netlist, a: Bus, b: Bus) -> Bus:
    return [nl.add("AND2", x, y) for x, y in zip(a, b)]


def am_netlist(bitwidth: int = 16, nb: int = 13, variant: str = "AM1") -> Netlist:
    """AM1 (OR recovery) or AM2 (exact-sum recovery), masked to ``nb`` MSBs."""
    if variant not in ("AM1", "AM2"):
        raise ValueError(f"variant must be 'AM1' or 'AM2', got {variant!r}")
    if not 0 <= nb <= 2 * bitwidth:
        raise ValueError(f"recovery width nb must be in [0, {2 * bitwidth}]")
    nl = Netlist(f"{variant.lower()}{bitwidth}-nb{nb}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    width = 2 * bitwidth

    def padded_pp(i: int) -> Bus:
        gated = [nl.add("AND2", bit, b[i]) for bit in a]
        return [CONST0] * i + gated + [CONST0] * (width - bitwidth - i)

    terms: list[Bus] = [padded_pp(i) for i in range(bitwidth)]
    errors: list[Bus] = []
    while len(terms) > 1:
        next_terms: list[Bus] = []
        for first, second in zip(terms[0::2], terms[1::2]):
            next_terms.append(_or_bus(nl, first, second))
            errors.append(_and_bus(nl, first, second))
        if len(terms) % 2 == 1:
            next_terms.append(terms[-1])
        terms = next_terms
    approx = terms[0]

    low_cut = width - nb
    if variant == "AM1":
        combined = errors[0]
        for error in errors[1:]:
            combined = _or_bus(nl, combined, error)
        recovery = [CONST0] * low_cut + combined[low_cut:]
    else:
        # exact multi-operand sum via carry-save compression, then mask:
        # bits above 2**width fall outside the mask and are dropped.
        columns: list[list[Net]] = [[] for _ in range(width)]
        for error in errors:
            for weight, bit in enumerate(error):
                if bit is not CONST0:
                    columns[weight].append(bit)
        row_a, row_b = reduce_columns(nl, [col or [CONST0] for col in columns])
        total, _ = ripple_adder(nl, row_a[:width], row_b[:width])
        recovery = [CONST0] * low_cut + total[low_cut:width]

    product, _ = ripple_adder(nl, approx, recovery)
    nl.set_outputs(product[:width])
    nl.prune()
    return nl
