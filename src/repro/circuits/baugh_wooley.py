"""Baugh-Wooley signed multiplier — the structural side of Section III-C.

The paper handles signed numbers by wrapping an unsigned core in
sign-magnitude logic (implemented functionally in
:mod:`repro.multipliers.signed`).  The other classical option — and what a
library would ship for exact signed multiplication — is the Baugh-Wooley
array: two's complement operands multiplied directly by complementing the
cross partial products of the sign bits and adding two correction
constants, reducing with the same carry-save machinery as the unsigned
Wallace tree.

For ``N``-bit two's complement ``A = -a_{N-1} 2^{N-1} + Σ a_i 2^i`` (and
likewise ``B``), the product is

```
A*B = Σ_{i,j<N-1} a_i b_j 2^{i+j}
    + 2^{N-1} Σ_{j<N-1} NOT(a_{N-1} b_j) 2^j     (complemented cross terms)
    + 2^{N-1} Σ_{i<N-1} NOT(a_i b_{N-1}) 2^i
    + a_{N-1} b_{N-1} 2^{2N-2}
    + 2^N + 2^{2N-1}                              (correction constants)
```

taken modulo ``2^{2N}`` — exactly what the exhaustive tests check.
"""

from __future__ import annotations

from ..logic.netlist import CONST1, Netlist
from .adders import ripple_adder
from .wallace import reduce_columns

__all__ = ["baugh_wooley_multiplier", "baugh_wooley_netlist"]

Net = int
Bus = list[Net]


def baugh_wooley_multiplier(nl: Netlist, a: Bus, b: Bus) -> Bus:
    """Exact two's complement product, ``2N`` bits (mod ``2^2N``)."""
    n = len(a)
    if len(b) != n:
        raise ValueError(
            f"Baugh-Wooley needs equal operand widths, got {n} and {len(b)}"
        )
    if n < 2:
        raise ValueError("signed multiplication needs at least 2 bits")
    out_width = 2 * n
    columns: list[list[Net]] = [[] for _ in range(out_width)]

    sign_a, sign_b = a[n - 1], b[n - 1]
    # magnitude-by-magnitude terms
    for i in range(n - 1):
        for j in range(n - 1):
            columns[i + j].append(nl.add("AND2", a[i], b[j]))
    # complemented cross terms with each sign bit
    for j in range(n - 1):
        columns[n - 1 + j].append(nl.add("NAND2", sign_a, b[j]))
    for i in range(n - 1):
        columns[n - 1 + i].append(nl.add("NAND2", a[i], sign_b))
    # sign-by-sign term and the two correction ones
    columns[2 * n - 2].append(nl.add("AND2", sign_a, sign_b))
    columns[n].append(CONST1)
    columns[2 * n - 1].append(CONST1)

    row_a, row_b = reduce_columns(nl, columns)
    total, _ = ripple_adder(nl, row_a[:out_width], row_b[:out_width])
    return total[:out_width]


def baugh_wooley_netlist(bitwidth: int = 16) -> Netlist:
    """Standalone signed ``N x N -> 2N`` multiplier netlist."""
    nl = Netlist(f"baugh-wooley{bitwidth}")
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    nl.set_outputs(baugh_wooley_multiplier(nl, a, b))
    nl.prune()
    return nl
