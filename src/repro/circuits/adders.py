"""Structural adders: exact ripple/carry-save plus the approximate adders
of the ALM designs.

All functions take the netlist builder and LSB-first buses of net handles
and return buses.  Widths may differ; shorter operands are zero-extended,
exactly as a synthesis tool would tie unused bits.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist

__all__ = [
    "half_adder",
    "full_adder",
    "ripple_adder",
    "ripple_subtractor",
    "incrementer",
    "loa_adder",
    "soa_adder",
    "maa_adder",
    "equal_const",
]

Net = int
Bus = list[Net]


def half_adder(nl: Netlist, a: Net, b: Net) -> tuple[Net, Net]:
    """Returns ``(sum, carry)``."""
    return nl.add("XOR2", a, b), nl.add("AND2", a, b)


def full_adder(nl: Netlist, a: Net, b: Net, c: Net) -> tuple[Net, Net]:
    """Returns ``(sum, carry)`` using the XOR3/MAJ3 cell pair."""
    return nl.add("XOR3", a, b, c), nl.add("MAJ3", a, b, c)


def _extend(bus: Bus, width: int) -> Bus:
    return bus + [CONST0] * (width - len(bus))


def ripple_adder(
    nl: Netlist, a: Bus, b: Bus, carry_in: Net = CONST0
) -> tuple[Bus, Net]:
    """Exact ripple-carry addition; returns ``(sum, carry_out)``.

    The sum bus is as wide as the wider operand; the carry out is the
    extra MSB.
    """
    width = max(len(a), len(b))
    a = _extend(a, width)
    b = _extend(b, width)
    total: Bus = []
    carry = carry_in
    for bit_a, bit_b in zip(a, b):
        s, carry = full_adder(nl, bit_a, bit_b, carry)
        total.append(s)
    return total, carry


def ripple_subtractor(nl: Netlist, a: Bus, b: Bus) -> tuple[Bus, Net]:
    """``a - b`` in two's complement; returns ``(difference, not_borrow)``.

    The second value is the carry out, which is 1 exactly when
    ``a >= b`` — the comparator output the datapaths use.
    """
    width = max(len(a), len(b))
    b_inverted = [nl.add("INV", bit) for bit in _extend(b, width)]
    from ..logic.netlist import CONST1

    return ripple_adder(nl, _extend(a, width), b_inverted, carry_in=CONST1)


def incrementer(nl: Netlist, a: Bus, enable: Net) -> Bus:
    """``a + enable``; result one bit wider than ``a``."""
    out: Bus = []
    carry = enable
    for bit in a:
        s, carry = half_adder(nl, bit, carry)
        out.append(s)
    out.append(carry)
    return out


def equal_const(nl: Netlist, bus: Bus, value: int) -> Net:
    """Single net that is 1 when ``bus`` equals the constant ``value``."""
    if value < 0 or value >= (1 << len(bus)):
        raise ValueError(f"constant {value} does not fit in {len(bus)} bits")
    terms = [
        bit if (value >> i) & 1 else nl.add("INV", bit)
        for i, bit in enumerate(bus)
    ]
    result = terms[0]
    for term in terms[1:]:
        result = nl.add("AND2", result, term)
    return result


# ----------------------------------------------------------------------
# approximate adders of the ALM designs (Liu et al. [9])
# ----------------------------------------------------------------------


def loa_adder(nl: Netlist, a: Bus, b: Bus, m: int) -> tuple[Bus, Net]:
    """Lower-part OR adder: low ``m`` bits ORed, AND carry into the rest."""
    width = max(len(a), len(b))
    a = _extend(a, width)
    b = _extend(b, width)
    if not 1 <= m <= width:
        raise ValueError(f"approximate width m={m} out of range for {width} bits")
    low = [nl.add("OR2", a[i], b[i]) for i in range(m)]
    carry = nl.add("AND2", a[m - 1], b[m - 1])
    high, carry_out = ripple_adder(nl, a[m:], b[m:], carry_in=carry)
    return low + high, carry_out


def soa_adder(nl: Netlist, a: Bus, b: Bus, m: int) -> tuple[Bus, Net]:
    """Set-one adder: low ``m`` bits constant 1, AND carry into the rest.

    The low-part logic vanishes entirely (the constants are free), which
    is why ALM-SOA posts the largest area reductions in Table I.
    """
    from ..logic.netlist import CONST1

    width = max(len(a), len(b))
    a = _extend(a, width)
    b = _extend(b, width)
    if not 1 <= m <= width:
        raise ValueError(f"approximate width m={m} out of range for {width} bits")
    low = [CONST1] * m
    carry = nl.add("AND2", a[m - 1], b[m - 1])
    high, carry_out = ripple_adder(nl, a[m:], b[m:], carry_in=carry)
    return low + high, carry_out


def maa_adder(nl: Netlist, a: Bus, b: Bus, m: int) -> tuple[Bus, Net]:
    """Mirror-adder approximation: low bits pass one operand through.

    The low ``m`` sum bits are ``a``'s bits (wires, no logic) and the
    carry into the exact part is ``b``'s bit ``m-1``.
    """
    width = max(len(a), len(b))
    a = _extend(a, width)
    b = _extend(b, width)
    if not 1 <= m <= width:
        raise ValueError(f"approximate width m={m} out of range for {width} bits")
    low = a[:m]
    high, carry_out = ripple_adder(nl, a[m:], b[m:], carry_in=b[m - 1])
    return low + high, carry_out
