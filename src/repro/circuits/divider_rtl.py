"""Structural netlists for the log dividers (the method extension).

Same Fig. 3 vocabulary as the multiplier datapaths: LOD + normalizing
shifter front ends, a fraction *subtractor* instead of the adder, a
hardwired LUT of (negative) per-segment corrections whose magnitude is
doubled in the borrow branch (the mirror image of the multiplier's
``s_ij >> 1`` mux — the borrow mantissa lives one binade lower, so the
correction scales up), a signed exponent subtract, and a bidirectional
output scaler.

Division by zero is a datapath don't-care (a real design flags it from
the divisor's zero-detect); the equivalence tests drive ``b >= 1``.
"""

from __future__ import annotations

import numpy as np

from ..logic.netlist import CONST0, CONST1, Netlist
from .adders import ripple_adder, ripple_subtractor
from .logdatapath import log_front_end
from .mux import constant_lut
from .shifter import barrel_left

__all__ = ["mitchell_divider_netlist", "realm_divider_netlist"]

Net = int
Bus = list[Net]


def _divider_datapath(nl: Netlist, bitwidth: int, correction_magnitude) -> None:
    """Shared structure; ``correction_magnitude(nl, xa, xb) -> (bus, q)``
    returns the LUT magnitude output (non-negative codes of ``q-2`` bits)
    or ``None`` for the uncorrected Mitchell divider."""
    n = bitwidth
    width = n - 1
    a = nl.input_bus("a", n)
    b = nl.input_bus("b", n)
    op_a = log_front_end(nl, a)
    op_b = log_front_end(nl, b)

    # fraction difference: diff_tc = (xa - xb) mod 2^width; no_borrow
    # doubles as the branch select.  Both branches share the mantissa
    # 2^width + diff_tc — only the exponent differs.
    diff, no_borrow = ripple_subtractor(nl, op_a.fraction, op_b.fraction)
    borrow = nl.add("INV", no_borrow)
    mantissa: Bus = diff + [CONST1]

    lut = correction_magnitude(nl, op_a.fraction, op_b.fraction)
    if lut is not None:
        codes, q = lut
        # magnitude on the fraction grid; doubled in the borrow branch
        base = [CONST0] * (width - q) + codes
        doubled = ([CONST0] * (width - q + 1) + codes)[: len(mantissa)]
        base = (base + [CONST0] * len(mantissa))[: len(mantissa)]
        selected = [
            nl.add("MUX2", lo, hi, borrow) for lo, hi in zip(base, doubled)
        ]
        mantissa, _ = ripple_subtractor(nl, mantissa, selected)

    # exponent = ka - kb - borrow over 6-bit two's complement:
    # a + ~b + 1 - borrow = a + ~b + no_borrow
    ka = op_a.characteristic + [CONST0, CONST0]
    kb_inverted = [nl.add("INV", bit) for bit in op_b.characteristic] + [
        CONST1,
        CONST1,
    ]
    exponent, _ = ripple_adder(nl, ka, kb_inverted, carry_in=no_borrow)

    # quotient = floor(mantissa * 2^(e - width)) with e in [-16, 15]:
    # shift the mantissa left by (e + 16) inside a wide window, then drop
    # the width + 16 fraction bits.  Over 5 bits, (e + 16) mod 32 is just
    # e mod 32 with bit 4 inverted (adding half the modulus).
    shift_amount = list(exponent[:4]) + [nl.add("INV", exponent[4])]
    window = barrel_left(nl, mantissa, shift_amount, width + 16 + n)
    quotient = window[width + 16 : width + 16 + n]

    gated = [nl.add("AND2", bit, op_a.nonzero) for bit in quotient]
    nl.set_outputs(gated)
    nl.prune()


def mitchell_divider_netlist(bitwidth: int = 16) -> Netlist:
    """Structural classical log divider."""
    nl = Netlist(f"calm-div{bitwidth}")
    _divider_datapath(nl, bitwidth, lambda *_: None)
    return nl


def realm_divider_netlist(bitwidth: int = 16, m: int = 8, q: int = 6) -> Netlist:
    """Structural REALM-style divider; bit-exact vs.
    ``RealmDivider(bitwidth, m, q)`` for nonzero divisors."""
    from ..extensions.divider import RealmDivider

    model = RealmDivider(bitwidth=bitwidth, m=m, q=q)
    magnitudes = (-model.codes).astype(np.int64)  # non-negative, < 2^(q-2)
    logm = m.bit_length() - 1

    def lut(nl: Netlist, xa: Bus, xb: Bus):
        if logm == 0:
            value = int(magnitudes[0, 0])
            bus = [
                CONST1 if (value >> bit) & 1 else CONST0 for bit in range(q - 2)
            ]
            return bus, q
        i_bits = xa[bitwidth - 1 - logm :]
        j_bits = xb[bitwidth - 1 - logm :]
        select = j_bits + i_bits
        flat = [int(magnitudes[i, j]) for i in range(m) for j in range(m)]
        return constant_lut(nl, flat, q - 2, select), q

    nl = Netlist(f"realm-div{m}-{bitwidth}b")
    _divider_datapath(nl, bitwidth, lut)
    return nl
