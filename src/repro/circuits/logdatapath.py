"""Shared datapath pieces of the log-based multiplier family (Fig. 3).

Every log multiplier in the paper — cALM, the ALM variants, MBM, REALM —
shares a front end (LOD + priority encoder + normalizing barrel shifter
per operand) and a back end (mantissa assembly + output scaling shifter +
zero gating).  These helpers build those pieces so the per-design RTL
modules only express what actually differs: the adder, the correction
path, the truncation.
"""

from __future__ import annotations

import dataclasses

from ..logic.netlist import CONST0, CONST1, Netlist
from .adders import incrementer, ripple_adder
from .lod import leading_one
from .shifter import normalize_fraction, scaling_shifter

__all__ = ["LogOperand", "log_front_end", "truncate_bus", "gate_output"]

Net = int
Bus = list[Net]


@dataclasses.dataclass
class LogOperand:
    """One operand after the log front end."""

    characteristic: Bus  # binary k, ceil(log2 N) bits
    fraction: Bus  # N-1 bits, LSB first (the x of Eq. 1)
    nonzero: Net
    onehot: Bus


def log_front_end(nl: Netlist, operand: Bus) -> LogOperand:
    """LOD + priority encoder + normalizing shifter for one operand."""
    onehot, k, nonzero = leading_one(nl, operand)
    fraction = normalize_fraction(nl, operand, k)
    return LogOperand(k, fraction, nonzero, onehot)


def truncate_bus(fraction: Bus, t: int) -> Bus:
    """Drop ``t`` LSBs and hardwire the new LSB to 1 (Section III-C).

    Pure wiring — the removed bits simply never get computed downstream,
    which is where the ``t`` knob's area saving comes from.
    """
    if not 0 <= t < len(fraction):
        raise ValueError(f"truncation t={t} out of range for {len(fraction)} bits")
    return [CONST1] + fraction[t + 1 :]


def mantissa_with_lead(nl: Netlist, fraction: Bus, carry: Net) -> Bus:
    """Mantissa bus ``2**w + fraction_value`` with a possible carry.

    ``carry`` is the carry out of the fraction addition; the mantissa is
    the fraction bits with the implied leading one at weight ``2**w``,
    promoted one position when the carry fires:  value
    ``2**w + f + carry * 2**w`` encoded in ``w + 2`` bits as
    ``[fraction, NOT carry, carry]``.
    """
    return list(fraction) + [nl.add("INV", carry), carry]


def exponent_sum(nl: Netlist, ka: Bus, kb: Bus, carry: Net) -> Bus:
    """``ka + kb + carry`` — the output shift amount."""
    base, carry_out = ripple_adder(nl, ka, kb, carry_in=carry)
    return base + [carry_out]


def gate_output(nl: Netlist, product: Bus, nonzero_a: Net, nonzero_b: Net) -> Bus:
    """Zero-input handling: force the product to zero if an operand is 0."""
    both = nl.add("AND2", nonzero_a, nonzero_b)
    return [nl.add("AND2", bit, both) for bit in product]


def log_back_end(
    nl: Netlist,
    fraction_sum: Bus,
    carry: Net,
    ka: Bus,
    kb: Bus,
    out_width: int,
) -> Bus:
    """Mantissa assembly + exponent + output barrel shifter."""
    width = len(fraction_sum)
    mantissa = mantissa_with_lead(nl, fraction_sum, CONST0)[: width + 1]
    exponent = exponent_sum(nl, ka, kb, carry)
    return scaling_shifter(nl, mantissa, exponent, width, out_width)
