"""Barrel shifters: the normalizing input shifters and the output scaler.

All shifters are log-stage mux networks.  The builder's constant folding
prunes mux stages whose data are constants, which mirrors how a synthesis
tool shrinks shifters at reduced widths (REALM/MBM's ``t`` truncation
relies on exactly that effect for its area savings).
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist

__all__ = ["barrel_left", "barrel_right", "normalize_fraction", "scaling_shifter"]

Net = int
Bus = list[Net]


def _mux_bus(nl: Netlist, d0: Bus, d1: Bus, sel: Net) -> Bus:
    return [nl.add("MUX2", a, b, sel) for a, b in zip(d0, d1)]


def barrel_left(nl: Netlist, data: Bus, amount: Bus, width: int) -> Bus:
    """``data << amount`` truncated to ``width`` bits."""
    current = list(data[:width]) + [CONST0] * max(0, width - len(data))
    for stage, sel in enumerate(amount):
        shift = 1 << stage
        shifted = [CONST0] * min(shift, width) + current[: width - shift]
        current = _mux_bus(nl, current, shifted, sel)
    return current


def barrel_right(nl: Netlist, data: Bus, amount: Bus, width: int | None = None) -> Bus:
    """``data >> amount`` (logical), truncated to ``width`` bits."""
    width = width if width is not None else len(data)
    current = list(data)
    for stage, sel in enumerate(amount):
        shift = 1 << stage
        shifted = current[shift:] + [CONST0] * min(shift, len(current))
        current = _mux_bus(nl, current, shifted, sel)
    return current[:width]


def normalize_fraction(nl: Netlist, operand: Bus, k: Bus) -> Bus:
    """Input barrel shifter of Fig. 3: left-align the bits below the
    leading one into an ``N-1``-bit fraction.

    ``fraction = (operand << (N-1-k)) mod 2**(N-1)``.  When ``N`` is a
    power of two the shift amount ``N-1-k`` is simply the bitwise
    complement of ``k``, so the barrel stages are driven by inverted
    characteristic bits — no subtractor needed (and the inverters fold
    into the mux selects during technology mapping; they are counted
    here, erring on the expensive side).  Other widths synthesize a
    constant subtractor for the amount.
    """
    from ..logic.netlist import CONST1

    from .adders import ripple_adder

    n = len(operand)
    if n & (n - 1) == 0:
        amount = [nl.add("INV", bit) for bit in k]
    else:
        # (n-1) - k = (n-1) + ~k + 1 in two's complement over len(k) bits
        inverted = [nl.add("INV", bit) for bit in k]
        constant = [
            (CONST1 if ((n - 1) >> bit) & 1 else CONST0) for bit in range(len(k))
        ]
        amount, _ = ripple_adder(nl, constant, inverted, carry_in=CONST1)
    return barrel_left(nl, operand[: n - 1], amount, n - 1)


def scaling_shifter(
    nl: Netlist, mantissa: Bus, exponent: Bus, fraction_width: int, out_width: int
) -> Bus:
    """Output barrel shifter of Fig. 3: ``(mantissa << exponent) >> W``.

    ``mantissa`` is the fixed-point value ``1.f`` on the ``2**-W`` grid
    (``W = fraction_width``); the result is the integer product, floor of
    ``mantissa * 2**exponent / 2**W``, truncated to ``out_width`` bits.
    Realized as a funnel: left-shift into a ``W + out_width``-wide window
    and drop the ``W`` fraction bits.
    """
    window = barrel_left(nl, mantissa, exponent, fraction_width + out_width)
    return window[fraction_width:]
