"""Structural IntALP [11] for the Table I levels L=1 and L=2.

The datapath shares cALM's log front end, then evaluates the linear-plane
approximation of the fraction product in fixed point:

* a 15-bit comparator (subtractor) orders ``x`` and ``y``;
* **L=1**: ``plane = min(x, y)`` — the comparator plus a bus mux;
* **L=2**: the fraction-sum carry (``x + y >= 1``) selects between
  ``min/2`` and ``max/2 + min - 1/2``; the halvings move the arithmetic
  onto the ``2**-16`` grid, kept exact end to end (the planes agree on the
  region boundary, so the carry-based selection is seamless).

The selection comparators, the extra adders and the wider (16-bit-grid)
output shifter are ApproxLP's "complex selection logic"; they are what
makes IntALP-L2's area reduction the worst in Table I, and the structural
model reproduces that ordering.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, CONST1, Netlist
from .adders import incrementer, ripple_adder, ripple_subtractor
from .logdatapath import gate_output, log_front_end
from .shifter import scaling_shifter

__all__ = ["intalp_netlist"]

Net = int
Bus = list[Net]


def _mux_bus(nl: Netlist, d0: Bus, d1: Bus, sel: Net) -> Bus:
    return [nl.add("MUX2", a, b, sel) for a, b in zip(d0, d1)]


def _sext(bus: Bus, width: int) -> Bus:
    """Sign-extend a two's complement bus."""
    return list(bus) + [bus[-1]] * (width - len(bus))


def intalp_netlist(bitwidth: int = 16, level: int = 2) -> Netlist:
    """IntALP datapath; bit-exact vs. the functional model for L in {1,2}."""
    if level not in (1, 2):
        raise ValueError(
            f"structural IntALP implements the paper's L=1 and L=2, got {level}"
        )
    n = bitwidth
    width = n - 1
    nl = Netlist(f"intalp{n}-l{level}")
    a = nl.input_bus("a", n)
    b = nl.input_bus("b", n)
    op_a = log_front_end(nl, a)
    op_b = log_front_end(nl, b)
    xa, xb = op_a.fraction, op_b.fraction

    _, a_ge_b = ripple_subtractor(nl, xa, xb)
    minimum = _mux_bus(nl, xa, xb, a_ge_b)
    maximum = _mux_bus(nl, xb, xa, a_ge_b)

    fraction_sum, carry = ripple_adder(nl, xa, xb)  # width bits + carry

    if level == 1:
        # mantissa = 2**w * (1 + x + y + min); all on the 2**-w grid
        total, carry2 = ripple_adder(nl, fraction_sum + [carry], minimum)
        high = incrementer(nl, [total[width], carry2], CONST1)
        mantissa = total[:width] + high  # width + 3 bits
        grid = width
    else:
        # move onto the 2**-(w+1) grid so the halvings stay exact:
        # plane0 = min/2           -> min as-is on the finer grid
        # plane1 = max/2 + min - 1/2
        plane0 = minimum + [CONST0, CONST0]  # 17 bits, non-negative
        shifted_min = [CONST0] + minimum  # min on the finer grid = 2*min/2
        half_sum, half_carry = ripple_adder(nl, maximum, shifted_min)
        # subtract 1/2 = 2**width units on the finer grid: two's complement
        # add of -2**width over 17 bits, i.e. the constant with bits
        # width and width+1 set
        minus_half = [CONST0] * width + [CONST1, CONST1]
        plane1_base = half_sum + [half_carry]
        plane1, _ = ripple_adder(nl, plane1_base, minus_half)
        plane = _mux_bus(nl, plane0, plane1, carry)

        # mantissa = 2**(w+1) * (1 + x + y + plane); x+y is unsigned
        # (zero-extended), the plane is two's complement (sign-extended)
        xy = [CONST0] + fraction_sum + [carry] + [CONST0, CONST0]
        total, _ = ripple_adder(nl, xy, _sext(plane, 19))
        high = incrementer(nl, total[width + 1 : 19], CONST1)
        mantissa = total[: width + 1] + high[:3]
        grid = width + 1

    exponent, exp_carry = ripple_adder(nl, op_a.characteristic, op_b.characteristic)
    product = scaling_shifter(
        nl, mantissa, exponent + [exp_carry], grid, 2 * bitwidth
    )
    nl.set_outputs(gate_output(nl, product, op_a.nonzero, op_b.nonzero))
    nl.prune()
    return nl
