"""Structural ImpLM [10]: nearest-one log multiplier with exact adder.

ImpLM's rounding to the *nearest* power of two makes its datapath wider
and busier than cALM's: a nearest-one detector (LOD + round-up incrementer)
per operand, a signed 17-bit fraction path in two's complement (negative
fractions appear whenever an operand rounds up), an 18-bit signed adder,
and a denormal-capable output stage.  That extra hardware is exactly why
Table I reports only an 11.9% area reduction for ImpLM — the least of all
log-based designs — and the structural model reproduces the ordering.

Fraction encoding (on the ``2**-N`` grid, two's complement, 17 bits):

* no round-up:  ``F = x * 2**(N-1) * 2 = {0, x, 0}``  (positive)
* round-up:     ``F = (x - 1) / 2 * 2**N = x*2**(N-1) - 2**(N-1) - 2**(N-1)
  ... = {x bits, 1, 1}`` (negative two's complement, see module tests)

and the product is ``floor((2**N + Fa + Fb) * 2**(ka+kb-N))`` — the linear
antilog applied to a possibly sub-unity mantissa.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, CONST1, Netlist
from .adders import ripple_adder
from .lod import nearest_one
from .logdatapath import gate_output
from .shifter import normalize_fraction, scaling_shifter

__all__ = ["implm_netlist"]

Net = int
Bus = list[Net]


def implm_netlist(bitwidth: int = 16) -> Netlist:
    """ImpLM with the exact adder ("EA"); bit-exact vs. the model."""
    n = bitwidth
    nl = Netlist(f"implm{n}-ea")
    a = nl.input_bus("a", n)
    b = nl.input_bus("b", n)

    def front_end(operand: Bus) -> tuple[Bus, Bus, Net]:
        """Returns ``(k_near, F_signed_17b, nonzero)``."""
        onehot, k_near, round_up, nonzero = nearest_one(nl, operand)
        # normalize with the *true* leading-one position: k = k_near when
        # not rounding up, else k_near - 1.  Recover k from the onehot.
        from .lod import or_tree

        bits = max((n - 1).bit_length(), 1)
        k_true = [
            or_tree(nl, [onehot[i] for i in range(n) if (i >> bit) & 1])
            for bit in range(bits)
        ]
        x = normalize_fraction(nl, operand, k_true)  # n-1 bits, value x
        # positive form {0, x, 0}: F = 2*x*2**(n-1)
        positive = [CONST0] + x + [CONST0]
        # negative form {x, 1, 1}: F = x*2**(n-1) - 3*2**(n-1) mod 2**(n+1)
        negative = x + [CONST1, CONST1]
        fraction = [
            nl.add("MUX2", p, m, round_up) for p, m in zip(positive, negative)
        ]
        return k_near, fraction, nonzero

    ka, fa, nonzero_a = front_end(a)
    kb, fb, nonzero_b = front_end(b)

    # signed fraction sum: sign-extend both 17-bit values to 18 bits
    fa_ext = fa + [fa[-1]]
    fb_ext = fb + [fb[-1]]
    f_sum, _ = ripple_adder(nl, fa_ext, fb_ext)  # 18-bit two's complement

    # mantissa = 2**n + F on the 2**-n grid: add 1 at weight n (bits 16..17)
    from .adders import incrementer

    high = incrementer(nl, f_sum[n:], CONST1)  # 3 bits, carry beyond drops
    mantissa = f_sum[:n] + high[:2]  # 18 bits, value in (2**(n-1), 2**(n+1))

    exponent, exp_carry = ripple_adder(nl, ka, kb)
    product = scaling_shifter(
        nl, mantissa, exponent + [exp_carry], n, 2 * bitwidth
    )
    nl.set_outputs(gate_output(nl, product, nonzero_a, nonzero_b))
    nl.prune()
    return nl
