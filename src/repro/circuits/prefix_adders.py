"""Parallel-prefix and carry-select adders.

The ripple adders used throughout the multiplier datapaths are the
smallest possible carry-propagate structure — and the slowest.  A real
synthesis run at the paper's 1 GHz constraint restructures wide carry
chains into parallel-prefix networks, trading area for logarithmic depth.
This module provides the classical family so that trade-off can be
studied quantitatively (see ``bench_ablation_adders``):

* **Sklansky** — minimal depth (log2 N), divide-and-conquer fanout tree;
* **Kogge-Stone** — minimal depth *and* unit fanout, at maximal wiring
  (the most prefix cells of the classical networks);
* **Brent-Kung** — ~2 log2 N depth with the fewest prefix cells;
* **carry-select** — block-level duplication with mux selection, the
  classic mid-point between ripple and prefix.

All return ``(sum_bus, carry_out)`` like
:func:`repro.circuits.adders.ripple_adder`, are bit-exact (tested
exhaustively at small widths), and compose with every generator in
:mod:`repro.circuits`.

Prefix formulation: with generate ``g_i = a_i b_i`` and propagate
``p_i = a_i ^ b_i``, the prefix operator is
``(g, p) o (g', p') = (g + p g', p p')`` and carry ``c_i`` into bit ``i``
is the group generate of bits ``i-1 .. 0`` (with the carry-in folded into
bit 0's generate); ``sum_i = p_i ^ c_i``.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist

__all__ = [
    "sklansky_adder",
    "kogge_stone_adder",
    "brent_kung_adder",
    "carry_select_adder",
    "ADDER_STYLES",
]

Net = int
Bus = list[Net]


def _extend(bus: Bus, width: int) -> Bus:
    return bus + [CONST0] * (width - len(bus))


def _preprocess(
    nl: Netlist, a: Bus, b: Bus, carry_in: Net
) -> tuple[list[Net], list[Net]]:
    """Bitwise generate/propagate, with the carry-in folded into bit 0."""
    generate = [nl.add("AND2", x, y) for x, y in zip(a, b)]
    propagate = [nl.add("XOR2", x, y) for x, y in zip(a, b)]
    if carry_in is not CONST0:
        # g0' = g0 + p0*cin
        with_cin = nl.add("AND2", propagate[0], carry_in)
        generate[0] = nl.add("OR2", generate[0], with_cin)
    return generate, propagate


def _combine(
    nl: Netlist, high: tuple[Net, Net], low: tuple[Net, Net]
) -> tuple[Net, Net]:
    """The prefix operator: ``(g, p) o (g', p')``."""
    g_high, p_high = high
    g_low, p_low = low
    g = nl.add("OR2", g_high, nl.add("AND2", p_high, g_low))
    p = nl.add("AND2", p_high, p_low)
    return g, p


def _postprocess(
    nl: Netlist, propagate: list[Net], carries: list[Net], group_g: Net
) -> tuple[Bus, Net]:
    total = [
        propagate[i] if carry is CONST0 else nl.add("XOR2", propagate[i], carry)
        for i, carry in enumerate(carries)
    ]
    return total, group_g


def _prefix_adder(nl, a, b, carry_in, schedule) -> tuple[Bus, Net]:
    """Shared skeleton: ``schedule`` computes all group (g, p) spans."""
    width = max(len(a), len(b))
    a = _extend(a, width)
    b = _extend(b, width)
    generate, propagate = _preprocess(nl, a, b, carry_in)
    # prefix[i] = (G, P) over bits i..0 — filled in by the schedule.  The
    # carry-in is folded into g0 (so every group generate sees it), but
    # bit 0's own sum still XORs the raw carry-in.
    prefix = schedule(nl, list(zip(generate, propagate)))
    carries = [carry_in] + [prefix[i][0] for i in range(width - 1)]
    return _postprocess(nl, propagate, carries, prefix[width - 1][0])


def _sklansky_schedule(nl: Netlist, terms):
    width = len(terms)
    prefix = list(terms)
    distance = 1
    while distance < width:
        updated = list(prefix)
        for i in range(width):
            if (i // distance) % 2 == 1:
                anchor = (i // distance) * distance - 1
                updated[i] = _combine(nl, prefix[i], prefix[anchor])
        prefix = updated
        distance *= 2
    return prefix


def _kogge_stone_schedule(nl: Netlist, terms):
    width = len(terms)
    prefix = list(terms)
    distance = 1
    while distance < width:
        updated = list(prefix)
        for i in range(distance, width):
            updated[i] = _combine(nl, prefix[i], prefix[i - distance])
        prefix = updated
        distance *= 2
    return prefix


def _brent_kung_schedule(nl: Netlist, terms):
    width = len(terms)
    prefix = list(terms)
    # up-sweep: power-of-two spans
    distance = 1
    while distance < width:
        for i in range(2 * distance - 1, width, 2 * distance):
            prefix[i] = _combine(nl, prefix[i], prefix[i - distance])
        distance *= 2
    # down-sweep: fill the intermediate positions
    distance //= 2
    while distance >= 1:
        for i in range(3 * distance - 1, width, 2 * distance):
            prefix[i] = _combine(nl, prefix[i], prefix[i - distance])
        distance //= 2
    return prefix


def sklansky_adder(nl: Netlist, a: Bus, b: Bus, carry_in: Net = CONST0):
    """Sklansky (divide-and-conquer) parallel-prefix adder."""
    return _prefix_adder(nl, a, b, carry_in, _sklansky_schedule)


def kogge_stone_adder(nl: Netlist, a: Bus, b: Bus, carry_in: Net = CONST0):
    """Kogge-Stone parallel-prefix adder (min depth, unit fanout)."""
    return _prefix_adder(nl, a, b, carry_in, _kogge_stone_schedule)


def brent_kung_adder(nl: Netlist, a: Bus, b: Bus, carry_in: Net = CONST0):
    """Brent-Kung parallel-prefix adder (fewest prefix cells)."""
    return _prefix_adder(nl, a, b, carry_in, _brent_kung_schedule)


def carry_select_adder(
    nl: Netlist, a: Bus, b: Bus, carry_in: Net = CONST0, block: int = 4
):
    """Carry-select adder: per-block ripple pairs muxed by the real carry."""
    from .adders import ripple_adder

    if block < 1:
        raise ValueError(f"block size must be >= 1, got {block}")
    width = max(len(a), len(b))
    a = _extend(a, width)
    b = _extend(b, width)

    total: Bus = []
    carry = carry_in
    for start in range(0, width, block):
        stop = min(start + block, width)
        slice_a, slice_b = a[start:stop], b[start:stop]
        if start == 0:
            chunk, carry = ripple_adder(nl, slice_a, slice_b, carry_in=carry)
            total.extend(chunk)
            continue
        from ..logic.netlist import CONST1

        sum0, carry0 = ripple_adder(nl, slice_a, slice_b, carry_in=CONST0)
        sum1, carry1 = ripple_adder(nl, slice_a, slice_b, carry_in=CONST1)
        total.extend(
            nl.add("MUX2", s0, s1, carry) for s0, s1 in zip(sum0, sum1)
        )
        carry = nl.add("MUX2", carry0, carry1, carry)
    return total, carry


#: name -> builder, for parameterized sweeps
ADDER_STYLES = {
    "ripple": None,  # filled below to avoid a circular import at top level
    "sklansky": sklansky_adder,
    "kogge-stone": kogge_stone_adder,
    "brent-kung": brent_kung_adder,
    "carry-select": carry_select_adder,
}


def _install_ripple():
    from .adders import ripple_adder

    ADDER_STYLES["ripple"] = ripple_adder


_install_ripple()
