"""Structural REALM (the paper's Fig. 3) and MBM datapaths.

The REALM netlist instantiates, exactly as the block diagram shows:

* two LOD + priority-encoder + normalizing-barrel-shifter front ends;
* the ``t``-bit fraction truncation with the hardwired rounding 1
  (pure rewiring — the dropped bits never exist downstream, which is
  where the ``t`` knob's area reduction comes from);
* the fraction adder producing the carry ``c_of``;
* the ``M^2 x 1`` hardwired-constant LUT mux addressed by the fraction
  MSBs, and the ``2x1`` mux selecting ``s_ij`` or ``s_ij >> 1`` by
  ``c_of`` (realized here as a mux between the two alignments of the LUT
  output on the fraction grid);
* the correction adder, exponent adder and output scaling shifter.

The output is ``2N + 1`` bits wide: the paper's first special case (the
corrected product of near-maximal operands overflows ``2N`` bits) is
handled by that extra bit.  MBM [4] is the same datapath with a single
hardwired correction constant instead of the LUT.

Both netlists are bit-exact against their functional models
(:class:`repro.core.realm.RealmMultiplier`,
:class:`repro.multipliers.mbm.MbmMultiplier`) — enforced by the tests.
"""

from __future__ import annotations

import numpy as np

from ..logic.netlist import CONST0, Netlist
from .adders import ripple_adder
from .logdatapath import gate_output, log_front_end, truncate_bus
from .mux import constant_lut
from .shifter import scaling_shifter

__all__ = ["realm_netlist", "mbm_netlist"]

Net = int
Bus = list[Net]


def _aligned_code(nl: Netlist, code: Bus, width: int, q: int, shift: int) -> Bus:
    """LUT code placed on the ``2**-width`` fraction grid.

    The code's LSB has weight ``2**-q``; ``shift=-1`` realizes ``s >> 1``.
    Bits falling below the grid are dropped (floored), exactly like the
    adder wiring of the real datapath.
    """
    bus = [CONST0] * width
    for b, net in enumerate(code):
        position = width - q + b + shift
        if 0 <= position < width:
            bus[position] = net
    return bus


def _corrected_log_product(
    nl: Netlist,
    bitwidth: int,
    t: int,
    q: int,
    code_for_segments,
) -> None:
    """Shared REALM/MBM structure; ``code_for_segments(nl, xa, xb)`` returns
    the ``q-2``-bit correction code bus (LUT output or constant)."""
    width = bitwidth - 1 - t
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    op_a = log_front_end(nl, a)
    op_b = log_front_end(nl, b)

    code = code_for_segments(nl, op_a.fraction, op_b.fraction)

    xa_t = truncate_bus(op_a.fraction, t)
    xb_t = truncate_bus(op_b.fraction, t)
    fraction_sum, c_of = ripple_adder(nl, xa_t, xb_t)

    s_full = _aligned_code(nl, code, width, q, 0)
    s_half = _aligned_code(nl, code, width, q, -1)
    s_sel = [nl.add("MUX2", f, h, c_of) for f, h in zip(s_full, s_half)]

    corrected, carry2 = ripple_adder(nl, fraction_sum, s_sel)
    mantissa = corrected + [nl.add("INV", carry2), carry2]

    exponent_base, exp_carry = ripple_adder(
        nl, op_a.characteristic, op_b.characteristic, carry_in=c_of
    )
    exponent = exponent_base + [exp_carry]

    product = scaling_shifter(nl, mantissa, exponent, width, 2 * bitwidth + 1)
    nl.set_outputs(gate_output(nl, product, op_a.nonzero, op_b.nonzero))
    nl.prune()


def realm_netlist(
    bitwidth: int = 16, m: int = 16, t: int = 0, q: int = 6
) -> Netlist:
    """Full REALM hardware (Fig. 3), LUT codes computed like the paper's
    offline MATLAB step."""
    from ..core.config import RealmConfig
    from ..core.factors import compute_factors, quantize_factors

    config = RealmConfig(bitwidth=bitwidth, m=m, t=t, q=q)
    codes = quantize_factors(compute_factors(m), q)
    logm = m.bit_length() - 1

    def lut(nl: Netlist, xa: Bus, xb: Bus) -> Bus:
        if logm == 0:
            from ..logic.netlist import CONST1

            value = int(codes[0, 0])
            return [
                CONST1 if (value >> bit) & 1 else CONST0 for bit in range(q - 2)
            ]
        i_bits = xa[bitwidth - 1 - logm :]
        j_bits = xb[bitwidth - 1 - logm :]
        select = j_bits + i_bits  # value = i * M + j, row-major like the LUT
        flat = [int(codes[i, j]) for i in range(m) for j in range(m)]
        return constant_lut(nl, flat, q - 2, select)

    nl = Netlist(f"realm{m}-{bitwidth}b-t{t}")
    _corrected_log_product(nl, bitwidth, t, q, lut)
    nl.name = config.name
    return nl


def mbm_netlist(bitwidth: int = 16, t: int = 0, q: int = 6) -> Netlist:
    """Structural MBM [4]: REALM's datapath with one hardwired constant."""
    from ..logic.netlist import CONST1

    from ..multipliers.mbm import MbmMultiplier

    code_value = MbmMultiplier(bitwidth, t=t, q=q).correction_code

    def constant_code(nl: Netlist, xa: Bus, xb: Bus) -> Bus:
        return [
            CONST1 if (code_value >> bit) & 1 else CONST0 for bit in range(q - 2)
        ]

    nl = Netlist(f"mbm{bitwidth}-t{t}")
    _corrected_log_product(nl, bitwidth, t, q, constant_code)
    return nl
