"""Mux trees and the hardwired constant LUT of REALM (Fig. 3).

REALM stores its ``M**2`` quantized error-reduction factors as read-only
hardwired constants behind an ``M**2 x 1`` multiplexer whose select lines
are the fraction MSBs.  :func:`constant_lut` builds exactly that: a mux
tree over constant leaves.  The builder's constant folding and structural
hashing collapse identical sub-trees and constant pairs, so the LUT costs
what a synthesized case-statement costs — the paper's "little overhead"
claim, reproduced structurally.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, CONST1, Netlist

__all__ = ["mux_tree", "constant_lut"]

Net = int
Bus = list[Net]


def mux_tree(nl: Netlist, options: list[Bus], select: Bus) -> Bus:
    """Select one of ``2**len(select)`` buses; option index = select value.

    Missing trailing options are treated as all-zero buses.
    """
    count = 1 << len(select)
    if len(options) > count:
        raise ValueError(
            f"{len(options)} options need {len(options).bit_length()} select "
            f"bits, got {len(select)}"
        )
    width = max(len(bus) for bus in options)
    padded = [list(bus) + [CONST0] * (width - len(bus)) for bus in options]
    padded += [[CONST0] * width] * (count - len(padded))

    level = padded
    for sel in select:
        level = [
            [nl.add("MUX2", d0, d1, sel) for d0, d1 in zip(low, high)]
            for low, high in zip(level[0::2], level[1::2])
        ]
    return level[0]


def constant_lut(nl: Netlist, values: list[int], width: int, select: Bus) -> Bus:
    """Hardwired read-only LUT: ``out = values[select]`` as a mux tree.

    ``values`` are unsigned constants of ``width`` bits; the tree is built
    over constant leaves so folding eliminates every mux whose subtree is
    uniform — e.g. REALM's always-zero factor MSBs cost nothing, matching
    the paper's observation that only ``q-2`` bits need storing.
    """
    for value in values:
        if value < 0 or value >= (1 << width):
            raise ValueError(f"constant {value} does not fit in {width} bits")
    leaves = [
        [(CONST1 if (value >> bit) & 1 else CONST0) for bit in range(width)]
        for value in values
    ]
    return mux_tree(nl, leaves, select)
