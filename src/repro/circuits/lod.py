"""Leading-one and nearest-one detectors (the front end of Fig. 3).

The LOD finds the position of an operand's most significant 1; the
priority encoder turns the one-hot into the binary characteristic ``k``.
ImpLM's nearest-one detector additionally rounds ``k`` up when the bit
below the leading one is set (operand closer to the next power of two).

Reductions are built as balanced trees (what a synthesis tool makes of a
behavioral priority ``case``), keeping both the gate count and the logic
depth representative.
"""

from __future__ import annotations

from ..logic.netlist import CONST0, Netlist
from .adders import incrementer

__all__ = ["or_tree", "leading_one", "nearest_one"]

Net = int
Bus = list[Net]


def or_tree(nl: Netlist, terms: Bus) -> Net:
    """Balanced OR reduction of a list of nets."""
    if not terms:
        return CONST0
    level = list(terms)
    while len(level) > 1:
        level = [
            nl.add("OR2", a, b) for a, b in zip(level[0::2], level[1::2])
        ] + ([level[-1]] if len(level) % 2 else [])
    return level[0]


def leading_one(nl: Netlist, operand: Bus) -> tuple[Bus, Bus, Net]:
    """Returns ``(onehot, k, nonzero)``.

    ``onehot[i]`` flags the leading one at position ``i``; ``k`` is its
    binary position (``ceil(log2(N))`` bits, value 0 when the operand is
    zero); ``nonzero`` is the operand's OR-reduction.  Callers that only
    use ``k`` rely on netlist pruning to drop the unused one-hot gates.
    """
    n = len(operand)
    # any_above[i] = OR of operand[i+1:], built as a suffix chain (shared
    # heavily via structural hashing with the or_tree below)
    any_above: Bus = [CONST0] * n
    for i in range(n - 2, -1, -1):
        any_above[i] = (
            operand[i + 1]
            if i == n - 2
            else nl.add("OR2", operand[i + 1], any_above[i + 1])
        )
    onehot = [
        operand[i] if i == n - 1 else nl.add("ANDN2", operand[i], any_above[i])
        for i in range(n)
    ]
    nonzero = or_tree(nl, operand)

    bits = max((n - 1).bit_length(), 1)
    k: Bus = []
    for b in range(bits):
        k.append(or_tree(nl, [onehot[i] for i in range(n) if (i >> b) & 1]))
    return onehot, k, nonzero


def nearest_one(nl: Netlist, operand: Bus) -> tuple[Bus, Bus, Net, Net]:
    """ImpLM front end: returns ``(onehot, k_near, round_up, nonzero)``.

    ``round_up`` is 1 when the bit below the leading one is set, in which
    case ``k_near = k + 1`` (the operand is nearer to the next power of
    two); ``onehot`` still marks the true leading one.
    """
    onehot, k, nonzero = leading_one(nl, operand)
    below = [
        nl.add("AND2", onehot[i], operand[i - 1]) for i in range(1, len(operand))
    ]
    round_up = or_tree(nl, below)
    k_near = incrementer(nl, k, round_up)
    return onehot, k_near, round_up, nonzero
