"""Structural (gate-level) models of every multiplier datapath."""

from .adders import (
    full_adder,
    half_adder,
    incrementer,
    loa_adder,
    maa_adder,
    ripple_adder,
    ripple_subtractor,
    soa_adder,
)
from .am_rtl import am_netlist
from .baugh_wooley import baugh_wooley_multiplier, baugh_wooley_netlist
from .booth import booth_multiplier, booth_netlist, dadda_multiplier, dadda_netlist
from .catalog import NETLISTS, netlist_for
from .divider_rtl import mitchell_divider_netlist, realm_divider_netlist
from .drum_rtl import drum_netlist
from .implm_rtl import implm_netlist
from .intalp_rtl import intalp_netlist
from .lod import leading_one, nearest_one, or_tree
from .mitchell_rtl import alm_netlist, mitchell_netlist
from .mux import constant_lut, mux_tree
from .prefix_adders import (
    ADDER_STYLES,
    brent_kung_adder,
    carry_select_adder,
    kogge_stone_adder,
    sklansky_adder,
)
from .realm_rtl import mbm_netlist, realm_netlist
from .shifter import barrel_left, barrel_right, normalize_fraction, scaling_shifter
from .ssm_rtl import essm_netlist, ssm_netlist
from .wallace import wallace_multiplier, wallace_netlist

__all__ = [
    "ADDER_STYLES",
    "NETLISTS",
    "booth_multiplier",
    "booth_netlist",
    "brent_kung_adder",
    "carry_select_adder",
    "dadda_multiplier",
    "dadda_netlist",
    "kogge_stone_adder",
    "sklansky_adder",
    "alm_netlist",
    "am_netlist",
    "barrel_left",
    "baugh_wooley_multiplier",
    "baugh_wooley_netlist",
    "barrel_right",
    "constant_lut",
    "drum_netlist",
    "essm_netlist",
    "full_adder",
    "half_adder",
    "implm_netlist",
    "incrementer",
    "intalp_netlist",
    "leading_one",
    "loa_adder",
    "maa_adder",
    "mbm_netlist",
    "mitchell_divider_netlist",
    "mitchell_netlist",
    "mux_tree",
    "nearest_one",
    "netlist_for",
    "normalize_fraction",
    "or_tree",
    "realm_divider_netlist",
    "realm_netlist",
    "ripple_adder",
    "ripple_subtractor",
    "scaling_shifter",
    "soa_adder",
    "ssm_netlist",
    "wallace_multiplier",
    "wallace_netlist",
]
