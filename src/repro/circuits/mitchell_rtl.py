"""Structural cALM (Mitchell) multiplier and the ALM approximate-adder
variants — the log-multiplier baselines of Table I.

Both share the Fig. 3 front/back end; they differ only in the adder that
sums the two concatenated ``{k, fraction}`` log values: exact ripple for
cALM, LOA/SOA/MAA on the ``m`` low bits for the ALM designs.
"""

from __future__ import annotations

from ..logic.netlist import Netlist
from .adders import loa_adder, maa_adder, ripple_adder, soa_adder
from .logdatapath import gate_output, log_front_end
from .shifter import scaling_shifter

__all__ = ["mitchell_netlist", "alm_netlist"]

_ADDERS = {"LOA": loa_adder, "SOA": soa_adder, "MAA": maa_adder}


def _log_sum_datapath(nl: Netlist, bitwidth: int, add_logs) -> None:
    """Common structure: front ends, log add, antilog, zero gating.

    ``add_logs(nl, la, lb) -> (sum_bus, carry)`` sums the two
    ``(N-1) + ceil(log2 N)``-bit log values.
    """
    width = bitwidth - 1
    a = nl.input_bus("a", bitwidth)
    b = nl.input_bus("b", bitwidth)
    op_a = log_front_end(nl, a)
    op_b = log_front_end(nl, b)

    log_a = op_a.fraction + op_a.characteristic
    log_b = op_b.fraction + op_b.characteristic
    log_sum, carry = add_logs(nl, log_a, log_b)

    fraction = log_sum[:width]
    exponent = log_sum[width:] + [carry]
    from ..logic.netlist import CONST1

    mantissa = fraction + [CONST1]
    product = scaling_shifter(nl, mantissa, exponent, width, 2 * bitwidth)
    nl.set_outputs(gate_output(nl, product, op_a.nonzero, op_b.nonzero))


def mitchell_netlist(bitwidth: int = 16) -> Netlist:
    """Structural cALM: LODs, normalizing shifters, exact log add, antilog."""
    nl = Netlist(f"calm{bitwidth}")
    _log_sum_datapath(nl, bitwidth, lambda n, la, lb: ripple_adder(n, la, lb))
    return nl


def alm_netlist(bitwidth: int = 16, m: int = 6, adder: str = "SOA") -> Netlist:
    """Structural ALM-LOA/MAA/SOA [9]: cALM with an approximate log adder."""
    if adder not in _ADDERS:
        raise ValueError(f"adder must be one of {sorted(_ADDERS)}, got {adder!r}")
    approx = _ADDERS[adder]
    nl = Netlist(f"alm-{adder.lower()}{bitwidth}-m{m}")
    _log_sum_datapath(nl, bitwidth, lambda n, la, lb: approx(n, la, lb, m))
    return nl
