"""Common interface of all multiplier models.

Every multiplier in this library — the accurate reference, REALM, and every
baseline from Table I of the paper — implements :class:`Multiplier`.  The
models are *functional*: bit-accurate NumPy implementations of the hardware
datapaths, vectorized so the paper's 2^24-sample Monte-Carlo error
characterization runs in seconds.  The matching gate-level netlists live in
:mod:`repro.circuits` and are cross-checked against these models by the
test suite.
"""

from __future__ import annotations

import abc
import os

import numpy as np

__all__ = ["Multiplier", "as_operands", "compiled_default"]


def compiled_default() -> bool:
    """Whether the compiled kernel path is enabled by default.

    Controlled by the ``REPRO_COMPILED`` environment variable: ``1`` /
    ``true`` / ``on`` / ``yes`` enable it for every
    :meth:`Multiplier.multiply` call that does not pass ``compiled=``
    explicitly.  Read per call so tests can flip it with ``monkeypatch``.
    """
    return os.environ.get("REPRO_COMPILED", "").lower() in ("1", "true", "on", "yes")


def as_operands(a, b, bitwidth: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate and broadcast a pair of unsigned operands.

    Accepts Python ints, sequences or arrays; returns int64 arrays of a
    common shape.  Raises ``ValueError`` if any value falls outside
    ``[0, 2**bitwidth)`` — the models are bit-accurate and silently wrapping
    inputs would hide genuine usage bugs.

    The returned arrays are **read-only views**: broadcasting a scalar
    against an array aliases one memory cell across every element (and
    same-shape inputs alias the caller's arrays directly), so an
    in-place write inside a ``_multiply`` implementation would corrupt
    sibling elements — or the caller's data — silently.  Marking the
    views non-writeable turns that class of bug into an immediate
    ``ValueError`` at the offending statement.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    limit = np.int64(1) << bitwidth
    for name, operand in (("a", a), ("b", b)):
        if operand.size and (operand.min() < 0 or operand.max() >= limit):
            raise ValueError(
                f"operand {name} outside [0, 2**{bitwidth}) for a "
                f"{bitwidth}-bit unsigned multiplier"
            )
    a, b = np.broadcast_arrays(a, b)
    # views of views: never flips writeability of the caller's arrays
    a = a.view()
    b = b.view()
    a.flags.writeable = False
    b.flags.writeable = False
    return a, b


class Multiplier(abc.ABC):
    """An ``N x N -> 2N``-bit unsigned integer multiplier model.

    Subclasses implement :meth:`_multiply` on validated, broadcast int64
    arrays.  ``multiply`` (or calling the instance) is the public entry
    point; it works on scalars and arrays alike.
    """

    #: short family name, e.g. ``"REALM"`` or ``"DRUM"``; set by subclasses
    family: str = "?"

    #: widest supported operand.  The limiting invariant is the int64
    #: substrate shared with :mod:`repro.logic.sim`: products span up to
    #: ``2N + 1`` bits (REALM's overflow case), and the word conversions
    #: there cap buses at ``MAX_BUS_WIDTH = 63`` usable weights — so
    #: ``2 * MAX_BITWIDTH + 1 == 63`` exactly.  A boundary test
    #: (``tests/test_multiplier_properties.py``) keeps the two constants
    #: from drifting apart.
    MAX_BITWIDTH = 31

    def __init__(self, bitwidth: int = 16):
        if bitwidth < 2:
            raise ValueError(f"bitwidth must be >= 2, got {bitwidth}")
        if bitwidth > self.MAX_BITWIDTH:
            # products (up to 2N+1 bits for REALM's overflow case) must fit
            # the int64 arithmetic the models are built on; see
            # repro.logic.sim.MAX_BUS_WIDTH for the bus-side statement of
            # the same invariant
            raise ValueError(
                f"bitwidth must be <= {self.MAX_BITWIDTH}, got {bitwidth}"
            )
        self.bitwidth = bitwidth

    @property
    def name(self) -> str:
        """Human-readable instance name, e.g. ``"REALM16 (t=3)"``."""
        return self.family

    @property
    def max_operand(self) -> int:
        """Largest representable operand, ``2**N - 1``."""
        return (1 << self.bitwidth) - 1

    def multiply(self, a, b, *, compiled: bool | None = None) -> np.ndarray:
        """Approximate (or exact) product of unsigned operands.

        ``compiled`` selects the evaluation engine: ``True`` routes the
        batch through the fused kernel from :mod:`repro.kernels`
        (table-specialized, bit-identical, compiled once per design and
        cached on the registry fingerprint), ``False`` forces the
        interpreted NumPy datapath, and ``None`` (default) follows the
        ``REPRO_COMPILED`` environment variable.
        """
        a, b = as_operands(a, b, self.bitwidth)
        if compiled is None:
            compiled = compiled_default()
        if compiled:
            from ..kernels import kernel_for  # deferred: kernels imports us

            kernel = kernel_for(self)
            if a.ndim == 0:
                return kernel(a.reshape(1), b.reshape(1))[0]
            return kernel(a, b)
        if a.ndim == 0:
            # _multiply implementations assume at least 1-D arrays
            return self._multiply(a.reshape(1), b.reshape(1))[0]
        return self._multiply(a, b)

    def __call__(self, a, b) -> np.ndarray:
        return self.multiply(a, b)

    @abc.abstractmethod
    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Core implementation on validated same-shape int64 arrays."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} N={self.bitwidth}>"
