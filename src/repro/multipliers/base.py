"""Common interface of all multiplier models.

Every multiplier in this library — the accurate reference, REALM, and every
baseline from Table I of the paper — implements :class:`Multiplier`.  The
models are *functional*: bit-accurate NumPy implementations of the hardware
datapaths, vectorized so the paper's 2^24-sample Monte-Carlo error
characterization runs in seconds.  The matching gate-level netlists live in
:mod:`repro.circuits` and are cross-checked against these models by the
test suite.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Multiplier", "as_operands"]


def as_operands(a, b, bitwidth: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate and broadcast a pair of unsigned operands.

    Accepts Python ints, sequences or arrays; returns int64 arrays of a
    common shape.  Raises ``ValueError`` if any value falls outside
    ``[0, 2**bitwidth)`` — the models are bit-accurate and silently wrapping
    inputs would hide genuine usage bugs.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    limit = np.int64(1) << bitwidth
    for name, operand in (("a", a), ("b", b)):
        if operand.size and (operand.min() < 0 or operand.max() >= limit):
            raise ValueError(
                f"operand {name} outside [0, 2**{bitwidth}) for a "
                f"{bitwidth}-bit unsigned multiplier"
            )
    return np.broadcast_arrays(a, b)


class Multiplier(abc.ABC):
    """An ``N x N -> 2N``-bit unsigned integer multiplier model.

    Subclasses implement :meth:`_multiply` on validated, broadcast int64
    arrays.  ``multiply`` (or calling the instance) is the public entry
    point; it works on scalars and arrays alike.
    """

    #: short family name, e.g. ``"REALM"`` or ``"DRUM"``; set by subclasses
    family: str = "?"

    def __init__(self, bitwidth: int = 16):
        if bitwidth < 2:
            raise ValueError(f"bitwidth must be >= 2, got {bitwidth}")
        if bitwidth > 31:
            # products (up to 2N+1 bits for REALM's overflow case) must fit
            # the int64 arithmetic the models are built on
            raise ValueError(f"bitwidth must be <= 31, got {bitwidth}")
        self.bitwidth = bitwidth

    @property
    def name(self) -> str:
        """Human-readable instance name, e.g. ``"REALM16 (t=3)"``."""
        return self.family

    @property
    def max_operand(self) -> int:
        """Largest representable operand, ``2**N - 1``."""
        return (1 << self.bitwidth) - 1

    def multiply(self, a, b) -> np.ndarray:
        """Approximate (or exact) product of unsigned operands."""
        a, b = as_operands(a, b, self.bitwidth)
        if a.ndim == 0:
            # _multiply implementations assume at least 1-D arrays
            return self._multiply(a.reshape(1), b.reshape(1))[0]
        return self._multiply(a, b)

    def __call__(self, a, b) -> np.ndarray:
        return self.multiply(a, b)

    @abc.abstractmethod
    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Core implementation on validated same-shape int64 arrays."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} N={self.bitwidth}>"
