"""IntALP: integer version of ApproxLP, Imani et al., DAC 2019 [11].

ApproxLP approximates the mantissa product ``(1+x)(1+y)`` of a
floating-point multiplier by piecewise linear planes selected by a
comparator hierarchy, with each extra level halving the subdomains and
shrinking the residual error.  The REALM paper builds an integer version
for comparison (Section IV-A): compute the characteristics and log
fractions of the integer inputs, apply the linear-plane approximation to
the fraction product ``x*y``, and scale by the sum of characteristics.

Plane hierarchy modeled here, which reproduces both IntALP rows of
Table I digit-for-digit:

* Level 1 splits the unit square of ``(x, y)`` along the diagonal
  ``y = x`` into two right isosceles triangles and interpolates ``x*y`` at
  the corners of each — the closed form is ``x*y ~= min(x, y)``, always an
  overestimate (Table I L=1: error in ``[0, +12.5%]``, bias +3.91%).
* Every further level bisects each triangle by the median from its
  right-angle vertex to the midpoint of its hypotenuse (level 2 therefore
  adds the anti-diagonal ``x + y = 1``), and re-interpolates ``x*y`` at
  the corners.  The bisection makes the residual double-sided and roughly
  halves it per level (Table I L=2: ``-2.86%..+4.17%``, bias +0.03%).

A least-squares plane fit (``fit="ls"``) is included as an ablation: it is
what an error-optimal ApproxLP would use and beats the corner interpolants
by ~2x at equal level.

The comparator tree that walks a sample to its sub-triangle is exactly the
"complex selection logic" the REALM paper remarks on; its cost shows up in
the synthesis model (:mod:`repro.circuits.intalp_rtl`).
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..core.bitops import floor_log2, log_fraction
from .base import Multiplier

__all__ = ["IntAlpMultiplier", "triangle_table", "interpolate_xy"]

Point = tuple[float, float]
Triangle = tuple[Point, Point, Point]  # (hyp end 1, hyp end 2, right angle)

_ROOTS: tuple[Triangle, Triangle] = (
    ((0.0, 0.0), (1.0, 1.0), (1.0, 0.0)),  # below the diagonal (x >= y)
    ((0.0, 0.0), (1.0, 1.0), (0.0, 1.0)),  # above the diagonal
)


def _children(tri: Triangle) -> tuple[Triangle, Triangle]:
    """Bisect by the median from the right angle to the hypotenuse midpoint.

    Both children are again right isosceles with their right angle at the
    midpoint, so the construction recurses cleanly.
    """
    h1, h2, right = tri
    mid = ((h1[0] + h2[0]) / 2.0, (h1[1] + h2[1]) / 2.0)
    return (h1, right, mid), (right, h2, mid)


def _triangle_moment(tri: Triangle, px: int, py: int) -> float:
    """Exact ``integral of x**px * y**py`` over a triangle.

    Maps to the reference triangle ``{u, v >= 0, u + v <= 1}`` where
    ``integral of u**a * v**b = a! b! / (a + b + 2)!``, and expands the
    affine images of ``x`` and ``y`` binomially.  Exact for any polynomial
    degree, which covers the cubic moments the least-squares fit needs.
    """
    (x0, y0), (x1, y1), (x2, y2) = tri
    jacobian = abs((x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0))

    def poly_mul(p, q):
        out: dict[tuple[int, int], float] = {}
        for (a1, b1), c1 in p.items():
            for (a2, b2), c2 in q.items():
                key = (a1 + a2, b1 + b2)
                out[key] = out.get(key, 0.0) + c1 * c2
        return out

    poly = {(0, 0): 1.0}
    for _ in range(px):
        poly = poly_mul(poly, {(0, 0): x0, (1, 0): x1 - x0, (0, 1): x2 - x0})
    for _ in range(py):
        poly = poly_mul(poly, {(0, 0): y0, (1, 0): y1 - y0, (0, 1): y2 - y0})
    total = 0.0
    for (a, b), coeff in poly.items():
        total += (
            coeff * math.factorial(a) * math.factorial(b) / math.factorial(a + b + 2)
        )
    return jacobian * total


def _interpolant_plane(tri: Triangle) -> tuple[float, float, float]:
    """Plane ``a*x + b*y + c`` through ``x*y`` at the triangle corners."""
    matrix = np.array([[vx, vy, 1.0] for vx, vy in tri])
    values = np.array([vx * vy for vx, vy in tri])
    a, b, c = np.linalg.solve(matrix, values)
    return float(a), float(b), float(c)


def _least_squares_plane(tri: Triangle) -> tuple[float, float, float]:
    """Plane minimizing ``integral of (x*y - (a*x + b*y + c))**2`` over tri."""
    moment = functools.partial(_triangle_moment, tri)
    gram = np.array(
        [
            [moment(2, 0), moment(1, 1), moment(1, 0)],
            [moment(1, 1), moment(0, 2), moment(0, 1)],
            [moment(1, 0), moment(0, 1), moment(0, 0)],
        ]
    )
    rhs = np.array([moment(2, 1), moment(1, 2), moment(1, 1)])
    a, b, c = np.linalg.solve(gram, rhs)
    return float(a), float(b), float(c)


_FITS = {"interp": _interpolant_plane, "ls": _least_squares_plane}


@functools.lru_cache(maxsize=None)
def triangle_table(level: int, fit: str = "interp") -> tuple[np.ndarray, np.ndarray]:
    """Level-``level`` triangles (in walk order) and their plane coefficients.

    Returns ``(vertices, planes)``: ``vertices`` has shape ``(2**level,
    3, 2)`` with each triangle as ``(hyp1, hyp2, right-angle)``; ``planes``
    has shape ``(2**level, 3)`` holding ``(a, b, c)`` of the approximation
    ``x*y ~= a*x + b*y + c`` on that triangle.  Triangle ids are laid out
    so the children of id ``t`` are ``2*t`` and ``2*t + 1``.
    """
    if fit not in _FITS:
        raise ValueError(f"fit must be one of {sorted(_FITS)}, got {fit!r}")
    triangles: list[Triangle] = list(_ROOTS)
    for _ in range(level - 1):
        triangles = [child for tri in triangles for child in _children(tri)]
    vertices = np.array(triangles, dtype=float)
    planes = np.array([_FITS[fit](tri) for tri in triangles], dtype=float)
    return vertices, planes


def interpolate_xy(
    x: np.ndarray, y: np.ndarray, level: int, fit: str = "interp"
) -> np.ndarray:
    """Piecewise-linear-plane approximation of ``x*y`` on ``[0,1)^2``."""
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    shape = np.broadcast(np.asarray(x), np.asarray(y)).shape
    x = np.broadcast_to(np.asarray(x, dtype=np.float64), shape).ravel()
    y = np.broadcast_to(np.asarray(y, dtype=np.float64), shape).ravel()
    _, planes = triangle_table(level, fit)

    ids = np.where(x >= y, 0, 1).astype(np.int64)
    current = np.array(_ROOTS)[ids]
    for _ in range(level - 1):
        h1, h2, right = current[:, 0], current[:, 1], current[:, 2]
        mid = (h1 + h2) / 2.0
        # side of the median line right->mid; child 0 contains h1
        dxm, dym = mid[:, 0] - right[:, 0], mid[:, 1] - right[:, 1]
        side = dxm * (y - right[:, 1]) - dym * (x - right[:, 0])
        side_h1 = dxm * (h1[:, 1] - right[:, 1]) - dym * (h1[:, 0] - right[:, 0])
        choice = np.where(side * side_h1 >= 0, 0, 1)
        ids = 2 * ids + choice
        first = np.stack([h1, right, mid], axis=1)
        second = np.stack([right, h2, mid], axis=1)
        current = np.where(choice[:, None, None] == 0, first, second)
    coeffs = planes[ids]
    result = coeffs[:, 0] * x + coeffs[:, 1] * y + coeffs[:, 2]
    return result.reshape(shape)


class IntAlpMultiplier(Multiplier):
    """IntALP with error-control level ``L`` (Table I uses L=1, L=2)."""

    family = "IntALP"

    def __init__(self, bitwidth: int = 16, level: int = 2, fit: str = "interp"):
        super().__init__(bitwidth)
        if not 1 <= level <= 16:
            raise ValueError(f"level L must be in [1, 16], got {level}")
        if fit not in _FITS:
            raise ValueError(f"fit must be one of {sorted(_FITS)}, got {fit!r}")
        self.level = level
        self.fit = fit

    @property
    def name(self) -> str:
        suffix = "" if self.fit == "interp" else f", {self.fit}"
        return f"IntALP (L={self.level}{suffix})"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        width = self.bitwidth - 1
        nonzero = (a > 0) & (b > 0)
        safe_a = np.where(a > 0, a, 1)
        safe_b = np.where(b > 0, b, 1)
        ka = floor_log2(safe_a)
        kb = floor_log2(safe_b)
        x = log_fraction(safe_a, ka, self.bitwidth) / np.float64(1 << width)
        y = log_fraction(safe_b, kb, self.bitwidth) / np.float64(1 << width)

        # (1+x)(1+y) ~= 1 + x + y + plane(x, y); the floor matches the
        # hardware truncation of sub-integer output bits.
        mantissa = 1.0 + x + y + interpolate_xy(x, y, self.level, self.fit)
        product = np.floor(mantissa * np.exp2((ka + kb).astype(np.float64)))
        return np.where(nonzero, np.maximum(product.astype(np.int64), 0), 0)
