"""DRUM: dynamic range unbiased multiplier, Hashemi et al., ICCAD 2015 [3].

DRUM extracts a ``k``-bit fragment of each operand starting at its leading
one, forces the fragment's LSB to 1 (the unbiasing trick: the constant 1
stands in for the expected value of the truncated tail), multiplies the two
fragments with an exact ``k x k`` multiplier, and shifts the product back.
Operands that already fit in ``k`` bits pass through unmodified, so small
products are exact — this is the "dynamic range" part.

The forced-1 makes over- and under-estimation equally likely, giving DRUM
its near-zero bias and symmetric ``~±2**-(k-1)``-per-operand peak errors
(Table I: k=8 → ±1.5%).
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import floor_log2
from .base import Multiplier

__all__ = ["DrumMultiplier"]


class DrumMultiplier(Multiplier):
    """DRUM with fragment width ``k`` [3]."""

    family = "DRUM"

    def __init__(self, bitwidth: int = 16, k: int = 6):
        super().__init__(bitwidth)
        if not 3 <= k <= bitwidth:
            raise ValueError(f"fragment width k must be in [3, {bitwidth}], got {k}")
        self.k = k

    @property
    def name(self) -> str:
        return f"DRUM (k={self.k})"

    def _approximate(self, v: np.ndarray) -> np.ndarray:
        """Leading-one-aligned ``k``-bit fragment with forced LSB, rescaled."""
        leading = floor_log2(np.where(v > 0, v, 1))
        shift = np.maximum(leading - (self.k - 1), 0)
        fragment = (v >> shift) | np.where(shift > 0, np.int64(1), np.int64(0))
        return fragment << shift

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._approximate(a) * self._approximate(b)
