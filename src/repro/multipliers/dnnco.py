"""Hardware-driven DNN co-optimization multiplier (arXiv 2210.03916).

The co-design replaces the exact column compressors of the low ``l``
result columns of an array multiplier with single OR gates — the
cheapest possible "compressor", wrong only when a column holds two or
more set partial-product bits.  High columns stay exact, so the error is
bounded by the weight of the approximated columns and concentrates
where DNN accumulations tolerate it; the retraining loop of the paper
then absorbs the residual bias.

With ``p_ij = a_i & b_j`` the partial products, column ``j < l``
contributes ``OR_i p_i,j-i`` instead of ``sum_i p_i,j-i``, so the model
is the exact product minus the per-column deficits::

    f(a, b) = a*b - sum_{j<l} 2^j (colsum_j - color_j)

Since ``OR <= sum`` the deficit is non-negative: the family never
overestimates.  Each column's partial-product multiset is symmetric
under operand swap, so the datapath commutes.  A power-of-two operand
leaves at most one set bit per column, where OR and sum agree — exact.
The deficit depends only on ``(a mod 2^l, b mod 2^l)``, which is what
the kernel compiler's packed low-bits table exploits.  Unlike the log
families the approximation window is anchored at the LSB, not the
leading one, so the ``pow2-shift`` relation does *not* hold.
"""

from __future__ import annotations

import numpy as np

from .base import Multiplier

__all__ = ["DnnCoMultiplier", "column_deficit"]


def column_deficit(a: np.ndarray, b: np.ndarray, l: int) -> np.ndarray:
    """``sum_{j<l} 2^j (colsum_j - color_j)`` — what the OR columns lose.

    Depends only on the low ``l`` bits of each operand.  Vectorized; the
    ``O(l^2)`` bit loop mirrors the partial-product diagonals of the
    hardware array.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    deficit = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
    for j in range(l):
        colsum = np.zeros_like(deficit)
        color = np.zeros_like(deficit)
        for i in range(j + 1):
            bit = ((a >> i) & 1) & ((b >> (j - i)) & 1)
            colsum += bit
            color |= bit
        deficit += (colsum - color) << j
    return deficit


class DnnCoMultiplier(Multiplier):
    """Array multiplier with OR-approximated low ``l`` result columns."""

    family = "DNNCO"

    def __init__(self, bitwidth: int = 16, l: int = 6):
        super().__init__(bitwidth)
        if not 1 <= l <= bitwidth:
            raise ValueError(
                f"approximated column count l must be in [1, {bitwidth}], got {l}"
            )
        self.l = l

    @property
    def name(self) -> str:
        return f"DNNCO (l={self.l})"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b - column_deficit(a, b, self.l)
