"""Named multiplier configurations — the full design set of Table I.

Every configuration evaluated in the paper's Table I (and used by Fig. 4's
design space and Table II's JPEG study) has a stable identifier here, e.g.
``"realm16-t3"``, ``"drum-k6"``, ``"alm-soa-m11"``.  The registry maps the
identifier to a factory taking the bitwidth, so benchmarks, examples, the
CLI and the tests all construct identical instances.

>>> from repro.multipliers.registry import build
>>> build("realm16-t0").name
'REALM16 (t=0)'
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from .accurate import AccurateMultiplier
from .alm import AlmMaa, AlmSoa
from .am import Am1Multiplier, Am2Multiplier
from .base import Multiplier
from .drum import DrumMultiplier
from .implm import ImpLmMultiplier
from .intalp import IntAlpMultiplier
from .mbm import MbmMultiplier
from .mitchell import MitchellMultiplier
from .ssm import EssmMultiplier, SsmMultiplier

__all__ = [
    "REGISTRY",
    "TABLE1_IDS",
    "build",
    "names",
    "iter_multipliers",
]

Factory = Callable[[int], Multiplier]


def _realm_factory(m: int, t: int) -> Factory:
    # imported lazily to avoid a circular import at package load time
    def factory(bitwidth: int) -> Multiplier:
        from ..core.realm import RealmMultiplier

        return RealmMultiplier(bitwidth=bitwidth, m=m, t=t)

    return factory


def _build_registry() -> dict[str, Factory]:
    registry: dict[str, Factory] = {"accurate": AccurateMultiplier}
    for m in (16, 8, 4):
        for t in range(10):
            registry[f"realm{m}-t{t}"] = _realm_factory(m, t)
    registry["calm"] = MitchellMultiplier
    registry["implm-ea"] = lambda n: ImpLmMultiplier(n, adder="EA")
    for t in (0, 2, 4, 6, 8, 9):
        registry[f"mbm-t{t}"] = lambda n, t=t: MbmMultiplier(n, t=t)
    for m in (3, 6, 9, 11, 12):
        registry[f"alm-maa-m{m}"] = lambda n, m=m: AlmMaa(n, m=m)
        registry[f"alm-soa-m{m}"] = lambda n, m=m: AlmSoa(n, m=m)
    for level in (2, 1):
        registry[f"intalp-l{level}"] = lambda n, level=level: IntAlpMultiplier(
            n, level=level
        )
    for nb in (13, 9, 5):
        registry[f"am1-nb{nb}"] = lambda n, nb=nb: Am1Multiplier(n, nb=nb)
        registry[f"am2-nb{nb}"] = lambda n, nb=nb: Am2Multiplier(n, nb=nb)
    for k in (8, 7, 6, 5, 4):
        registry[f"drum-k{k}"] = lambda n, k=k: DrumMultiplier(n, k=k)
    for m in (10, 9, 8):
        registry[f"ssm-m{m}"] = lambda n, m=m: SsmMultiplier(n, m=m)
    registry["essm8"] = lambda n: EssmMultiplier(n, m=8)
    return registry


#: identifier -> factory(bitwidth) for every design point in the paper
REGISTRY: dict[str, Factory] = _build_registry()

#: the approximate designs of Table I, in the paper's row order
TABLE1_IDS: tuple[str, ...] = tuple(
    name for name in REGISTRY if name != "accurate"
)


def names() -> list[str]:
    """All registered configuration identifiers, in Table I order."""
    return list(REGISTRY)


def build(name: str, bitwidth: int = 16) -> Multiplier:
    """Construct the named configuration at the given bitwidth."""
    try:
        factory = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown multiplier {name!r}; known: {', '.join(REGISTRY)}"
        ) from None
    return factory(bitwidth)


def iter_multipliers(
    ids: tuple[str, ...] | list[str] | None = None, bitwidth: int = 16
) -> Iterator[tuple[str, Multiplier]]:
    """Yield ``(identifier, instance)`` pairs for the requested designs."""
    for name in ids if ids is not None else names():
        yield name, build(name, bitwidth)
