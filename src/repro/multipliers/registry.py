"""Named multiplier configurations — the full design set of Table I.

Every configuration evaluated in the paper's Table I (and used by Fig. 4's
design space and Table II's JPEG study) has a stable identifier here, e.g.
``"realm16-t3"``, ``"drum-k6"``, ``"alm-soa-m11"``.  The registry maps the
identifier to a factory taking the bitwidth, so benchmarks, examples, the
CLI and the tests all construct identical instances.

>>> from repro.multipliers.registry import build
>>> build("realm16-t0").name
'REALM16 (t=0)'
"""

from __future__ import annotations

import dataclasses
import hashlib

from collections.abc import Callable, Iterator

import numpy as np

from .accurate import AccurateMultiplier
from .alm import AlmMaa, AlmSoa
from .am import Am1Multiplier, Am2Multiplier
from .base import Multiplier
from .dnnco import DnnCoMultiplier
from .drum import DrumMultiplier
from .implm import ImpLmMultiplier
from .intalp import IntAlpMultiplier
from .mbm import MbmMultiplier
from .mitchell import MitchellMultiplier
from .scaletrim import ScaleTrimMultiplier
from .ssm import EssmMultiplier, SsmMultiplier

__all__ = [
    "REGISTRY",
    "TABLE1_IDS",
    "build",
    "fingerprint",
    "names",
    "iter_multipliers",
]

Factory = Callable[[int], Multiplier]


def _realm_factory(m: int, t: int) -> Factory:
    # imported lazily to avoid a circular import at package load time
    def factory(bitwidth: int) -> Multiplier:
        from ..core.realm import RealmMultiplier

        return RealmMultiplier(bitwidth=bitwidth, m=m, t=t)

    return factory


def _build_registry() -> dict[str, Factory]:
    registry: dict[str, Factory] = {"accurate": AccurateMultiplier}
    for m in (16, 8, 4):
        for t in range(10):
            registry[f"realm{m}-t{t}"] = _realm_factory(m, t)
    registry["calm"] = MitchellMultiplier
    registry["implm-ea"] = lambda n: ImpLmMultiplier(n, adder="EA")
    for t in (0, 2, 4, 6, 8, 9):
        registry[f"mbm-t{t}"] = lambda n, t=t: MbmMultiplier(n, t=t)
    for m in (3, 6, 9, 11, 12):
        registry[f"alm-maa-m{m}"] = lambda n, m=m: AlmMaa(n, m=m)
        registry[f"alm-soa-m{m}"] = lambda n, m=m: AlmSoa(n, m=m)
    for level in (2, 1):
        registry[f"intalp-l{level}"] = lambda n, level=level: IntAlpMultiplier(
            n, level=level
        )
    for nb in (13, 9, 5):
        registry[f"am1-nb{nb}"] = lambda n, nb=nb: Am1Multiplier(n, nb=nb)
        registry[f"am2-nb{nb}"] = lambda n, nb=nb: Am2Multiplier(n, nb=nb)
    for k in (8, 7, 6, 5, 4):
        registry[f"drum-k{k}"] = lambda n, k=k: DrumMultiplier(n, k=k)
    for m in (10, 9, 8):
        registry[f"ssm-m{m}"] = lambda n, m=m: SsmMultiplier(n, m=m)
    registry["essm8"] = lambda n: EssmMultiplier(n, m=8)
    for t, c in ((3, 2), (4, 0), (4, 2), (6, 3)):
        registry[f"scaletrim-t{t}-c{c}"] = lambda n, t=t, c=c: ScaleTrimMultiplier(
            n, t=t, c=c
        )
    for level in (4, 6, 8):
        registry[f"dnnco-l{level}"] = lambda n, level=level: DnnCoMultiplier(
            n, l=level
        )
    return registry


#: identifier -> factory(bitwidth) for every design point in the paper
REGISTRY: dict[str, Factory] = _build_registry()

#: the approximate designs of Table I, in the paper's row order
TABLE1_IDS: tuple[str, ...] = tuple(
    name for name in REGISTRY if name != "accurate"
)


def names() -> list[str]:
    """All registered configuration identifiers, in Table I order."""
    return list(REGISTRY)


def build(name: str, bitwidth: int = 16) -> Multiplier:
    """Construct the named configuration at the given bitwidth."""
    try:
        factory = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown multiplier {name!r}; known: {', '.join(REGISTRY)}"
        ) from None
    return factory(bitwidth)


def _describe_value(value):
    """JSON-stable description of one configuration attribute."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            key: _describe_value(item)
            for key, item in dataclasses.asdict(value).items()
        }
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes())
        return {
            "ndarray": digest.hexdigest(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, (tuple, list)):
        return [_describe_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _describe_value(item) for key, item in sorted(value.items())}
    if callable(value) and hasattr(value, "__qualname__"):
        # default repr embeds a memory address, which is not stable across
        # processes; the qualified name is
        module = getattr(value, "__module__", "?")
        return {"callable": f"{module}.{value.__qualname__}"}
    return repr(value)


def fingerprint(multiplier: Multiplier) -> dict:
    """Stable, JSON-serializable description of a multiplier configuration.

    Covers the class identity, bitwidth and every instance attribute
    (scalars directly, dataclass configs field by field, arrays as SHA-256
    content digests), so two instances fingerprint equally iff they
    compute the same function.  The metrics cache keys on this.
    """
    info: dict = {
        "class": type(multiplier).__qualname__,
        "module": type(multiplier).__module__,
        "bitwidth": multiplier.bitwidth,
        "name": multiplier.name,
    }
    for key, value in sorted(vars(multiplier).items()):
        if key == "bitwidth":
            continue
        info[key] = _describe_value(value)
    return info


def iter_multipliers(
    ids: tuple[str, ...] | list[str] | None = None, bitwidth: int = 16
) -> Iterator[tuple[str, Multiplier]]:
    """Yield ``(identifier, instance)`` pairs for the requested designs."""
    for name in ids if ids is not None else names():
        yield name, build(name, bitwidth)
