"""AM1 / AM2: approximate multipliers with configurable error recovery,
Jiang et al., TCAS-I 2019 [15].

The partial products of an ``N x N`` array are accumulated by a binary tree
of *approximate adders* that compute ``a + b ~= a | b`` and emit the lost
amount ``a & b`` as an explicit error vector (the identity
``a + b = (a | b) + (a & b)`` makes the decomposition exact).  Dropping the
error vectors yields a fast adder tree that only ever underestimates —
hence the one-sided error (max 0) and the large negative worst case of
Table I.

Error recovery is configured by ``nb``, the number of most-significant
result bits for which error information is added back:

* **AM1** ORs all error vectors together and adds the masked OR once —
  a single cheap recovery stage;
* **AM2** sums all error vectors exactly (masked) — a costlier but more
  accurate recovery, matching Table I's ordering (AM2 has lower bias and
  lower area reduction than AM1 at equal ``nb``).

The REALM paper cites [15] without micro-architectural detail; this module
implements the published sum/error-vector decomposition behaviorally (see
DESIGN.md, Substitutions).  Fidelity note: AM2's Table I rows are matched
closely (bias -0.21 vs paper -0.25 at nb=13); AM1's exact recovery wiring
is not recoverable from the REALM paper and the OR recovery used here is
weaker than the original (bias -3.5 vs paper -0.44 at nb=13), while
preserving every qualitative property — one-sided error, AM1 worse than
AM2, error growing as nb shrinks.  EXPERIMENTS.md records the deltas.
"""

from __future__ import annotations

import numpy as np

from .base import Multiplier

__all__ = ["AmMultiplier", "Am1Multiplier", "Am2Multiplier"]


class AmMultiplier(Multiplier):
    """Common machinery of AM1/AM2: OR-tree accumulation + error vectors."""

    def __init__(self, bitwidth: int = 16, nb: int = 13):
        super().__init__(bitwidth)
        if not 0 <= nb <= 2 * bitwidth:
            raise ValueError(f"recovery width nb must be in [0, {2 * bitwidth}]")
        self.nb = nb

    @property
    def name(self) -> str:
        return f"{self.family} (nb={self.nb})"

    def _recovery_mask(self) -> np.int64:
        """Mask selecting the ``nb`` MSBs of the ``2N``-bit result."""
        total = 2 * self.bitwidth
        low = total - self.nb
        return np.int64(((1 << total) - 1) & ~((1 << low) - 1))

    def _accumulate(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """OR-approximate adder tree over the partial products.

        Returns the approximate sum and the per-node error vectors
        ``a & b`` (each an exact amount the node dropped).
        """
        terms = [
            np.where((b >> i) & 1 == 1, a << i, np.int64(0))
            for i in range(self.bitwidth)
        ]
        errors: list[np.ndarray] = []
        while len(terms) > 1:
            next_terms = []
            for first, second in zip(terms[0::2], terms[1::2]):
                next_terms.append(first | second)
                errors.append(first & second)
            if len(terms) % 2 == 1:
                next_terms.append(terms[-1])
            terms = next_terms
        return terms[0], errors

    def _recover(self, errors: list[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        approx, errors = self._accumulate(a, b)
        return approx + (self._recover(errors) & self._recovery_mask())


class Am1Multiplier(AmMultiplier):
    """AM1: single-stage recovery from the OR of all error vectors."""

    family = "AM1"

    def _recover(self, errors: list[np.ndarray]) -> np.ndarray:
        combined = errors[0]
        for error in errors[1:]:
            combined = combined | error
        return combined


class Am2Multiplier(AmMultiplier):
    """AM2: recovery from the exact sum of all error vectors."""

    family = "AM2"

    def _recover(self, errors: list[np.ndarray]) -> np.ndarray:
        total = errors[0].copy()
        for error in errors[1:]:
            total = total + error
        return total
