"""ImpLM: improved logarithmic multiplier, Ansari et al., DATE 2019 [10].

ImpLM improves Mitchell's log approximation by rounding to the *nearest*
power of two instead of the highest power of two below the operand.  For
``A = 2**k * (1 + x)``:

* ``x < 0.5``  → characteristic ``k``,   fraction ``x`` (non-negative);
* ``x >= 0.5`` → characteristic ``k+1``, fraction ``(x - 1) / 2`` (negative,
  in ``(-0.25, 0)``), since ``A = 2**(k+1) * (1 + (x-1)/2)``.

The two signed log values are added exactly (Table I's "EA" — exact adder —
configuration) and the linear antilog ``2**(k+f) ~= 2**k * (1 + f)`` is
applied directly to the signed fraction sum.  The double-sided error
(±11.11% peaks) and the near-zero bias of Table I follow directly from the
nearest-one rounding.

The fraction is kept on a ``2**-bitwidth`` grid so the halving of negative
fractions is exact for every operand.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import floor_log2, shift_value
from .base import Multiplier

__all__ = ["ImpLmMultiplier"]


class ImpLmMultiplier(Multiplier):
    """ImpLM with the exact adder (the paper's least-error configuration)."""

    family = "ImpLM"

    def __init__(self, bitwidth: int = 16, adder: str = "EA"):
        super().__init__(bitwidth)
        if adder != "EA":
            raise ValueError(
                "only the exact-adder configuration ('EA') used in the REALM "
                f"paper is implemented, got {adder!r}"
            )
        self.adder = adder

    @property
    def name(self) -> str:
        return f"ImpLM ({self.adder})"

    def _decompose(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-one characteristic and signed fraction.

        The fraction is returned as a signed integer on the ``2**-N`` grid
        (value = F / 2**N) so that ``(x - 1) / 2`` is exact.
        """
        n = self.bitwidth
        k = floor_log2(v)
        # nearest power of two: round up when the bit below the leading one
        # is set (x >= 0.5)
        round_up = ((v >> np.maximum(k - 1, 0)) & 1).astype(bool) & (k > 0)
        k_near = np.where(round_up, k + 1, k)
        # F = (v - 2**k_near) * 2**(n - k_near), exact and signed
        f = shift_value(v - (np.int64(1) << k_near), n - k_near)
        return k_near, f

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = self.bitwidth
        nonzero = (a > 0) & (b > 0)
        ka, fa = self._decompose(np.where(a > 0, a, 1))
        kb, fb = self._decompose(np.where(b > 0, b, 1))

        k_sum = ka + kb
        f_sum = fa + fb  # in (-2**(n-1), 2**n) on the 2**-n grid

        # Linear antilog 2**(k + f) ~= 2**k * (1 + f), applied directly to
        # the signed fraction sum: for negative f the mantissa 1 + f simply
        # drops below one (a denormal mantissa the barrel shifter handles),
        # it is NOT renormalized — renormalizing would compound the linear
        # log/antilog approximations instead of cancelling them and blow
        # the error up to +33%.
        mantissa = (np.int64(1) << n) + f_sum
        product = shift_value(mantissa, k_sum - n)
        return np.where(nonzero, product, 0)
