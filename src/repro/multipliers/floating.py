"""Approximate floating-point multiplication with integer mantissa cores.

The REALM paper's sibling designs live in FP land: MBM [4] builds
approximate FP multipliers by replacing the mantissa multiplier with an
approximate integer core, and ApproxLP [11] approximates the mantissa
product directly.  This module closes that loop for REALM: a binary
floating-point multiplier (configurable exponent/mantissa widths, e.g.
IEEE-754 binary32's 8/23 or a bfloat16-like 8/7) whose mantissa product
comes from **any unsigned integer multiplier of this library**.

Format and semantics:

* values are ``(-1)^s * 2^(e - bias) * 1.m`` with flush-to-zero for
  subnormal results and saturation to the largest finite value on
  overflow (the usual choices of approximate FP hardware — keeping the
  datapath free of special-case mass);
* the mantissa core multiplies the two ``(1 + mantissa_bits)``-wide
  significands; the ``2p+1``-or-``2p+2``-bit product is renormalized and
  truncated back to ``p`` mantissa bits (truncation, like the integer
  designs — the approximate core's error dwarfs half-an-ulp rounding);
* because the significands are exactly the ``1.x`` operands of Section
  III-A, REALM's error-reduction factors apply unchanged: an FP-REALM's
  relative error equals the integer REALM's error on full-scale operands.

``FloatFormat`` handles packing/unpacking so tests can round-trip real
float32 values bit-exactly through the accurate configuration.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .accurate import AccurateMultiplier
from .base import Multiplier

__all__ = ["FloatFormat", "ApproxFloatMultiplier", "FLOAT32", "BFLOAT16_LIKE"]


@dataclasses.dataclass(frozen=True)
class FloatFormat:
    """A binary floating-point format (sign + exponent + mantissa)."""

    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise ValueError(f"need >= 2 exponent bits, got {self.exponent_bits}")
        if not 1 <= self.mantissa_bits <= 30:
            raise ValueError(
                f"mantissa bits must be in [1, 30], got {self.mantissa_bits}"
            )

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        return (1 << self.exponent_bits) - 1  # all-ones reserved for inf/nan

    @property
    def total_bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits

    # ------------------------------------------------------------------
    # packing
    # ------------------------------------------------------------------
    def pack(self, sign, exponent, mantissa) -> np.ndarray:
        sign = np.asarray(sign, dtype=np.int64)
        exponent = np.asarray(exponent, dtype=np.int64)
        mantissa = np.asarray(mantissa, dtype=np.int64)
        return (
            (sign << (self.exponent_bits + self.mantissa_bits))
            | (exponent << self.mantissa_bits)
            | mantissa
        )

    def unpack(self, bits) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        bits = np.asarray(bits, dtype=np.int64)
        mantissa = bits & ((1 << self.mantissa_bits) - 1)
        exponent = (bits >> self.mantissa_bits) & ((1 << self.exponent_bits) - 1)
        sign = bits >> (self.exponent_bits + self.mantissa_bits)
        return sign & 1, exponent, mantissa

    def from_float(self, values) -> np.ndarray:
        """Encode float64 values (round-to-nearest mantissa, FTZ)."""
        values = np.asarray(values, dtype=np.float64)
        sign = (np.signbit(values)).astype(np.int64)
        magnitude = np.abs(values)
        with np.errstate(divide="ignore"):
            exponent = np.floor(np.log2(np.where(magnitude > 0, magnitude, 1.0)))
        scale = np.exp2(exponent)
        fraction = np.where(magnitude > 0, magnitude / scale - 1.0, 0.0)
        mantissa = np.rint(fraction * (1 << self.mantissa_bits)).astype(np.int64)
        # mantissa rounding can carry into the exponent
        carry = mantissa >> self.mantissa_bits
        mantissa = mantissa & ((1 << self.mantissa_bits) - 1)
        biased = exponent.astype(np.int64) + carry + self.bias
        underflow = (magnitude == 0) | (biased < 1)
        overflow = biased >= self.max_exponent
        biased = np.clip(biased, 1, self.max_exponent - 1)
        mantissa = np.where(overflow, (1 << self.mantissa_bits) - 1, mantissa)
        packed = self.pack(sign, biased, mantissa)
        return np.where(underflow, sign << (self.total_bits - 1), packed)

    def to_float(self, bits) -> np.ndarray:
        """Decode to float64 (zero exponent means zero: FTZ semantics)."""
        sign, exponent, mantissa = self.unpack(bits)
        fraction = 1.0 + mantissa / np.float64(1 << self.mantissa_bits)
        value = fraction * np.exp2(exponent.astype(np.float64) - self.bias)
        value = np.where(exponent == 0, 0.0, value)
        return np.where(sign == 1, -value, value)


FLOAT32 = FloatFormat(exponent_bits=8, mantissa_bits=23)
BFLOAT16_LIKE = FloatFormat(exponent_bits=8, mantissa_bits=7)


class ApproxFloatMultiplier:
    """FP multiplier whose significand product uses an integer core.

    ``core_factory(bitwidth)`` builds the unsigned integer multiplier for
    the significand width (``mantissa_bits + 1``); the default accurate
    core makes this an exact truncating FP multiplier, and e.g.
    ``lambda n: RealmMultiplier(bitwidth=n, m=16)`` produces the
    REALM-based FP multiplier.
    """

    def __init__(
        self,
        fmt: FloatFormat = FLOAT32,
        core_factory=AccurateMultiplier,
    ):
        self.fmt = fmt
        self.core: Multiplier = core_factory(fmt.mantissa_bits + 1)
        if self.core.bitwidth != fmt.mantissa_bits + 1:
            raise ValueError(
                "core_factory must honor the significand width "
                f"{fmt.mantissa_bits + 1}, got {self.core.bitwidth}"
            )

    @property
    def name(self) -> str:
        return (
            f"float(e{self.fmt.exponent_bits}m{self.fmt.mantissa_bits})"
            f"[{self.core.name}]"
        )

    def multiply_bits(self, a_bits, b_bits) -> np.ndarray:
        """Multiply packed operands, returning packed results."""
        fmt = self.fmt
        p = fmt.mantissa_bits
        sign_a, exp_a, man_a = fmt.unpack(a_bits)
        sign_b, exp_b, man_b = fmt.unpack(b_bits)

        sign = sign_a ^ sign_b
        significand_a = (np.int64(1) << p) | man_a
        significand_b = (np.int64(1) << p) | man_b
        product = self.core.multiply(significand_a, significand_b)

        # product of two 1.x significands is in [2^2p, 2^(2p+2)): normalize
        # to 1.x (approximate cores may push it one binade either way)
        exponent = exp_a + exp_b - fmt.bias
        norm = np.ones_like(product)
        top = np.int64(1) << (2 * p)
        for _ in range(2):  # at most two upward renormalizations
            above = product >= (top << 1)
            product = np.where(above, product >> 1, product)
            exponent = exponent + above
        below = product < top
        product = np.where(below, product << 1, product)
        exponent = exponent - below
        del norm

        mantissa = (product >> p) & ((np.int64(1) << p) - 1)  # truncate

        zero_in = (exp_a == 0) | (exp_b == 0)
        underflow = exponent < 1
        overflow = exponent >= fmt.max_exponent
        exponent = np.clip(exponent, 1, fmt.max_exponent - 1)
        mantissa = np.where(overflow, (np.int64(1) << p) - 1, mantissa)
        packed = fmt.pack(sign, exponent, mantissa)
        flushed = fmt.pack(sign, np.zeros_like(exponent), np.zeros_like(mantissa))
        return np.where(zero_in | underflow, flushed, packed)

    def multiply(self, a, b) -> np.ndarray:
        """Multiply real values; returns float64 of the approximate result."""
        fmt = self.fmt
        bits = self.multiply_bits(fmt.from_float(a), fmt.from_float(b))
        return fmt.to_float(bits)

    def __repr__(self) -> str:
        return f"<ApproxFloatMultiplier {self.name!r}>"
