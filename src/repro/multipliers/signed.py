"""Signed multiplication on top of any unsigned multiplier.

The paper (Section III-C, "Handling Signed Numbers") notes that any
unsigned approximate multiplier extends straightforwardly to signed
operands and refers to DRUM [3] for the standard recipe: take magnitudes,
multiply them with the unsigned core, and restore the sign as the XOR of
the operand signs (sign-magnitude wrapping).

:class:`SignedMultiplier` implements that recipe for ``N``-bit two's
complement operands in ``[-2**(N-1), 2**(N-1) - 1]``.  The magnitude of
``-2**(N-1)`` needs ``N`` bits, so the unsigned core is instantiated one
bit wider than the signed interface — the same widening a hardware wrapper
performs.

The module also provides :func:`dot_product` and :func:`convolve2d`
helpers used by the application-level examples: they route every
multiplication of a reduction through the wrapped multiplier while
accumulating exactly, which is the standard approximate-multiplier usage
model in DSP/ML kernels.
"""

from __future__ import annotations

import numpy as np

from .base import Multiplier

__all__ = ["SignedMultiplier", "dot_product", "convolve2d"]


class SignedMultiplier:
    """Sign-magnitude wrapper turning an unsigned core into a signed one.

    ``core_factory`` builds the unsigned core for a given bitwidth, e.g.
    ``lambda n: RealmMultiplier(bitwidth=n, m=16)``.  The wrapper exposes
    ``multiply`` over two's complement operands of ``bitwidth`` bits.
    """

    def __init__(self, core_factory, bitwidth: int = 16):
        if bitwidth < 2:
            raise ValueError(f"bitwidth must be >= 2, got {bitwidth}")
        self.bitwidth = bitwidth
        self.core: Multiplier = core_factory(bitwidth + 1)
        if self.core.bitwidth != bitwidth + 1:
            raise ValueError(
                "core_factory must honor the requested bitwidth: needed "
                f"{bitwidth + 1}, got {self.core.bitwidth}"
            )

    @property
    def name(self) -> str:
        return f"signed[{self.core.name}]"

    def multiply(self, a, b) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        low = -(1 << (self.bitwidth - 1))
        high = (1 << (self.bitwidth - 1)) - 1
        for label, operand in (("a", a), ("b", b)):
            if operand.size and (operand.min() < low or operand.max() > high):
                raise ValueError(
                    f"operand {label} outside [{low}, {high}] for a "
                    f"{self.bitwidth}-bit signed multiplier"
                )
        magnitude = self.core.multiply(np.abs(a), np.abs(b))
        return np.where((a < 0) ^ (b < 0), -magnitude, magnitude)

    def __call__(self, a, b) -> np.ndarray:
        return self.multiply(a, b)

    def __repr__(self) -> str:
        return f"<SignedMultiplier {self.name!r} N={self.bitwidth}>"


def dot_product(multiplier, a, b) -> np.int64:
    """Dot product with approximate products and exact accumulation."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return np.sum(multiplier.multiply(a.ravel(), b.ravel()), dtype=np.int64)


def convolve2d(multiplier, image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """'Valid' 2-D convolution routing every product through ``multiplier``.

    ``image`` and ``kernel`` are integer arrays; products are accumulated
    exactly.  The kernel is applied in correlation orientation (no flip),
    matching the usual hardware-accelerator convention.
    """
    image = np.asarray(image, dtype=np.int64)
    kernel = np.asarray(kernel, dtype=np.int64)
    kh, kw = kernel.shape
    oh = image.shape[0] - kh + 1
    ow = image.shape[1] - kw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kernel.shape} does not fit image {image.shape}"
        )
    out = np.zeros((oh, ow), dtype=np.int64)
    for dy in range(kh):
        for dx in range(kw):
            patch = image[dy : dy + oh, dx : dx + ow]
            out += multiplier.multiply(patch, np.full_like(patch, kernel[dy, dx]))
    return out
