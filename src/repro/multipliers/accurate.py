"""Accurate reference multiplier.

This is the paper's baseline: an exact unsigned integer multiplier
(implemented in hardware as a Wallace tree; see
:mod:`repro.circuits.wallace` for the structural model used for the
area/power reference of Table I).
"""

from __future__ import annotations

import numpy as np

from .base import Multiplier

__all__ = ["AccurateMultiplier"]


class AccurateMultiplier(Multiplier):
    """Exact ``N x N -> 2N`` unsigned multiplication."""

    family = "Accurate"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a * b
