"""Classical approximate log-based multiplier (cALM), Mitchell 1962 [8].

Operands are decomposed as ``A = 2**ka * (1 + x)``; the linear-log
approximation ``lg(A) ~= ka + x`` turns multiplication into addition
(paper Eq. 1-2), and the linear antilog turns the sum back into the
approximate product (paper Eq. 3).

The fixed-point datapath is modeled exactly: the two log values are formed
by concatenating the characteristic and the ``N-1``-bit fraction, added
with an exact adder, and the sum is scaled by the output barrel shifter
(which floors away fraction bits for small products, like the hardware).

Mitchell's multiplier never overestimates: its relative error lies in
``[-11.11%, 0]`` with mean -3.85% (paper Table I), which is precisely the
bias REALM's per-segment factors remove.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import floor_log2, log_fraction, mask, shift_value
from .base import Multiplier

__all__ = ["MitchellMultiplier", "log_operands", "antilog"]


def log_operands(
    a: np.ndarray, b: np.ndarray, bitwidth: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Characteristics and fractions of both operands, zero-safe.

    Returns ``(ka, kb, xa, xb, nonzero)`` where fractions are
    ``bitwidth - 1``-bit integers.  Zero operands (which have no leading
    one; real designs detect them separately) yield ``k = x = 0`` and are
    flagged through ``nonzero`` so callers can force a zero product.
    """
    nonzero = (a > 0) & (b > 0)
    safe_a = np.where(a > 0, a, 1)
    safe_b = np.where(b > 0, b, 1)
    ka = floor_log2(safe_a)
    kb = floor_log2(safe_b)
    xa = log_fraction(safe_a, ka, bitwidth)
    xb = log_fraction(safe_b, kb, bitwidth)
    return ka, kb, xa, xb, nonzero


def antilog(log_sum: np.ndarray, fraction_width: int) -> np.ndarray:
    """Linear antilog of a fixed-point log value (paper Eq. 3).

    ``log_sum`` carries the characteristic in the bits above
    ``fraction_width`` and the fraction below; the result is
    ``2**k * (1 + f)`` computed as a barrel shift of the mantissa
    ``1.f`` (flooring fraction bits that fall below the integer LSB).
    """
    characteristic = log_sum >> fraction_width
    fraction = log_sum & mask(fraction_width)
    mantissa = (np.int64(1) << fraction_width) | fraction
    return shift_value(mantissa, characteristic - fraction_width)


class MitchellMultiplier(Multiplier):
    """cALM: the classical approximate log-based multiplier [8]."""

    family = "cALM"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        width = self.bitwidth - 1
        ka, kb, xa, xb, nonzero = log_operands(a, b, self.bitwidth)
        log_a = (ka << width) | xa
        log_b = (kb << width) | xb
        product = antilog(log_a + log_b, width)
        return np.where(nonzero, product, 0)
