"""ALM: Mitchell multipliers with approximate log-sum adders, Liu et al. [9].

These designs keep cALM's structure but replace the exact adder that sums
the two fixed-point log values with an approximate adder on the ``m``
least-significant bits:

* **LOA** (lower-part OR adder): the low ``m`` sum bits are the bitwise OR
  of the inputs, and the carry into the exact upper part is the AND of the
  two bit-``m-1`` inputs.
* **SOA** (set-one adder): the low ``m`` sum bits are constant 1, with the
  carry into the exact upper part generated like LOA's (AND of the two
  bit-``m-1`` inputs) — the low-part logic disappears entirely, trading a
  positive error push on the low bits for dropped low-order carries.  This
  reproduces Table I's ALM-SOA rows digit-for-digit (bias -2.80 at m=11,
  -1.75 at m=12), which a carry-less set-one adder does not.
* **MAA** (mirror-adder approximation): the low part uses the classic
  approximate mirror-adder cell simplification (sum bit = one input bit,
  carry chain = the other input's bits), i.e. the low ``m`` sum bits are
  taken from one operand and the carry into the upper part from the other.

The REALM paper cites [9] for MAA without reproducing its cell; we use the
published approximate-mirror-adder behavior above and document the choice
(DESIGN.md, Substitutions).  The error *shape* of Table I — bias stuck near
cALM's -3.85% with peaks growing as ``m`` grows — is a property of
approximating only low-order log bits and is preserved by all variants.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import mask
from .base import Multiplier
from .mitchell import antilog, log_operands

__all__ = ["ApproxAdderLogMultiplier", "AlmLoa", "AlmMaa", "AlmSoa"]


def _loa_add(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    low = (a | b) & mask(m)
    msb = np.int64(1) << (m - 1)
    carry = ((a & msb) & (b & msb)) >> (m - 1)
    high = (a >> m) + (b >> m) + carry
    return (high << m) | low


def _soa_add(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    msb = np.int64(1) << (m - 1)
    carry = ((a & msb) & (b & msb)) >> (m - 1)
    high = (a >> m) + (b >> m) + carry
    return (high << m) | mask(m)


def _maa_add(a: np.ndarray, b: np.ndarray, m: int) -> np.ndarray:
    low = a & mask(m)
    msb = np.int64(1) << (m - 1)
    carry = (b & msb) >> (m - 1)
    high = (a >> m) + (b >> m) + carry
    return (high << m) | low


_ADDERS = {"LOA": _loa_add, "SOA": _soa_add, "MAA": _maa_add}


class ApproxAdderLogMultiplier(Multiplier):
    """cALM with an approximate adder on the ``m`` low log-sum bits [9]."""

    def __init__(self, bitwidth: int = 16, m: int = 6, adder: str = "SOA"):
        super().__init__(bitwidth)
        if adder not in _ADDERS:
            raise ValueError(f"adder must be one of {sorted(_ADDERS)}, got {adder!r}")
        if not 1 <= m <= bitwidth - 1:
            raise ValueError(
                f"approximate low part m must be in [1, {bitwidth - 1}], got {m}"
            )
        self.m = m
        self.adder = adder
        self._add = _ADDERS[adder]

    @property
    def family(self) -> str:  # type: ignore[override]
        return f"ALM-{self.adder}"

    @property
    def name(self) -> str:
        return f"ALM-{self.adder} (m={self.m})"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        width = self.bitwidth - 1
        ka, kb, xa, xb, nonzero = log_operands(a, b, self.bitwidth)
        log_a = (ka << width) | xa
        log_b = (kb << width) | xb
        product = antilog(self._add(log_a, log_b, self.m), width)
        return np.where(nonzero, product, 0)


class AlmLoa(ApproxAdderLogMultiplier):
    """ALM with the lower-part OR adder."""

    def __init__(self, bitwidth: int = 16, m: int = 6):
        super().__init__(bitwidth, m, adder="LOA")


class AlmMaa(ApproxAdderLogMultiplier):
    """ALM with the approximate mirror adder (Table I's ALM-MAA)."""

    def __init__(self, bitwidth: int = 16, m: int = 6):
        super().__init__(bitwidth, m, adder="MAA")


class AlmSoa(ApproxAdderLogMultiplier):
    """ALM with the set-one adder (Table I's ALM-SOA)."""

    def __init__(self, bitwidth: int = 16, m: int = 6):
        super().__init__(bitwidth, m, adder="SOA")
