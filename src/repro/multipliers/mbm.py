"""MBM: minimally biased multiplier, Saadat et al., TCAD 2018 [4].

MBM couples Mitchell's multiplier with a *single* error-correction term for
the whole multiplier, computed by averaging the actual error over a
complete power-of-two interval (paper Section II).  Mitchell's absolute
error is ``2**(ka+kb) * x*y`` for ``x + y < 1`` and
``2**(ka+kb) * (1-x)(1-y)`` otherwise; averaged over the unit square the
correction mantissa is

.. math::

    c = 2 \\int\\int_{x+y<1} xy \\, dx\\,dy = 2 \\cdot \\tfrac{1}{24}
      = \\tfrac{1}{12} \\approx 0.0833

which, quantized to the same ``q = 6``-bit grid REALM uses, becomes the
hardwired constant ``5/64 = 0.078125``.  The correction is added to the log
mantissa before the final scaling, exactly like REALM's ``s_ij`` but with
one value instead of ``M**2`` — REALM's Section II observes this is why
MBM's bias is low while its mean/peak error stay high.

MBM shares REALM's fraction-truncation knob ``t`` (truncate ``t`` LSBs,
force the next bit to 1).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..core.bitops import shift_value, truncate_fraction
from .base import Multiplier
from .mitchell import log_operands

__all__ = ["MbmMultiplier", "MBM_CORRECTION"]

#: exact mean of Mitchell's error mantissa over a power-of-two interval
MBM_CORRECTION = Fraction(1, 12)


class MbmMultiplier(Multiplier):
    """MBM [4] with truncation parameter ``t`` and ``q``-bit correction."""

    family = "MBM"

    def __init__(self, bitwidth: int = 16, t: int = 0, q: int = 6):
        super().__init__(bitwidth)
        if not 0 <= t < bitwidth - 1:
            raise ValueError(f"t must be in [0, {bitwidth - 2}], got {t}")
        if q < 3:
            raise ValueError(f"correction precision q must be >= 3, got {q}")
        self.t = t
        self.q = q
        #: correction constant on the 2**-q grid (round to nearest)
        self.correction_code = int(round(MBM_CORRECTION * (1 << q)))

    @property
    def name(self) -> str:
        return f"MBM (t={self.t})"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raw_width = self.bitwidth - 1
        width = raw_width - self.t
        ka, kb, xa, xb, nonzero = log_operands(a, b, self.bitwidth)

        xa_t = truncate_fraction(xa, self.t, raw_width)
        xb_t = truncate_fraction(xb, self.t, raw_width)
        fraction_sum = xa_t + xb_t
        carry = fraction_sum >> width

        # Correction aligned to the fraction grid, halved on carry —
        # identical wiring to REALM's LUT path with M = 1.
        code = np.int64(self.correction_code)
        c_full = shift_value(code, width - self.q)
        c_half = shift_value(code, width - self.q - 1)
        mantissa = np.where(
            carry == 0,
            (np.int64(1) << width) + fraction_sum + c_full,
            fraction_sum + c_half,
        )
        product = shift_value(mantissa, ka + kb + carry - width)
        return np.where(nonzero, product, 0)
