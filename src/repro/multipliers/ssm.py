"""SSM and ESSM: static segment multipliers, Narayanamoorthy et al. [14].

**SSM(m)** picks one of two static ``m``-bit segments of each ``N``-bit
operand: the low segment (bits ``m-1..0``) when the upper ``N-m`` bits are
all zero — in which case the operand is represented exactly — and the high
segment (bits ``N-1..N-m``) otherwise, dropping the low ``N-m`` bits.  The
two segments feed an exact ``m x m`` multiplier and the product is shifted
back.  Pure truncation makes SSM one-sided: it never overestimates
(Table I: max error 0, negative bias).

**ESSM(m)** ("extended" SSM) adds a middle segment so the truncation loss
shrinks: for the paper's ESSM8 on 16-bit operands the candidate segments
are bits ``15..8``, ``11..4`` and ``7..0``, selected by the position of the
leading one (in ``15..12``, ``11..8``, or below).  The worst loss drops
from ~50% of an operand (SSM8) to ``255/4351 ~= 5.9%``, i.e. the -11.26%
product peak of Table I.
"""

from __future__ import annotations

import numpy as np

from .base import Multiplier

__all__ = ["SsmMultiplier", "EssmMultiplier"]


class SsmMultiplier(Multiplier):
    """SSM with segment width ``m`` [14]."""

    family = "SSM"

    def __init__(self, bitwidth: int = 16, m: int = 8):
        super().__init__(bitwidth)
        if not 2 <= m < bitwidth:
            raise ValueError(f"segment width m must be in [2, {bitwidth - 1}], got {m}")
        self.m = m

    @property
    def name(self) -> str:
        return f"SSM (m={self.m})"

    def _segment(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        shift = np.where(v < (np.int64(1) << self.m), 0, self.bitwidth - self.m)
        return v >> shift, shift

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        seg_a, sh_a = self._segment(a)
        seg_b, sh_b = self._segment(b)
        return (seg_a * seg_b) << (sh_a + sh_b)


class EssmMultiplier(Multiplier):
    """ESSM: SSM extended with a middle segment [14].

    Segments are ``m`` bits wide and start at offsets ``N-m``,
    ``(N-m)//2`` and ``0``; the highest segment that still contains the
    operand's leading one is selected.  The paper's ESSM8 is
    ``bitwidth=16, m=8``.
    """

    family = "ESSM"

    def __init__(self, bitwidth: int = 16, m: int = 8):
        super().__init__(bitwidth)
        if not 2 <= m < bitwidth:
            raise ValueError(f"segment width m must be in [2, {bitwidth - 1}], got {m}")
        if (bitwidth - m) % 2 != 0:
            raise ValueError(
                f"ESSM needs an even N-m for the middle segment offset, "
                f"got N={bitwidth}, m={m}"
            )
        self.m = m

    @property
    def name(self) -> str:
        return f"ESSM{self.m} (m={self.m})"

    def _segment(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n, m = self.bitwidth, self.m
        high_offset = n - m
        mid_offset = high_offset // 2
        shift = np.where(
            v >= (np.int64(1) << (m + mid_offset)),
            high_offset,
            np.where(v >= (np.int64(1) << m), mid_offset, 0),
        )
        return v >> shift, shift

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        seg_a, sh_a = self._segment(a)
        seg_b, sh_b = self._segment(b)
        return (seg_a * seg_b) << (sh_a + sh_b)
