"""scaleTRIM: truncation + linearization + error compensation (arXiv 2303.02495).

scaleTRIM scales each operand's Mitchell fraction down to ``t`` bits
(truncation for wide operands, exact scaling for narrow ones — the
left-aligned fraction of :func:`~repro.multipliers.mitchell.log_operands`
gives both cases as one shift), multiplies the two ``1.t`` mantissas with
a *linearized* product, and adds back a LUT compensation term indexed by
the top ``c`` bits of each scaled fraction.

With ``x, y`` the scaled fractions as ``t``-bit integers, the exact
mantissa product is::

    (2^t + x)(2^t + y) = 2^2t + (x + y) 2^t + x*y

and the linearization replaces ``x*y`` by Mitchell's lower bound
``2^t * max(0, x + y - 2^t)``.  The residual

    R(x, y) = x*y - 2^t max(0, x + y - 2^t) = min(x*y, (2^t - x)(2^t - y))

is non-negative, so the linearized product never overestimates.  The
compensation LUT stores, per ``(top-c-bits(x), top-c-bits(y))`` bucket,
a *safe lower bound* of ``R`` over the bucket::

    LB[i, j] = min(lo_i * lo_j, (2^t - hi_i)(2^t - hi_j))

with ``lo/hi`` the bucket's fraction range.  Because ``LB <= R``
pointwise, the compensated product still never overestimates, and
because ``LB >= 0`` it never lands farther from the exact product than
the uncompensated one — compensation monotonicity, the family's
signature metamorphic property.  ``c = 0`` degenerates to a single
bucket with ``LB = 0``: pure linearized truncation.

The datapath depends on the operands only through ``(k, fraction)`` and
a final barrel shift, so doubling an operand shifts the result:
``f(2a, b) >> 1 == f(a, b)`` (the conformance ``pow2-shift`` relation).
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import shift_value
from .base import Multiplier
from .mitchell import log_operands

__all__ = ["ScaleTrimMultiplier", "compensation_lut", "scaled_fraction"]


def compensation_lut(t: int, c: int) -> np.ndarray:
    """The ``2^c x 2^c`` bucket table of safe residual lower bounds.

    Returned flattened row-major (``LB[i * 2^c + j]``) to match both the
    hardware ``constant_lut`` select ordering and the kernel's packed
    index.  Symmetric in ``(i, j)``, zero in row/column 0 (so power-of-two
    operands stay exact), and identically zero when ``c == 0``.
    """
    if not 0 <= c <= t:
        raise ValueError(f"compensation bits c must be in [0, t={t}], got {c}")
    buckets = np.arange(1 << c, dtype=np.int64)
    lo = buckets << (t - c)
    hi = ((buckets + 1) << (t - c)) - 1
    low_product = lo[:, None] * lo[None, :]
    high_product = ((1 << t) - hi)[:, None] * ((1 << t) - hi)[None, :]
    return np.minimum(low_product, high_product).ravel()


def scaled_fraction(x: np.ndarray, bitwidth: int, t: int) -> np.ndarray:
    """Top ``t`` bits of the left-aligned Mitchell fraction.

    For operands with ``k >= t`` this is truncation of the fraction; for
    narrower operands the left alignment already multiplied the fraction
    up, so the same shift implements scaleTRIM's exact-scaling case.
    """
    return x >> (bitwidth - 1 - t)


class ScaleTrimMultiplier(Multiplier):
    """scaleTRIM with ``t`` fraction bits and ``c`` compensation index bits."""

    family = "scaleTRIM"

    def __init__(self, bitwidth: int = 16, t: int = 4, c: int = 2):
        super().__init__(bitwidth)
        if not 1 <= t <= bitwidth - 1:
            raise ValueError(
                f"truncated fraction width t must be in [1, {bitwidth - 1}], got {t}"
            )
        if not 0 <= c <= t:
            raise ValueError(f"compensation bits c must be in [0, t={t}], got {c}")
        self.t = t
        self.c = c
        self.lut = compensation_lut(t, c)

    @property
    def name(self) -> str:
        return f"scaleTRIM (t={self.t}, c={self.c})"

    def _multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        t, c = self.t, self.c
        ka, kb, xa, xb, nonzero = log_operands(a, b, self.bitwidth)
        xs_a = scaled_fraction(xa, self.bitwidth, t)
        xs_b = scaled_fraction(xb, self.bitwidth, t)
        total = xs_a + xs_b
        linear = (np.int64(1) << (2 * t)) + (total << t)
        overflow = np.maximum(total - (np.int64(1) << t), 0) << t
        index = (xs_a >> (t - c)) * (1 << c) + (xs_b >> (t - c))
        mantissa = linear + overflow + self.lut[index]
        product = shift_value(mantissa, ka + kb - 2 * t)
        return np.where(nonzero, product, 0)
