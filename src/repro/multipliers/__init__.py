"""Functional models of every multiplier evaluated in the paper."""

from .accurate import AccurateMultiplier
from .alm import AlmLoa, AlmMaa, AlmSoa, ApproxAdderLogMultiplier
from .am import Am1Multiplier, Am2Multiplier
from .base import Multiplier
from .drum import DrumMultiplier
from .floating import (
    BFLOAT16_LIKE,
    FLOAT32,
    ApproxFloatMultiplier,
    FloatFormat,
)
from .implm import ImpLmMultiplier
from .intalp import IntAlpMultiplier
from .mbm import MbmMultiplier
from .mitchell import MitchellMultiplier
from .registry import REGISTRY, TABLE1_IDS, build, iter_multipliers, names
from .signed import SignedMultiplier, convolve2d, dot_product
from .ssm import EssmMultiplier, SsmMultiplier

__all__ = [
    "AccurateMultiplier",
    "AlmLoa",
    "AlmMaa",
    "AlmSoa",
    "Am1Multiplier",
    "Am2Multiplier",
    "ApproxAdderLogMultiplier",
    "ApproxFloatMultiplier",
    "BFLOAT16_LIKE",
    "DrumMultiplier",
    "FLOAT32",
    "FloatFormat",
    "EssmMultiplier",
    "ImpLmMultiplier",
    "IntAlpMultiplier",
    "MbmMultiplier",
    "MitchellMultiplier",
    "Multiplier",
    "REGISTRY",
    "SignedMultiplier",
    "SsmMultiplier",
    "TABLE1_IDS",
    "build",
    "convolve2d",
    "dot_product",
    "iter_multipliers",
    "names",
]
