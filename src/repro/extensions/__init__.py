"""Method extensions beyond the paper: the REALM recipe on new operations."""

from .divider import (
    MitchellDivider,
    RealmDivider,
    compute_divider_factors,
    divider_relative_error,
)

__all__ = [
    "MitchellDivider",
    "RealmDivider",
    "compute_divider_factors",
    "divider_relative_error",
]
