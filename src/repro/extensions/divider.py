"""REALM-style approximate division — the method carried to the other
operation of Mitchell's 1962 paper.

Mitchell's original work [8] covers multiplication *and* division by
binary logarithms; REALM corrects only the multiplier.  This module
applies the paper's segment-correction methodology to the divider, as a
demonstration that the Eq. 8-11 machinery generalizes:

* the classical log divider computes ``lg(A) - lg(B) ~= (ka-kb) + (x-y)``
  and the linear antilog, giving

  ```
  Q̃ = 2^(ka-kb) (1 + x - y)        if x >= y
  Q̃ = 2^(ka-kb-1) (2 + x - y)      if x <  y
  ```

* the relative error ``Ẽ = Q̃/Q - 1`` with ``Q = 2^(ka-kb) (1+x)/(1+y)``
  is double-sided (unlike the multiplier's one-sided error):

  ```
  Ẽ = (1+x-y)(1+y)/(1+x) - 1 =  y (x - y) / (1+x) - ... (expanded in code)
  ```

* per segment ``(i, j)`` of the unit square, the correction ``d_ij``
  added to the antilog mantissa zeroes the average relative error; the
  derivation mirrors Eq. 9-11 with the divider's weight
  ``g(x, y) = (1+y)/(1+x)``:

  ```
  d_ij = - (∫∫ Ẽ) / (∫∫ g)        over the segment
  ```

Unlike the multiplier's factors the divider's corrections are *signed*
(the error is double-sided), so the hardwired LUT stores two's-complement
codes.  Everything else — interval independence, the ``M^2`` table, the
segment-select from fraction MSBs — carries over unchanged, which is the
point of the demonstration.
"""

from __future__ import annotations

import functools

import numpy as np
from scipy import integrate

from ..core.bitops import floor_log2, log_fraction, shift_value
from ..multipliers.base import as_operands

__all__ = [
    "divider_relative_error",
    "compute_divider_factors",
    "MitchellDivider",
    "RealmDivider",
]


def divider_relative_error(x, y):
    """Relative error of the classical log divider over the unit square."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    exact = (1.0 + x) / (1.0 + y)
    approx = np.where(x >= y, 1.0 + x - y, (2.0 + x - y) / 2.0)
    return approx / exact - 1.0


@functools.lru_cache(maxsize=None)
def _divider_factors_cached(m: int) -> tuple[tuple[float, ...], ...]:
    def error(y, x):
        return float(divider_relative_error(x, y))

    def weight(y, x):
        return (1.0 + y) / (1.0 + x)

    rows = []
    for i in range(m):
        row = []
        for j in range(m):
            x0, x1 = i / m, (i + 1) / m
            y0, y1 = j / m, (j + 1) / m
            numerator, _ = integrate.dblquad(
                error, x0, x1, y0, y1, epsabs=1e-11, epsrel=1e-10
            )
            denominator, _ = integrate.dblquad(
                weight, x0, x1, y0, y1, epsabs=1e-11, epsrel=1e-10
            )
            row.append(-numerator / denominator)
        rows.append(tuple(row))
    return tuple(rows)


def compute_divider_factors(m: int) -> np.ndarray:
    """Signed per-segment corrections for the log divider."""
    if m < 1:
        raise ValueError(f"number of segments M must be >= 1, got {m}")
    return np.array(_divider_factors_cached(m), dtype=float)


class MitchellDivider:
    """Classical log-based integer divider: ``floor-approximation of A/B``.

    Returns 0 when ``A < B`` would make the true quotient 0... more
    precisely it mirrors the multiplier models: the output is the floored
    approximate quotient, and division by zero raises.
    """

    family = "cALM-div"

    def __init__(self, bitwidth: int = 16):
        if not 2 <= bitwidth <= 31:
            raise ValueError(f"bitwidth must be in [2, 31], got {bitwidth}")
        self.bitwidth = bitwidth

    @property
    def name(self) -> str:
        return f"{self.family}{self.bitwidth}"

    def _mantissa_correction(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return np.zeros(i.shape)

    def divide(self, a, b) -> np.ndarray:
        a, b = as_operands(a, b, self.bitwidth)
        scalar = a.ndim == 0
        if scalar:
            a = a.reshape(1)
            b = b.reshape(1)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero")
        width = self.bitwidth - 1
        zero = a == 0
        safe_a = np.where(zero, 1, a)
        ka = floor_log2(safe_a)
        kb = floor_log2(b)
        xa = log_fraction(safe_a, ka, self.bitwidth)
        xb = log_fraction(b, kb, self.bitwidth)

        i, j = self._segments(xa, xb, width)
        correction = np.rint(
            self._mantissa_correction(i, j) * (1 << width)
        ).astype(np.int64)

        # fraction difference on the 2^-width grid, then the antilog with
        # the borrow handling of the module docstring.  The correction is
        # derived at the 2^(ka-kb) scale; the borrow branch's mantissa
        # lives one binade lower, so the correction doubles there.
        diff = xa - xb
        borrow = diff < 0
        mantissa = np.where(borrow, (2 << width) + diff, (1 << width) + diff)
        mantissa = mantissa + np.where(borrow, 2 * correction, correction)
        exponent = ka - kb - borrow.astype(np.int64)
        quotient = np.maximum(shift_value(mantissa, exponent - width), 0)
        result = np.where(zero, 0, quotient)
        return result[0] if scalar else result

    def _segments(self, xa, xb, width):
        return np.zeros_like(xa), np.zeros_like(xb)

    __call__ = divide


class RealmDivider(MitchellDivider):
    """Log divider with REALM-style per-segment corrections.

    ``q`` quantizes the (negative) corrections to the ``2^-q`` grid like
    the multiplier's LUT — the divider's factors stay above ``-0.25`` for
    practical ``M``, so ``q - 2`` magnitude bits suffice.  ``q=None``
    keeps full float precision (the default for error studies); the
    structural netlist (:mod:`repro.circuits.divider_rtl`) requires a
    quantized instance.
    """

    family = "REALM-div"

    def __init__(self, bitwidth: int = 16, m: int = 8, q: int | None = None):
        super().__init__(bitwidth)
        if m < 1 or (m & (m - 1)) != 0:
            raise ValueError(f"M must be a power of two >= 1, got {m}")
        if q is not None and q < 3:
            raise ValueError(f"correction precision q must be >= 3, got {q}")
        self.m = m
        self.q = q
        factors = compute_divider_factors(m)
        if np.any(factors <= -0.25) or np.any(factors > 0.0):
            raise AssertionError("divider factors outside (-0.25, 0]")
        if q is None:
            self.factors = factors
            self.codes = None
        else:
            self.codes = np.rint(factors * (1 << q)).astype(np.int64)
            self.factors = self.codes / float(1 << q)

    @property
    def name(self) -> str:
        suffix = "" if self.q is None else f", q={self.q}"
        return f"{self.family}{self.m}{suffix}"

    def _segments(self, xa, xb, width):
        logm = self.m.bit_length() - 1
        if logm == 0:
            return np.zeros_like(xa), np.zeros_like(xb)
        return xa >> (width - logm), xb >> (width - logm)

    def _mantissa_correction(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return self.factors[i, j]
