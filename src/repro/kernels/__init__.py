"""Compiled evaluation kernels — the fastest multiply path in the repo.

Every other layer *interprets* a design per call: the functional models
walk a handful of NumPy ops per batch, and the gate-level simulator
walks the netlist gate by gate through Python dicts.  This package
**compiles** each design once into a fused evaluator and caches it:

* :func:`compile_kernel` / :func:`kernel_for` specialize a
  :class:`~repro.multipliers.base.Multiplier` into a
  :class:`CompiledKernel` — for the log/segment families the quantized
  ``s_ij`` LUT, ``t``-truncation and LOD collapse into per-operand
  table lookups plus a few vectorized int64 ops; for narrow designs an
  exhaustive product table; otherwise a transparent interpreted
  fallback (still bit-identical, by construction).
* :func:`compile_netlist` lowers a levelized
  :class:`~repro.logic.netlist.Netlist` into a straight-line
  bit-parallel program over uint64-packed stimulus lanes
  (:class:`NetlistKernel`) — 64 vectors per word, one NumPy call per
  ``(level, cell)`` group instead of one dict walk per gate.

Kernels are **bit-identical** to the interpreted paths (sworn to by the
Hypothesis sweep in ``tests/test_kernels.py`` and the ``kernel``
conformance layer of :mod:`repro.conformance`).  The compile cache is
keyed on the registry fingerprint *and* :data:`KERNEL_VERSION`, so a
kernel-generation change can never serve stale tables.

Enable globally with ``REPRO_COMPILED=1`` or per call with
``Multiplier.multiply(a, b, compiled=True)``.
"""

from __future__ import annotations

from .compiler import (
    KERNEL_VERSION,
    CompiledKernel,
    cached_kernel_count,
    clear_kernel_cache,
    compile_kernel,
    kernel_for,
)
from .netlist import NetlistKernel, compile_netlist

__all__ = [
    "KERNEL_VERSION",
    "CompiledKernel",
    "NetlistKernel",
    "cached_kernel_count",
    "clear_kernel_cache",
    "compile_kernel",
    "compile_netlist",
    "kernel_for",
]
