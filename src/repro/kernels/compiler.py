"""Kernel compiler: model -> fused evaluator, with a fingerprint cache.

Dispatch is structural: each registered family maps to the table
specializer of :mod:`repro.kernels.tables` that folds its datapath.
Families with no per-operand decomposition (IntALP's joint plane walk,
AM's cross-operand error trees) get the exhaustive product table when
the operand width allows and a transparent interpreted fallback
otherwise — every model therefore *has* a kernel, and every kernel is
bit-identical to the interpreted datapath.

The compile cache is keyed on ``(registry fingerprint, KERNEL_VERSION)``:
the fingerprint covers every functional attribute of the instance (the
same content address the metrics cache trusts), and the version bumps
whenever kernel *generation* changes — so a new kernel scheme can never
serve tables compiled by an old one.
"""

from __future__ import annotations

import dataclasses
import threading

from collections.abc import Callable

import numpy as np

from ..analysis.cache import cache_key
from ..core.realm import RealmMultiplier
from ..multipliers.alm import ApproxAdderLogMultiplier
from ..multipliers.accurate import AccurateMultiplier
from ..multipliers.base import Multiplier
from ..multipliers.dnnco import DnnCoMultiplier
from ..multipliers.drum import DrumMultiplier
from ..multipliers.implm import ImpLmMultiplier
from ..multipliers.mbm import MbmMultiplier
from ..multipliers.mitchell import MitchellMultiplier
from ..multipliers.registry import fingerprint
from ..multipliers.scaletrim import ScaleTrimMultiplier
from ..multipliers.ssm import EssmMultiplier, SsmMultiplier
from . import tables

__all__ = [
    "KERNEL_VERSION",
    "CompiledKernel",
    "cached_kernel_count",
    "clear_kernel_cache",
    "compile_kernel",
    "kernel_for",
]

#: bump on ANY change to kernel generation; part of every cache key
KERNEL_VERSION = 1


@dataclasses.dataclass(frozen=True)
class CompiledKernel:
    """One design specialized into a fused evaluator.

    ``kind`` records the compilation strategy — ``"table"`` (per-operand
    decomposition tables), ``"full-table"`` (exhaustive product table),
    ``"direct"`` (closed form, e.g. the accurate ``a * b``) or
    ``"interpreted"`` (fallback wrapping the model's ``_multiply``).
    ``table_bytes`` is the precomputed memory the kernel holds.

    Calling the kernel follows the ``_multiply`` contract: validated,
    broadcast, at-least-1-D int64 arrays in, int64 products out.
    """

    name: str
    family: str
    bitwidth: int
    kind: str
    version: int
    table_bytes: int
    evaluate: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.evaluate(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompiledKernel {self.name!r} N={self.bitwidth} "
            f"kind={self.kind} tables={self.table_bytes}B v{self.version}>"
        )


def _compile_direct(model):
    return (lambda a, b: a * b), "direct", 0


def _compile_interpreted(model):
    return model._multiply, "interpreted", 0


#: elements per evaluation block.  Table kernels are memory-bound: on a
#: multi-megasample batch every elementwise temporary streams through
#: DRAM, while at 2**15 elements the working set (a handful of 256 KB
#: temporaries plus the operand tables) stays cache-resident — measured
#: ~3x faster at 2**20 samples than evaluating the batch in one sweep.
_BLOCK = 1 << 15


def _blocked(evaluate):
    def run(a, b):
        if a.ndim != 1 or a.size <= _BLOCK:
            return evaluate(a, b)
        out = np.empty(a.shape, dtype=np.int64)
        for start in range(0, a.size, _BLOCK):
            stop = start + _BLOCK
            out[start:stop] = evaluate(a[start:stop], b[start:stop])
        return out

    return run


#: family -> specializer; order matters only for subclass shadowing
_SPECIALIZERS: tuple[tuple[type, Callable], ...] = (
    (AccurateMultiplier, _compile_direct),
    (RealmMultiplier, tables.compile_realm),
    (MbmMultiplier, tables.compile_mbm),
    (ApproxAdderLogMultiplier, tables.compile_alm),
    (MitchellMultiplier, tables.compile_mitchell),
    (ImpLmMultiplier, tables.compile_implm),
    (DrumMultiplier, tables.compile_drum),
    (SsmMultiplier, tables.compile_segment),
    (EssmMultiplier, tables.compile_segment),
    (ScaleTrimMultiplier, tables.compile_scaletrim),
    (DnnCoMultiplier, tables.compile_dnnco),
)


def compile_kernel(model: Multiplier) -> CompiledKernel:
    """Specialize one model into a :class:`CompiledKernel` (uncached)."""
    builder = None
    for klass, specializer in _SPECIALIZERS:
        if isinstance(model, klass):
            builder = specializer
            break
    if builder is not None and builder not in (_compile_direct,):
        if model.bitwidth > tables.OPERAND_TABLE_MAX_BITWIDTH:
            builder = None  # decomposition tables would stop fitting cache
    if builder is None:
        if model.bitwidth <= tables.FULL_TABLE_MAX_BITWIDTH:
            builder = tables.compile_full_table
        else:
            builder = _compile_interpreted
    evaluate, kind, table_bytes = builder(model)
    if kind in ("table", "full-table"):
        evaluate = _blocked(evaluate)
    return CompiledKernel(
        name=model.name,
        family=model.family,
        bitwidth=model.bitwidth,
        kind=kind,
        version=KERNEL_VERSION,
        table_bytes=table_bytes,
        evaluate=evaluate,
    )


# ----------------------------------------------------------------------
# compile cache
# ----------------------------------------------------------------------

_CACHE: dict[tuple[str, int], CompiledKernel] = {}
_LOCK = threading.Lock()


def kernel_for(model: Multiplier) -> CompiledKernel:
    """The cached kernel of a model, compiling on first use.

    Two model instances with equal registry fingerprints (same class,
    bitwidth and functional attributes) share one kernel; a kernel
    compiled under a different :data:`KERNEL_VERSION` is never returned.
    """
    key = (cache_key(fingerprint(model)), KERNEL_VERSION)
    kernel = _CACHE.get(key)
    if kernel is not None:
        return kernel
    with _LOCK:
        kernel = _CACHE.get(key)
        if kernel is None:
            kernel = compile_kernel(model)
            _CACHE[key] = kernel
    return kernel


def clear_kernel_cache() -> None:
    """Drop every cached kernel (tests and long-lived servers)."""
    with _LOCK:
        _CACHE.clear()


def cached_kernel_count() -> int:
    """Number of kernels currently cached."""
    return len(_CACHE)
