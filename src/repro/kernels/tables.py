"""Table specializers: fold a model's datapath into precomputed lookups.

The log/segment families share one structural property: everything the
datapath derives *per operand* — leading-one position, barrel-shifted
log fraction, truncated fraction, LUT segment index, extracted
fragment — is a pure function of that operand alone.  For ``N``-bit
operands there are only ``2**N`` such values, so the whole front end of
the datapath collapses into int64 tables built once at compile time
(``8 * 2**N`` bytes each: 512 KB at ``N = 16``).  What remains per call
is the cross-operand tail: one or two adds, a carry select, a shift —
a handful of vectorized int64 ops regardless of family.

Narrow designs skip even that: at ``N <= FULL_TABLE_MAX_BITWIDTH`` the
entire ``2**N x 2**N`` product space is enumerated through the
*interpreted* model into one flat table (``8 * 4**N`` bytes: 512 KB at
``N = 8``), making the kernel a single gather — and bit-identity true
by construction for any family, however irregular.

Each builder returns ``(evaluate, kind, table_bytes)`` where
``evaluate(a, b)`` takes validated, broadcast, at-least-1-D int64
arrays (the :meth:`~repro.multipliers.base.Multiplier._multiply`
contract) and ``table_bytes`` accounts the precomputed memory.
"""

from __future__ import annotations

import numpy as np

from ..core.bitops import mask, shift_value
from ..multipliers.mitchell import antilog, log_operands

__all__ = [
    "FULL_TABLE_MAX_BITWIDTH",
    "OPERAND_TABLE_MAX_BITWIDTH",
    "build_full_table",
    "build_log_tables",
    "compile_alm",
    "compile_drum",
    "compile_full_table",
    "compile_implm",
    "compile_mbm",
    "compile_dnnco",
    "compile_mitchell",
    "compile_realm",
    "compile_scaletrim",
    "compile_segment",
]

#: widest operand for which the exhaustive pair table is built
#: (``8 * 4**N`` bytes: 512 KB at N=8; N=9 would already be 2 MB)
FULL_TABLE_MAX_BITWIDTH = 8

#: widest operand for which per-operand decomposition tables are built
#: (``8 * 2**N`` bytes per table: 512 KB at N=16; beyond ~20 the tables
#: stop fitting comfortably in cache and compile time grows, so wider
#: models fall back to the interpreted datapath)
OPERAND_TABLE_MAX_BITWIDTH = 20


def _operand_space(bitwidth: int) -> np.ndarray:
    """Every representable operand, ``0 .. 2**N - 1``."""
    return np.arange(np.int64(1) << bitwidth, dtype=np.int64)


def build_log_tables(bitwidth: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-operand LOD + input-barrel-shifter tables ``(k, x)``.

    ``k[v]`` is the characteristic (leading-one position) and ``x[v]``
    the ``N-1``-bit log fraction; index 0 holds the zero-safe values the
    models use (callers mask zero operands separately).
    """
    v = _operand_space(bitwidth)
    k, _, x, _, _ = log_operands(v, v, bitwidth)
    return k, x


def build_full_table(model) -> np.ndarray:
    """Exhaustive product table via the interpreted model, row-major in
    ``a`` (``table[(a << N) | b]``)."""
    n = model.bitwidth
    v = _operand_space(n)
    a = np.repeat(v, v.size)
    b = np.tile(v, v.size)
    return np.ascontiguousarray(model._multiply(a, b))


# ----------------------------------------------------------------------
# family specializers
# ----------------------------------------------------------------------


def compile_full_table(model):
    """Any family, ``N <= FULL_TABLE_MAX_BITWIDTH``: one gather."""
    n = model.bitwidth
    table = build_full_table(model)

    def evaluate(a, b):
        return table[(a << n) | b]

    return evaluate, "full-table", table.nbytes


def compile_mitchell(model):
    """cALM: one packed log table, exact add, antilog."""
    n = model.bitwidth
    width = n - 1
    k, x = build_log_tables(n)
    logv = (k << width) | x

    def evaluate(a, b):
        product = antilog(logv[a] + logv[b], width)
        return np.where((a > 0) & (b > 0), product, 0)

    return evaluate, "table", logv.nbytes


def compile_alm(model):
    """ALM-LOA/SOA/MAA: packed log tables + the approximate adder."""
    n = model.bitwidth
    width = n - 1
    m = model.m
    add = model._add
    k, x = build_log_tables(n)
    logv = (k << width) | x

    def evaluate(a, b):
        product = antilog(add(logv[a], logv[b], m), width)
        return np.where((a > 0) & (b > 0), product, 0)

    return evaluate, "table", logv.nbytes


def compile_implm(model):
    """ImpLM: nearest-one characteristic + signed fraction tables."""
    n = model.bitwidth
    v = _operand_space(n)
    k_near, f = model._decompose(np.where(v > 0, v, 1))
    one = np.int64(1) << n

    def evaluate(a, b):
        mantissa = one + f[a] + f[b]
        product = shift_value(mantissa, k_near[a] + k_near[b] - n)
        return np.where((a > 0) & (b > 0), product, 0)

    return evaluate, "table", k_near.nbytes + f.nbytes


def compile_mbm(model):
    """MBM: one packed ``(k, xt)`` table + hardwired correction constants.

    ``k`` and the truncated fraction share one int64 word per operand
    (``xt`` in the low ``width + 1`` bits — one headroom bit so the
    fraction-sum carry stays inside its own field — ``k`` above), so the
    per-call front end is two gathers and an add; field sums can never
    cross field boundaries (``xt`` sums stay under ``2**(width+1)``,
    ``k`` sums under 128).
    """
    from ..core.bitops import log_fraction, truncate_fraction, floor_log2

    n = model.bitwidth
    raw_width = n - 1
    width = raw_width - model.t
    v = _operand_space(n)
    safe = np.where(v > 0, v, 1)
    k = floor_log2(safe)
    xt = truncate_fraction(log_fraction(safe, k, n), model.t, raw_width)
    packed = (k << (width + 1)) | xt
    code = np.int64(model.correction_code)
    c_full = shift_value(code, width - model.q)
    c_half = shift_value(code, width - model.q - 1)
    fraction_mask = mask(width + 1)

    def evaluate(a, b):
        s = packed[a] + packed[b]
        fraction_sum = s & fraction_mask
        carry = fraction_sum >> width
        not_carry = carry ^ 1
        mantissa = (
            fraction_sum
            + (not_carry << width)
            + (c_half + not_carry * (c_full - c_half))
        )
        product = shift_value(mantissa, (s >> (width + 1)) + carry - width)
        return np.where((a > 0) & (b > 0), product, 0)

    return evaluate, "table", packed.nbytes


def compile_realm(model):
    """REALM: the whole per-operand front end in one packed table.

    Everything Fig. 3 derives per operand — LOD characteristic ``k``,
    truncated fraction ``xt``, segment index — shares one int64 word:

    ========================  =======================================
    bits ``[0, width]``       ``xt`` (+1 headroom bit for the carry)
    bits ``[width+1, +7]``    ``k`` (sums stay under 128)
    bits ``[width+8, ...]``   segment — ``seg * M`` on the left table,
                              ``seg`` on the right
    ========================  =======================================

    Adding the two gathered words sums every field at once without
    cross-field carries, and the segment field lands directly on the
    flattened LUT index ``seg_a * M + seg_b``.  The quantized ``s_ij``
    LUT is pre-shifted to the fraction grid in both carry variants and
    interleaved (``s[2 * ij + carry]``), so the carry select is one
    small gather instead of a branch.  Per call: two 2**N-word gathers,
    one LUT gather, and ~10 elementwise int64 ops.
    """
    from ..core.bitops import log_fraction, truncate_fraction, floor_log2
    from ..core.factors import segment_index

    cfg = model.config
    n = model.bitwidth
    raw_width = n - 1
    width = cfg.fraction_width
    logm = cfg.m.bit_length() - 1
    seg_shift = width + 8
    if seg_shift + 2 * logm >= 63:  # packed fields would overflow int64
        return _compile_realm_unpacked(model)

    v = _operand_space(n)
    safe = np.where(v > 0, v, 1)
    k = floor_log2(safe)
    x = log_fraction(safe, k, n)
    xt = truncate_fraction(x, cfg.t, raw_width)
    seg = segment_index(x, raw_width, cfg.m)
    left = ((seg << logm) << seg_shift) | (k << (width + 1)) | xt
    right = (seg << seg_shift) | (k << (width + 1)) | xt

    flat_codes = np.ascontiguousarray(model.lut_codes, dtype=np.int64).ravel()
    s_pair = np.empty(2 * flat_codes.size, dtype=np.int64)
    s_pair[0::2] = shift_value(flat_codes, width - cfg.q)
    s_pair[1::2] = shift_value(flat_codes, width - cfg.q - 1)
    saturate = model.overflow == "saturate"
    top = mask(2 * n)
    fraction_mask = mask(width + 1)
    k_mask = np.int64(0x7F)

    def evaluate(a, b):
        s = left[a] + right[b]
        fraction_sum = s & fraction_mask
        carry = fraction_sum >> width
        correction = s_pair[((s >> seg_shift) << 1) | carry]
        mantissa = fraction_sum + ((carry ^ 1) << width) + correction
        k_sum = (s >> (width + 1)) & k_mask
        product = shift_value(mantissa, k_sum + carry - width)
        product = np.where((a > 0) & (b > 0), product, 0)
        if saturate:
            product = np.minimum(product, top)
        return product

    return evaluate, "table", left.nbytes + right.nbytes + s_pair.nbytes


def _compile_realm_unpacked(model):
    """REALM fallback when the packed fields exceed int64: separate
    per-operand tables, same arithmetic (reachable only for extreme
    ``N``/``M`` combinations)."""
    from ..core.bitops import log_fraction, truncate_fraction, floor_log2
    from ..core.factors import segment_index

    cfg = model.config
    n = model.bitwidth
    raw_width = n - 1
    width = cfg.fraction_width
    logm = cfg.m.bit_length() - 1

    v = _operand_space(n)
    safe = np.where(v > 0, v, 1)
    k = floor_log2(safe)
    x = log_fraction(safe, k, n)
    xt = truncate_fraction(x, cfg.t, raw_width)
    seg = segment_index(x, raw_width, cfg.m)
    seg_row = seg << logm

    flat_codes = np.ascontiguousarray(model.lut_codes, dtype=np.int64).ravel()
    s_full = shift_value(flat_codes, width - cfg.q)
    s_half = shift_value(flat_codes, width - cfg.q - 1)
    one = np.int64(1) << width
    saturate = model.overflow == "saturate"
    top = mask(2 * n)

    def evaluate(a, b):
        lut = seg_row[a] | seg[b]
        fraction_sum = xt[a] + xt[b]
        carry = fraction_sum >> width
        mantissa = np.where(
            carry == 0,
            one + fraction_sum + s_full[lut],
            fraction_sum + s_half[lut],
        )
        product = shift_value(mantissa, k[a] + k[b] + carry - width)
        product = np.where((a > 0) & (b > 0), product, 0)
        if saturate:
            product = np.minimum(product, top)
        return product

    tables = k.nbytes + xt.nbytes + seg.nbytes + seg_row.nbytes
    return evaluate, "table", tables + s_full.nbytes + s_half.nbytes


def compile_scaletrim(model):
    """scaleTRIM: packed ``(bucket, k, xs)`` operand tables + LB gather.

    Field layout per operand word (mirroring the REALM packing):

    ========================  =======================================
    bits ``[0, t]``           scaled fraction ``xs`` (+1 headroom bit
                              so the fraction-sum carry stays inside)
    bits ``[t+1, +7]``        ``k`` (sums stay under 128)
    bits ``[t+8, ...]``       bucket — ``ia * 2^c`` on the left table,
                              ``ib`` on the right
    ========================  =======================================

    One add sums every field; the bucket field lands directly on the
    flattened compensation-LUT index ``ia * 2^c + ib``.  The carry out
    of the fraction field selects the linearization overflow term
    (``carry`` set means ``S - 2^t`` is exactly ``S``'s low ``t``
    bits).  Falls back to separate tables if the packed fields would
    overflow int64 (extreme ``t``/``c`` only).
    """
    from ..multipliers.scaletrim import scaled_fraction

    n = model.bitwidth
    t, c = model.t, model.c
    lut = np.ascontiguousarray(model.lut, dtype=np.int64)
    one_2t = np.int64(1) << (2 * t)

    v = _operand_space(n)
    safe = np.where(v > 0, v, 1)
    k, _, x, _, _ = log_operands(safe, safe, n)
    xs = scaled_fraction(x, n, t)
    bucket = xs >> (t - c)
    bucket_shift = t + 8
    fraction_mask = mask(t + 1)
    low_mask = mask(t)
    k_mask = np.int64(0x7F)

    if bucket_shift + 2 * c < 63:
        left = ((bucket << c) << bucket_shift) | (k << (t + 1)) | xs
        right = (bucket << bucket_shift) | (k << (t + 1)) | xs

        def evaluate(a, b):
            s = left[a] + right[b]
            total = s & fraction_mask
            carry = total >> t
            mantissa = (
                one_2t
                + (total << t)
                + ((total & low_mask) * carry << t)
                + lut[s >> bucket_shift]
            )
            product = shift_value(mantissa, ((s >> (t + 1)) & k_mask) - 2 * t)
            return np.where((a > 0) & (b > 0), product, 0)

        return evaluate, "table", left.nbytes + right.nbytes + lut.nbytes

    def evaluate(a, b):  # pragma: no cover - extreme t/c only
        total = xs[a] + xs[b]
        carry = total >> t
        mantissa = (
            one_2t
            + (total << t)
            + ((total & low_mask) * carry << t)
            + lut[(bucket[a] << c) | bucket[b]]
        )
        product = shift_value(mantissa, k[a] + k[b] - 2 * t)
        return np.where((a > 0) & (b > 0), product, 0)

    tables_bytes = k.nbytes + xs.nbytes + bucket.nbytes + lut.nbytes
    return evaluate, "table", tables_bytes


#: widest OR-approximated column window for which the pair-deficit table
#: is built (``8 * 4**l`` bytes: 512 KB at l=8, matching the full-table
#: budget; wider windows fall back to the generic ladder)
DNNCO_TABLE_MAX_COLUMNS = 8


def compile_dnnco(model):
    """DNNCO: exact product minus a low-bits pair-deficit gather.

    The OR-column deficit depends only on ``(a mod 2^l, b mod 2^l)``, so
    a ``4**l``-entry table indexed by the concatenated low bits turns
    the kernel into ``a * b - deficit[...]`` — independent of the
    operand width.  Beyond ``l = 8`` the table budget is exceeded and
    the compiler's generic ladder takes over.
    """
    from ..multipliers.dnnco import column_deficit

    l = model.l
    if l > DNNCO_TABLE_MAX_COLUMNS:
        if model.bitwidth <= FULL_TABLE_MAX_BITWIDTH:
            return compile_full_table(model)
        return model._multiply, "interpreted", 0

    low = np.arange(np.int64(1) << l, dtype=np.int64)
    deficit = column_deficit(np.repeat(low, low.size), np.tile(low, low.size), l)
    low_mask = mask(l)

    def evaluate(a, b):
        return a * b - deficit[((a & low_mask) << l) | (b & low_mask)]

    return evaluate, "table", deficit.nbytes


def compile_drum(model):
    """DRUM: the leading-one fragment extraction is per-operand."""
    approx = model._approximate(_operand_space(model.bitwidth))

    def evaluate(a, b):
        return approx[a] * approx[b]

    return evaluate, "table", approx.nbytes


def compile_segment(model):
    """SSM/ESSM: per-operand segment value, pre-scaled.

    ``(seg_a << sh_a) * (seg_b << sh_b) == (seg_a * seg_b) << (sh_a +
    sh_b)`` exactly (int64 headroom: the rescaled operands are at most
    ``N`` bits each), so one table of rescaled operands suffices.
    """
    seg, sh = model._segment(_operand_space(model.bitwidth))
    approx = seg << sh

    def evaluate(a, b):
        return approx[a] * approx[b]

    return evaluate, "table", approx.nbytes
