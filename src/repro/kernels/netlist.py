"""Bit-parallel netlist kernel: 64 stimulus vectors per machine word.

The reference simulator (:func:`repro.logic.sim.simulate`) walks the
gate list one gate at a time, each evaluation a Python dict lookup plus
one NumPy call over boolean arrays — one *byte* of memory traffic per
stimulus bit.  This module lowers a levelized netlist into a
straight-line program over **uint64-packed lanes**:

* every net gets a dense slot in one ``(net_count, words)`` uint64
  matrix; 64 stimulus vectors share each word, so the whole working set
  shrinks 8x and every bitwise op processes 64 vectors per lane;
* gates are grouped by ``(ASAP level, cell type)`` — gates at the same
  level are independent by construction, so each group executes as a
  *single* fancy-indexed gather, one vectorized cell evaluation over a
  ``(gates, words)`` block, and one scatter.  The per-gate Python
  interpreter loop collapses into ~``levels x cell-kinds`` NumPy calls.

The cell library's boolean functions (:mod:`repro.logic.cells`) are pure
bitwise expressions, so they run unchanged on packed uint64 lanes — the
kernel is bit-identical to the interpreted simulator by construction
(and sworn to by ``tests/test_kernels.py``).  Lane packing relies on the
little-endian uint64 byte order of every supported platform.
"""

from __future__ import annotations

import numpy as np

from ..logic.netlist import CONST0, CONST1, Netlist
from ..logic.sim import MAX_BUS_WIDTH, _check_values

__all__ = ["NetlistKernel", "compile_netlist"]


def _to_words(packed: np.ndarray) -> np.ndarray:
    """Byte rows -> uint64 rows, zero-padding to 8-byte multiples."""
    rows, cols = packed.shape
    pad = (-cols) % 8
    if pad:
        padded = np.zeros((rows, cols + pad), dtype=np.uint8)
        padded[:, :cols] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def _pack_words(values: np.ndarray, width: int) -> np.ndarray:
    """Integers -> uint64 lanes ``(width, words)``, bit ``i`` of value
    ``j`` at lane ``[i, j // 64]`` bit ``j % 64``.

    Same validation contract as :func:`repro.logic.sim.int_to_bus`; the
    bit transpose runs entirely through packbits/unpackbits along the
    contiguous axis, never materializing a per-(value, bit) int64
    matrix — only the ``ceil(width / 8)`` bytes a value actually
    occupies are ever unpacked.
    """
    _check_values(values, width)
    nbytes = (width + 7) // 8
    raw = np.ascontiguousarray(values).view(np.uint8).reshape(values.size, 8)
    bits = np.unpackbits(
        np.ascontiguousarray(raw[:, :nbytes]), axis=1, bitorder="little"
    )[:, :width]
    # transpose-copy first: packbits along the contiguous axis is ~5x
    # faster than strided axis-0 packing of the same matrix
    lanes = np.packbits(np.ascontiguousarray(bits.T), axis=1, bitorder="little")
    return _to_words(lanes)


def _unpack_words(lanes: np.ndarray, count: int) -> np.ndarray:
    """uint64 lanes ``(nets, words)`` -> ``count`` int64 values, net 0
    as the LSB (inverse of :func:`_pack_words`)."""
    nets = lanes.shape[0]
    if nets > MAX_BUS_WIDTH:
        raise ValueError(
            f"bus width {nets} exceeds {MAX_BUS_WIDTH}; int64 "
            "word conversion would silently overflow"
        )
    if nets == 0:
        return np.zeros(count, dtype=np.int64)
    raw = np.ascontiguousarray(lanes).view(np.uint8)
    bits = np.unpackbits(raw, axis=1, bitorder="little")[:, :count]
    # transpose-copy first (see _pack_words): value j's bits, LSB first
    packed = np.packbits(np.ascontiguousarray(bits.T), axis=1, bitorder="little")
    return _to_words(packed).view(np.int64).reshape(count)


class NetlistKernel:
    """One netlist lowered to a straight-line bit-parallel program.

    Construction performs the lowering (levelize, group, index); each
    :meth:`evaluate_words` call then runs the fixed program on a fresh
    value matrix.  The public surface mirrors
    :func:`repro.logic.sim.evaluate_words` so callers can swap engines.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.slots = netlist.net_count
        level: dict[int, int] = {CONST0: 0, CONST1: 0}
        for net in netlist.inputs:
            level[net] = 0
        groups: dict[tuple[int, str], list] = {}
        for gate in netlist.gates:
            lvl = 1 + max(level[i] for i in gate.inputs)
            level[gate.output] = lvl
            groups.setdefault((lvl, gate.cell.name), []).append(gate)
        self.depth = max(level.values(), default=0)
        # one program step per (level, cell) group: the cell function,
        # one gather index array per input pin, one scatter index array.
        # Single-gate groups index with plain ints — views, not copies.
        self._program = []
        for lvl, name in sorted(groups):
            gates = groups[(lvl, name)]
            cell = gates[0].cell
            if len(gates) == 1:
                in_idx = tuple(int(i) for i in gates[0].inputs)
                out_idx = int(gates[0].output)
            else:
                in_idx = tuple(
                    np.array([g.inputs[pin] for g in gates], dtype=np.intp)
                    for pin in range(cell.inputs)
                )
                out_idx = np.array([g.output for g in gates], dtype=np.intp)
            self._program.append((cell.function, in_idx, out_idx))

    @property
    def step_count(self) -> int:
        """Program length: NumPy dispatches per evaluation pass."""
        return len(self._program)

    def evaluate_words(
        self, operand_buses: list[list[int]], operand_values: list[np.ndarray]
    ) -> np.ndarray:
        """Drive integer operands, run the program, read the output bus.

        Same contract as :func:`repro.logic.sim.evaluate_words`: buses
        are LSB first, values are validated against the bus width, and
        the output bus comes back as int64 words.
        """
        if len(operand_buses) != len(operand_values):
            raise ValueError("one value vector per operand bus required")
        driven = {CONST0, CONST1}
        for bus in operand_buses:
            driven.update(bus)
        missing = [net for net in self.netlist.inputs if net not in driven]
        if missing:
            names = ", ".join(self.netlist.net_names[n] for n in missing)
            raise ValueError(f"stimulus missing for inputs: {names}")
        arrays = [np.asarray(v, dtype=np.int64).reshape(-1) for v in operand_values]
        sizes = {arr.size for arr in arrays}
        if len(sizes) > 1:
            raise ValueError(f"operand vectors disagree on length: {sizes}")
        count = sizes.pop() if sizes else 0
        words = (count + 63) // 64

        vals = np.zeros((self.slots, words), dtype=np.uint64)
        vals[CONST1] = ~np.uint64(0)
        for bus, values in zip(operand_buses, arrays):
            vals[np.asarray(bus, dtype=np.intp)] = _pack_words(values, len(bus))

        for function, in_idx, out_idx in self._program:
            vals[out_idx] = function(*(vals[idx] for idx in in_idx))

        out_idx = np.asarray(self.netlist.outputs, dtype=np.intp)
        return _unpack_words(vals[out_idx], count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<NetlistKernel {self.netlist.name!r}: "
            f"{self.netlist.gate_count} gates -> {self.step_count} steps>"
        )


def compile_netlist(netlist: Netlist) -> NetlistKernel:
    """Lower a netlist into a :class:`NetlistKernel`."""
    return NetlistKernel(netlist)
