#!/usr/bin/env python
"""CI smoke tests for the serving layer: base transport + chaos fleet.

Two phases (select with ``--only base`` / ``--only chaos``; default both):

**base** — starts a real :class:`~repro.serve.TcpServer` on an ephemeral
loopback port with tracing enabled, drives a mixed
multiply/characterize/designs workload through pipelined TCP clients,
drains the server, and asserts on the recorded trace:

* every multiply response is bit-identical to a direct model call;
* the characterize response matches a direct engine run exactly;
* the trace contains ``serve.batch`` spans (requests actually fused)
  and **zero** shed events — the workload fits the default queue.

**chaos** — the kill-the-workers load test: a supervised fleet of 4
:class:`~repro.serve.ProcessShard` workers behind a TCP front, with a
deterministic chaos plan (two worker crashes + one worker hang, exact
firing counts via the cross-process claim files) injected through
``REPRO_CHAOS``.  Asserts the full robustness contract:

* **zero lost responses**: every request the client sends is answered
  (an unanswered request would hang the await; a dropped connection
  would raise) — across crashes, the hang, and the restarts;
* **no cross-wiring**: every reply is bit-identical to direct
  ``Multiplier.multiply`` on its own operands;
* **recovery within budget**: both crashed lives of the crash-target
  shard and the hung shard are restarted within the deadline;
* **bounded p99**: even with faults firing, the 99th-percentile request
  latency stays under the supervisor's redirect budget.

Exit status 0 on success; any assertion failure or unexpected error is
a non-zero exit, which fails the CI job.  Run it from the repo root:

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis import telemetry
from repro.analysis.chaos import CHAOS_ENV, ChaosPlan, FaultSpec
from repro.analysis.montecarlo import characterize
from repro.multipliers.registry import build
from repro.serve import (
    AsyncClient,
    BatchPolicy,
    ProcessShard,
    Service,
    ShardConfig,
    Supervisor,
    SupervisorPolicy,
    TcpServer,
)

DESIGNS = ["accurate", "calm", "realm16-t4", "drum-k8"]
SAMPLES = 1 << 12
SEED = 7

#: chaos phase budgets
SHARDS = 4
RECOVERY_BUDGET = 60.0   # seconds to detect + restart all injected faults
P99_BUDGET = 5.0         # seconds; deadline 1.0 + redirects leaves headroom


# ----------------------------------------------------------------------
# Base phase: single service over TCP
# ----------------------------------------------------------------------


async def one_client(host: str, port: int, design: str, seed: int) -> None:
    """One fleet member: a burst of vector multiplies, verified."""
    rng = np.random.default_rng(seed)
    model = build(design)
    jobs = []
    for _ in range(5):
        n = int(rng.integers(1, 48))
        jobs.append(
            (
                rng.integers(0, 1 << 16, size=n),
                rng.integers(0, 1 << 16, size=n),
            )
        )
    async with await AsyncClient.connect(host, port) as client:
        # pipelined on one connection so requests land inside the same
        # latency window and actually co-batch
        served = await asyncio.gather(
            *(
                client.multiply(design, a.tolist(), b.tolist())
                for a, b in jobs
            )
        )
    for (a, b), got in zip(jobs, served):
        expected = [int(v) for v in model.multiply(a, b)]
        assert got == expected, f"{design}: served products diverged"


async def workload(host: str, port: int) -> None:
    # concurrent multiply fleets on every design, plus one characterize
    fleets = [
        one_client(host, port, design, seed=100 + i)
        for i, design in enumerate(DESIGNS)
    ]

    async def characterize_probe() -> None:
        async with await AsyncClient.connect(host, port) as client:
            result = await client.characterize(
                "calm", samples=SAMPLES, seed=SEED
            )
            direct = characterize(build("calm"), samples=SAMPLES, seed=SEED)
            assert result["metrics"] == dataclasses.asdict(direct), (
                "served characterize diverged from the direct engine run"
            )
            listing = await client.designs(prefix="realm16-")
            assert listing, "designs listing came back empty"

    await asyncio.gather(*fleets, characterize_probe())


async def base_phase() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "serve-trace.jsonl"
        with telemetry.tracing(trace):
            service = Service(policy=BatchPolicy(max_latency=0.001))
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            try:
                await workload(host, port)
            finally:
                await server.close()
        summary = telemetry.summarize_trace(trace)

    batches = summary["phases"].get("serve.batch")
    assert batches is not None and batches.count > 0, (
        "trace contains no serve.batch spans — nothing was fused"
    )
    shed = summary["counters"].get("serve.shed", 0)
    assert shed == 0, f"smoke workload shed {shed} requests unexpectedly"
    requests = summary["counters"].get("serve.requests", 0)
    assert requests >= 5 * len(DESIGNS), (
        f"expected >= {5 * len(DESIGNS)} admitted requests, saw {requests}"
    )
    print(
        f"serve smoke OK: {int(requests)} requests, "
        f"{batches.count} fused batches, 0 shed"
    )


# ----------------------------------------------------------------------
# Chaos phase: supervised fleet with injected crashes + hang
# ----------------------------------------------------------------------


def fleet_policy() -> SupervisorPolicy:
    return SupervisorPolicy(
        heartbeat_interval=0.1,
        heartbeat_timeout=0.5,
        max_heartbeat_misses=2,
        request_deadline=1.0,
        restart_base=0.01,
        restart_cap=0.1,
        allow_degraded=False,  # every answer must come from the fleet
    )


def pick_targets(supervisor: Supervisor) -> tuple[str, str, str, str]:
    """Crash/hang target designs with *distinct* owning shards.

    Placement is a pure function of the label set (the ring is built
    from labels only), so the schedule is fixed before any worker
    process exists.
    """
    crash_design = "realm16-t4"
    crash_owner = supervisor.route(crash_design)[0]
    for hang_design in ("drum-k8", "calm", "accurate", "mbm-t4", "essm8"):
        hang_owner = supervisor.route(hang_design)[0]
        if hang_owner != crash_owner:
            return crash_design, crash_owner, hang_design, hang_owner
    raise AssertionError("no design with a distinct owner found")


async def drive_until(
    client: AsyncClient,
    design: str,
    model,
    done,
    latencies: list[float],
    *,
    cap: int = 200,
    pace: float = 0.05,
) -> int:
    """Send verified multiplies until ``done()`` (or the cap).

    Returns the number of requests sent.  Every single one must be
    answered with its own bit-identical products — a lost response
    would hang, a dropped connection would raise, a cross-wired reply
    would mismatch.
    """
    rng = np.random.default_rng(sum(design.encode()))
    sent = 0
    while sent < cap:
        n = int(rng.integers(1, 9))
        a = rng.integers(0, 1 << 16, size=n)
        b = rng.integers(0, 1 << 16, size=n)
        t0 = time.monotonic()
        got = await client.multiply(design, a.tolist(), b.tolist())
        latencies.append(time.monotonic() - t0)
        expected = [int(v) for v in model.multiply(a, b)]
        assert got == expected, (
            f"{design}: reply diverged from direct evaluation "
            f"(cross-wired or corrupted): {got} != {expected}"
        )
        sent += 1
        if done():
            return sent
        await asyncio.sleep(pace)
    return sent


async def chaos_phase() -> None:
    shards = [ProcessShard(ShardConfig(f"shard-{i}")) for i in range(SHARDS)]
    supervisor = Supervisor(shards, policy=fleet_policy())
    crash_design, crash_owner, hang_design, hang_owner = pick_targets(
        supervisor
    )
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "chaos-trace.jsonl"
        # two crashes in the crash owner's first and second lives (the
        # multiply ordinal resets with the process), one 30s hang at the
        # hang owner's first multiply; claim files make each fire exactly
        # once no matter how requests interleave with restarts
        plan = ChaosPlan(
            (
                FaultSpec("crash", 1, design=crash_owner),
                FaultSpec("crash", 2, design=crash_owner),
                FaultSpec("hang", 0, design=hang_owner, seconds=30.0),
            ),
            str(Path(tmp) / "claims"),
        )
        os.environ[CHAOS_ENV] = plan.to_json()
        try:
            with telemetry.tracing(trace):
                await supervisor.up()
                server = TcpServer(supervisor, port=0)
                await server.start()
                host, port = server.address
                started = time.monotonic()
                latencies: list[float] = []
                try:
                    async with await AsyncClient.connect(host, port) as client:
                        crash_sent = await drive_until(
                            client,
                            crash_design,
                            build(crash_design),
                            lambda: supervisor.restart_counts[crash_owner] >= 2,
                            latencies,
                        )
                        hang_sent = await drive_until(
                            client,
                            hang_design,
                            build(hang_design),
                            lambda: supervisor.restart_counts[hang_owner] >= 1,
                            latencies,
                        )
                        # fleet healthy again: a final verified burst
                        for design in (crash_design, hang_design):
                            model = build(design)
                            got = await client.multiply(design, [9, 10], [11, 12])
                            expected = [
                                int(v)
                                for v in model.multiply(
                                    np.array([9, 10]), np.array([11, 12])
                                )
                            ]
                            assert got == expected, f"{design}: post-recovery"
                        status = await client.call({"op": "status"})
                finally:
                    await server.close()
            elapsed = time.monotonic() - started
        finally:
            del os.environ[CHAOS_ENV]
        summary = telemetry.summarize_trace(trace)

    assert supervisor.restart_counts[crash_owner] >= 2, (
        f"both crashes should have been detected and restarted: "
        f"{supervisor.restart_counts}"
    )
    assert supervisor.restart_counts[hang_owner] >= 1, (
        f"the hang should have been detected and restarted: "
        f"{supervisor.restart_counts}"
    )
    assert elapsed < RECOVERY_BUDGET, (
        f"recovery took {elapsed:.1f}s, budget {RECOVERY_BUDGET}s"
    )
    assert status["ready"], "fleet should be ready after recovery"
    restarts = summary["counters"].get("supervisor.restarts", 0)
    assert restarts >= 3, f"expected >= 3 supervised restarts, saw {restarts}"
    misses = summary["counters"].get("supervisor.heartbeat_misses", 0)
    assert misses >= 2, f"the hang should cost heartbeat misses, saw {misses}"
    p99 = float(np.percentile(np.asarray(latencies), 99))
    assert p99 < P99_BUDGET, f"p99 latency {p99:.2f}s exceeds {P99_BUDGET}s"
    print(
        f"serve chaos OK: {crash_sent + hang_sent + 2} verified requests, "
        f"0 lost, {restarts} restarts "
        f"(crash x2 on {crash_owner}, hang on {hang_owner}), "
        f"{misses} heartbeat misses, p99 {p99 * 1000:.0f}ms, "
        f"recovered in {elapsed:.1f}s"
    )


async def main(only: str | None) -> int:
    if only in (None, "base"):
        await base_phase()
    if only in (None, "chaos"):
        await chaos_phase()
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", choices=["base", "chaos"], default=None)
    args = parser.parse_args()
    sys.exit(asyncio.run(main(args.only)))
