#!/usr/bin/env python
"""CI smoke test for the serving layer.

Starts a real :class:`~repro.serve.TcpServer` on an ephemeral loopback
port with tracing enabled, drives a mixed multiply/characterize/designs
workload through pipelined TCP clients, drains the server, and then
asserts on the recorded trace:

* every multiply response is bit-identical to a direct model call;
* the characterize response matches a direct engine run exactly;
* the trace contains ``serve.batch`` spans (requests actually fused)
  and **zero** shed events — the workload fits the default queue.

Exit status 0 on success; any assertion failure or unexpected error is
a non-zero exit, which fails the CI job.  Run it from the repo root:

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import dataclasses
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import telemetry
from repro.analysis.montecarlo import characterize
from repro.multipliers.registry import build
from repro.serve import AsyncClient, BatchPolicy, Service, TcpServer

DESIGNS = ["accurate", "calm", "realm16-t4", "drum-k8"]
SAMPLES = 1 << 12
SEED = 7


async def one_client(host: str, port: int, design: str, seed: int) -> None:
    """One fleet member: a burst of vector multiplies, verified."""
    rng = np.random.default_rng(seed)
    model = build(design)
    jobs = []
    for _ in range(5):
        n = int(rng.integers(1, 48))
        jobs.append(
            (
                rng.integers(0, 1 << 16, size=n),
                rng.integers(0, 1 << 16, size=n),
            )
        )
    async with await AsyncClient.connect(host, port) as client:
        # pipelined on one connection so requests land inside the same
        # latency window and actually co-batch
        served = await asyncio.gather(
            *(
                client.multiply(design, a.tolist(), b.tolist())
                for a, b in jobs
            )
        )
    for (a, b), got in zip(jobs, served):
        expected = [int(v) for v in model.multiply(a, b)]
        assert got == expected, f"{design}: served products diverged"


async def workload(host: str, port: int) -> None:
    # concurrent multiply fleets on every design, plus one characterize
    fleets = [
        one_client(host, port, design, seed=100 + i)
        for i, design in enumerate(DESIGNS)
    ]

    async def characterize_probe() -> None:
        async with await AsyncClient.connect(host, port) as client:
            result = await client.characterize(
                "calm", samples=SAMPLES, seed=SEED
            )
            direct = characterize(build("calm"), samples=SAMPLES, seed=SEED)
            assert result["metrics"] == dataclasses.asdict(direct), (
                "served characterize diverged from the direct engine run"
            )
            listing = await client.designs(prefix="realm16-")
            assert listing, "designs listing came back empty"

    await asyncio.gather(*fleets, characterize_probe())


async def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "serve-trace.jsonl"
        with telemetry.tracing(trace):
            service = Service(policy=BatchPolicy(max_latency=0.001))
            server = TcpServer(service, port=0)
            await server.start()
            host, port = server.address
            try:
                await workload(host, port)
            finally:
                await server.close()
        summary = telemetry.summarize_trace(trace)

    batches = summary["phases"].get("serve.batch")
    assert batches is not None and batches.count > 0, (
        "trace contains no serve.batch spans — nothing was fused"
    )
    shed = summary["counters"].get("serve.shed", 0)
    assert shed == 0, f"smoke workload shed {shed} requests unexpectedly"
    requests = summary["counters"].get("serve.requests", 0)
    assert requests >= 5 * len(DESIGNS), (
        f"expected >= {5 * len(DESIGNS)} admitted requests, saw {requests}"
    )
    print(
        f"serve smoke OK: {int(requests)} requests, "
        f"{batches.count} fused batches, 0 shed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
