"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints the rows
(paper value next to measured value) and saves the text to
``benchmarks/results/``.  pytest-benchmark times the regeneration; each
bench runs its workload once per benchmark round (``pedantic`` with one
round) since the workloads are seconds-scale and deterministic.

Monte-Carlo depth: benches default to 2^20 samples so the whole harness
runs in minutes; the EXPERIMENTS.md numbers come from the same drivers at
the paper's 2^24 (see the file header there).  Override with
``REPRO_BENCH_SAMPLES``.

Engine knobs: ``REPRO_BENCH_WORKERS`` fans the characterization benches
out over that many processes, and setting ``REPRO_CACHE_DIR`` turns on
the on-disk metrics cache (second runs become near-instant).  Results are
bit-identical at any setting — the engine's substream scheme guarantees
the same seed produces the same metrics at every chunk size and worker
count.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Monte-Carlo depth used by the benches (paper: 2^24)
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", 1 << 20))

#: process-pool width for the characterization benches (0/unset: serial)
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def attach_phases(benchmark, snapshot) -> None:
    """Store a telemetry snapshot's per-phase breakdown in the bench JSON.

    pytest-benchmark serializes ``extra_info`` into ``--benchmark-json``
    output, so saved runs carry where the wall time went (sampling vs.
    finalization vs. cache traffic), not just the total.
    """
    benchmark.extra_info["phases"] = {
        name: {"count": stat.count, "wall_s": round(stat.wall, 6)}
        for name, stat in sorted(snapshot.phases.items())
    }
    if snapshot.counters:
        benchmark.extra_info["counters"] = dict(sorted(snapshot.counters.items()))


@pytest.fixture
def record_result(results_dir):
    """Print a result block and persist it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn):
    """Time a deterministic seconds-scale workload exactly once per round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
