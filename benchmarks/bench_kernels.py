"""Compiled kernels versus interpreted evaluation, in pairs/sec.

The headline numbers of the kernel subsystem: each benchmark evaluates
one operand batch through both engines and records the measured
speedup in ``extra_info`` (the CI artifact tabulates these).  Model
kernels are expected to clear ~5x on the log families at Monte-Carlo
batch sizes; the bit-parallel netlist kernel clears ~5x over the
per-gate simulator at fuzzing batch sizes.

Run directly (``python benchmarks/bench_kernels.py``) for a quick
wall-clock table without pytest-benchmark.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits.catalog import netlist_for
from repro.kernels import compile_netlist, kernel_for
from repro.logic.sim import evaluate_words
from repro.multipliers.registry import build

#: Monte-Carlo-sized batch for the model kernels
MODEL_PAIRS = 1 << 19
#: fuzzing-sized batch for the gate-level engines
NETLIST_PAIRS = 1 << 15

MODEL_DESIGNS = ["realm16-t3", "mbm-t4", "calm", "alm-soa-m9", "drum-k6", "ssm-m9"]
NETLIST_DESIGNS = ["realm16-t3", "accurate", "mbm-t4", "drum-k6"]


def _operands(seed: int, pairs: int, bitwidth: int = 16):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << bitwidth, pairs, dtype=np.int64)
    b = rng.integers(0, 1 << bitwidth, pairs, dtype=np.int64)
    return a, b


def _time(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record_speedup(benchmark, pairs: int, interpreted_seconds: float):
    rate = pairs / benchmark.stats["mean"]
    benchmark.extra_info["pairs_per_sec"] = round(rate)
    benchmark.extra_info["interpreted_pairs_per_sec"] = round(
        pairs / interpreted_seconds
    )
    benchmark.extra_info["speedup"] = round(
        interpreted_seconds / benchmark.stats["mean"], 2
    )


def _model_case(design: str):
    model = build(design, 16)
    kernel = kernel_for(model)
    a, b = _operands(11, MODEL_PAIRS)
    assert np.array_equal(kernel(a, b), model._multiply(a, b))
    return model, kernel, a, b


def _netlist_case(design: str):
    netlist = netlist_for(design, 16)
    kernel = compile_netlist(netlist)
    buses = [netlist.inputs[:16], netlist.inputs[16:]]
    a, b = _operands(13, NETLIST_PAIRS)
    assert np.array_equal(
        kernel.evaluate_words(buses, [a, b]),
        evaluate_words(netlist, buses, [a, b]),
    )
    return netlist, kernel, buses, a, b


def _bench_model(benchmark, design: str):
    model, kernel, a, b = _model_case(design)
    interpreted = _time(lambda: model._multiply(a, b))
    benchmark(lambda: kernel(a, b))
    benchmark.extra_info["design"] = design
    benchmark.extra_info["kind"] = kernel.kind
    _record_speedup(benchmark, MODEL_PAIRS, interpreted)


def _bench_netlist(benchmark, design: str):
    _, kernel, buses, a, b = _netlist_case(design)
    netlist = kernel.netlist
    interpreted = _time(lambda: evaluate_words(netlist, buses, [a, b]))
    benchmark(lambda: kernel.evaluate_words(buses, [a, b]))
    benchmark.extra_info["design"] = design
    benchmark.extra_info["steps"] = kernel.step_count
    benchmark.extra_info["gates"] = netlist.gate_count
    _record_speedup(benchmark, NETLIST_PAIRS, interpreted)


def test_perf_kernel_realm(benchmark):
    """REALM16: packed-table kernel vs the interpreted datapath."""
    _bench_model(benchmark, "realm16-t3")


def test_perf_kernel_mbm(benchmark):
    """MBM: packed (k, xt) table vs the interpreted datapath."""
    _bench_model(benchmark, "mbm-t4")


def test_perf_kernel_mitchell(benchmark):
    """cALM: packed log table vs the interpreted datapath."""
    _bench_model(benchmark, "calm")


def test_perf_netlist_kernel_realm(benchmark):
    """REALM16 gate-level: bit-parallel program vs per-gate simulation."""
    _bench_netlist(benchmark, "realm16-t3")


def test_perf_netlist_kernel_wallace(benchmark):
    """Accurate Wallace tree: the densest netlist in the catalog."""
    _bench_netlist(benchmark, "accurate")


def main() -> None:
    print(f"model kernels ({MODEL_PAIRS} pairs):")
    for design in MODEL_DESIGNS:
        model, kernel, a, b = _model_case(design)
        ti = _time(lambda: model._multiply(a, b))
        tk = _time(lambda: kernel(a, b), repeat=5)
        print(
            f"  {design:<14} {kernel.kind:<12} "
            f"interp {MODEL_PAIRS / ti / 1e6:7.1f}M/s   "
            f"kernel {MODEL_PAIRS / tk / 1e6:7.1f}M/s   "
            f"speedup {ti / tk:5.1f}x"
        )
    print(f"netlist kernels ({NETLIST_PAIRS} pairs):")
    for design in NETLIST_DESIGNS:
        netlist, kernel, buses, a, b = _netlist_case(design)
        ti = _time(lambda: evaluate_words(netlist, buses, [a, b]))
        tk = _time(lambda: kernel.evaluate_words(buses, [a, b]), repeat=5)
        print(
            f"  {design:<14} {netlist.gate_count:>5} gates -> "
            f"{kernel.step_count:>3} steps   "
            f"interp {NETLIST_PAIRS / ti / 1e6:5.2f}M/s   "
            f"kernel {NETLIST_PAIRS / tk / 1e6:5.2f}M/s   "
            f"speedup {ti / tk:5.1f}x"
        )


if __name__ == "__main__":
    main()
