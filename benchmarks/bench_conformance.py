"""Throughput of the conformance harness's differential oracle.

Fuzzing campaigns are evaluation-bound, so pairs/sec through
``DifferentialOracle.evaluate`` is what sizes nightly budgets.  The two
configurations bracket the cost spectrum: model-only (pure NumPy, the
relation checks dominate) versus model+RTL (every pair also walks the
gate-level netlist).  ``extra_info`` records the measured pairs/sec so
the perf trajectory keeps the fuzzing throughput visible.
"""

from __future__ import annotations

import numpy as np

from repro.conformance import DifferentialOracle, fuzz

PAIRS = 1 << 13


def _operands(seed: int, bitwidth: int = 16):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << bitwidth, PAIRS, dtype=np.int64)
    b = rng.integers(0, 1 << bitwidth, PAIRS, dtype=np.int64)
    return a, b


def _bench_oracle(benchmark, layers):
    oracle = DifferentialOracle("realm16-t0", layers=layers)
    a, b = _operands(3)

    def evaluate():
        records, total = oracle.evaluate(a, b)
        return total

    total = benchmark(evaluate)
    assert total == 0  # a healthy design: throughput, not bug-finding
    rate = PAIRS / benchmark.stats["mean"]
    benchmark.extra_info["pairs_per_sec"] = round(rate)
    benchmark.extra_info["layers"] = list(oracle.layers)


def test_perf_oracle_model_only(benchmark):
    """Model + metamorphic relations only (the cheap configuration)."""
    _bench_oracle(benchmark, ("model", "exact"))


def test_perf_oracle_model_plus_rtl(benchmark):
    """Every pair additionally evaluated through the gate-level netlist."""
    _bench_oracle(benchmark, ("model", "rtl", "exact"))


def test_perf_full_campaign(benchmark):
    """End-to-end seeded campaign: generation + evaluation + coverage."""

    def campaign():
        return fuzz("realm-16-m4-q5", 20000, seed=0)

    result = benchmark(campaign)
    assert result.ok and result.full_cover
    benchmark.extra_info["pairs"] = result.pairs
    benchmark.extra_info["pairs_per_sec"] = round(
        result.pairs / benchmark.stats["mean"]
    )
