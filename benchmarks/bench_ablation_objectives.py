"""Ablations on the factor derivation itself.

Two studies around the paper's mathematical formulation:

* **REALM(M=1) vs MBM** — the paper argues (Section II) that its
  relative-error objective is the right one and that MBM's single
  absolute-error correction is the degenerate case.  With one segment,
  REALM's factor (0.0801) and MBM's (1/12 = 0.0833) even quantize to the
  same q=6 code, making the two designs product-identical — measured here.
* **mean vs MSE objective** — the paper's future-work variant (our
  Eq. 8 modified for mean square error): per-segment least-squares
  factors trade a little bias for lower RMS error.
"""

from __future__ import annotations

from conftest import BENCH_SAMPLES, run_once

from repro.analysis.montecarlo import characterize
from repro.core.realm import RealmMultiplier
from repro.experiments import format_table
from repro.multipliers.mbm import MbmMultiplier


def test_ablation_m1_vs_mbm(benchmark, record_result):
    def measure():
        return {
            "REALM(M=1)": characterize(
                RealmMultiplier(m=1, t=0), samples=BENCH_SAMPLES
            ),
            "MBM(t=0)": characterize(MbmMultiplier(t=0), samples=BENCH_SAMPLES),
            "cALM-equiv": characterize(
                RealmMultiplier(m=1, t=0, q=20), samples=BENCH_SAMPLES
            ),
        }

    results = run_once(benchmark, measure)
    rows = [
        (name, f"{m.bias:+.3f}", f"{m.mean_error:.3f}", f"{m.variance:.2f}")
        for name, m in results.items()
    ]
    record_result(
        "ablation_m1_vs_mbm", format_table(["design", "bias%", "ME%", "var"], rows)
    )
    # at q=6 the quantized corrections coincide -> identical metrics
    assert results["REALM(M=1)"] == results["MBM(t=0)"]


def test_ablation_mean_vs_mse_objective(benchmark, record_result):
    def measure():
        out = {}
        for m in (4, 8, 16):
            for objective in ("mean", "mse"):
                realm = RealmMultiplier(m=m, t=0, objective=objective)
                out[(m, objective)] = characterize(realm, samples=BENCH_SAMPLES)
        return out

    results = run_once(benchmark, measure)
    rows = [
        (
            f"REALM{m} ({objective})",
            f"{metrics.bias:+.3f}",
            f"{metrics.mean_error:.3f}",
            f"{metrics.rms:.3f}",
            f"{metrics.peak_min:.2f}",
            f"{metrics.peak_max:.2f}",
        )
        for (m, objective), metrics in results.items()
    ]
    record_result(
        "ablation_objectives",
        format_table(["design", "bias%", "ME%", "RMS%", "min%", "max%"], rows),
    )
    # the MSE factors must not be worse in RMS terms (they optimize it);
    # quantization can blur the tiny M=16 gap, hence the epsilon
    for m in (4, 8, 16):
        assert results[(m, "mse")].rms <= results[(m, "mean")].rms * 1.02
