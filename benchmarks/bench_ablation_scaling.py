"""Ablations: bitwidth scaling and the (M, t) knob surface.

Neither appears in the paper (it is 16-bit only, and reports the knob
space as Table I rows); both back its claims quantitatively:

* REALM's relative error is essentially width-independent above ~12 bits
  — the log-fraction statistics don't change with N — so the 16-bit
  characterization generalizes;
* the (M, t) grid is dense: 50 configurations whose mean error spans
  0.4%-4% with no gaps larger than a factor ~1.6 between neighbors, the
  substance of the paper's "wide and dense design space".
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.scaling import bitwidth_scaling, knob_surface
from repro.core.realm import RealmMultiplier
from repro.experiments import format_table

SAMPLES = 1 << 19


def test_ablation_bitwidth_scaling(benchmark, record_result):
    def run():
        return bitwidth_scaling(
            lambda n: RealmMultiplier(bitwidth=n, m=8, t=0),
            bitwidths=(8, 10, 12, 16, 20, 24),
            samples=SAMPLES,
        )

    results = run_once(benchmark, run)
    rows = [
        (
            f"N={n}",
            f"{metrics.bias:+.3f}",
            f"{metrics.mean_error:.3f}",
            f"{metrics.peak_min:.2f}",
            f"{metrics.peak_max:.2f}",
        )
        for n, metrics in results.items()
    ]
    record_result(
        "ablation_bitwidth_scaling",
        format_table(["width", "bias%", "ME%", "min%", "max%"], rows),
    )

    # relative error stabilizes once the fraction outresolves the factors
    assert abs(results[16].mean_error - results[24].mean_error) < 0.05
    assert abs(results[12].mean_error - results[16].mean_error) < 0.12
    # the forced-LSB bias floor shows at 8 bits and vanishes by 16
    assert abs(results[8].bias) > abs(results[16].bias)


def test_ablation_knob_surface(benchmark, record_result):
    def run():
        return knob_surface(samples=SAMPLES)

    results = run_once(benchmark, run)
    m_values = sorted({m for m, _ in results})
    t_values = sorted({t for _, t in results})
    rows = [
        [f"M={m}"] + [f"{results[(m, t)].mean_error:.2f}" for t in t_values]
        for m in m_values
    ]
    record_result(
        "ablation_knob_surface",
        "mean error % over the (M, t) grid:\n"
        + format_table(["", *(f"t={t}" for t in t_values)], rows),
    )

    # monotone in M at every t
    for t in t_values:
        columns = [results[(m, t)].mean_error for m in m_values]
        assert all(a >= b - 1e-6 for a, b in zip(columns, columns[1:]))
    # dense: sorted distinct MEs never jump by more than ~1.8x
    errors = sorted(metrics.mean_error for metrics in results.values())
    ratios = [b / a for a, b in zip(errors, errors[1:]) if a > 0]
    assert max(ratios) < 1.8
    # wide: the grid spans 0.42% (REALM16 t=0) up past MBM-class 2.6%
    # (the M=1 degenerate row)
    assert errors[0] < 0.45 and errors[-1] > 2.5