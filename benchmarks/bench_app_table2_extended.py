"""Robustness check of the Table II substitution: held-out scenes.

Table II's reproduction argument (DESIGN.md) is that the PSNR *gap*
structure between multipliers is a property of the DCT arithmetic, not of
the specific photograph.  This bench tests that claim on two stand-in
scenes that were never used to tune anything ("peppers", "bridge"): the
same gap structure must hold — REALM within ~1 dB of accurate, every
other log design >2 dB worse.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_table
from repro.jpeg.codec import roundtrip_psnr
from repro.jpeg.images import test_image as make_image
from repro.multipliers.registry import build

HELD_OUT = ("peppers", "bridge")
DESIGNS = ("accurate", "realm16-t8", "realm8-t8", "mbm-t0", "calm", "alm-soa-m11")


def test_app_table2_extended(benchmark, record_result):
    def run():
        out = {}
        for image_name in HELD_OUT:
            image = make_image(image_name)
            out[image_name] = {
                name: roundtrip_psnr(build(name), image)[0] for name in DESIGNS
            }
        return out

    results = run_once(benchmark, run)
    rows = [
        [image_name] + [f"{results[image_name][n]:.1f}" for n in DESIGNS]
        for image_name in HELD_OUT
    ]
    record_result(
        "app_table2_extended", format_table(["image"] + list(DESIGNS), rows)
    )

    for image_name in HELD_OUT:
        scores = results[image_name]
        accurate = scores["accurate"]
        assert abs(accurate - scores["realm16-t8"]) < 1.2, image_name
        assert abs(accurate - scores["realm8-t8"]) < 1.5, image_name
        for name in ("mbm-t0", "calm", "alm-soa-m11"):
            assert accurate - scores[name] > 2.0, (image_name, name)
