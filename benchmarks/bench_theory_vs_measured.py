"""Theory vs. Monte Carlo: the analytical limit of Table I's error columns.

Evaluates the paper's error integrals (Eq. 5-11 composed) numerically per
segment and prints them next to the MC measurement — three independent
sources now agree on REALM's error columns: the published table, this
library's 2^24-sample MC, and the closed-form integrals.  Also reports
the ideal-factor (unquantized) limit, i.e. what the q knob is costing.
"""

from __future__ import annotations

from conftest import BENCH_SAMPLES, run_once

from repro.analysis.montecarlo import characterize
from repro.core.realm import RealmMultiplier
from repro.core.theory import predict_metrics
from repro.experiments import format_table


def test_theory_vs_measured(benchmark, record_result):
    def run():
        rows = {}
        for m in (4, 8, 16):
            theory = predict_metrics(m, q=6)
            ideal = predict_metrics(m, q=None)
            measured = characterize(
                RealmMultiplier(m=m, t=0), samples=BENCH_SAMPLES
            )
            rows[m] = (theory, ideal, measured)
        return rows

    results = run_once(benchmark, run)

    table = []
    for m, (theory, ideal, measured) in results.items():
        table.append(
            (
                f"REALM{m}",
                f"{measured.mean_error:.3f}",
                f"{theory.mean_error:.3f}",
                f"{ideal.mean_error:.3f}",
                f"{measured.bias:+.3f}",
                f"{theory.bias:+.3f}",
                f"{measured.variance:.3f}",
                f"{theory.variance:.3f}",
            )
        )
    record_result(
        "theory_vs_measured",
        format_table(
            [
                "design",
                "ME mc", "ME theory", "ME ideal-q",
                "bias mc", "bias theory",
                "var mc", "var theory",
            ],
            table,
        ),
    )

    for m, (theory, _, measured) in results.items():
        assert abs(measured.mean_error - theory.mean_error) < 0.02, m
        assert abs(measured.variance - theory.variance) < 0.03, m
