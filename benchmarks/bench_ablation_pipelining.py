"""Ablation: pipelining as the alternative to timing-driven sizing.

The paper synthesizes single-cycle designs at 1 GHz; the cost model's
documented gap is that it cannot reproduce the sizing a real flow applies
to make the deep accurate multiplier meet that clock.  This bench
quantifies the other classical remedy: pipeline the netlists and report
throughput vs. register overhead per stage count — showing (a) the
accurate Wallace multiplier needs ~4 stages of unit-sized cells to beat
1 GHz, (b) REALM's shallower mux datapath gets there with fewer, and
(c) what each stage costs in DFF area.
"""

from __future__ import annotations

from conftest import run_once

from repro.circuits.realm_rtl import realm_netlist
from repro.circuits.wallace import wallace_netlist
from repro.experiments import format_table
from repro.logic.pipeline import pipeline_netlist

STAGES = (1, 2, 3, 4, 5)


def test_ablation_pipelining(benchmark, record_result):
    def sweep():
        designs = {
            "accurate": wallace_netlist(16),
            "realm16-t0": realm_netlist(16, m=16, t=0),
        }
        designs["accurate"].prune()
        out = {}
        for name, netlist in designs.items():
            for stages in STAGES:
                pipe = pipeline_netlist(netlist, stages)
                out[(name, stages)] = (
                    pipe.clock_ps,
                    pipe.throughput_ghz,
                    pipe.register_count,
                    pipe.register_area,
                )
        return out

    results = run_once(benchmark, sweep)
    rows = [
        (
            f"{name} x{stages}",
            f"{clock:.0f}",
            f"{throughput:.2f}",
            str(registers),
            f"{area:.0f}",
        )
        for (name, stages), (clock, throughput, registers, area) in results.items()
    ]
    record_result(
        "ablation_pipelining",
        format_table(
            ["design", "clock ps", "GHz", "regs", "reg area um2"], rows
        ),
    )

    # throughput must rise monotonically with stages for both designs
    for name in ("accurate", "realm16-t0"):
        clocks = [results[(name, s)][0] for s in STAGES]
        assert all(a >= b for a, b in zip(clocks, clocks[1:]))
    # the deep accurate multiplier needs more stages than REALM to reach
    # any given clock
    accurate_1ghz = min(s for s in STAGES if results[("accurate", s)][0] < 1000)
    realm_1ghz = min(s for s in STAGES if results[("realm16-t0", s)][0] < 1000)
    assert realm_1ghz <= accurate_1ghz
