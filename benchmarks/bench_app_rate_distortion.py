"""Application extension: JPEG rate-distortion curves per multiplier.

Table II fixes quality 50; this sweep varies it, which exposes a finding
single-point PSNR cannot: with an accurate (or REALM) multiplier, paying
more bits keeps buying quality, while cALM's arithmetic noise floor caps
the curve — past moderate quality the extra bitrate is wasted.  SSIM is
reported alongside PSNR (the perceptual metric reacts differently to the
multiplicative DCT error).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_table
from repro.jpeg.codec import compress, decompress
from repro.jpeg.images import test_image as make_image
from repro.jpeg.psnr import psnr
from repro.jpeg.ssim import ssim
from repro.multipliers.registry import build

QUALITIES = (10, 30, 50, 70, 90)
DESIGNS = ("accurate", "realm16-t8", "calm")


def test_app_rate_distortion(benchmark, record_result):
    def run():
        image = make_image("cameraman")
        out = {}
        for name in DESIGNS:
            multiplier = build(name)
            for quality in QUALITIES:
                compressed = compress(multiplier, image, quality)
                decoded = decompress(multiplier, compressed)
                out[(name, quality)] = (
                    psnr(image, decoded),
                    ssim(image, decoded),
                    compressed.bits_per_pixel,
                )
        return out

    results = run_once(benchmark, run)
    rows = [
        (
            f"{name} q={quality}",
            f"{p:.1f}",
            f"{s:.3f}",
            f"{bpp:.2f}",
        )
        for (name, quality), (p, s, bpp) in results.items()
    ]
    record_result(
        "app_rate_distortion",
        format_table(["design @ quality", "PSNR dB", "SSIM", "bits/px"], rows),
    )

    # accurate & REALM keep buying quality with bitrate
    for name in ("accurate", "realm16-t8"):
        curve = [results[(name, quality)][0] for quality in QUALITIES]
        assert all(a < b for a, b in zip(curve, curve[1:])), name
    # REALM tracks accurate within ~1.5 dB at every operating point
    for quality in QUALITIES:
        gap = results[("accurate", quality)][0] - results[("realm16-t8", quality)][0]
        assert abs(gap) < 1.5, quality
    # cALM's arithmetic noise floor: quality 90 buys < 2 dB over quality 50
    calm_gain = results[("calm", 90)][0] - results[("calm", 50)][0]
    accurate_gain = results[("accurate", 90)][0] - results[("accurate", 50)][0]
    assert calm_gain < accurate_gain - 2.0