"""Ablation: adder style and accurate-core microarchitecture.

Two cost-model studies DESIGN.md calls out:

* **Carry-propagate adder style** — ripple (what the datapaths instantiate,
  minimum area) vs the parallel-prefix family vs carry-select, at the two
  widths the designs actually use (the 19-bit log-sum adder and the 32-bit
  final adder of the accurate multiplier).  Shows the area/delay trade a
  timing-driven flow makes — the root cause of the documented compression
  of our absolute reduction percentages.
* **Accurate-core microarchitecture** — Wallace (the paper's reference) vs
  Dadda vs radix-4 Booth: how much the Table I normalization anchor moves
  with the choice.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.circuits.booth import booth_netlist, dadda_netlist
from repro.circuits.prefix_adders import ADDER_STYLES
from repro.circuits.wallace import wallace_netlist
from repro.experiments import format_table
from repro.logic.netlist import Netlist
from repro.synth.timing import analyze_timing


def _adder_metrics(style: str, width: int):
    nl = Netlist(f"{style}{width}")
    a = nl.input_bus("a", width)
    b = nl.input_bus("b", width)
    total, carry = ADDER_STYLES[style](nl, a, b)
    nl.set_outputs(total + [carry])
    nl.prune()
    timing = analyze_timing(nl)
    return nl.gate_count, nl.area(), timing.critical_path_ps


def test_ablation_adder_styles(benchmark, record_result):
    def sweep():
        return {
            (style, width): _adder_metrics(style, width)
            for style in sorted(ADDER_STYLES)
            for width in (19, 32)
        }

    results = run_once(benchmark, sweep)
    rows = [
        (
            f"{style} w={width}",
            str(gates),
            f"{area:.0f}",
            f"{delay:.0f}",
        )
        for (style, width), (gates, area, delay) in results.items()
    ]
    record_result(
        "ablation_adder_styles",
        format_table(["adder", "gates", "area um2(raw)", "delay ps"], rows),
    )

    for width in (19, 32):
        ripple_gates, _, ripple_delay = results[("ripple", width)]
        ks_gates, _, ks_delay = results[("kogge-stone", width)]
        assert ks_delay < ripple_delay / 2  # the speed a real flow buys
        assert ks_gates > ripple_gates  # ... and what it costs


def test_ablation_accurate_cores(benchmark, record_result):
    def sweep():
        out = {}
        for name, maker in (
            ("wallace", wallace_netlist),
            ("dadda", dadda_netlist),
            ("booth-r4", booth_netlist),
        ):
            nl = maker(16)
            if name == "wallace":
                nl.prune()
            timing = analyze_timing(nl)
            out[name] = (nl.gate_count, nl.area(), timing.critical_path_ps)
        return out

    results = run_once(benchmark, sweep)
    wallace_area = results["wallace"][1]
    rows = [
        (
            name,
            str(gates),
            f"{area:.0f}",
            f"{area / wallace_area * 100:.1f}%",
            f"{delay:.0f}",
        )
        for name, (gates, area, delay) in results.items()
    ]
    record_result(
        "ablation_accurate_cores",
        format_table(
            ["core", "gates", "area(raw)", "vs wallace", "delay ps"], rows
        ),
    )
    # the reference anchor moves by < ~15% across microarchitectures, so
    # Table I's percentage scale is robust to the choice
    areas = np.array([area for _, area, _ in results.values()])
    assert areas.max() / areas.min() < 1.25
