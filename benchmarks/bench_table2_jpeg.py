"""Table II: JPEG (quality 50) PSNR per multiplier per image.

Regenerates the application study on the procedural stand-in images
(DESIGN.md, Substitutions): the reproduction target is the *gap*
structure — REALM within ~0.5 dB of the accurate multiplier, every other
log-based design losing more than 2 dB — not the absolute PSNR, which
depends on the photographs.
"""

from __future__ import annotations

from conftest import run_once

from repro import paper
from repro.experiments import format_table, table2_jpeg


def test_table2_jpeg_psnr(benchmark, record_result):
    rows = run_once(benchmark, table2_jpeg)

    headers = ["image"] + list(paper.TABLE2_MULTIPLIERS)
    body = [
        [row["image"]]
        + [
            f"{row[name]:.1f} (p{row[f'{name}_paper']:.1f})"
            for name in paper.TABLE2_MULTIPLIERS
        ]
        for row in rows
    ]
    gap_rows = [
        [row["image"]]
        + [
            f"{row['accurate'] - row[name]:+.1f} "
            f"(p{row['accurate_paper'] - row[f'{name}_paper']:+.1f})"
            for name in paper.TABLE2_MULTIPLIERS
            if name != "accurate"
        ]
        for row in rows
    ]
    text = (
        format_table(headers, body)
        + "\n\nPSNR drop vs accurate (the reproduction target):\n"
        + format_table(
            ["image"] + [n for n in paper.TABLE2_MULTIPLIERS if n != "accurate"],
            gap_rows,
        )
    )
    record_result("table2_jpeg", text)

    for row in rows:
        accurate = row["accurate"]
        # REALM: negligible drop (paper: <= 0.4 dB; allow stand-in slack)
        for name in ("realm16-t8", "realm8-t8", "realm4-t8"):
            assert abs(accurate - row[name]) < 1.6, name
        # every other log-based design: > 2 dB drop, like the paper
        for name in ("mbm-t0", "calm", "implm-ea", "intalp-l1", "alm-soa-m11"):
            assert accurate - row[name] > 2.0, name
