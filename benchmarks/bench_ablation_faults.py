"""Ablation: hardware fault sensitivity of accurate vs. approximate cores.

Approximate-computing folklore holds that error-tolerant datapaths also
degrade gracefully under silicon faults.  Measured here: for a random
sample of single stuck-at faults, the mean relative output error each
fault induces on the accurate Wallace multiplier vs. REALM (both at 8-bit
scale so the full fault simulation stays fast), plus the single-stuck-at
test coverage of random vectors — the ATPG-style sanity check that the
library's equivalence vectors genuinely exercise the datapaths.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.circuits.realm_rtl import realm_netlist
from repro.circuits.wallace import wallace_netlist
from repro.experiments import format_table
from repro.logic.faults import fault_coverage, fault_impact, fault_sites


def _designs():
    wallace = wallace_netlist(8)
    wallace.prune()
    return {"accurate8": wallace, "realm8(M=4)": realm_netlist(8, m=4, t=0)}


def test_ablation_fault_sensitivity(benchmark, record_result):
    def run():
        rng = np.random.default_rng(2020)
        a = rng.integers(1, 256, 192)
        b = rng.integers(1, 256, 192)
        out = {}
        for name, netlist in _designs().items():
            buses = [netlist.inputs[:8], netlist.inputs[8:]]
            sites = fault_sites(netlist)
            sample = [sites[i] for i in rng.choice(len(sites), 160, replace=False)]
            impacts = [
                fault_impact(netlist, buses, [a, b], fault) for fault in sample
            ]
            errors = np.array([i.mean_relative_error for i in impacts])
            detection = np.array([i.detection_rate for i in impacts])
            coverage = fault_coverage(netlist, buses, [a, b], faults=sample)
            out[name] = (
                float(np.median(errors)),
                float(errors.mean()),
                float(detection.mean()),
                coverage,
            )
        return out

    results = run_once(benchmark, run)
    rows = [
        (
            name,
            f"{median * 100:.2f}",
            f"{mean * 100:.2f}",
            f"{detect * 100:.1f}",
            f"{coverage * 100:.1f}",
        )
        for name, (median, mean, detect, coverage) in results.items()
    ]
    record_result(
        "ablation_faults",
        format_table(
            [
                "design",
                "median fault err%",
                "mean fault err%",
                "mean detect%",
                "coverage%",
            ],
            rows,
        ),
    )

    for name, (_, _, _, coverage) in results.items():
        # random vectors exercise the datapaths thoroughly
        assert coverage > 0.80, name
    # both designs see nonzero fault damage; the comparison table is the
    # deliverable (graceful-degradation claims vary with fault location)
    assert all(mean > 0 for _, mean, _, _ in results.values())