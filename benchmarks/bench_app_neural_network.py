"""Application extension: MLP inference accuracy and logit distortion.

The paper evaluates one application (JPEG, Table II) and motivates the
work with machine learning; this bench adds the ML datapoint: a quantized
MLP on the glyph task, inference through every multiplier family.  The
reproduction-relevant expectations mirror Table II's structure — REALM
indistinguishable from accurate, distortion ordered like Table I's mean
error.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import format_table
from repro.multipliers.registry import build
from repro.nn import evaluate_multipliers, float_accuracy, logit_distortion, trained_setup

DESIGNS = (
    "accurate",
    "realm16-t0",
    "realm8-t8",
    "realm4-t9",
    "mbm-t0",
    "calm",
    "implm-ea",
    "alm-soa-m11",
    "drum-k8",
    "drum-k4",
    "ssm-m8",
    "essm8",
)


def test_app_neural_network(benchmark, record_result):
    def run():
        data, params = trained_setup()
        return (
            float_accuracy(data, params),
            evaluate_multipliers(DESIGNS),
            logit_distortion(DESIGNS),
        )

    reference, accuracy, distortion = run_once(benchmark, run)

    rows = [
        (build(name).name, f"{accuracy[name]:.3f}", f"{distortion[name]:.2f}")
        for name in DESIGNS
    ]
    record_result(
        "app_neural_network",
        f"float reference accuracy: {reference:.3f}\n\n"
        + format_table(["multiplier", "accuracy", "logit distortion %"], rows),
    )

    # REALM: no measurable accuracy cost
    assert accuracy["realm16-t0"] >= accuracy["accurate"] - 0.02
    # distortion ordering mirrors Table I's mean-error ordering
    assert distortion["realm16-t0"] < distortion["realm4-t9"] < distortion["mbm-t0"]
    assert distortion["mbm-t0"] < distortion["calm"]
    # every design stays usable (the error-resilience premise)
    assert min(accuracy.values()) > 0.85
