"""Ablation: LUT precision ``q`` (the paper fixes q=6 without a sweep).

DESIGN.md calls out the quantization of the s_ij factors as a design
choice; this bench sweeps q to show (a) why q=6 is enough — the error
saturates at the unquantized optimum — and (b) how fast accuracy decays
below it, which is the evidence behind the paper's "little overhead"
claim for the q-2-bit hardwired LUT.
"""

from __future__ import annotations

from conftest import BENCH_SAMPLES, run_once

from repro.analysis.montecarlo import characterize
from repro.core.realm import RealmMultiplier
from repro.experiments import format_table

Q_SWEEP = (4, 5, 6, 7, 8, 10)


def test_ablation_lut_precision(benchmark, record_result):
    def sweep():
        results = {}
        for q in Q_SWEEP:
            realm = RealmMultiplier(m=16, t=0, q=q)
            results[q] = characterize(realm, samples=BENCH_SAMPLES)
        return results

    results = run_once(benchmark, sweep)
    rows = [
        (
            f"q={q}",
            f"{metrics.bias:+.3f}",
            f"{metrics.mean_error:.3f}",
            f"{metrics.peak_min:.2f}",
            f"{metrics.peak_max:.2f}",
        )
        for q, metrics in results.items()
    ]
    record_result(
        "ablation_lut_precision",
        format_table(["config", "bias%", "ME%", "min%", "max%"], rows),
    )

    # q=6 is the knee: within ~15% of the unquantized optimum, while each
    # step below it costs ~25% ME and doubles again at q=4
    assert results[6].mean_error < results[10].mean_error * 1.15
    assert results[5].mean_error > results[6].mean_error * 1.15
    assert results[4].mean_error > results[5].mean_error * 1.3
