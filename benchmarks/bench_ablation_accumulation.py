"""Ablation: error accumulation — the paper's design consideration (b).

"Low error bias facilitates cancellation of errors in successive
computations."  Measured: dot-product output error vs. chain length for a
biased design (cALM), a bias-corrected one (MBM), and REALM.  The random
component of the error averages out as 1/sqrt(n); the bias does not, so
every chain converges to the multiplier's bias floor — which is the whole
reason Table I's bias column matters.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.accumulation import accumulation_profile, predicted_floor
from repro.experiments import format_table
from repro.multipliers.registry import build

DESIGNS = ("calm", "mbm-t0", "realm4-t0", "realm16-t0", "drum-k6", "ssm-m9")
LENGTHS = (1, 16, 256, 4096)


def test_ablation_accumulation(benchmark, record_result):
    def run():
        out = {}
        for name in DESIGNS:
            multiplier = build(name)
            out[name] = (
                accumulation_profile(multiplier, lengths=LENGTHS, trials=128),
                predicted_floor(multiplier, samples=1 << 19),
            )
        return out

    results = run_once(benchmark, run)
    rows = []
    for name, (profile, floor) in results.items():
        rows.append(
            [build(name).name, f"{floor:+.2f}"]
            + [f"{p.mean_error:+.2f}±{p.spread:.2f}" for p in profile]
        )
    record_result(
        "ablation_accumulation",
        format_table(
            ["design", "bias floor"] + [f"n={n}" for n in LENGTHS], rows
        ),
    )

    for name, (profile, floor) in results.items():
        final = profile[-1]
        # noise is gone at n=4096 ...
        assert final.spread < profile[0].spread / 5, name
        # ... and what remains is the bias floor
        assert abs(final.mean_error - floor) < 0.5, name
    # the ordering the paper's consideration (b) predicts
    assert abs(results["realm16-t0"][0][-1].mean_error) < 0.1
    assert abs(results["calm"][0][-1].mean_error) > 3.0