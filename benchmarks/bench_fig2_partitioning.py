"""Fig. 2: M x M partitioning of the power-of-two intervals (M=4).

Regenerates the figure's substance quantitatively: the mean signed
relative error of each of the 4x4 segments for cALM (the hills the figure
shades) and for REALM4 (collapsed toward zero by the per-segment
factors), over the figure's operand range ``{64..255}``.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.render import render_heatmap
from repro.experiments import fig2_segments, format_table


def test_fig2_partitioning(benchmark, record_result, results_dir):
    data = run_once(benchmark, lambda: fig2_segments(m=4))

    calm = data["calm_segment_means"] * 100
    realm = data["realm_segment_means"] * 100
    text = [
        "cALM per-segment mean relative error (%):",
        np.array2string(calm, precision=2, suppress_small=True),
        "\nREALM4 per-segment mean relative error (%):",
        np.array2string(realm, precision=2, suppress_small=True),
        "\nerror-reduction factors s_ij:",
        np.array2string(data["factors"], precision=4),
        "\nhardwired LUT codes (q=6):",
        np.array2string(data["lut_codes"]),
    ]
    reduction_rows = [
        (
            f"({i},{j})",
            f"{calm[i, j]:+.2f}",
            f"{realm[i, j]:+.2f}",
            f"{abs(calm[i, j]) / max(abs(realm[i, j]), 1e-3):.0f}x",
        )
        for i in range(4)
        for j in range(4)
    ]
    text.append("\nper-segment reduction:")
    text.append(
        format_table(["segment", "cALM mean%", "REALM mean%", "shrink"], reduction_rows)
    )
    record_result("fig2_partitioning", "\n".join(text))

    np.savetxt(results_dir / "fig2_calm_segments.csv", calm, delimiter=",")
    np.savetxt(results_dir / "fig2_realm_segments.csv", realm, delimiter=",")
    render_heatmap(calm, results_dir / "fig2_calm_segments.pgm", scale=24)
    render_heatmap(realm, results_dir / "fig2_realm_segments.pgm", scale=24)

    # the figure's claim: error reduced in *every* segment
    assert np.abs(realm).max() < np.abs(calm).max() / 5
    assert (np.abs(realm) <= np.abs(calm) + 0.05).all()
