"""Fig. 5: REALM's relative-error distributions across (M, t).

Regenerates the nine histogram panels and verifies the figure's
qualitative statements: double-sided distributions nearly centered on
zero; narrower and more symmetric as M grows; t=6 indistinguishable from
t=0; t=9 visibly wider and displaced.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_SAMPLES, run_once

from repro.analysis.distribution import ascii_histogram
from repro.analysis.render import render_histogram
from repro.experiments import fig5_histograms, format_table


def test_fig5_distributions(benchmark, record_result, results_dir):
    histograms = run_once(
        benchmark, lambda: fig5_histograms(samples=BENCH_SAMPLES)
    )

    rows = [
        (h.name, f"{h.spread():.2f}", f"{h.mode_center():+.2f}")
        for h in histograms
    ]
    text = [format_table(["panel", "spread%", "mode%"], rows), ""]
    for h in histograms:
        text.append(f"[{h.name}]")
        text.append(ascii_histogram(h))
        stem = h.name.replace(" ", "").replace("=", "")
        np.savetxt(
            results_dir / f"fig5_{stem}.csv",
            np.column_stack([h.centers, h.density]),
            delimiter=",",
            header="center_percent,density",
        )
        render_histogram(h.density, results_dir / f"fig5_{stem}.pgm")
    record_result("fig5_distributions", "\n".join(text))

    by_name = {h.name: h for h in histograms}
    # narrower with M (every t)
    for t in (0, 6, 9):
        assert (
            by_name[f"REALM16 (t={t})"].spread()
            < by_name[f"REALM8 (t={t})"].spread()
            < by_name[f"REALM4 (t={t})"].spread()
        )
    # t=6 ~ t=0; t=9 wider (every M)
    for m in (16, 8, 4):
        t0 = by_name[f"REALM{m} (t=0)"].spread()
        t6 = by_name[f"REALM{m} (t=6)"].spread()
        t9 = by_name[f"REALM{m} (t=9)"].spread()
        assert abs(t6 - t0) < 0.25
        assert t9 > t6
    # centered near zero
    assert all(abs(h.mode_center()) < 1.0 for h in histograms)
