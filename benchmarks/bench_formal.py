"""Formal-layer wall-clock: encode and certify per family and width.

Each benchmark measures one stage of the certification pipeline —
symbolic encoding (``formal.encode``) and worst-case-error solving
(``formal.solve``) — for a representative design of each family at
N ∈ {8, 12, 16}.  ``extra_info`` records the route taken (exhaustive
sweep, ratio factorization, interval branch-and-bound, or SMT when z3
is installed) and whether the answer is exact, so the CI artifact shows
the fallback ladder's cost at a glance.

Run directly (``python benchmarks/bench_formal.py``) for a quick
wall-clock table without pytest-benchmark.
"""

from __future__ import annotations

import time

from repro.conformance.oracles import resolve_design
from repro.formal import certify_worst_error, encode_model, z3_available

#: one design per symbolically-encodable family; built at several widths
FAMILY_DESIGNS = [
    "realm8-t2",  # REALM (LUT-corrected log)
    "mbm-t2",  # MBM (rounded correction)
    "calm",  # pure Mitchell log
    "drum-k5",  # dynamic range truncation
    "ssm-m8",  # static segment
    "accurate",  # exact baseline
]

BITWIDTHS = [8, 12, 16]

#: keep the 16-bit interval engine quick: a small budget still yields a
#: sound (just looser) bound, which is what the timing should reflect
BENCH_BOX_BUDGET = 4000


def _certify(design: str, bitwidth: int):
    return certify_worst_error(design, bitwidth, box_budget=BENCH_BOX_BUDGET)


def _time(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_encode(benchmark, design: str, bitwidth: int):
    _, model, _, _ = resolve_design(design, bitwidth)
    encoding = benchmark(lambda: encode_model(model, design))
    benchmark.extra_info["design"] = design
    benchmark.extra_info["bitwidth"] = bitwidth
    benchmark.extra_info["nodes"] = len(encoding.builder)


def _bench_solve(benchmark, design: str, bitwidth: int):
    bounds = benchmark(lambda: _certify(design, bitwidth))
    benchmark.extra_info["design"] = design
    benchmark.extra_info["bitwidth"] = bitwidth
    benchmark.extra_info["method"] = bounds.method
    benchmark.extra_info["exact"] = bounds.exact
    benchmark.extra_info["smt_backend"] = z3_available()


def test_perf_formal_encode_realm(benchmark):
    """REALM16 symbolic lowering at the paper's operand width."""
    _bench_encode(benchmark, "realm8-t2", 16)


def test_perf_formal_encode_calm(benchmark):
    """cALM symbolic lowering at the paper's operand width."""
    _bench_encode(benchmark, "calm", 16)


def test_perf_formal_solve_sweep(benchmark):
    """8-bit exhaustive formula sweep: the tier-1 certification route."""
    _bench_solve(benchmark, "realm8-t2", 8)


def test_perf_formal_solve_ratio(benchmark):
    """16-bit product-form factorization: exact in closed form."""
    _bench_solve(benchmark, "drum-k5", 16)


def test_perf_formal_solve_interval(benchmark):
    """16-bit log-family branch-and-bound (SMT when z3 is installed)."""
    _bench_solve(benchmark, "realm8-t2", 16)


def main() -> None:
    print(f"z3 backend: {'yes' if z3_available() else 'no (pure python)'}")
    print("formal.encode (best of 3):")
    for design in FAMILY_DESIGNS:
        for bitwidth in BITWIDTHS:
            try:
                _, model, _, _ = resolve_design(design, bitwidth)
            except ValueError:
                continue
            seconds = _time(lambda: encode_model(model, design))
            print(f"  {design:<10} N={bitwidth:<3} {seconds * 1e3:8.2f} ms")
    print(f"formal.solve (best of 1, budget {BENCH_BOX_BUDGET}):")
    for design in FAMILY_DESIGNS:
        for bitwidth in BITWIDTHS:
            try:
                resolve_design(design, bitwidth)
            except ValueError:
                continue
            start = time.perf_counter()
            bounds = _certify(design, bitwidth)
            seconds = time.perf_counter() - start
            print(
                f"  {design:<10} N={bitwidth:<3} {seconds * 1e3:8.1f} ms   "
                f"{bounds.method:<13} "
                f"{'exact' if bounds.exact else 'sound bound'}"
            )


if __name__ == "__main__":
    main()
