"""Fig. 4: the accuracy-vs-efficiency design space and its Pareto front.

Two reproductions (see DESIGN.md):

* ``paper`` source — the paper's synthesis columns with this library's
  measured errors, isolating the error reproduction from the cost-model
  substitution.  This is the apples-to-apples test of the paper's Pareto
  claim ("the Pareto front is primarily achieved by REALM").
* ``model`` source — fully self-contained: our cost model on both axes.

Each run exports the scatter as CSV and prints the four panels' fronts.
"""

from __future__ import annotations

import csv

from conftest import BENCH_SAMPLES, attach_phases, run_once

from repro.experiments import fig4_designspace, format_table


def _render(data) -> str:
    rows = [
        (
            p.display,
            f"{p.area_reduction:.1f}",
            f"{p.power_reduction:.1f}",
            f"{p.mean_error:.2f}",
            f"{p.peak_error:.2f}",
            "REALM" if p.is_realm else "",
        )
        for p in data["plotted"]
    ]
    text = [
        format_table(
            ["design", "areaR%", "powR%", "ME%", "PE%", ""], rows
        )
    ]
    for panel, front in data["fronts"].items():
        realm = sum(1 for n in front if n.startswith("realm"))
        text.append(f"\nPareto front [{panel}]: {realm}/{len(front)} REALM")
        text.append("  " + " -> ".join(front))
    return "\n".join(text)


def _export(data, results_dir, tag):
    with open(results_dir / f"fig4_{tag}.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["name", "area_reduction", "power_reduction", "mean_error", "peak_error"]
        )
        for p in data["points"]:
            writer.writerow(
                [p.name, p.area_reduction, p.power_reduction, p.mean_error, p.peak_error]
            )


def test_fig4_paper_synthesis(benchmark, record_result, results_dir):
    data = run_once(
        benchmark,
        lambda: fig4_designspace(
            source="paper", samples=BENCH_SAMPLES, with_telemetry=True
        ),
    )
    attach_phases(benchmark, data["telemetry"])
    record_result("fig4_design_space_paper", _render(data))
    _export(data, results_dir, "paper")

    # the paper's claim, checked on all four panels
    for panel, front in data["fronts"].items():
        realm = sum(1 for n in front if n.startswith("realm"))
        assert realm >= len(front) / 2, (panel, front)
    # and its stated front endpoints
    assert "drum-k8" in data["fronts"]["area-mean"]


def test_fig4_model_synthesis(benchmark, record_result, results_dir):
    data = run_once(
        benchmark,
        lambda: fig4_designspace(
            source="model", samples=BENCH_SAMPLES, with_telemetry=True
        ),
    )
    attach_phases(benchmark, data["telemetry"])
    record_result("fig4_design_space_model", _render(data))
    _export(data, results_dir, "model")

    # self-contained model: REALM still carries most of the power fronts
    front = data["fronts"]["power-mean"]
    assert sum(1 for n in front if n.startswith("realm")) >= len(front) / 2
