"""Fig. 3: the REALM hardware design, reproduced structurally.

Builds the full Fig. 3 datapath (LODs, normalizing shifters, truncation
wiring, fraction adder, hardwired LUT mux with its c_of-controlled
halving mux, exponent adder, output scaling shifter, zero gating) for all
three M values and reports the block inventory the figure depicts, plus
the paper's Section III-C observations checked structurally:

* the LUT stores exactly M^2 entries of q-2 bits;
* the output is 2N+1 bits (special case 1);
* raising t strictly removes logic (the truncation knob's area lever).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig3_hardware, format_table


def test_fig3_hardware_inventory(benchmark, record_result):
    def build_all():
        return {m: fig3_hardware(m=m, t=0) for m in (16, 8, 4)}

    inventories = run_once(benchmark, build_all)

    headers = ["block", "REALM16", "REALM8", "REALM4"]
    keys = (
        "gate_count", "depth", "area_um2", "power_uw",
        "lut_entries", "lut_width_bits", "output_bits",
    )
    rows = []
    for key in keys:
        rows.append(
            [key]
            + [
                f"{inventories[m][key]:.1f}"
                if isinstance(inventories[m][key], float)
                else str(inventories[m][key])
                for m in (16, 8, 4)
            ]
        )
    for cell in sorted(inventories[16]["cells"]):
        rows.append(
            [f"cell {cell}"]
            + [str(inventories[m]["cells"].get(cell, 0)) for m in (16, 8, 4)]
        )
    record_result("fig3_hardware", format_table(headers, rows))

    for m in (16, 8, 4):
        assert inventories[m]["lut_entries"] == m * m
        assert inventories[m]["lut_width_bits"] == 4
        assert inventories[m]["output_bits"] == 33


def test_fig3_truncation_removes_logic(benchmark, record_result):
    def sweep_t():
        return [fig3_hardware(m=8, t=t) for t in range(10)]

    inventories = run_once(benchmark, sweep_t)
    rows = [
        (f"t={t}", str(inv["gate_count"]), f"{inv['area_um2']:.1f}")
        for t, inv in enumerate(inventories)
    ]
    record_result(
        "fig3_truncation_sweep", format_table(["config", "gates", "area um2"], rows)
    )
    gates = [inv["gate_count"] for inv in inventories]
    assert all(a >= b for a, b in zip(gates, gates[1:]))
