"""Method extension: REALM's segment correction applied to division.

Mitchell's 1962 paper covers division by binary logarithms too; the
paper corrects only the multiplier.  This bench carries the Eq. 8-11
recipe to the divider (signed corrections, weight (1+y)/(1+x)) and shows
the same structure emerge: the one-sided +4% error of the classical log
divider collapses to near-zero bias and sub-1% mean error, improving
with M exactly like the multiplier's Table I column.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import format_table
from repro.extensions.divider import MitchellDivider, RealmDivider


def test_ablation_divider(benchmark, record_result):
    def run():
        rng = np.random.default_rng(2020)
        a = rng.integers(32768, 65536, 1 << 19)
        b = rng.integers(1, 64, 1 << 19)
        reference = a / b
        out = {}
        for divider in (
            MitchellDivider(),
            RealmDivider(m=4),
            RealmDivider(m=8),
            RealmDivider(m=16),
        ):
            errors = (divider.divide(a, b) - reference) / reference
            out[divider.name] = (
                errors.mean() * 100,
                np.abs(errors).mean() * 100,
                errors.min() * 100,
                errors.max() * 100,
            )
        return out

    results = run_once(benchmark, run)
    rows = [
        (name, f"{bias:+.2f}", f"{me:.2f}", f"{lo:.2f}", f"{hi:.2f}")
        for name, (bias, me, lo, hi) in results.items()
    ]
    record_result(
        "ablation_divider",
        format_table(["divider", "bias%", "ME%", "min%", "max%"], rows),
    )

    assert results["cALM-div16"][0] > 3.0  # one-sided overestimate
    assert abs(results["REALM-div8"][0]) < 0.5  # bias collapsed
    assert (
        results["REALM-div16"][1]
        < results["REALM-div8"][1]
        < results["REALM-div4"][1]
        < results["cALM-div16"][1]
    )
