"""Throughput benchmarks of the substrate itself.

The other benches time one-shot regenerations; these measure the
steady-state rates a user plans around: functional-model multiplication
throughput (what bounds a 2^24 characterization), gate-level simulation
throughput, netlist construction, and factor computation.  pytest-
benchmark's statistics (multiple rounds) apply here, unlike the
deterministic one-shot benches.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import telemetry
from repro.circuits.catalog import netlist_for
from repro.core.factors import _factors_cached, compute_factors
from repro.core.realm import RealmMultiplier
from repro.logic.sim import evaluate_words
from repro.multipliers.mitchell import MitchellMultiplier

VECTOR_BATCH = 1 << 18


def test_perf_realm_functional_throughput(benchmark):
    realm = RealmMultiplier(m=16, t=0)
    rng = np.random.default_rng(1)
    a = rng.integers(0, 1 << 16, VECTOR_BATCH)
    b = rng.integers(0, 1 << 16, VECTOR_BATCH)
    result = benchmark(realm.multiply, a, b)
    assert len(result) == VECTOR_BATCH
    # the paper's 2^24 characterization must stay minutes-scale: require
    # at least 2M products/s from the functional model
    assert benchmark.stats["mean"] < VECTOR_BATCH / 2e6


def test_perf_mitchell_functional_throughput(benchmark):
    calm = MitchellMultiplier()
    rng = np.random.default_rng(2)
    a = rng.integers(0, 1 << 16, VECTOR_BATCH)
    b = rng.integers(0, 1 << 16, VECTOR_BATCH)
    result = benchmark(calm.multiply, a, b)
    assert len(result) == VECTOR_BATCH


def test_perf_gate_level_simulation(benchmark):
    netlist = netlist_for("realm16-t0")
    rng = np.random.default_rng(3)
    a = rng.integers(0, 1 << 16, 4096)
    b = rng.integers(0, 1 << 16, 4096)
    buses = [netlist.inputs[:16], netlist.inputs[16:]]
    result = benchmark(evaluate_words, netlist, buses, [a, b])
    assert len(result) == 4096


def test_perf_netlist_construction(benchmark):
    def build():
        return netlist_for("realm16-t0")

    netlist = benchmark(build)
    assert netlist.gate_count > 500


def test_perf_disabled_telemetry_is_free(benchmark):
    # the telemetry hooks live inside the engine's per-block hot path, so
    # the disabled singleton must be cheap enough to never show up in a
    # characterization profile
    telemetry.disable()
    tele = telemetry.get()
    assert tele is telemetry.DISABLED
    ops = 10_000

    def hot_loop():
        for i in range(ops):
            with tele.span("bench.noop", block=i):
                tele.counter("bench.count")
        return ops

    assert benchmark(hot_loop) == ops
    # well under a microsecond per span+counter pair (measured ~0.3us);
    # at ~260 pairs per 2^24-sample run this is nanoseconds of total cost
    assert benchmark.stats["mean"] / ops < 2e-6


def test_perf_factor_computation(benchmark):
    def compute():
        _factors_cached.cache_clear()
        return compute_factors(16)

    factors = benchmark(compute)
    assert factors.shape == (16, 16)
