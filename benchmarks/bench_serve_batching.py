"""Throughput benchmarks of the serving layer's micro-batcher.

Measures what batching actually buys: the per-request overhead of N
separate single-pair evaluations versus one fused flush of the same N
requests, plus the end-to-end in-process dispatch rate (codec +
dispatch + batcher, no sockets).  The sharded cases drive the same
workload through a supervised :class:`~repro.serve.ProcessShard` fleet
(1 worker vs. 4) and record pairs/sec plus the measured cost of one
supervised worker restart in ``extra_info``.  pytest-benchmark
statistics apply.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.serve import (
    BatchPolicy,
    InProcessClient,
    MicroBatcher,
    ProcessShard,
    Service,
    ShardConfig,
    Supervisor,
)

REQUESTS = 256

#: one design per ring slot candidate, spread so a 4-shard fleet gets
#: traffic on every worker (single-design traffic pins to one owner)
FLEET_DESIGNS = [
    "calm",
    "accurate",
    "realm16-t4",
    "realm16-t0",
    "drum-k6",
    "drum-k8",
    "mbm-t4",
    "essm8",
]
FLEET_PAIRS = 64  # pairs per request


class _Never:
    async def __call__(self, seconds):
        await asyncio.Event().wait()


def _request_mix(seed: int, count: int = REQUESTS):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.integers(0, 1 << 16, size=4).tolist(),
            rng.integers(0, 1 << 16, size=4).tolist(),
        )
        for _ in range(count)
    ]


def test_perf_fused_flush(benchmark):
    """One flush fusing REQUESTS submissions into few evaluations."""
    requests = _request_mix(1)

    def fused():
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=1 << 16), sleep=_Never()
            )
            futures = [
                batcher.submit("calm", a, b) for a, b in requests
            ]
            batcher.flush_pending()
            return [f.result() for f in futures]

        return asyncio.run(scenario())

    results = benchmark(fused)
    assert len(results) == REQUESTS


def test_perf_unbatched_flushes(benchmark):
    """The same requests flushed one at a time (no fusion baseline)."""
    requests = _request_mix(1)

    def unbatched():
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=1 << 16), sleep=_Never()
            )
            out = []
            for a, b in requests:
                future = batcher.submit("calm", a, b)
                batcher.flush_pending()
                out.append(future.result())
            return out

        return asyncio.run(scenario())

    results = benchmark(unbatched)
    assert len(results) == REQUESTS


def test_perf_in_process_dispatch(benchmark):
    """End-to-end requests/s through codec + dispatch + batcher."""
    requests = _request_mix(2, count=64)

    def dispatch():
        async def scenario():
            service = Service(policy=BatchPolicy(max_latency=0.0))
            service.start()
            client = InProcessClient(service)
            products = await asyncio.gather(
                *(client.multiply("calm", a, b) for a, b in requests)
            )
            await service.drain()
            return products

        return asyncio.run(scenario())

    results = benchmark(dispatch)
    assert len(results) == 64


@pytest.mark.parametrize("shards", [1, 4])
def test_perf_sharded_fleet(benchmark, shards):
    """Requests/s through a supervised ProcessShard fleet (1 vs 4).

    The fleet is spawned once on a persistent event loop; the benchmark
    times only the request burst (route + forward + shard evaluation).
    After timing, one worker restart is measured and recorded so the
    perf trajectory keeps the failover cost visible alongside the
    steady-state throughput.
    """
    rng = np.random.default_rng(11)
    jobs = [
        (
            design,
            rng.integers(0, 1 << 16, size=FLEET_PAIRS).tolist(),
            rng.integers(0, 1 << 16, size=FLEET_PAIRS).tolist(),
        )
        for design in FLEET_DESIGNS
        for _ in range(4)
    ]

    loop = asyncio.new_event_loop()
    try:
        supervisor = Supervisor(
            [ProcessShard(ShardConfig(f"shard-{i}")) for i in range(shards)]
        )
        loop.run_until_complete(supervisor.up())
        client = InProcessClient(supervisor)

        async def fan_out():
            return await asyncio.gather(
                *(client.multiply(d, a, b) for d, a, b in jobs)
            )

        def burst():
            return loop.run_until_complete(fan_out())

        results = benchmark(burst)
        assert len(results) == len(jobs)
        assert all(len(products) == FLEET_PAIRS for products in results)

        victim = next(iter(supervisor.shards.values()))
        t0 = time.perf_counter()
        loop.run_until_complete(victim.restart())
        restart_overhead = time.perf_counter() - t0

        loop.run_until_complete(supervisor.drain())
    finally:
        loop.close()

    pairs = len(jobs) * FLEET_PAIRS
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["pairs_per_sec"] = round(
        pairs / benchmark.stats["mean"]
    )
    benchmark.extra_info["restart_overhead_s"] = round(restart_overhead, 4)
