"""Throughput benchmarks of the serving layer's micro-batcher.

Measures what batching actually buys: the per-request overhead of N
separate single-pair evaluations versus one fused flush of the same N
requests, plus the end-to-end in-process dispatch rate (codec +
dispatch + batcher, no sockets).  pytest-benchmark statistics apply.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.serve import BatchPolicy, InProcessClient, MicroBatcher, Service

REQUESTS = 256


class _Never:
    async def __call__(self, seconds):
        await asyncio.Event().wait()


def _request_mix(seed: int, count: int = REQUESTS):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.integers(0, 1 << 16, size=4).tolist(),
            rng.integers(0, 1 << 16, size=4).tolist(),
        )
        for _ in range(count)
    ]


def test_perf_fused_flush(benchmark):
    """One flush fusing REQUESTS submissions into few evaluations."""
    requests = _request_mix(1)

    def fused():
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=1 << 16), sleep=_Never()
            )
            futures = [
                batcher.submit("calm", a, b) for a, b in requests
            ]
            batcher.flush_pending()
            return [f.result() for f in futures]

        return asyncio.run(scenario())

    results = benchmark(fused)
    assert len(results) == REQUESTS


def test_perf_unbatched_flushes(benchmark):
    """The same requests flushed one at a time (no fusion baseline)."""
    requests = _request_mix(1)

    def unbatched():
        async def scenario():
            batcher = MicroBatcher(
                BatchPolicy(max_queue=1 << 16), sleep=_Never()
            )
            out = []
            for a, b in requests:
                future = batcher.submit("calm", a, b)
                batcher.flush_pending()
                out.append(future.result())
            return out

        return asyncio.run(scenario())

    results = benchmark(unbatched)
    assert len(results) == REQUESTS


def test_perf_in_process_dispatch(benchmark):
    """End-to-end requests/s through codec + dispatch + batcher."""
    requests = _request_mix(2, count=64)

    def dispatch():
        async def scenario():
            service = Service(policy=BatchPolicy(max_latency=0.0))
            service.start()
            client = InProcessClient(service)
            products = await asyncio.gather(
                *(client.multiply("calm", a, b) for a, b in requests)
            )
            await service.drain()
            return products

        return asyncio.run(scenario())

    results = benchmark(dispatch)
    assert len(results) == 64
