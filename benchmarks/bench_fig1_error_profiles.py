"""Fig. 1: relative-error profiles of the log-based multipliers.

Regenerates the six panels — cALM, ALM-SOA, MBM, ImpLM, IntALP, REALM16 —
as exhaustive error surfaces over ``A, B in {32..255}`` plus per-panel
headline statistics, and exports each surface as CSV for plotting.  The
paper's visual story: every baseline's surface carries percent-level
structure, REALM16's is flat at the ±2% level.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.profiles import ascii_heatmap
from repro.analysis.render import render_heatmap
from repro.experiments import FIG1_DESIGNS, fig1_profiles, format_table


def test_fig1_error_profiles(benchmark, record_result, results_dir):
    profiles = run_once(benchmark, fig1_profiles)

    rows = [
        (
            summary.name,
            f"{summary.mean_error:.2f}",
            f"{summary.peak_error:.2f}",
            f"{summary.bias:+.2f}",
        )
        for summary in profiles.values()
    ]
    text = [format_table(["panel", "ME%", "peak%", "bias%"], rows)]
    for name, summary in profiles.items():
        np.savetxt(
            results_dir / f"fig1_{name}.csv", summary.errors, delimiter=","
        )
        render_heatmap(summary.errors, results_dir / f"fig1_{name}.pgm")
        text.append(f"\n[{summary.name}] |error| heatmap:")
        text.append(ascii_heatmap(summary.errors, width=48))
    record_result("fig1_error_profiles", "\n".join(text))

    # the panel ordering the paper reports: every baseline ME >= 2.58%,
    # REALM16 at 0.4%-level
    for name in FIG1_DESIGNS:
        if name == "realm16-t0":
            assert profiles[name].mean_error < 1.0
        elif name == "intalp-l2":
            assert profiles[name].mean_error < 2.0  # IntALP-L2 is the close one
        else:
            assert profiles[name].mean_error > 2.0
