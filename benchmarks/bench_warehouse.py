"""Overhead and payoff of the experiment warehouse (DESIGN.md §15).

Three numbers size the store for CI budgets: how much recording a run
costs on top of the engine (cold, per campaign), how fast a warm
campaign returns when every fingerprint is already recorded (the
incremental-recompute payoff), and raw lookup throughput against a
populated database.  ``extra_info`` carries the measured rates so the
perf trajectory keeps warehouse overhead visible next to the engine
numbers it amortizes.
"""

from __future__ import annotations

import pytest

from repro.analysis import telemetry
from repro.analysis.cache import cache_key
from repro.analysis.montecarlo import characterize_many
from repro.multipliers.registry import build
from repro.warehouse import Warehouse

SAMPLES = 1 << 16
DESIGNS = ("calm", "mbm-t0", "realm4-t0")


def _items():
    return [(name, build(name)) for name in DESIGNS]


def test_perf_cold_campaign_with_recording(benchmark, tmp_path):
    """Engine run + one atomic record_run per campaign (fresh store)."""
    runs = iter(range(1 << 20))

    def campaign():
        db = tmp_path / f"cold-{next(runs)}.db"
        return characterize_many(
            _items(), samples=SAMPLES, warehouse=db, cache=False
        )

    results = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert len(results) == len(DESIGNS)
    rate = len(DESIGNS) * SAMPLES / benchmark.stats["mean"]
    benchmark.extra_info["pairs_per_sec"] = round(rate)


def test_perf_warm_campaign_zero_recompute(benchmark, tmp_path):
    """Every fingerprint already stored: the sweep is pure lookups."""
    db = tmp_path / "warm.db"
    cold = characterize_many(_items(), samples=SAMPLES, warehouse=db, cache=False)

    def campaign():
        with telemetry.recording() as rec:
            warm = characterize_many(
                _items(), samples=SAMPLES, warehouse=db, cache=False
            )
        return warm, rec.snapshot

    (warm, snapshot) = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert warm == cold  # bit-identical to the recomputation it replaced
    assert snapshot.counter("warehouse.deltas") == 0
    benchmark.extra_info["designs_per_sec"] = round(
        len(DESIGNS) / benchmark.stats["mean"]
    )


def test_perf_lookup_throughput(benchmark, tmp_path):
    """latest_metrics against a store holding a few hundred rows."""
    from repro.warehouse import Provenance, metrics_fields

    wh = Warehouse(tmp_path / "lookup.db")
    provenance = Provenance(git_rev="0" * 40, engine_version=2, kernel_version=1)
    metrics = characterize_many(_items(), samples=SAMPLES, cache=False)
    payloads = []
    for round_index in range(100):
        rows = []
        for name in DESIGNS:
            payload = {"design": name, "round": round_index}
            payloads.append(cache_key(payload))
            rows.append((name, payload, metrics_fields(metrics[name]), False))
        wh.record_run(
            "characterize", rows, seed=0, samples=SAMPLES,
            provenance=provenance, created=1754600000.0 + round_index,
        )

    def lookups():
        found = 0
        for fingerprint in payloads:
            if wh.latest_metrics(fingerprint) is not None:
                found += 1
        return found

    found = benchmark.pedantic(lookups, rounds=3, iterations=1)
    wh.close()
    assert found == len(payloads)
    benchmark.extra_info["lookups_per_sec"] = round(
        len(payloads) / benchmark.stats["mean"]
    )


if __name__ == "__main__":  # pragma: no cover - manual smoke entry
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
