"""Table I (error columns): Monte-Carlo characterization of every design.

Regenerates the five error columns — bias, mean error, min/max peak,
variance — for all 65 approximate configurations, printed next to the
paper's published values.  The paper's methodology (Section IV-B): uniform
i.i.d. operands over the full 16-bit range, errors vs. the exact product.
"""

from __future__ import annotations

from conftest import BENCH_SAMPLES, BENCH_WORKERS, attach_phases, run_once

from repro import paper
from repro.experiments import format_table, table1_errors
from repro.multipliers.registry import TABLE1_IDS

FAMILIES = {
    "realm": [n for n in TABLE1_IDS if n.startswith("realm")],
    "log-baselines": [
        n
        for n in TABLE1_IDS
        if n.startswith(("calm", "implm", "mbm", "alm", "intalp"))
    ],
    "other-baselines": [
        n for n in TABLE1_IDS if n.startswith(("am", "drum", "ssm", "essm"))
    ],
}


def _render(rows) -> str:
    headers = [
        "design", "bias", "(p)", "ME", "(p)",
        "min", "(p)", "max", "(p)", "var", "(p)",
    ]
    def fmt(v, p=2):
        return "--" if v is None else f"{v:.{p}f}"

    body = []
    for row in rows:
        ref = row["paper"] or paper.Table1Row(*([None] * 7))
        body.append(
            [
                row["display"],
                fmt(row["bias"]), fmt(ref.bias),
                fmt(row["mean_error"]), fmt(ref.mean_error),
                fmt(row["peak_min"]), fmt(ref.peak_min),
                fmt(row["peak_max"]), fmt(ref.peak_max),
                fmt(row["variance"]), fmt(ref.variance),
            ]
        )
    return format_table(headers, body)


def _bench_family(benchmark, record_result, family: str):
    ids = FAMILIES[family]
    rows, snapshot = run_once(
        benchmark,
        lambda: table1_errors(
            samples=BENCH_SAMPLES,
            ids=ids,
            workers=BENCH_WORKERS,
            with_telemetry=True,
        ),
    )
    attach_phases(benchmark, snapshot)
    record_result(f"table1_errors_{family}", _render(rows))


def test_table1_errors_realm(benchmark, record_result):
    _bench_family(benchmark, record_result, "realm")


def test_table1_errors_log_baselines(benchmark, record_result):
    _bench_family(benchmark, record_result, "log-baselines")


def test_table1_errors_other_baselines(benchmark, record_result):
    _bench_family(benchmark, record_result, "other-baselines")
