"""Table I (design-metric columns): area/power reductions per design.

Regenerates the area- and power-reduction columns from the gate-level
netlists and the calibrated cost model (the paper's Cadence/TSMC45 flow is
substituted per DESIGN.md; the accurate multiplier is pinned to the
paper's 1898.1 um^2 / 821.9 uW reference, exactly the normalization the
percentages use).
"""

from __future__ import annotations

from conftest import run_once

from repro import paper
from repro.experiments import format_table, table1_synthesis
from repro.multipliers.registry import TABLE1_IDS


def _render(rows) -> str:
    def fmt(v, p=1):
        return "--" if v is None else f"{v:.{p}f}"

    headers = ["design", "area um2", "power uW", "areaR%", "(p)", "powR%", "(p)", "gates"]
    body = []
    for row in rows:
        ref = row["paper"] or paper.Table1Row(*([None] * 7))
        body.append(
            [
                row["display"],
                fmt(row["area_um2"]),
                fmt(row["power_uw"]),
                fmt(row["area_reduction"]), fmt(ref.area_reduction),
                fmt(row["power_reduction"]), fmt(ref.power_reduction),
                str(row["gate_count"]),
            ]
        )
    return format_table(headers, body)


def test_table1_synthesis_all_designs(benchmark, record_result):
    rows = run_once(benchmark, lambda: table1_synthesis(ids=TABLE1_IDS))
    record_result("table1_synthesis", _render(rows))

    # sanity assertions on the reproduction's load-bearing orderings
    by_name = {r["name"]: r for r in rows}
    assert by_name["realm16-t0"]["area_um2"] > by_name["realm16-t9"]["area_um2"]
    assert by_name["am2-nb13"]["area_reduction"] < by_name["am1-nb13"]["area_reduction"]
    assert by_name["intalp-l2"]["area_reduction"] < by_name["intalp-l1"]["area_reduction"]
