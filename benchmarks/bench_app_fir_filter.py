"""Application extension: FIR low-pass filtering SNR per multiplier.

The second workload class the approximate-multiplier literature targets
(SSM/ESSM's own evaluation domain).  A 63-tap Q15 low-pass runs over a
multitone test signal with every multiplier; the output SNR against the
accurate fixed-point datapath ranks the designs — and the ranking follows
Table I's mean error, with REALM16 ~20 dB above cALM.
"""

from __future__ import annotations

from conftest import run_once

from repro.dsp.fir import (
    fir_filter,
    lowpass_taps,
    multitone_signal,
    output_snr_db,
    quantize_q15,
)
from repro.experiments import format_table
from repro.multipliers.registry import build

DESIGNS = (
    "realm16-t0",
    "realm8-t8",
    "realm4-t9",
    "mbm-t0",
    "calm",
    "implm-ea",
    "alm-soa-m11",
    "drum-k8",
    "drum-k4",
    "ssm-m8",
    "essm8",
)


def test_app_fir_filter(benchmark, record_result):
    def run():
        taps = quantize_q15(lowpass_taps(63, 0.2))
        signal = quantize_q15(multitone_signal(4096))
        reference = fir_filter(build("accurate"), signal, taps)
        return {
            name: output_snr_db(reference, fir_filter(build(name), signal, taps))
            for name in DESIGNS
        }

    snrs = run_once(benchmark, run)
    rows = [
        (build(name).name, f"{snrs[name]:.1f}")
        for name in sorted(DESIGNS, key=lambda n: -snrs[n])
    ]
    record_result("app_fir_filter", format_table(["multiplier", "SNR dB"], rows))

    assert snrs["realm16-t0"] > 45.0
    assert snrs["realm16-t0"] > snrs["mbm-t0"] > snrs["calm"]
    assert snrs["realm4-t9"] > snrs["calm"]
