# Convenience targets for the REALM reproduction.

PYTHON ?= python3

# tier-1 tests + a quick smoke of the parallel and cached Monte-Carlo
# engine paths (cold pass with 2 workers, then a warm-cache pass)
VERIFY_ENV = PYTHONPATH=src REPRO_BENCH_SAMPLES=262144 REPRO_BENCH_WORKERS=2 \
	REPRO_CACHE_DIR=.repro-cache

.PHONY: install test nightly bench experiments examples quick verify serve-smoke serve-chaos clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# exhaustive 256x256 model-vs-RTL sweep + full-budget conformance fuzzing
# (what the scheduled CI job runs)
nightly:
	PYTHONPATH=src REPRO_NIGHTLY=1 $(PYTHON) -m pytest tests/test_rtl_equivalence.py tests/test_conformance.py tests/test_formal.py -m nightly

verify:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q
	rm -rf .repro-cache
	$(VERIFY_ENV) $(PYTHON) -m pytest benchmarks/bench_table1_errors.py --benchmark-only -q
	@echo "--- warm-cache second pass ---"
	$(VERIFY_ENV) $(PYTHON) -m pytest benchmarks/bench_table1_errors.py --benchmark-only -q
	rm -rf .repro-cache
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py --only base
	@echo "--- serve chaos smoke (supervised fleet) ---"
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py --only chaos
	@echo "--- seeded conformance slice ---"
	PYTHONPATH=src $(PYTHON) -m repro conform --design realm-16-m4-q5 --budget 20000 --seed 0
	@echo "--- compiled-kernel smoke ---"
	PYTHONPATH=src $(PYTHON) -m repro conform --design realm-16-m4-q5 --budget 20000 --seed 0 \
		--layers model kernel exact
	@echo "--- formal smoke (8-bit equivalence proof + certified peaks) ---"
	PYTHONPATH=src $(PYTHON) -m repro formal --design realm-8-m4-q5 --prove-equiv --max-error --no-cache
	@echo "--- warehouse smoke (record, warm reuse, trend report) ---"
	rm -rf .repro-warehouse
	PYTHONPATH=src REPRO_WAREHOUSE_DIR=.repro-warehouse $(PYTHON) -m repro characterize calm --quick --no-cache
	PYTHONPATH=src REPRO_WAREHOUSE_DIR=.repro-warehouse $(PYTHON) -m repro characterize calm --quick --no-cache
	PYTHONPATH=src REPRO_WAREHOUSE_DIR=.repro-warehouse $(PYTHON) -m repro report
	PYTHONPATH=src REPRO_WAREHOUSE_DIR=.repro-warehouse $(PYTHON) -m repro report --json > /dev/null
	rm -rf .repro-warehouse
	PYTHONPATH=src $(PYTHON) benchmarks/bench_kernels.py

# live TCP server under a mixed workload; asserts fused serve.batch
# spans, zero shed and bit-identical responses (DESIGN.md §10)
serve-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py --only base

# kill-the-workers load test: 4 supervised shards, 2 deterministic
# crashes + 1 hang, zero lost responses, bounded recovery (DESIGN.md §13)
serve-chaos:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py --only chaos

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# full 2^24 reproduction run; rewrites EXPERIMENTS.md (minutes)
experiments:
	$(PYTHON) tools/generate_experiments_md.py

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

quick:
	$(PYTHON) -m repro table1 --quick

clean:
	rm -rf build *.egg-info .pytest_cache benchmarks/results .repro-cache .repro-warehouse
	find . -name __pycache__ -type d -exec rm -rf {} +
