# Convenience targets for the REALM reproduction.

PYTHON ?= python3

.PHONY: install test bench experiments examples quick clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# full 2^24 reproduction run; rewrites EXPERIMENTS.md (minutes)
experiments:
	$(PYTHON) tools/generate_experiments_md.py

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

quick:
	$(PYTHON) -m repro table1 --quick

clean:
	rm -rf build *.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
