#!/usr/bin/env python3
"""The gate-level side: build, simulate, and cost a REALM netlist.

Walks the EDA substrate end to end: generate the Fig. 3 datapath as a
netlist, prove it bit-equivalent to the functional model, estimate its
switching power under the paper's conditions (1 GHz, 25% toggle, 50%
probability), and compare against the accurate Wallace multiplier — the
Table I "design metrics" flow in miniature.

Run:  python examples/hardware_flow.py
"""

import numpy as np

from repro.circuits.realm_rtl import realm_netlist
from repro.circuits.wallace import wallace_netlist
from repro.core.realm import RealmMultiplier
from repro.logic.sim import evaluate_words
from repro.synth.cost import synthesize

# ----------------------------------------------------------------------
# 1. Generate the Fig. 3 datapath.
# ----------------------------------------------------------------------
netlist = realm_netlist(bitwidth=16, m=8, t=4)
print(f"{netlist.name}: {netlist.gate_count} gates, depth {netlist.depth()}")
print("cell mix:", dict(netlist.cell_histogram()))

# ----------------------------------------------------------------------
# 2. Prove it against the functional model (the library does this for
#    every design in its test suite).
# ----------------------------------------------------------------------
rng = np.random.default_rng(1)
a = rng.integers(0, 1 << 16, 5000)
b = rng.integers(0, 1 << 16, 5000)
hardware = evaluate_words(netlist, [netlist.inputs[:16], netlist.inputs[16:]], [a, b])
model = RealmMultiplier(bitwidth=16, m=8, t=4).multiply(a, b)
assert np.array_equal(hardware, model)
print(f"\nnetlist == functional model on {len(a)} random vectors: OK")

# ----------------------------------------------------------------------
# 3. Cost it against the accurate multiplier (Table I's normalization).
# ----------------------------------------------------------------------
realm_cost = synthesize(netlist)
accurate = wallace_netlist(16)
accurate.prune()
accurate_cost = synthesize(accurate)

area_reduction, power_reduction = realm_cost.reductions(accurate_cost)
print(f"\naccurate Wallace: {accurate_cost.area_um2:7.1f} um^2  {accurate_cost.power_uw:6.1f} uW")
print(f"REALM8 (t=4):     {realm_cost.area_um2:7.1f} um^2  {realm_cost.power_uw:6.1f} uW")
print(f"reduction:        area {area_reduction:.1f}%   power {power_reduction:.1f}%")

# ----------------------------------------------------------------------
# 4. The truncation knob as a hardware lever.
# ----------------------------------------------------------------------
print("\ntruncation sweep (M=8):")
for t in (0, 3, 6, 9):
    cost = synthesize(realm_netlist(16, m=8, t=t))
    print(
        f"  t={t}:  {cost.gate_count:4d} gates  {cost.area_um2:7.1f} um^2  "
        f"{cost.power_uw:6.1f} uW"
    )
