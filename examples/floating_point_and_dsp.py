#!/usr/bin/env python3
"""Two library extensions: REALM inside a floating-point multiplier, and
approximate-multiplier FIR filtering.

The paper's relatives live in FP land (MBM and ApproxLP are FP mantissa
multipliers); because REALM's log fractions ARE the FP significands, its
error-reduction LUT drops into an FP datapath unchanged.  And DSP is the
other classic consumer of approximate MACs.

Run:  python examples/floating_point_and_dsp.py
"""

import numpy as np

from repro.core.realm import RealmMultiplier
from repro.dsp import (
    fir_filter,
    lowpass_taps,
    multitone_signal,
    output_snr_db,
    quantize_q15,
)
from repro.experiments import format_table
from repro.multipliers.floating import BFLOAT16_LIKE, FLOAT32, ApproxFloatMultiplier
from repro.multipliers.mitchell import MitchellMultiplier
from repro.multipliers.registry import build

# ----------------------------------------------------------------------
# 1. Floating-point REALM.
# ----------------------------------------------------------------------
rng = np.random.default_rng(0)
a = rng.uniform(0.001, 1e6, 50_000)
b = rng.uniform(0.001, 1e6, 50_000)

print("FP32 multiplication, mean |relative error| vs exact:")
for label, factory in (
    ("accurate core", None),
    ("REALM16 core", lambda n: RealmMultiplier(bitwidth=n, m=16)),
    ("REALM4 core", lambda n: RealmMultiplier(bitwidth=n, m=4)),
    ("Mitchell core", lambda n: MitchellMultiplier(bitwidth=n)),
):
    fp = (
        ApproxFloatMultiplier(FLOAT32)
        if factory is None
        else ApproxFloatMultiplier(FLOAT32, factory)
    )
    errors = np.abs((fp.multiply(a, b) - a * b) / (a * b))
    print(f"  {label:14s} ME {errors.mean() * 100:7.4f}%   peak {errors.max() * 100:.3f}%")

# a bfloat16-class format shows the same structure at low precision
fp_small = ApproxFloatMultiplier(
    BFLOAT16_LIKE, lambda n: RealmMultiplier(bitwidth=n, m=8)
)
print(f"\n{fp_small.name}: 3.5 x 2.25 = {float(fp_small.multiply(3.5, 2.25)):.4f}")

# ----------------------------------------------------------------------
# 2. FIR low-pass filtering (Q15 fixed point).
# ----------------------------------------------------------------------
print("\n63-tap Q15 low-pass over a multitone signal; SNR vs the accurate MAC:")
taps = quantize_q15(lowpass_taps(63, 0.2))
signal = quantize_q15(multitone_signal(4096))
reference = fir_filter(build("accurate"), signal, taps)

rows = []
for name in ("realm16-t0", "realm8-t8", "realm4-t9", "mbm-t0", "calm", "ssm-m8"):
    out = fir_filter(build(name), signal, taps)
    rows.append((build(name).name, f"{output_snr_db(reference, out):.1f}"))
print(format_table(["multiplier", "SNR dB"], rows))
print(
    "\nREALM keeps >40 dB of fidelity where the classical log multiplier"
    "\nleaves ~26 dB — the Table I error ordering, visible in a DSP chain."
)
