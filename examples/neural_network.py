#!/usr/bin/env python3
"""Approximate multipliers in ML inference — the paper's motivating workload.

Trains a small MLP on the synthetic glyph task in floating point,
quantizes it to a 16-bit fixed-point datapath, and runs inference with the
multiplier swapped for each approximate design.  Two findings, both of
which the paper's introduction predicts:

* classification accuracy barely moves — argmax absorbs percent-level
  multiplicative error (this is the error resilience approximate
  computing exploits);
* the *logit distortion* ranks the designs exactly like Table I's mean
  error: REALM16 bends the network's outputs ~10x less than cALM.

Run:  python examples/neural_network.py
"""

from repro.experiments import format_table
from repro.multipliers.registry import build
from repro.nn import (
    evaluate_multipliers,
    float_accuracy,
    logit_distortion,
    trained_setup,
)

DESIGNS = (
    "accurate",
    "realm16-t0",
    "realm8-t8",
    "realm4-t9",
    "mbm-t0",
    "calm",
    "drum-k8",
    "drum-k4",
    "ssm-m8",
)

print("training the float MLP on the glyph dataset ...")
data, params = trained_setup()
print(
    f"  float test accuracy: {float_accuracy(data, params):.3f} "
    f"({len(data.train_x)} train / {len(data.test_x)} test samples)\n"
)

print("running 16-bit fixed-point inference through each multiplier ...")
accuracy = evaluate_multipliers(DESIGNS)
distortion = logit_distortion(DESIGNS)

rows = [
    (
        build(name).name,
        f"{accuracy[name]:.3f}",
        f"{distortion[name]:.2f}",
    )
    for name in DESIGNS
]
print(format_table(["multiplier", "accuracy", "logit distortion %"], rows))

print(
    "\nTakeaway: every design keeps the classifier usable (error"
    "\nresilience), but REALM achieves that with ~10x less output"
    "\ndistortion than the classical log multiplier — headroom that"
    "\nmatters for regression heads, calibrated probabilities, and"
    "\ndeeper networks where distortion compounds."
)
