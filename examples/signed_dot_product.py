#!/usr/bin/env python3
"""Signed arithmetic and DSP kernels on top of REALM (paper Section III-C).

The paper notes that extending REALM to signed operands is the standard
sign-magnitude wrap of [3].  This example uses that wrapper for the two
kernels approximate multipliers actually serve — dot products (neural-net
layers) and 2-D convolution (image filtering) — and shows the error
REALM's low bias buys: long accumulations cancel individual product
errors, so a 4096-term dot product lands within hundredths of a percent.

Run:  python examples/signed_dot_product.py
"""

import numpy as np

from repro import RealmMultiplier, SignedMultiplier, convolve2d, dot_product
from repro.multipliers.mitchell import MitchellMultiplier

rng = np.random.default_rng(42)

# ----------------------------------------------------------------------
# 1. Signed products.
# ----------------------------------------------------------------------
signed_realm = SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=16), 16)
print(f"{signed_realm.name}:")
for a, b in ((-300, 41), (300, -41), (-300, -41)):
    print(f"  {a} x {b} = {int(signed_realm.multiply(a, b))}  (exact {a * b})")

# ----------------------------------------------------------------------
# 2. Dot products: bias cancellation over long accumulations.
# ----------------------------------------------------------------------
signed_calm = SignedMultiplier(lambda n: MitchellMultiplier(bitwidth=n), 16)
print("\ndot-product relative error vs accumulation length:")
print("  (REALM's near-zero bias cancels; cALM's -3.85% bias accumulates)")
for length in (16, 256, 4096):
    x = rng.integers(-2000, 2000, length)
    w = rng.integers(-2000, 2000, length)
    exact = int(np.dot(x, w))
    realm_out = int(dot_product(signed_realm, x, w))
    calm_out = int(dot_product(signed_calm, x, w))
    print(
        f"  n={length:5d}   REALM {abs(realm_out - exact) / abs(exact) * 100:6.3f}%"
        f"   cALM {abs(calm_out - exact) / abs(exact) * 100:6.3f}%"
    )

# ----------------------------------------------------------------------
# 3. Sobel edge detection through the approximate multiplier.
# ----------------------------------------------------------------------
from repro.jpeg.images import test_image

image = test_image("cameraman").astype(np.int64)
sobel_x = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]])

exact_edges = convolve2d(SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=16, t=0), 16), image, sobel_x)
# reference with exact arithmetic
reference = np.zeros_like(exact_edges)
for dy in range(3):
    for dx in range(3):
        reference += image[dy : dy + 254, dx : dx + 254] * sobel_x[dy, dx]

difference = np.abs(exact_edges - reference)
print("\nSobel filter through REALM16:")
print(f"  max |pixel difference|  = {difference.max()}")
print(f"  mean |pixel difference| = {difference.mean():.3f}")
print(f"  gradient dynamic range  = {np.abs(reference).max()}")
print("  (kernel taps 1/2 are exact powers of two under REALM, hence the tiny error)")
