#!/usr/bin/env python3
"""Quickstart: build a REALM multiplier, use it, and characterize it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RealmMultiplier, build, characterize, compute_factors

# ----------------------------------------------------------------------
# 1. A REALM multiplier is a drop-in unsigned integer multiplier.
# ----------------------------------------------------------------------
realm = RealmMultiplier(bitwidth=16, m=16, t=0)

a, b = 40000, 50000
approx = int(realm.multiply(a, b))
exact = a * b
print(f"{realm.name}: {a} x {b} = {approx}")
print(f"exact product     = {exact}")
print(f"relative error    = {(approx - exact) / exact * 100:+.4f}%")

# vectorized over arrays — this is what makes 2^24-sample studies cheap
rng = np.random.default_rng(0)
xs = rng.integers(1, 1 << 16, 5)
ys = rng.integers(1, 1 << 16, 5)
print("\nvectorized products:", realm.multiply(xs, ys))

# ----------------------------------------------------------------------
# 2. The error-reduction factors behind it (paper Eq. 11).
# ----------------------------------------------------------------------
factors = compute_factors(4)
print("\ns_ij factors for M=4 (interval-independent, stored as a 16-entry LUT):")
print(np.array2string(factors, precision=4))

# ----------------------------------------------------------------------
# 3. Error characterization, the paper's Section IV-B methodology.
# ----------------------------------------------------------------------
print("\nMonte-Carlo error characterization (2^20 samples):")
for name in ("realm16-t0", "realm4-t9", "calm", "drum-k8"):
    multiplier = build(name)
    print(f"  {multiplier.name:16s} {characterize(multiplier, samples=1 << 20)}")

# ----------------------------------------------------------------------
# 4. The two error-configuration knobs: M (segments) and t (truncation).
# ----------------------------------------------------------------------
print("\nknob sweep (mean error %):")
for m in (4, 8, 16):
    row = []
    for t in (0, 4, 8):
        metrics = characterize(RealmMultiplier(m=m, t=t), samples=1 << 18)
        row.append(f"t={t}: {metrics.mean_error:.2f}")
    print(f"  M={m:2d}  " + "   ".join(row))
