#!/usr/bin/env python3
"""JPEG with approximate multipliers — the paper's Table II application.

Compresses the three stand-in images at quality 50 with the accurate
multiplier, three REALM configurations and the log-based baselines, and
reports PSNR plus the achieved bitrate.  The takeaway the paper reports:
REALM's error is invisible at application level while cALM and friends
cost several dB.

Run:  python examples/jpeg_compression.py
"""

from repro.experiments import format_table
from repro.jpeg.codec import roundtrip_psnr
from repro.jpeg.images import IMAGE_NAMES, test_image
from repro.multipliers.registry import build

DESIGNS = (
    "accurate",
    "realm16-t8",
    "realm8-t8",
    "realm4-t8",
    "mbm-t0",
    "calm",
    "alm-soa-m11",
)

multipliers = {name: build(name) for name in DESIGNS}

rows = []
for image_name in IMAGE_NAMES:
    image = test_image(image_name)
    cells = [image_name]
    for name, multiplier in multipliers.items():
        quality_db, compressed = roundtrip_psnr(multiplier, image, quality=50)
        cells.append(f"{quality_db:.1f}dB")
    rows.append(cells)

print("PSNR at JPEG quality 50 (procedural stand-in images):\n")
print(format_table(["image"] + [multipliers[n].name for n in DESIGNS], rows))

# the drop relative to the accurate multiplier is the paper's Table II story
print("\nPSNR drop vs accurate multiplier:")
drop_rows = []
for image_name in IMAGE_NAMES:
    image = test_image(image_name)
    accurate_db, _ = roundtrip_psnr(multipliers["accurate"], image)
    cells = [image_name]
    for name in DESIGNS[1:]:
        quality_db, _ = roundtrip_psnr(multipliers[name], image)
        cells.append(f"{accurate_db - quality_db:+.1f}dB")
    drop_rows.append(cells)
print(format_table(["image"] + [multipliers[n].name for n in DESIGNS[1:]], drop_rows))

# bitrate is unaffected by the multiplier choice at matched quality level
image = test_image("cameraman")
_, compressed = roundtrip_psnr(multipliers["accurate"], image)
print(
    f"\ncameraman bitstream: {len(compressed.data)} bytes "
    f"({compressed.bits_per_pixel:.2f} bits/pixel, 8.00 uncompressed)"
)
