#!/usr/bin/env python3
"""Design-space exploration: pick the cheapest multiplier for an error budget.

The workflow an approximate-computing designer actually runs with this
library: sweep every Table I configuration, measure error and modeled
area/power, then ask "what is the most power-efficient design whose mean
error stays under my application's budget?" — and see that the answer is a
REALM point across most budgets (the paper's Fig. 4 Pareto claim).

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.designspace import fig4_front, sweep
from repro.experiments import format_table

BUDGETS = (0.5, 1.0, 2.0, 4.0)  # mean-error budgets in percent

print("sweeping the full Table I design space (this builds every netlist")
print("and Monte-Carlo-characterizes every functional model)...\n")
points = sweep(samples=1 << 19, source="model")

# ----------------------------------------------------------------------
# 1. Best design per error budget.
# ----------------------------------------------------------------------
rows = []
for budget in BUDGETS:
    feasible = [p for p in points if p.mean_error <= budget]
    best = max(feasible, key=lambda p: p.power_reduction)
    rows.append(
        (
            f"<= {budget}%",
            best.display,
            f"{best.mean_error:.2f}",
            f"{best.power_reduction:.1f}",
            f"{best.area_reduction:.1f}",
        )
    )
print(
    format_table(
        ["error budget", "best design", "ME%", "powR%", "areaR%"], rows
    )
)

# ----------------------------------------------------------------------
# 2. The Pareto front of the whole space (one Fig. 4 panel).
# ----------------------------------------------------------------------
front = fig4_front(points, efficiency="power", error="mean")
realm_points = sum(1 for name in front if name.startswith("realm"))
print(f"\nPareto front (power vs mean error): {realm_points}/{len(front)} REALM points")
coords = {p.name: p for p in points}
for name in front:
    p = coords[name]
    print(f"  {p.display:18s} powR {p.power_reduction:5.1f}%   ME {p.mean_error:.2f}%")

# ----------------------------------------------------------------------
# 3. Inspect one chosen design's hardware.
# ----------------------------------------------------------------------
from repro.synth.cost import synthesize_design

chosen = max(
    (p for p in points if p.mean_error <= 1.0), key=lambda p: p.power_reduction
)
result = synthesize_design(chosen.name)
print(f"\nchosen design {chosen.display}:")
print(f"  {result.gate_count} gates, depth {result.depth}")
print(f"  {result.area_um2:.1f} um^2, {result.power_uw:.1f} uW @ 1 GHz")
