"""Tests for the signed wrapper and the DSP helpers (paper Section III-C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.realm import RealmMultiplier
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.signed import SignedMultiplier, convolve2d, dot_product

from tests.strategies import signed_operands


def accurate_signed(bitwidth: int = 16) -> SignedMultiplier:
    return SignedMultiplier(AccurateMultiplier, bitwidth=bitwidth)


class TestSignedMultiplier:
    def test_exhaustive_small(self):
        signed = accurate_signed(bitwidth=6)
        values = np.arange(-32, 32)
        a, b = np.meshgrid(values, values, indexing="ij")
        assert np.array_equal(signed.multiply(a.ravel(), b.ravel()), a.ravel() * b.ravel())

    def test_most_negative_operand(self):
        # |-2^(N-1)| needs N bits: the widened core must handle it
        signed = accurate_signed(bitwidth=16)
        assert int(signed.multiply(-32768, -32768)) == 32768 * 32768
        assert int(signed.multiply(-32768, 32767)) == -32768 * 32767

    def test_range_validation(self):
        signed = accurate_signed(bitwidth=16)
        with pytest.raises(ValueError):
            signed.multiply(32768, 1)
        with pytest.raises(ValueError):
            signed.multiply(1, -32769)

    def test_approximate_core_sign_structure(self):
        signed = SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=8), 16)
        a = np.array([-300, 300, -300, 300])
        b = np.array([-41, -41, 41, 41])
        products = signed.multiply(a, b)
        assert (np.sign(products) == [1, -1, -1, 1]).all()
        # magnitude independent of signs (sign-magnitude property)
        assert len(set(np.abs(products).tolist())) == 1

    def test_name_and_repr(self):
        signed = SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=4), 16)
        assert "REALM4" in signed.name
        assert "SignedMultiplier" in repr(signed)

    def test_bad_factory_rejected(self):
        with pytest.raises(ValueError):
            SignedMultiplier(lambda n: AccurateMultiplier(8), bitwidth=16)

    @given(signed_operands(16), signed_operands(16))
    @settings(max_examples=200, deadline=None)
    def test_sign_magnitude_property(self, a, b):
        signed = SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=16), 16)
        product = int(signed.multiply(a, b))
        # |-(2**15)| exceeds the signed interface; the widened unsigned
        # core is the right oracle for the magnitude
        magnitude = int(signed.core.multiply(abs(a), abs(b)))
        expected_sign = -1 if (a < 0) != (b < 0) and magnitude != 0 else 1
        assert product == expected_sign * magnitude


class TestDotProduct:
    def test_matches_numpy_with_accurate_core(self):
        rng = np.random.default_rng(5)
        a = rng.integers(-1000, 1000, 64)
        b = rng.integers(-1000, 1000, 64)
        signed = accurate_signed()
        assert int(dot_product(signed, a, b)) == int(np.dot(a, b))

    def test_shape_mismatch(self):
        signed = accurate_signed()
        with pytest.raises(ValueError):
            dot_product(signed, np.zeros(3), np.zeros(4))

    def test_approximate_close(self):
        rng = np.random.default_rng(6)
        a = rng.integers(1, 1 << 12, 256)
        b = rng.integers(1, 1 << 12, 256)
        signed = SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=16), 16)
        approx = int(dot_product(signed, a, b))
        exact = int(np.dot(a, b))
        assert abs(approx - exact) / exact < 0.01


class TestConvolve2d:
    def test_matches_scipy_style_valid_conv(self):
        rng = np.random.default_rng(7)
        image = rng.integers(0, 256, (12, 12))
        kernel = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]])
        signed = accurate_signed()
        out = convolve2d(signed, image, kernel)
        expected = np.zeros((10, 10), dtype=np.int64)
        for i in range(10):
            for j in range(10):
                expected[i, j] = int(np.sum(image[i : i + 3, j : j + 3] * kernel))
        assert np.array_equal(out, expected)

    def test_kernel_too_big(self):
        signed = accurate_signed()
        with pytest.raises(ValueError):
            convolve2d(signed, np.zeros((2, 2)), np.ones((3, 3)))

    def test_sobel_with_realm_close_to_exact(self):
        rng = np.random.default_rng(8)
        image = rng.integers(0, 256, (16, 16))
        kernel = np.array([[1, 2, 1], [0, 0, 0], [-1, -2, -1]])
        exact = convolve2d(accurate_signed(), image, kernel)
        approx = convolve2d(
            SignedMultiplier(lambda n: RealmMultiplier(bitwidth=n, m=16), 16),
            image,
            kernel,
        )
        # kernel taps are tiny so products are near-exact
        assert np.abs(approx - exact).max() <= np.abs(exact).max() * 0.05 + 4
