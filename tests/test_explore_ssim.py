"""Tests for the design-space explorer and the SSIM metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.explore import Candidate, Constraints, explore, realm_grid_ids
from repro.jpeg.images import test_image as make_image
from repro.jpeg.ssim import ssim

SAMPLES = 1 << 16


class TestConstraints:
    def _candidate(self, mean_error=1.0, power=70.0, area=60.0):
        from repro.analysis.metrics import ErrorMetrics

        metrics = ErrorMetrics(
            bias=0.1,
            mean_error=mean_error,
            peak_min=-3.0,
            peak_max=3.0,
            variance=1.0,
            rms=1.2,
            nmed=0.1,
            samples=100,
        )
        return Candidate("x", "X", metrics, area, power)

    def test_bounds(self):
        candidate = self._candidate()
        assert Constraints(max_mean_error=2.0).admits(candidate)
        assert not Constraints(max_mean_error=0.5).admits(candidate)
        assert Constraints(min_power_reduction=60.0).admits(candidate)
        assert not Constraints(min_power_reduction=80.0).admits(candidate)
        assert not Constraints(max_peak_error=2.0).admits(candidate)
        assert Constraints().admits(candidate)

    def test_bias_bound(self):
        candidate = self._candidate()
        assert Constraints(max_bias=0.2).admits(candidate)
        assert not Constraints(max_bias=0.05).admits(candidate)


class TestExplore:
    def test_budget_returns_realm_or_drum(self):
        best = explore(
            Constraints(max_mean_error=1.0),
            objective="power",
            ids=("realm16-t0", "realm8-t8", "calm", "drum-k8", "ssm-m8"),
            samples=SAMPLES,
        )
        assert best
        assert best[0].name in ("realm8-t8", "realm16-t0")
        assert best[0].metrics.mean_error <= 1.0

    def test_ranking_is_by_objective(self):
        results = explore(
            Constraints(),
            objective="error",
            ids=("calm", "realm16-t0", "mbm-t0"),
            samples=SAMPLES,
            top=3,
        )
        errors = [c.metrics.mean_error for c in results]
        assert errors == sorted(errors)
        assert results[0].name == "realm16-t0"

    def test_infeasible_returns_empty(self):
        assert (
            explore(
                Constraints(max_mean_error=0.001),
                ids=("calm",),
                samples=SAMPLES,
            )
            == []
        )

    def test_realm_grid_extends_space(self):
        ids = realm_grid_ids(m_values=(32,), t_values=(0,))
        results = explore(
            Constraints(max_mean_error=0.40),
            objective="power",
            ids=(),
            include_realm_grid=False,
            samples=SAMPLES,
        )
        # nothing in the named table gets below 0.40% ME ... except DRUM8
        assert all(c.name == "drum-k8" for c in results)
        grid = explore(
            Constraints(max_mean_error=0.40),
            objective="power",
            ids=ids,
            samples=SAMPLES,
        )
        # M=32 halves REALM16's error: a new feasible point appears
        assert any(c.name.startswith("realm-grid-m32") for c in grid)

    def test_validation(self):
        with pytest.raises(ValueError):
            explore(Constraints(), objective="beauty")
        with pytest.raises(ValueError):
            explore(Constraints(), top=0)


class TestSsim:
    def test_identical_is_one(self):
        image = make_image("lena")
        assert ssim(image, image) == pytest.approx(1.0)

    def test_noise_reduces(self):
        image = make_image("lena").astype(np.float64)
        rng = np.random.default_rng(91)
        noisy = np.clip(image + rng.normal(0, 20, image.shape), 0, 255)
        value = ssim(image, noisy)
        assert 0.1 < value < 0.95

    def test_more_noise_is_worse(self):
        image = make_image("cameraman").astype(np.float64)
        rng = np.random.default_rng(92)
        mild = np.clip(image + rng.normal(0, 5, image.shape), 0, 255)
        severe = np.clip(image + rng.normal(0, 40, image.shape), 0, 255)
        assert ssim(image, mild) > ssim(image, severe)

    def test_jpeg_ordering_tracks_psnr(self):
        from repro.jpeg.codec import compress, decompress
        from repro.multipliers.registry import build

        image = make_image("cameraman")
        scores = {}
        for name in ("accurate", "realm16-t8", "calm"):
            multiplier = build(name)
            decoded = decompress(multiplier, compress(multiplier, image))
            scores[name] = ssim(image, decoded)
        assert scores["accurate"] >= scores["realm16-t8"] - 0.01
        assert scores["realm16-t8"] > scores["calm"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((16, 16)), np.zeros((8, 8)))
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 4)))
