"""Tests for the FIR filtering substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.realm import RealmMultiplier
from repro.dsp.fir import (
    Q,
    fir_filter,
    lowpass_taps,
    multitone_signal,
    output_snr_db,
    quantize_q15,
)
from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.mitchell import MitchellMultiplier


class TestTaps:
    def test_unity_dc_gain(self):
        assert lowpass_taps(63, 0.2).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        taps = lowpass_taps(31, 0.15)
        assert np.allclose(taps, taps[::-1])

    def test_frequency_response_shape(self):
        taps = lowpass_taps(63, 0.2)
        response = np.abs(np.fft.rfft(taps, 1024))
        frequencies = np.fft.rfftfreq(1024)
        passband = response[frequencies < 0.1].min()
        stopband = response[frequencies > 0.35].max()
        assert passband > 0.9
        assert stopband < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            lowpass_taps(10)
        with pytest.raises(ValueError):
            lowpass_taps(11, cutoff=0.6)


class TestQuantization:
    def test_roundtrip_scale(self):
        values = np.array([0.5, -0.25, 0.0])
        assert quantize_q15(values).tolist() == [1 << (Q - 1), -(1 << (Q - 2)), 0]

    def test_clipping(self):
        assert int(quantize_q15(np.array([2.0]))[0]) == (1 << Q) - 1
        assert int(quantize_q15(np.array([-2.0]))[0]) == -(1 << Q)


class TestFirFilter:
    def test_accurate_matches_float_reference(self):
        taps = lowpass_taps(31, 0.2)
        signal = multitone_signal(1024)
        fixed = fir_filter(
            AccurateMultiplier(), quantize_q15(signal), quantize_q15(taps)
        )
        reference = quantize_q15(np.convolve(signal, taps, mode="valid"))
        # quantization noise only: within a few LSBs of the float result
        assert np.abs(fixed - reference).max() <= 16

    def test_attenuates_stopband(self):
        taps = lowpass_taps(63, 0.2)
        t = np.arange(2048)
        tone = 0.5 * np.sin(2.0 * np.pi * 0.4 * t)  # stopband tone
        filtered = fir_filter(
            AccurateMultiplier(), quantize_q15(tone), quantize_q15(taps)
        )
        assert np.abs(filtered).max() < np.abs(quantize_q15(tone)).max() / 20

    def test_signal_too_short(self):
        with pytest.raises(ValueError):
            fir_filter(AccurateMultiplier(), np.zeros(10), np.zeros(31))

    def test_snr_ordering_tracks_multiplier_quality(self):
        taps = quantize_q15(lowpass_taps(63, 0.2))
        signal = quantize_q15(multitone_signal(2048))
        reference = fir_filter(AccurateMultiplier(), signal, taps)
        realm = fir_filter(RealmMultiplier(m=16, t=0), signal, taps)
        calm = fir_filter(MitchellMultiplier(), signal, taps)
        realm_snr = output_snr_db(reference, realm)
        calm_snr = output_snr_db(reference, calm)
        assert realm_snr > calm_snr + 10.0
        assert realm_snr > 40.0

    def test_snr_validation(self):
        with pytest.raises(ValueError):
            output_snr_db(np.zeros(5), np.zeros(6))

    def test_identical_outputs_infinite_snr(self):
        out = np.arange(10)
        assert output_snr_db(out, out) == float("inf")


class TestSignal:
    def test_deterministic_and_bounded(self):
        first = multitone_signal()
        second = multitone_signal()
        assert np.array_equal(first, second)
        assert np.abs(first).max() < 1.0
