"""Tests for stuck-at fault injection and coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.wallace import wallace_netlist
from repro.logic.faults import (
    Fault,
    fault_coverage,
    fault_impact,
    fault_sites,
    simulate_with_faults,
)
from repro.logic.netlist import Netlist


def _and_netlist():
    nl = Netlist("t")
    a, b = nl.new_input("a"), nl.new_input("b")
    out = nl.add("AND2", a, b)
    nl.set_outputs([out])
    return nl, a, b, out


class TestInjection:
    def test_stuck_output(self):
        nl, a, b, out = _and_netlist()
        stimulus = {a: np.array([True]), b: np.array([True])}
        values = simulate_with_faults(nl, stimulus, (Fault(out, False),))
        assert not bool(values[out][0])

    def test_stuck_input(self):
        nl, a, b, out = _and_netlist()
        stimulus = {a: np.array([False]), b: np.array([True])}
        values = simulate_with_faults(nl, stimulus, (Fault(a, True),))
        assert bool(values[out][0])  # a forced high -> AND goes high

    def test_no_faults_is_plain_simulation(self):
        nl, a, b, out = _and_netlist()
        stimulus = {a: np.array([True, False]), b: np.array([True, True])}
        values = simulate_with_faults(nl, stimulus)
        assert values[out].tolist() == [True, False]

    def test_fault_str(self):
        assert str(Fault(7, True)) == "net7/SA1"


class TestSites:
    def test_counts(self):
        nl, *_ = _and_netlist()
        sites = fault_sites(nl)
        # 2 inputs + 1 gate output, both polarities
        assert len(sites) == 6


class TestImpact:
    def test_detected_fault(self):
        nl, a, b, out = _and_netlist()
        vectors = [np.array([1, 1, 0, 0]), np.array([1, 0, 1, 0])]
        impact = fault_impact(nl, [[a], [b]], vectors, Fault(out, True))
        # AND is 1 only for (1,1): SA1 on the output flips 3 of 4 vectors
        assert impact.detection_rate == pytest.approx(0.75)

    def test_benign_fault(self):
        nl, a, b, out = _and_netlist()
        vectors = [np.array([1]), np.array([1])]
        impact = fault_impact(nl, [[a], [b]], vectors, Fault(out, True))
        assert impact.detection_rate == 0.0

    def test_relative_error_reported(self):
        nl = wallace_netlist(4)
        nl.prune()
        top_output = nl.outputs[-1]
        rng = np.random.default_rng(111)
        a = rng.integers(1, 16, 64)
        b = rng.integers(1, 16, 64)
        impact = fault_impact(
            nl, [nl.inputs[:4], nl.inputs[4:]], [a, b], Fault(top_output, True)
        )
        # forcing the MSB of the product high is a large relative error
        assert impact.mean_relative_error > 0.5


class TestCoverage:
    def test_rich_vectors_cover_multiplier(self):
        nl = wallace_netlist(4)
        nl.prune()
        rng = np.random.default_rng(112)
        a = rng.integers(0, 16, 128)
        b = rng.integers(0, 16, 128)
        coverage = fault_coverage(nl, [nl.inputs[:4], nl.inputs[4:]], [a, b])
        assert coverage > 0.95

    def test_single_vector_covers_little(self):
        nl = wallace_netlist(4)
        nl.prune()
        coverage = fault_coverage(
            nl, [nl.inputs[:4], nl.inputs[4:]], [np.array([0]), np.array([0])]
        )
        # a*0: most internal faults are masked
        assert coverage < 0.5

    def test_subset_of_faults(self):
        nl, a, b, out = _and_netlist()
        vectors = [np.array([1, 0]), np.array([1, 1])]
        coverage = fault_coverage(
            nl, [[a], [b]], vectors, faults=[Fault(out, True), Fault(out, False)]
        )
        assert coverage == pytest.approx(1.0)

    def test_empty_fault_list(self):
        nl, a, b, _ = _and_netlist()
        assert fault_coverage(nl, [[a], [b]], [np.array([1]), np.array([1])], faults=[]) == 1.0


class TestRealmCampaign:
    """Stuck-at campaign on the synthesized REALM datapath itself.

    The generic machinery above exercises toy netlists and the Wallace
    reference; this campaign runs against ``realm_netlist`` — the RTL
    this paper is about — ranking sites by error impact the way a test
    engineer would pick scan-pattern targets.
    """

    @pytest.fixture(scope="class")
    def campaign(self):
        from repro.circuits.realm_rtl import realm_netlist

        nl = realm_netlist(8, m=4, t=0)
        nl.prune()
        rng = np.random.default_rng(113)
        vectors = [rng.integers(1, 256, 96), rng.integers(1, 256, 96)]
        groups = [nl.inputs[:8], nl.inputs[8:]]
        return nl, groups, vectors

    def test_random_vectors_cover_realm(self, campaign):
        nl, groups, vectors = campaign
        assert fault_coverage(nl, groups, vectors) > 0.9

    def test_impact_ranking_finds_critical_sites(self, campaign):
        nl, groups, vectors = campaign
        sites = fault_sites(nl)
        assert len(sites) > 100  # both polarities on every net
        impacts = sorted(
            (fault_impact(nl, groups, vectors, fault) for fault in sites),
            key=lambda impact: impact.mean_relative_error,
            reverse=True,
        )
        top, bottom = impacts[0], impacts[-1]
        # the worst site corrupts the product badly and is easy to detect;
        # the tail of the ranking is near-benign
        assert top.mean_relative_error > 0.5
        assert top.detection_rate > 0.3
        assert bottom.mean_relative_error < 0.01

    def test_output_msb_fault_dominates(self, campaign):
        nl, groups, vectors = campaign
        msb = Fault(nl.outputs[-1], True)
        impact = fault_impact(nl, groups, vectors, msb)
        # forcing the product MSB high is catastrophic in relative terms
        assert impact.mean_relative_error > 0.5
        assert impact.detection_rate > 0.5
