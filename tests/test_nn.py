"""Tests for the neural-network application substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.multipliers.accurate import AccurateMultiplier
from repro.multipliers.registry import build
from repro.nn.dataset import IMAGE_SIZE, NUM_CLASSES, make_dataset
from repro.nn.evaluate import (
    evaluate_multipliers,
    float_accuracy,
    logit_distortion,
    trained_setup,
)
from repro.nn.mlp import FixedPointMlp, float_logits, train_mlp


class TestDataset:
    def test_deterministic(self):
        first = make_dataset(train_per_class=5, test_per_class=2)
        second = make_dataset(train_per_class=5, test_per_class=2)
        assert np.array_equal(first.train_x, second.train_x)
        assert np.array_equal(first.test_y, second.test_y)

    def test_shapes_and_ranges(self):
        data = make_dataset(train_per_class=5, test_per_class=3)
        assert data.train_x.shape == (5 * NUM_CLASSES, IMAGE_SIZE**2)
        assert data.test_x.shape == (3 * NUM_CLASSES, IMAGE_SIZE**2)
        assert data.train_x.dtype == np.uint8
        assert set(np.unique(data.train_y)) == set(range(NUM_CLASSES))

    def test_classes_are_separable(self):
        # nearest-template classification must beat chance by a wide margin
        data = make_dataset(train_per_class=20, test_per_class=10)
        centroids = np.stack(
            [
                data.train_x[data.train_y == label].mean(axis=0)
                for label in range(NUM_CLASSES)
            ]
        )
        distances = np.linalg.norm(
            data.test_x[:, None, :].astype(float) - centroids[None], axis=2
        )
        accuracy = np.mean(np.argmin(distances, axis=1) == data.test_y)
        assert accuracy > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            make_dataset(train_per_class=0)


class TestTraining:
    def test_float_model_learns(self):
        data, params = trained_setup()
        assert float_accuracy(data, params) > 0.93

    def test_weights_fit_q8(self):
        _, params = trained_setup()
        assert max(abs(params.w1).max(), abs(params.w2).max()) < 2.0

    def test_training_deterministic(self):
        data = make_dataset(train_per_class=10, test_per_class=5)
        first = train_mlp(data.train_x, data.train_y, epochs=2)
        second = train_mlp(data.train_x, data.train_y, epochs=2)
        assert np.array_equal(first.w1, second.w1)


class TestFixedPointInference:
    def test_accurate_quantization_matches_float(self):
        data, params = trained_setup()
        model = FixedPointMlp(params, AccurateMultiplier())
        fixed_accuracy = model.accuracy(data.test_x, data.test_y)
        assert abs(fixed_accuracy - float_accuracy(data, params)) < 0.03

    def test_quantized_logits_track_float(self):
        data, params = trained_setup()
        model = FixedPointMlp(params, AccurateMultiplier())
        fixed = model.logits(data.test_x[:50]).astype(np.float64)
        reference = float_logits(params, data.test_x[:50])
        # fixed logits live at scale 255 * 2^8
        scale = 255.0 * 256.0
        correlation = np.corrcoef(fixed.ravel(), (reference * scale).ravel())[0, 1]
        assert correlation > 0.999

    def test_single_sample_predict(self):
        data, params = trained_setup()
        model = FixedPointMlp(params, AccurateMultiplier())
        single = model.predict(data.test_x[0])
        assert single.shape == (1,)

    def test_rejects_narrow_multiplier(self):
        _, params = trained_setup()
        with pytest.raises(ValueError):
            FixedPointMlp(params, AccurateMultiplier(bitwidth=8))


class TestApproximateInference:
    def test_realm_negligible_accuracy_loss(self):
        results = evaluate_multipliers(["accurate", "realm16-t0", "realm4-t9"])
        assert results["realm16-t0"] >= results["accurate"] - 0.02
        assert results["realm4-t9"] >= results["accurate"] - 0.03

    def test_distortion_ordering_tracks_table1(self):
        distortion = logit_distortion(
            ["realm16-t0", "realm4-t9", "mbm-t0", "calm", "ssm-m8"]
        )
        assert (
            distortion["realm16-t0"]
            < distortion["realm4-t9"]
            < distortion["mbm-t0"]
            < distortion["calm"]
            < distortion["ssm-m8"]
        )

    def test_accurate_distortion_zero(self):
        assert logit_distortion(["accurate"])["accurate"] == 0.0
